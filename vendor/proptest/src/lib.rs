//! Minimal offline stand-in for the `proptest` property-testing framework.
//!
//! Implements the subset of the proptest 1.x API this workspace uses:
//! the `proptest!`, `prop_oneof!`, `prop_assert!`, and `prop_assert_eq!`
//! macros, `Strategy` with `prop_map` / `prop_recursive` / `boxed`,
//! range and tuple strategies, `Just`, `any::<bool>()`,
//! `prop::collection::vec`, and regex-ish `&str` string strategies.
//!
//! Generation is deterministic: each test case is seeded from the test's
//! source location and case index, so failures reproduce exactly.
//! Shrinking is not implemented — a failing case reports its inputs via
//! the assertion message and panics.

pub mod test_runner {
    /// Deterministic PRNG driving generation (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn seed_from_u64(seed: u64) -> TestRng {
            TestRng {
                state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA076_1D64_78BD_642F,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[lo, hi)`; `lo` if the span is empty.
        pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
            if hi <= lo {
                lo
            } else {
                lo + self.next_u64() % (hi - lo)
            }
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl std::fmt::Display) -> TestCaseError {
            TestCaseError(msg.to_string())
        }

        pub fn reject(msg: impl std::fmt::Display) -> TestCaseError {
            TestCaseError(format!("rejected: {msg}"))
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Runner configuration (subset of the real `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Drives `cases` deterministic test cases; panics on the first failure.
    pub fn run_cases<F>(config: &ProptestConfig, file: &str, line: u32, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        for i in 0..config.cases {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in file.bytes() {
                seed = (seed ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
            seed = (seed ^ u64::from(line)).wrapping_mul(0x100_0000_01b3);
            seed = (seed ^ u64::from(i)).wrapping_mul(0x100_0000_01b3);
            let mut rng = TestRng::seed_from_u64(seed);
            if let Err(e) = case(&mut rng) {
                panic!("proptest: test case #{i} failed: {e}");
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A boxed, clonable strategy (stand-in for `BoxedStrategy`).
    pub struct SBox<T> {
        gen: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for SBox<T> {
        fn clone(&self) -> Self {
            SBox {
                gen: Rc::clone(&self.gen),
            }
        }
    }

    impl<T> SBox<T> {
        pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> SBox<T> {
            SBox { gen: Rc::new(f) }
        }
    }

    /// Value-generation strategy (subset of `proptest::strategy::Strategy`).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> SBox<O>
        where
            Self: Sized + 'static,
            F: Fn(Self::Value) -> O + 'static,
        {
            SBox::new(move |rng| f(self.generate(rng)))
        }

        /// Dependent generation: draws from `self`, then from the
        /// strategy `f` builds out of that value.
        fn prop_flat_map<S2, F>(self, f: F) -> SBox<S2::Value>
        where
            Self: Sized + 'static,
            S2: Strategy + 'static,
            F: Fn(Self::Value) -> S2 + 'static,
        {
            SBox::new(move |rng| f(self.generate(rng)).generate(rng))
        }

        /// Rejection filtering: redraws until `pred` accepts. `whence`
        /// names the filter in the panic raised when the acceptance rate
        /// is so low the strategy is effectively empty.
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> SBox<Self::Value>
        where
            Self: Sized + 'static,
            F: Fn(&Self::Value) -> bool + 'static,
        {
            SBox::new(move |rng| {
                for _ in 0..1000 {
                    let v = self.generate(rng);
                    if pred(&v) {
                        return v;
                    }
                }
                panic!("prop_filter `{whence}`: 1000 consecutive rejections");
            })
        }

        fn boxed(self) -> SBox<Self::Value>
        where
            Self: Sized + 'static,
        {
            SBox::new(move |rng| self.generate(rng))
        }

        /// Builds a recursive strategy: `recurse` wraps the strategy for
        /// one more level of nesting; depth levels are stacked, mixing the
        /// leaf back in at each level so sizes vary.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> SBox<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(SBox<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(cur).boxed();
                let l = leaf.clone();
                cur = SBox::new(move |rng| {
                    if rng.next_u64() % 4 == 0 {
                        l.generate(rng)
                    } else {
                        deeper.generate(rng)
                    }
                });
            }
            cur
        }
    }

    impl<T> Strategy for SBox<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical strategy (stand-in for `Arbitrary`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for i32 {
        fn arbitrary(rng: &mut TestRng) -> i32 {
            rng.next_u64() as i32
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary + 'static>() -> SBox<T> {
        SBox::new(T::arbitrary)
    }

    /// Uniform choice among boxed alternatives (backs `prop_oneof!`).
    pub fn union<T: 'static>(arms: Vec<SBox<T>>) -> SBox<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        SBox::new(move |rng| {
            let i = (rng.next_u64() % arms.len() as u64) as usize;
            arms[i].generate(rng)
        })
    }

    /// Weighted choice among boxed alternatives (backs the
    /// `weight => strategy` form of `prop_oneof!`).
    pub fn union_weighted<T: 'static>(arms: Vec<(u32, SBox<T>)>) -> SBox<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! weights must not all be zero");
        SBox::new(move |rng| {
            let mut pick = rng.next_u64() % total;
            for (w, arm) in &arms {
                let w = u64::from(*w);
                if pick < w {
                    return arm.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick exceeded total weight")
        })
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {
            $(
                impl Strategy for Range<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        let lo = self.start as i128;
                        let hi = self.end as i128;
                        if hi <= lo {
                            return self.start;
                        }
                        let span = (hi - lo) as u128;
                        let v = lo + (u128::from(rng.next_u64()) % span) as i128;
                        v as $t
                    }
                }
            )+
        };
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))+) => {
            $(
                impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                    type Value = ($($s::Value,)+);
                    fn generate(&self, rng: &mut TestRng) -> Self::Value {
                        ($(self.$idx.generate(rng),)+)
                    }
                }
            )+
        };
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    // ---------------------------------------------------------------
    // Regex-ish string strategies: `"[a-z]{0,6}"`, `"\PC{0,120}"`, …
    // ---------------------------------------------------------------

    /// Inclusive character ranges making up a class.
    #[derive(Debug, Clone)]
    struct CharClass {
        ranges: Vec<(u32, u32)>,
    }

    impl CharClass {
        fn sample(&self, rng: &mut TestRng) -> char {
            let (lo, hi) = self.ranges[(rng.next_u64() % self.ranges.len() as u64) as usize];
            loop {
                let v = lo + (rng.next_u64() % u64::from(hi - lo + 1)) as u32;
                if let Some(c) = char::from_u32(v) {
                    return c;
                }
            }
        }
    }

    /// Parses the pattern subset used by the workspace: a single char
    /// class (`[a-z]`, `[ -~\n]`, or `\PC`) followed by `{min,max}`.
    fn parse_pattern(pat: &str) -> (CharClass, usize, usize) {
        let (class_src, rest) = if let Some(r) = pat.strip_prefix("\\PC") {
            // Any printable (non-control) char: sample across a few
            // representative Unicode blocks.
            let class = CharClass {
                ranges: vec![
                    (0x20, 0x7E),
                    (0xA1, 0x17F),
                    (0x391, 0x3C9),
                    (0x4E00, 0x4E80),
                    (0x1F600, 0x1F640),
                ],
            };
            return with_counts(class, r);
        } else if let Some(r) = pat.strip_prefix('[') {
            let end = r
                .find(']')
                .unwrap_or_else(|| panic!("unclosed char class in `{pat}`"));
            (&r[..end], &r[end + 1..])
        } else {
            panic!(
                "unsupported pattern `{pat}` (shim supports `[class]{{m,n}}` and `\\PC{{m,n}}`)"
            );
        };
        let mut ranges = Vec::new();
        let chars: Vec<char> = class_src.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = match chars[i] {
                '\\' if i + 1 < chars.len() => {
                    i += 1;
                    match chars[i] {
                        'n' => '\n',
                        't' => '\t',
                        other => other,
                    }
                }
                other => other,
            };
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                ranges.push((c as u32, chars[i + 2] as u32));
                i += 3;
            } else {
                ranges.push((c as u32, c as u32));
                i += 1;
            }
        }
        with_counts(CharClass { ranges }, rest)
    }

    fn with_counts(class: CharClass, rest: &str) -> (CharClass, usize, usize) {
        let inner = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| panic!("expected `{{m,n}}` counts, got `{rest}`"));
        let (min, max) = match inner.split_once(',') {
            Some((a, b)) => (
                a.trim().parse().expect("min"),
                b.trim().parse().expect("max"),
            ),
            None => {
                let n = inner.trim().parse().expect("count");
                (n, n)
            }
        };
        (class, min, max)
    }

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (class, min, max) = parse_pattern(self);
            let len = rng.below(min as u64, max as u64 + 1) as usize;
            (0..len).map(|_| class.sample(rng)).collect()
        }
    }
}

pub mod collection {
    use crate::strategy::{SBox, Strategy};
    use std::ops::Range;

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S>(element: S, size: Range<usize>) -> SBox<Vec<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        SBox::new(move |rng| {
            let n = rng.below(size.start as u64, size.end as u64) as usize;
            (0..n).map(|_| element.generate(rng)).collect()
        })
    }
}

pub mod option {
    use crate::strategy::{SBox, Strategy};

    /// `Option<T>` values drawn from `inner`, `None` half the time
    /// (real proptest's default `Probability`).
    pub fn of<S>(inner: S) -> SBox<Option<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        SBox::new(move |rng| {
            if rng.next_u64() & 1 == 0 {
                Some(inner.generate(rng))
            } else {
                None
            }
        })
    }
}

/// Namespace mirror so `prop::collection::vec` (and `prop::option::of`)
/// work as in real proptest.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, SBox, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declares deterministic property tests (subset of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_inner! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_inner! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_inner {
    (config = $config:expr; $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __config = $config;
                $crate::test_runner::run_cases(&__config, file!(), line!(), |__rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    let __out: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    __out
                });
            }
        )*
    };
}

/// Choice among strategy arms: uniform (`a, b, c`) or weighted
/// (`3 => a, 1 => b`), mirroring real proptest's two forms.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $arm:expr),+ $(,)?) => {
        $crate::strategy::union_weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($arm))),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::union(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

/// Asserts inside a property, failing the case (not panicking) on false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = ($lhs, $rhs);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                __l, __r
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = ($lhs, $rhs);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right`: {}\n  left: `{:?}`\n right: `{:?}`",
                format!($($fmt)+), __l, __r
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = (3i32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn string_patterns_parse() {
        let mut rng = crate::test_runner::TestRng::seed_from_u64(2);
        for _ in 0..100 {
            let s = "[a-z]{0,6}".generate(&mut rng);
            assert!(s.len() <= 6 && s.chars().all(|c| c.is_ascii_lowercase()));
            let u = "\\PC{0,120}".generate(&mut rng);
            assert!(u.chars().count() <= 120);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec((0i32..100, any::<bool>()), 0..10);
        let mut a = crate::test_runner::TestRng::seed_from_u64(9);
        let mut b = crate::test_runner::TestRng::seed_from_u64(9);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(xs in prop::collection::vec(0i64..50, 0..8), flag in any::<bool>()) {
            prop_assert!(xs.len() < 8, "len was {}", xs.len());
            let doubled: Vec<i64> = xs.iter().map(|x| x * 2).collect();
            prop_assert_eq!(doubled.len(), xs.len());
            let _ = flag;
        }
    }

    proptest! {
        #[test]
        fn oneof_and_recursive(v in prop_oneof![Just(1u32), Just(2u32), (5u32..9)]) {
            prop_assert!(v == 1 || v == 2 || (5..9).contains(&v));
        }
    }

    #[test]
    fn flat_map_is_dependent() {
        let strat = (1usize..5).prop_flat_map(|n| prop::collection::vec(0i32..10, n..n + 1));
        let mut rng = crate::test_runner::TestRng::seed_from_u64(3);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn filter_rejects_and_redraws() {
        let strat = (0i32..100).prop_filter("even only", |v| v % 2 == 0);
        let mut rng = crate::test_runner::TestRng::seed_from_u64(4);
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn weighted_oneof_respects_weights() {
        let strat = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut rng = crate::test_runner::TestRng::seed_from_u64(5);
        let hits = (0..1000).filter(|_| strat.generate(&mut rng)).count();
        // ~900 expected; anything clearly majority-true suffices.
        assert!(hits > 700, "weight 9:1 produced only {hits}/1000 trues");
    }
}
