//! Minimal offline stand-in for the `rand` crate.
//!
//! Implements only the surface this workspace uses: a seedable
//! deterministic PRNG (`rngs::StdRng` + `SeedableRng::seed_from_u64`)
//! and `Rng::gen` for a few primitive types. The generator is a
//! SplitMix64/xorshift hybrid — high-quality enough for synthetic
//! workload generation and, crucially, fully deterministic per seed.

/// Sampling trait, mirroring `rand::Rng` for the subset we need.
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Generates a random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Generates a value in `[low, high)`.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64
    where
        Self: Sized,
    {
        let span = range.end - range.start;
        range.start + self.next_u64() % span.max(1)
    }
}

/// Types samplable from raw bits (stand-in for `distributions::Standard`).
pub trait Standard {
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit PRNG (SplitMix64 state advance + finalizer).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
