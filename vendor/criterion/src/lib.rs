//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion 0.5 API this workspace's
//! benches use — `Criterion`, `benchmark_group`, `Bencher::iter` /
//! `iter_batched`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros — on top of `std::time::Instant`.
//!
//! Measurement model: each benchmark is warmed up for ~0.3 s, then
//! `sample_size` samples are taken; each sample times a batch of
//! iterations sized so a sample lasts at least ~2 ms. The reported
//! triple is `[min mean max]` of the per-iteration sample means, in the
//! same spirit (though not the same statistics) as real criterion.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped per measurement (API-compatible subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing loop driver handed to `bench_function` closures.
pub struct Bencher {
    sample_size: usize,
    /// Mean per-iteration nanoseconds, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    fn new(sample_size: usize) -> Bencher {
        Bencher {
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Times `routine` repeatedly; the routine's return value is
    /// black-boxed so the optimizer cannot elide it.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate per-iteration cost.
        let per_iter = {
            let mut iters: u64 = 0;
            let start = Instant::now();
            loop {
                black_box(routine());
                iters += 1;
                let elapsed = start.elapsed();
                if elapsed >= Duration::from_millis(300) || iters >= 1_000_000 {
                    break elapsed.as_nanos() as f64 / iters as f64;
                }
            }
        };
        // Size a sample at ~2 ms, at least one iteration.
        let batch = ((2_000_000.0 / per_iter.max(1.0)).ceil() as u64).max(1);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// Times `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm up and estimate per-iteration cost.
        let per_iter = {
            let mut iters: u64 = 0;
            let mut total = Duration::ZERO;
            loop {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                total += start.elapsed();
                iters += 1;
                if total >= Duration::from_millis(300) || iters >= 1_000_000 {
                    break total.as_nanos() as f64 / iters as f64;
                }
            }
        };
        let batch = ((2_000_000.0 / per_iter.max(1.0)).ceil() as u64)
            .max(1)
            .min(10_000);
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples
                .push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(id: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{id:<50} (no samples)");
        return;
    }
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{id:<50} time: [{} {} {}]",
        format_ns(min),
        format_ns(mean),
        format_ns(max)
    );
}

/// Benchmark driver (API-compatible subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark (builder style).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&id, &b.samples);
    }

    /// No-op hook for parity with real criterion's summary step.
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&id, &b.samples);
        self
    }

    /// Ends the group (statistics are reported eagerly, so a no-op).
    pub fn finish(self) {}
}

/// Declares a benchmark group: both the `name/config/targets` struct form
/// and the positional form of the real macro are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut c: $crate::Criterion = $config;
                    $target(&mut c);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_records_samples() {
        let mut b = Bencher::new(5);
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.samples.len(), 5);
        assert!(b.samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
