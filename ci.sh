#!/usr/bin/env bash
# Local CI gate: release build, full test suite, and lint-clean clippy.
#
# Usage: ./ci.sh
#
# To exercise the pipeline with every cache bypassed (the `no-cache`
# feature), run the workspace tests a second time:
#   cargo test -q --workspace --features no-cache
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
