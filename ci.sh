#!/usr/bin/env bash
# Local CI gate: formatting, release build, full test suite (caches on and
# off), lint-clean clippy, warning-free rustdoc, the diagnostics golden
# suite in both rendering modes, and compiling (not running) the
# benchmarks.
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --check
# --workspace: the root manifest is both a package and a workspace, and a
# bare `cargo build` only builds the root package — the CLI sweep below
# needs the freshly built target/release/genus.
cargo build --release --workspace
cargo test -q
# The differential harness again with every dispatch/type-query cache
# bypassed: both engines must agree on the slow paths too.
cargo test -q --features no-cache
cargo clippy --all-targets -- -D warnings
RUSTDOCFLAGS=-Dwarnings cargo doc --no-deps -q
# The diagnostics rendering contract, exercised end to end in both the
# human (snippet) and machine (JSON) --error-format modes: the golden
# files pin the human/short/json renderings, and the CLI suite drives the
# binary with --error-format=human/short/json plus the exit-code tiers.
cargo test -q --test render_golden --test diagnostics --test errors_doc
cargo test -q -p genus --test cli
# Opt-parity gate: the bytecode optimizer must be observationally
# invisible. The differential suite sweeps --opt-level 0/1/2 internally
# and the property suite fuzzes O0-vs-O2 (opt_levels_agree); on top, a
# CLI-level sweep checks the shipped binary end to end.
cargo test -q --test differential --test properties
for lvl in 0 1 2; do
  target/release/genus run --engine=vm --opt-level="$lvl" \
    samples/existential_registry.genus > "target/opt_parity_$lvl.out"
done
cmp target/opt_parity_0.out target/opt_parity_1.out
cmp target/opt_parity_0.out target/opt_parity_2.out
# Tier-parity gate: the closure-compiled Tier 2 must be observationally
# identical to the VM (the differential suite above already asserts
# exact fuel equality between them); here the shipped binary sweeps
# every sample on both engines and compares output byte for byte.
for sample in samples/*.genus; do
  out="target/tier_parity_$(basename "$sample" .genus)"
  target/release/genus run --engine=vm "$sample" > "$out.vm"
  target/release/genus run --engine=jit "$sample" > "$out.jit"
  cmp "$out.vm" "$out.jit"
done
# GC-stress gate: with GENUS_GC_STRESS=1 the heap collects at every safe
# point, so any value reachable only from a host-side local (a rooting
# bug) is reclaimed out from under the engine and the differential sweep
# diverges or crashes. Sweeping every sample on all three engines under
# stress proves the root set (frame stacks, register pools, statics,
# pending calls) is complete.
for sample in samples/*.genus; do
  out="target/gc_stress_$(basename "$sample" .genus)"
  for engine in ast vm jit; do
    GENUS_GC_STRESS=1 target/release/genus run --engine="$engine" \
      "$sample" > "$out.$engine"
  done
  cmp "$out.ast" "$out.vm"
  cmp "$out.vm" "$out.jit"
done
# Fuzz smoke gate: a seeded run of the coverage-guided differential
# fuzzer (grammar-generated well-typed programs, mutation over a corpus,
# all oracles: four-way engine parity, GC-stress byte parity, bytecode
# round-trip, incremental-session parity). The deterministic case budget
# drives the work; --seconds is a wall-clock safety cap. Any divergence
# writes a minimized repro under target/fuzz_smoke/crashes and exits 3.
rm -rf target/fuzz_smoke
target/release/genus fuzz --seconds=20 --seed=1 \
  --corpus=target/fuzz_smoke/corpus --crash-dir=target/fuzz_smoke/crashes \
  | tee target/fuzz_smoke.out
grep -q ' 0 divergence(s)' target/fuzz_smoke.out
test -z "$(ls -A target/fuzz_smoke/crashes 2>/dev/null)"
# Checked-in crash repros are regression pins: each must replay clean
# through the full oracle suite (pass, or compile-reject with proper
# diagnostics) — a divergence or panic here means a fixed bug returned.
target/release/genus fuzz --replay fuzz/crashes/*.genus
# The execution service: unit + integration suite (program-cache
# coherence, worker pool, resource traps, session ordering, TCP), then an
# end-to-end gate piping a 3-request JSON-lines batch — one OK, one
# fuel-exhausting, one compile error — through the shipped binary and
# checking each response line's outcome.
cargo test -q -p genus-serve
printf '%s\n' \
  '{"id": "ok", "source": "int main() { println(\"hi\"); return 7; }"}' \
  '{"id": "spin", "source": "int main() { while (true) {} return 0; }", "fuel": 50000}' \
  '{"id": "bad", "source": "int main() { return nope; }"}' \
  | target/release/genus serve --workers=4 > target/serve_e2e.out
test "$(wc -l < target/serve_e2e.out)" -eq 3
grep -q '"id":"ok".*"outcome":"ok".*"value":"7"' target/serve_e2e.out
grep -q '"id":"spin".*"outcome":"trap".*"code":"R0009"' target/serve_e2e.out
grep -q '"id":"bad".*"outcome":"error"' target/serve_e2e.out
# Persistent-bytecode gate: the same request through a cold server with
# --cache-dir, then a brand-new server over the same directory. The
# cold boot writes artifacts (0 disk hits); the restart must answer from
# disk (non-zero disk hits on the stderr summary) and its response line
# must be byte-identical to the cold one modulo the timing field.
rm -rf target/ci_cache_dir
printf '{"id": "p1", "source": "int main() { return 64; }"}\n' \
  | target/release/genus serve --workers=2 --cache-dir=target/ci_cache_dir \
  > target/serve_disk_cold.out 2> target/serve_disk_cold.err
grep -q ' 0 disk hit(s)' target/serve_disk_cold.err
printf '{"id": "p1", "source": "int main() { return 64; }"}\n' \
  | target/release/genus serve --workers=2 --cache-dir=target/ci_cache_dir \
  > target/serve_disk_warm.out 2> target/serve_disk_warm.err
grep -q ' disk hit(s)' target/serve_disk_warm.err
! grep -q ' 0 disk hit(s)' target/serve_disk_warm.err
sed -E 's/"ms":[0-9]+/"ms":0/' target/serve_disk_cold.out > target/serve_disk_cold.norm
sed -E 's/"ms":[0-9]+/"ms":0/' target/serve_disk_warm.out > target/serve_disk_warm.norm
cmp target/serve_disk_cold.norm target/serve_disk_warm.norm
# Metrics smoke: a {"action": "metrics"} line is answered synchronously
# with the counter snapshot (cache + pool + latency sections present).
printf '{"id": "m1", "action": "metrics"}\n' \
  | target/release/genus serve --workers=1 > target/serve_metrics.out
grep -q '"id":"m1","outcome":"ok"' target/serve_metrics.out
grep -q 'disk_hits' target/serve_metrics.out
grep -q 'steals' target/serve_metrics.out
grep -q 'p99_us' target/serve_metrics.out
# Scaling smoke, core-gated: the serve bench asserts hot-VM throughput
# at 4 workers >= 2x 1 worker — a claim only multi-core silicon can
# honor, so it runs where it can be meaningful. (On fewer cores the
# bench still runs manually and only rejects a sharding collapse.)
if [ "$(nproc)" -ge 4 ]; then
  cargo bench -p bench --bench serve
fi
# Incremental-session gates. First, diagnostics parity: for every
# sample (plus an error fixture), a session-based check — one `--watch`
# iteration, which runs through CompileSession and ends at stdin EOF —
# must render exactly the diagnostics of a from-scratch one-shot check
# and agree on the exit code. The `watch:` status line is the only
# session-specific output, so it is stripped before the byte compare.
printf 'int main() { int unused = 1; return nope; }\n' > target/incr_bad.genus
for src in samples/*.genus target/incr_bad.genus; do
  out="target/incr_$(basename "$src" .genus)"
  set +e
  target/release/genus check "$src" 2> "$out.oneshot" > /dev/null
  oneshot_exit=$?
  : | target/release/genus check --watch "$src" 2> "$out.watch"
  watch_exit=$?
  set -e
  test "$oneshot_exit" -eq "$watch_exit"
  grep -v '^watch: ' "$out.watch" > "$out.watch_diags" || true
  cmp "$out.oneshot" "$out.watch_diags"
done
# Second, the sessionful serve protocol end to end: an update/check/run
# pipe on one named session through the shipped binary. The run carries
# a one-token edit, so its response must report reused units > 0 (the
# stdlib verdicts survive) with exactly one unit re-checked.
printf '%s\n' \
  '{"id": "u1", "session": "ci", "action": "update", "file": "main.genus", "source": "int main() { return 41; }"}' \
  '{"id": "c1", "session": "ci", "action": "check"}' \
  '{"id": "r1", "session": "ci", "action": "run", "file": "main.genus", "source": "int main() { return 42; }"}' \
  | target/release/genus serve --workers=2 > target/serve_session.out
test "$(wc -l < target/serve_session.out)" -eq 3
grep -q '"id":"u1","outcome":"ok","value":"updated"' target/serve_session.out
grep -q '"id":"c1","outcome":"ok","value":"checked".*"rechecked":6' target/serve_session.out
grep -q '"id":"r1","outcome":"ok","value":"42".*"reused":[1-9][0-9]*,"rechecked":1' target/serve_session.out
# Benchmarks must at least compile; running them is a manual step
# (`cargo bench -p bench`), which also writes BENCH_vm.json.
# --workspace: a bare `cargo bench --no-run` only builds the root
# package's bench targets, silently skipping the bench crate.
cargo bench --no-run --workspace
