#!/usr/bin/env bash
# Local CI gate: release build, full test suite (caches on and off),
# lint-clean clippy, and compiling (not running) the benchmarks.
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
# The differential harness again with every dispatch/type-query cache
# bypassed: both engines must agree on the slow paths too.
cargo test -q --features no-cache
cargo clippy --all-targets -- -D warnings
# Benchmarks must at least compile; running them is a manual step
# (`cargo bench -p bench`), which also writes BENCH_vm.json.
cargo bench --no-run
