//! Property-based tests over the pipeline and the evaluation substrates.

// Every program in this suite runs on BOTH engines (AST interpreter and
// bytecode VM) with a divergence check — the differential harness.
use genus_repro::run_differential_with_stdlib as run_with_stdlib;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Translation strategies agree with each other and with std's sort
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn translation_strategies_sort_identically(values in prop::collection::vec(-1e6f64..1e6, 0..120)) {
        use genus_translate::{genus, java, specialized};
        use std::rc::Rc;

        let mut expect = values.clone();
        expect.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

        // Java strategy.
        let mut j = java::JArrayList::from_values(&values);
        java::sort_generic_comparable_list(&mut j);
        prop_assert_eq!(j.to_doubles(), expect.clone());

        // Genus homogeneous strategy, unboxed and boxed models.
        let mut gd = genus::GenusArrayList::from_values(Rc::new(genus::DoubleModel), &values);
        genus::sort_list_generic(&mut gd);
        prop_assert_eq!(gd.to_doubles(), expect.clone());
        let mut gb = genus::GenusArrayList::from_values(Rc::new(genus::BoxedDoubleModel), &values);
        genus::sort_arraylike_generic(&mut gb, &genus::ArrayListAsArrayLike, &genus::BoxedDoubleModel);
        prop_assert_eq!(gb.to_doubles(), expect.clone());

        // Specialized strategy.
        let mut s = values.clone();
        specialized::sort_slice(&mut s);
        prop_assert_eq!(s, expect);
    }

    #[test]
    fn genus_array_storage_roundtrip(values in prop::collection::vec(-1e9f64..1e9, 1..64)) {
        use genus_translate::genus::{DoubleModel, GValue, ObjectModel};
        let m = DoubleModel;
        let mut a = m.new_array(values.len());
        for (i, v) in values.iter().enumerate() {
            m.array_set(&mut a, i, GValue::D(*v));
        }
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(m.array_get(&a, i).as_f64(), *v);
        }
    }
}

// ---------------------------------------------------------------------
// The interpreter against reference semantics
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn interpreted_generic_sort_matches_std(values in prop::collection::vec(-1000i32..1000, 0..25)) {
        let adds: String = values.iter().map(|v| format!("l.add({v});")).collect();
        let src = format!(
            "void sort[T](List[T] l) where Comparable[T] {{
               int n = l.size();
               for (int i = 1; i < n; i = i + 1) {{
                 T x = l.get(i);
                 int j = i;
                 while (j > 0 && l.get(j - 1).compareTo(x) > 0) {{
                   l.set(j, l.get(j - 1));
                   j = j - 1;
                 }}
                 l.set(j, x);
               }}
             }}
             void main() {{
               ArrayList[int] l = new ArrayList[int]();
               {adds}
               sort(l);
               for (int x : l) {{ print(x); print(\" \"); }}
             }}"
        );
        let r = run_with_stdlib(&src).map_err(TestCaseError::fail)?;
        let mut expect = values.clone();
        expect.sort_unstable();
        let got: Vec<i32> = r
            .output
            .split_whitespace()
            .map(|t| t.parse().expect("int output"))
            .collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn treeset_iterates_sorted_and_dedups(values in prop::collection::vec(-50i32..50, 0..25)) {
        let adds: String = values.iter().map(|v| format!("s.add({v});")).collect();
        let src = format!(
            "void main() {{
               TreeSet[int] s = new TreeSet[int]();
               {adds}
               for (int x : s) {{ print(x); print(\" \"); }}
             }}"
        );
        let r = run_with_stdlib(&src).map_err(TestCaseError::fail)?;
        let mut expect: Vec<i32> = values.clone();
        expect.sort_unstable();
        expect.dedup();
        let got: Vec<i32> = r
            .output
            .split_whitespace()
            .map(|t| t.parse().expect("int output"))
            .collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn hashmap_agrees_with_std(ops in prop::collection::vec((0u8..3, -20i32..20, -100i32..100), 0..30)) {
        use std::collections::HashMap as StdMap;
        let mut body = String::new();
        let mut reference: StdMap<i32, i32> = StdMap::new();
        for (op, k, v) in &ops {
            match op % 3 {
                0 => {
                    body.push_str(&format!("m.put({k}, {v});"));
                    reference.insert(*k, *v);
                }
                1 => {
                    body.push_str(&format!("m.removeKey({k});"));
                    reference.remove(k);
                }
                _ => {
                    body.push_str(&format!(
                        "if (m.containsKey({k})) {{ probes = probes + m.get({k}); }}"
                    ));
                }
            }
        }
        let src = format!(
            "void main() {{
               HashMap[int, int] m = new HashMap[int, int]();
               int probes = 0;
               {body}
               println(m.size());
             }}"
        );
        let r = run_with_stdlib(&src).map_err(TestCaseError::fail)?;
        prop_assert_eq!(r.output.trim(), reference.len().to_string());
    }
}

// ---------------------------------------------------------------------
// SSSP against a reference Dijkstra
// ---------------------------------------------------------------------

fn reference_dijkstra(n: usize, edges: &[(usize, usize, f64)]) -> Vec<f64> {
    let mut dist = vec![f64::INFINITY; n];
    dist[0] = 0.0;
    let mut done = vec![false; n];
    for _ in 0..n {
        let mut best = None;
        for v in 0..n {
            if !done[v] && dist[v].is_finite() && best.is_none_or(|b: usize| dist[v] < dist[b]) {
                best = Some(v);
            }
        }
        let Some(v) = best else { break };
        done[v] = true;
        for (a, b, w) in edges {
            if *a == v && dist[v] + w < dist[*b] {
                dist[*b] = dist[v] + w;
            }
        }
    }
    dist
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sssp_matches_reference(
        n in 2usize..7,
        raw_edges in prop::collection::vec((0usize..6, 0usize..6, 1u32..100), 1..12),
    ) {
        // Perturb weights so accumulated path weights are distinct (the
        // paper's TreeMap frontier keys collide on equal weights; its own
        // caption concedes a priority queue would be more robust).
        let edges: Vec<(usize, usize, f64)> = raw_edges
            .iter()
            .enumerate()
            .map(|(i, (a, b, w))| (a % n, b % n, f64::from(*w) + (i as f64) * 1e-4))
            .collect();
        let expect = reference_dijkstra(n, &edges);

        let mut body = String::new();
        body.push_str("Graph g = new Graph();\n");
        for i in 0..n {
            body.push_str(&format!("Vertex v{i} = g.addVertex();\n"));
        }
        for (a, b, w) in &edges {
            body.push_str(&format!("g.addEdge(v{a}, v{b}, {w});\n"));
        }
        body.push_str(
            "HashMap[Vertex, double] dist = SSSP[Vertex, Edge, double with TropicalRing](v0);\n",
        );
        for i in 0..n {
            body.push_str(&format!(
                "if (dist.containsKey(v{i})) {{ println(dist.get(v{i})); }} else {{ println(\"inf\"); }}\n"
            ));
        }
        let src = format!("void main() {{\n{body}\n}}");
        let r = run_with_stdlib(&src).map_err(TestCaseError::fail)?;
        let lines: Vec<&str> = r.output.trim().lines().collect();
        prop_assert_eq!(lines.len(), n);
        for (i, line) in lines.iter().enumerate() {
            if *line == "inf" {
                prop_assert!(expect[i].is_infinite(), "vertex {i}: expected {}", expect[i]);
            } else {
                let got: f64 = line.parse().expect("distance");
                prop_assert!(
                    (got - expect[i]).abs() < 1e-6,
                    "vertex {i}: got {got}, expected {}",
                    expect[i]
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Determinism: compiling and running twice gives identical results
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn pipeline_is_deterministic(values in prop::collection::vec(0i32..100, 1..10)) {
        let adds: String = values.iter().map(|v| format!("s.add({v});")).collect();
        let src = format!(
            "void main() {{
               TreeSet[int] s = new TreeSet[int]();
               {adds}
               for (int x : s) {{ print(x); print(\",\"); }}
             }}"
        );
        let a = run_with_stdlib(&src).map_err(TestCaseError::fail)?;
        let b = run_with_stdlib(&src).map_err(TestCaseError::fail)?;
        prop_assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------
// TreeMap differential-tested against std's BTreeMap
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn treemap_agrees_with_btreemap(
        ops in prop::collection::vec((0u8..4, -15i32..15, 0i32..100), 1..35),
    ) {
        use std::collections::BTreeMap;
        let mut body = String::new();
        let mut reference: BTreeMap<i32, i32> = BTreeMap::new();
        let mut expected_probes: Vec<String> = Vec::new();
        for (op, k, v) in &ops {
            match op % 4 {
                0 => {
                    body.push_str(&format!("m.put({k}, {v});\n"));
                    reference.insert(*k, *v);
                }
                1 => {
                    body.push_str(&format!("m.removeKey({k});\n"));
                    reference.remove(k);
                }
                2 => {
                    body.push_str(&format!(
                        "if (m.containsKey({k})) {{ println(m.get({k})); }} else {{ println(\"none\"); }}\n"
                    ));
                    expected_probes.push(match reference.get(k) {
                        Some(v) => v.to_string(),
                        None => "none".to_string(),
                    });
                }
                _ => {
                    body.push_str(
                        "if (m.size() > 0) { println(m.firstKey()); } else { println(\"empty\"); }\n",
                    );
                    expected_probes.push(match reference.keys().next() {
                        Some(k) => k.to_string(),
                        None => "empty".to_string(),
                    });
                }
            }
        }
        // Final in-order drain.
        body.push_str(
            "while (m.size() > 0) {
               MapEntry[int, int] e = m.pollFirstEntry();
               println(e.getKey() + \"=\" + e.getValue());
             }\n",
        );
        for (k, v) in &reference {
            expected_probes.push(format!("{k}={v}"));
        }
        let src = format!(
            "void main() {{
               TreeMap[int, int] m = new TreeMap[int, int]();
               {body}
             }}"
        );
        let r = run_with_stdlib(&src).map_err(TestCaseError::fail)?;
        let got: Vec<&str> = r.output.trim().lines().collect();
        let want: Vec<&str> = expected_probes.iter().map(String::as_str).collect();
        prop_assert_eq!(got, want);
    }
}

// ---------------------------------------------------------------------
// SCC differential-tested against a reference Tarjan implementation
// ---------------------------------------------------------------------

fn reference_scc_count(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    // Iterative Tarjan; returns sorted component sizes.
    let mut adj = vec![Vec::new(); n];
    for (a, b) in edges {
        adj[*a].push(*b);
    }
    let (mut index, mut stack, mut on_stack) = (0usize, Vec::new(), vec![false; n]);
    let (mut idx, mut low) = (vec![usize::MAX; n], vec![0usize; n]);
    let mut comps: Vec<usize> = Vec::new();
    for start in 0..n {
        if idx[start] != usize::MAX {
            continue;
        }
        // Explicit DFS stack: (vertex, child cursor).
        let mut call: Vec<(usize, usize)> = vec![(start, 0)];
        idx[start] = index;
        low[start] = index;
        index += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(&mut (v, ref mut cursor)) = call.last_mut() {
            if *cursor < adj[v].len() {
                let w = adj[v][*cursor];
                *cursor += 1;
                if idx[w] == usize::MAX {
                    idx[w] = index;
                    low[w] = index;
                    index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(idx[w]);
                }
            } else {
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == idx[v] {
                    let mut size = 0;
                    loop {
                        let w = stack.pop().expect("tarjan stack");
                        on_stack[w] = false;
                        size += 1;
                        if w == v {
                            break;
                        }
                    }
                    comps.push(size);
                }
            }
        }
    }
    comps.sort_unstable();
    comps
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn scc_matches_tarjan(
        n in 1usize..7,
        raw_edges in prop::collection::vec((0usize..6, 0usize..6), 0..14),
    ) {
        let edges: Vec<(usize, usize)> =
            raw_edges.iter().map(|(a, b)| (a % n, b % n)).collect();
        let mut expect = reference_scc_count(n, &edges);

        let mut body = String::new();
        body.push_str("Graph g = new Graph();\n");
        for i in 0..n {
            body.push_str(&format!("Vertex v{i} = g.addVertex();\n"));
        }
        for (a, b) in &edges {
            body.push_str(&format!("g.addEdge(v{a}, v{b}, 1.0);\n"));
        }
        body.push_str(
            "ArrayList[ArrayList[Vertex]] comps = SCC[Vertex, Edge](g.vertices);
             for (ArrayList[Vertex] c : comps) { println(c.size()); }\n",
        );
        let src = format!("void main() {{\n{body}\n}}");
        let r = run_with_stdlib(&src).map_err(TestCaseError::fail)?;
        let mut got: Vec<usize> = r
            .output
            .split_whitespace()
            .map(|t| t.parse().expect("component size"))
            .collect();
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }
}

// ---------------------------------------------------------------------
// The bytecode optimizer is semantically invisible: opt levels 0 and 2
// produce identical outputs and identical structured diagnostics
// ---------------------------------------------------------------------

/// A generic insertion sort driven through a user model (so level 2
/// exercises specialization and `CallModel` devirtualization), with an
/// optional injected out-of-bounds trap after partial output.
fn optimizer_probe_src(values: &[i32], trap: bool) -> String {
    let sets: String = values
        .iter()
        .enumerate()
        .map(|(i, v)| format!("xs[{i}] = {v}; "))
        .collect();
    let tail = if trap {
        "int boom = xs[xs.length + 1]; print(boom);"
    } else {
        ""
    };
    format!(
        "constraint Ord[T] {{ boolean T.before(T other); }}
         model IntOrd for Ord[int] {{
           boolean before(int other) {{ return this < other; }}
         }}
         void sort[T](T[] xs) where Ord[T] {{
           for (int i = 1; i < xs.length; i = i + 1) {{
             T key = xs[i];
             int j = i - 1;
             while (j >= 0 && key.before(xs[j])) {{
               xs[j + 1] = xs[j];
               j = j - 1;
             }}
             xs[j + 1] = key;
           }}
         }}
         void main() {{
           int[] xs = new int[{n}];
           {sets}
           sort[int with IntOrd](xs);
           for (int x : xs) {{ print(x); print(\" \"); }}
           {tail}
         }}",
        n = values.len(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn opt_levels_agree(values in prop::collection::vec(-1000i32..1000, 1..20), trap in any::<bool>()) {
        let src = optimizer_probe_src(&values, trap);
        let run_at = |level: u8| {
            genus::Compiler::new()
                .engine(genus::Engine::Vm)
                .opt_level(level)
                .source("probe.genus", src.clone())
                .execute()
                .map_err(TestCaseError::fail)
        };
        let o0 = run_at(0)?;
        let o2 = run_at(2)?;
        // Byte-identical output, identical outcome — including the
        // structured identity (stable code + span) of any trap.
        prop_assert_eq!(&o0.output, &o2.output);
        match (&o0.outcome, &o2.outcome) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(a), Err(b)) => {
                prop_assert_eq!(a.code(), b.code());
                prop_assert_eq!(a.span, b.span);
            }
            (a, b) => prop_assert!(false, "outcome kind diverged: {:?} vs {:?}", a, b),
        }
        prop_assert_eq!(o0.outcome.is_err(), trap);
        if !trap {
            let mut expect = values.clone();
            expect.sort_unstable();
            let got: Vec<i32> = o2
                .output
                .split_whitespace()
                .map(|t| t.parse().expect("int output"))
                .collect();
            prop_assert_eq!(got, expect);
        }
        // The probe is generic + model-driven, so level 2 must actually
        // have specialized something (the test would otherwise pass
        // vacuously with the optimizer disabled).
        let stats = o2.opt_stats.expect("VM runs carry opt stats");
        prop_assert!(stats.funcs_specialized >= 1, "specializer never fired: {:?}", stats);
        prop_assert_eq!(o0.opt_stats.expect("stats at level 0").funcs_specialized, 0);
    }
}

// ---------------------------------------------------------------------
// Tiered execution is semantically invisible: the AST interpreter, the
// VM at O0 and O2, and the closure-compiled Tier 2 agree on everything
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Four-way parity sweep over the optimizer probe (generic sort via
    /// a user model, optional injected trap after partial output): every
    /// tier must produce byte-identical output and the same outcome —
    /// with traps compared structurally on (stable code, span). The VM
    /// and Tier 2 legs share the O2 bytecode, so their fuel counters
    /// must agree **exactly**, and the tier must actually have compiled
    /// functions (anti-vacuity: `funcs_tiered >= 1`).
    #[test]
    fn tiers_agree(values in prop::collection::vec(-1000i32..1000, 1..20), trap in any::<bool>()) {
        let src = optimizer_probe_src(&values, trap);
        let run_on = |engine: genus::Engine, level: u8| {
            genus::Compiler::new()
                .engine(engine)
                .opt_level(level)
                .source("probe.genus", src.clone())
                .execute()
                .map_err(TestCaseError::fail)
        };
        let ast = run_on(genus::Engine::Ast, 0)?;
        let vm0 = run_on(genus::Engine::Vm, 0)?;
        let vm2 = run_on(genus::Engine::Vm, 2)?;
        let jit = run_on(genus::Engine::Jit, 2)?;
        let legs = [("vm-o0", &vm0), ("vm-o2", &vm2), ("tier2", &jit)];
        for (name, leg) in legs {
            prop_assert_eq!(&ast.output, &leg.output, "output diverged on {}", name);
            match (&ast.outcome, &leg.outcome) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "value diverged on {}", name),
                (Err(a), Err(b)) => {
                    prop_assert_eq!(a.code(), b.code(), "code diverged on {}", name);
                    prop_assert_eq!(a.span, b.span, "span diverged on {}", name);
                }
                (a, b) => prop_assert!(false, "outcome kind diverged on {}: {:?} vs {:?}", name, a, b),
            }
        }
        prop_assert_eq!(ast.outcome.is_err(), trap);
        // Same bytecode, same metering: exact fuel agreement VM-O2 vs Tier 2.
        prop_assert_eq!(
            vm2.resource_stats.fuel_used,
            jit.resource_stats.fuel_used,
            "fuel accounting diverged between the VM and Tier 2"
        );
        // Anti-vacuity: the tier really compiled this program.
        let tier_stats = jit.tier_stats.expect("jit runs carry tier stats");
        prop_assert!(tier_stats.funcs_tiered >= 1, "tier never compiled: {:?}", tier_stats);
        prop_assert!(tier_stats.blocks >= tier_stats.funcs_tiered);
        for leg in [&ast, &vm0, &vm2] {
            prop_assert!(leg.tier_stats.is_none(), "non-jit runs must not carry tier stats");
        }
    }
}

// ---------------------------------------------------------------------
// Heap byte accounting is an engine invariant: exact `mem_used` bytes
// and R0010 identity agree across the AST interpreter, the VM at O0 and
// O2, and Tier 2, whatever the allocation pattern or byte cap
// ---------------------------------------------------------------------

/// An allocation-churn probe: every iteration allocates a fresh
/// element-specialized array and a fresh object, keeps only an int
/// checksum live, and drops the rest — so cumulative allocation scales
/// with `iters * elems` while the live set stays constant.
fn heap_probe_src(iters: usize, elems: usize) -> String {
    format!(
        "class Box {{
           int v;
           Box(int v) {{ this.v = v; }}
         }}
         int main() {{
           int sum = 0;
           for (int i = 0; i < {iters}; i = i + 1) {{
             int[] a = new int[{elems}];
             a[0] = i;
             Box b = new Box(i);
             sum = sum + a[0] - b.v + 1;
           }}
           return sum;
         }}"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Byte accounting is charged at source allocation sites, so it is
    /// independent of GC timing and engine representation: all four legs
    /// must report the **same exact `mem_used` byte count**, and when a
    /// byte cap makes the program trap, the same `(R0010, span)` — the
    /// serve-governance guarantee, property-tested. Collections counts
    /// are deliberately NOT compared across engines (safe-point cadence
    /// is an engine choice); instead the AST leg anti-vacuously proves
    /// the collector ran whenever churn was far past the 64 KiB
    /// threshold.
    #[test]
    fn heap_accounting_agrees(
        iters in 50usize..400,
        elems in 1usize..64,
        cap in prop::option::of(5_000u64..50_000),
    ) {
        let src = heap_probe_src(iters, elems);
        let run_on = |engine: genus::Engine, level: u8| {
            let mut c = genus::Compiler::new()
                .engine(engine)
                .opt_level(level)
                .source("heap_probe.genus", src.clone());
            if let Some(bytes) = cap {
                c = c.memory_limit(bytes);
            }
            c.execute().map_err(TestCaseError::fail)
        };
        let ast = run_on(genus::Engine::Ast, 0)?;
        let vm0 = run_on(genus::Engine::Vm, 0)?;
        let vm2 = run_on(genus::Engine::Vm, 2)?;
        let jit = run_on(genus::Engine::Jit, 2)?;
        let legs = [("vm-o0", &vm0), ("vm-o2", &vm2), ("tier2", &jit)];
        for (name, leg) in legs {
            // Exact byte parity, successful run or trap alike: a trap
            // happens at the same charge on every engine, so even the
            // over-the-cap total matches to the byte.
            prop_assert_eq!(
                ast.resource_stats.mem_used,
                leg.resource_stats.mem_used,
                "allocated-byte accounting diverged on {}", name
            );
            match (&ast.outcome, &leg.outcome) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "value diverged on {}", name),
                (Err(a), Err(b)) => {
                    prop_assert_eq!(a.code(), b.code(), "code diverged on {}", name);
                    prop_assert_eq!(a.span, b.span, "span diverged on {}", name);
                }
                (a, b) => prop_assert!(false, "outcome kind diverged on {}: {:?} vs {:?}", name, a, b),
            }
            prop_assert!(
                leg.resource_stats.peak_bytes >= leg.resource_stats.live_bytes,
                "peak below live on {}", name
            );
        }
        if let (Err(e), Some(bytes)) = (&ast.outcome, cap) {
            prop_assert_eq!(e.code(), "R0010");
            prop_assert!(
                ast.resource_stats.mem_used > bytes,
                "R0010 fired under the cap: {} <= {}", ast.resource_stats.mem_used, bytes
            );
        }
        // Anti-vacuity, GC-timing-agnostic: churn far past the initial
        // 64 KiB threshold with a tiny live set must have collected at
        // least once on the per-step-polling AST engine.
        if cap.is_none() && ast.resource_stats.mem_used > 256 * 1024 {
            prop_assert!(
                ast.resource_stats.collections > 0,
                "{} bytes churned without a collection: {:?}",
                ast.resource_stats.mem_used, ast.resource_stats
            );
        }
    }
}

// ---------------------------------------------------------------------
// Generator-routed parity: the fuzzer's well-typed-by-construction
// program generator drives the same four-way sweeps as the hand-written
// probes, over a much wider grammar (classes, constraints, models with
// use-site `with`, existential pack/open, arrays, loops)
// ---------------------------------------------------------------------

/// Source strategy for the generator sweeps: seeds drawn with a
/// weighted `prop_oneof!` (leaning on the dense low corner), perturbed
/// by a dependent offset via `prop_flat_map`, mapped through
/// [`genus_fuzz::generate`], and `prop_filter`ed down to programs that
/// actually drive a loop — so neither sweep can pass vacuously on a
/// straight-line program.
fn generated_program() -> SBox<String> {
    prop_oneof![
        3 => 0u64..1 << 16,
        1 => (1u64 << 16)..1 << 48,
    ]
    .prop_flat_map(|base| (0u64..8u64).prop_map(move |off| base ^ off))
    .prop_map(genus_fuzz::generate)
    .prop_filter("program drives a loop", |src| src.contains("for ("))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Four-way engine parity over generator output: byte-identical
    /// output, identical outcomes (structural on traps), and exact fuel
    /// agreement between the VM and Tier 2 (same bytecode).
    #[test]
    fn tiers_agree_on_generated_programs(src in generated_program()) {
        let run_on = |engine: genus::Engine, level: u8| {
            genus::Compiler::new()
                .with_stdlib()
                .engine(engine)
                .opt_level(level)
                .fuel(10_000_000)
                .source("gen.genus", src.clone())
                .execute()
                .map_err(TestCaseError::fail)
        };
        let ast = run_on(genus::Engine::Ast, 0)?;
        let vm0 = run_on(genus::Engine::Vm, 0)?;
        let vm2 = run_on(genus::Engine::Vm, 2)?;
        let jit = run_on(genus::Engine::Jit, 2)?;
        for (name, leg) in [("vm-o0", &vm0), ("vm-o2", &vm2), ("tier2", &jit)] {
            prop_assert_eq!(&ast.output, &leg.output, "output diverged on {}", name);
            match (&ast.outcome, &leg.outcome) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "value diverged on {}", name),
                (Err(a), Err(b)) => {
                    prop_assert_eq!(a.code(), b.code(), "code diverged on {}", name);
                    prop_assert_eq!(a.span, b.span, "span diverged on {}", name);
                }
                (a, b) => prop_assert!(false, "outcome kind diverged on {}: {:?} vs {:?}", name, a, b),
            }
        }
        prop_assert_eq!(
            vm2.resource_stats.fuel_used,
            jit.resource_stats.fuel_used,
            "fuel accounting diverged between the VM and Tier 2"
        );
    }

    /// Exact allocated-byte parity over generator output: byte charges
    /// happen at source allocation sites on every engine, so `mem_used`
    /// must agree to the byte whatever program the generator emits.
    #[test]
    fn heap_accounting_agrees_on_generated_programs(src in generated_program()) {
        let run_on = |engine: genus::Engine, level: u8| {
            genus::Compiler::new()
                .with_stdlib()
                .engine(engine)
                .opt_level(level)
                .fuel(10_000_000)
                .source("gen.genus", src.clone())
                .execute()
                .map_err(TestCaseError::fail)
        };
        let ast = run_on(genus::Engine::Ast, 0)?;
        let vm0 = run_on(genus::Engine::Vm, 0)?;
        let vm2 = run_on(genus::Engine::Vm, 2)?;
        let jit = run_on(genus::Engine::Jit, 2)?;
        // Generated programs allocate (lists, arrays, objects): a zero
        // byte count would make the parity below vacuous.
        prop_assert!(ast.resource_stats.mem_used > 0, "no allocation charged");
        for (name, leg) in [("vm-o0", &vm0), ("vm-o2", &vm2), ("tier2", &jit)] {
            // Traps (the generator's grammar includes fallible division)
            // must also agree structurally, at the same byte count.
            match (&ast.outcome, &leg.outcome) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "value diverged on {}", name),
                (Err(a), Err(b)) => {
                    prop_assert_eq!(a.code(), b.code(), "code diverged on {}", name);
                    prop_assert_eq!(a.span, b.span, "span diverged on {}", name);
                }
                (a, b) => prop_assert!(false, "outcome kind diverged on {}: {:?} vs {:?}", name, a, b),
            }
            prop_assert_eq!(
                ast.resource_stats.mem_used,
                leg.resource_stats.mem_used,
                "allocated-byte accounting diverged on {}", name
            );
            prop_assert!(
                leg.resource_stats.peak_bytes >= leg.resource_stats.live_bytes,
                "peak below live on {}", name
            );
        }
    }
}

// ---------------------------------------------------------------------
// Caching is semantically invisible: cached and uncached pipelines agree
// ---------------------------------------------------------------------

/// Restores the thread-local cache toggle on drop so a failing case
/// cannot leak a disabled-cache state into later cases or tests.
struct CacheGuard(bool);

impl Drop for CacheGuard {
    fn drop(&mut self) {
        genus::set_caches_enabled(self.0);
    }
}

fn with_caches<R>(on: bool, f: impl FnOnce() -> R) -> R {
    let _guard = CacheGuard(genus::caches_enabled());
    genus::set_caches_enabled(on);
    f()
}

/// Compiles on the current thread (the toggle is thread-local, and
/// `Compiler::run` would hop to a fresh interpreter thread with default
/// cache state) and normalizes to `Result<(), String>`.
fn check_outcome(src: &str) -> Result<(), String> {
    genus::Compiler::new()
        .with_stdlib()
        .source("prop.genus", src)
        .compile()
        .map(|_| ())
}

/// Compiles *and interprets* on the current thread so the interpreter's
/// inline caches and dispatch memos obey the toggle too.
fn run_outcome(src: &str) -> Result<(String, String), String> {
    let prog = genus::Compiler::new()
        .with_stdlib()
        .source("prop.genus", src)
        .compile()?;
    let mut interp = genus::Interp::new(&prog);
    let v = interp.run_main().map_err(|e| e.to_string())?;
    Ok((interp.render(&v), interp.take_output()))
}

/// A nested-clone program that forces recursive default-model resolution
/// of `Cloneable[ArrayList[...[Pt]...]]`. With `has_clone` false the
/// chain bottoms out unresolved and checking must fail — identically
/// with and without the memo tables.
fn nested_clone_src(depth: usize, has_clone: bool) -> String {
    let mut ty = "Pt".to_string();
    for _ in 0..depth {
        ty = format!("ArrayList[{ty}]");
    }
    let clone_method = if has_clone {
        "Pt clone() { return new Pt(x); }"
    } else {
        ""
    };
    format!(
        "class Pt {{
           int x;
           Pt(int x) {{ this.x = x; }}
           {clone_method}
         }}
         model ALDC[E] for Cloneable[ArrayList[E]] where Cloneable[E] {{
           ArrayList[E] clone() {{
             ArrayList[E] l = new ArrayList[E]();
             for (E e : this) {{ l.add(e.clone()); }}
             return l;
           }}
         }}
         use ALDC;
         void cloneIt[T](T t) where Cloneable[T] {{ }}
         void main() {{
           {ty} x = null;
           cloneIt(x);
         }}"
    )
}

/// Deep-clones a two-level list through a `use`-resolved model, then
/// mutates the original: exercises virtual dispatch, model (multimethod)
/// dispatch, and recursive resolution in one run.
fn deep_clone_run_src(values: &[i32]) -> String {
    let adds: String = values
        .iter()
        .map(|v| format!("inner.add(new Pt({v})); "))
        .collect();
    format!(
        "class Pt {{
           int x;
           Pt(int x) {{ this.x = x; }}
           Pt clone() {{ return new Pt(x); }}
           int get() {{ return x; }}
         }}
         model ALDC[E] for Cloneable[ArrayList[E]] where Cloneable[E] {{
           ArrayList[E] clone() {{
             ArrayList[E] l = new ArrayList[E]();
             for (E e : this) {{ l.add(e.clone()); }}
             return l;
           }}
         }}
         use ALDC;
         T copy[T](T t) where Cloneable[T] {{ return t.clone(); }}
         void main() {{
           ArrayList[Pt] inner = new ArrayList[Pt]();
           {adds}
           ArrayList[ArrayList[Pt]] outer = new ArrayList[ArrayList[Pt]]();
           outer.add(inner);
           ArrayList[ArrayList[Pt]] snap = copy(outer);
           inner.add(new Pt(999));
           for (ArrayList[Pt] l : snap) {{ for (Pt p : l) {{ print(p.get()); print(\" \"); }} }}
           println(\"|\");
           for (ArrayList[Pt] l : outer) {{ for (Pt p : l) {{ print(p.get()); print(\" \"); }} }}
         }}"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn resolution_outcome_is_cache_independent(depth in 1usize..6, has_clone in any::<bool>()) {
        let src = nested_clone_src(depth, has_clone);
        let uncached = with_caches(false, || check_outcome(&src));
        let cached = with_caches(true, || check_outcome(&src));
        prop_assert_eq!(&uncached, &cached);
        prop_assert_eq!(uncached.is_ok(), has_clone);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn interpretation_is_cache_independent(values in prop::collection::vec(-100i32..100, 0..12)) {
        let src = deep_clone_run_src(&values);
        let uncached = with_caches(false, || run_outcome(&src));
        let cached = with_caches(true, || run_outcome(&src));
        prop_assert_eq!(&uncached, &cached);
        // And both agree with the reference deep-clone semantics: the
        // snapshot does not see the post-clone mutation.
        let (_, output) = uncached.map_err(TestCaseError::fail)?;
        let expect_snap: String = values.iter().map(|v| format!("{v} ")).collect();
        let expect_outer = format!("{expect_snap}999 ");
        let parts: Vec<&str> = output.splitn(2, "|\n").collect();
        prop_assert_eq!(parts[0].trim_end_matches(' '), expect_snap.trim_end_matches(' '));
        prop_assert_eq!(parts[1].trim_end_matches(' '), expect_outer.trim_end_matches(' '));
    }
}

// ---------------------------------------------------------------------
// Incremental sessions agree with from-scratch checks under random edits
// ---------------------------------------------------------------------

/// The shipped samples, as in-repo fixtures for random mutation.
const SAMPLES: [(&str, &str); 7] = [
    ("hello.genus", include_str!("../samples/hello.genus")),
    (
        "word_count.genus",
        include_str!("../samples/word_count.genus"),
    ),
    ("gc_churn.genus", include_str!("../samples/gc_churn.genus")),
    (
        "scheduler.genus",
        include_str!("../samples/scheduler.genus"),
    ),
    (
        "existential_registry.genus",
        include_str!("../samples/existential_registry.genus"),
    ),
    (
        "ci_word_count.genus",
        include_str!("../samples/ci_word_count.genus"),
    ),
    (
        "comparator_sort.genus",
        include_str!("../samples/comparator_sort.genus"),
    ),
];

/// Applies one random edit to `src`: replace a digit, insert a comment,
/// delete a byte, or inject a junk byte. Edits may (and should,
/// sometimes) break parsing or checking — the property is agreement, not
/// validity.
fn random_edit(src: &str, kind: u8, pos: usize, lit: u8) -> String {
    let bytes = src.as_bytes();
    match kind {
        // One-token edit: overwrite a digit with another digit.
        0 => {
            let digits: Vec<usize> = bytes
                .iter()
                .enumerate()
                .filter(|(_, b)| b.is_ascii_digit())
                .map(|(i, _)| i)
                .collect();
            if digits.is_empty() {
                return format!("{src}// no digits\n");
            }
            let at = digits[pos % digits.len()];
            let mut out = src.to_string();
            out.replace_range(at..=at, &format!("{}", lit % 10));
            out
        }
        // Whitespace-equivalent edit: a fresh comment line at the top.
        1 => format!("// edit {lit}\n{src}"),
        // Byte deletion at a line start (often a parse error).
        2 => {
            let starts: Vec<usize> = src
                .char_indices()
                .filter(|(_, c)| c.is_ascii_alphabetic())
                .map(|(i, _)| i)
                .collect();
            if starts.is_empty() {
                return src.to_string();
            }
            let at = starts[pos % starts.len()];
            let mut out = src.to_string();
            out.remove(at);
            out
        }
        // Junk injection (usually a lex/parse error).
        _ => {
            let at = pos % (src.len() + 1);
            let mut out = src.to_string();
            out.insert(at, '@');
            out
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A warm session re-check after a random edit must agree with a
    /// from-scratch check of the edited text — byte-identical
    /// diagnostics (codes, spans, messages, notes) — and, when the edit
    /// still compiles, the session's run must agree with a from-scratch
    /// differential run byte for byte.
    #[test]
    fn incremental_agrees(
        sample in 0usize..SAMPLES.len(),
        kind in 0u8..4,
        pos in 0usize..10_000,
        lit in 0u8..100,
    ) {
        use genus_repro::{CompileSession, Compiler, Engine, Limits};
        let (name, base) = SAMPLES[sample];
        let edited = random_edit(base, kind, pos, lit);

        // Warm path: check the pristine sample, then re-check the edit.
        let mut session = CompileSession::with_stdlib();
        session.update_source(name, base);
        let before_ok = !session.check().has_errors();
        prop_assert!(before_ok, "shipped sample {} must check", name);
        let stats_before = session.stats();
        session.update_source(name, &edited);
        let warm = session.check();
        let stats_after = session.stats();

        // From scratch over the same edited text.
        let scratch = Compiler::new()
            .with_stdlib()
            .source(name, edited.as_str())
            .check_report();
        prop_assert_eq!(&warm.diags, &scratch.diags);

        // Anti-vacuity: the re-check must have actually reused verdicts
        // (at minimum the prelude and stdlib units), except when a parse
        // error short-circuits checking entirely, or when the edit
        // changed a top-level header (e.g. mangled a model name) — then
        // the global environment is rebuilt and zero reuse is the
        // *correct* incremental answer, visible as a prefix rebuild.
        let parsed_ok = !warm.diags.iter().any(|d| {
            genus_common::codes::lookup(d.code)
                .is_some_and(|c| c.phase == "lex" || c.phase == "parse")
        });
        if parsed_ok {
            prop_assert!(
                stats_after.units_not_rechecked() > stats_before.units_not_rechecked()
                    || stats_after.prefix_rebuilt > stats_before.prefix_rebuilt,
                "no verdict reused across the edit: {:?} -> {:?}",
                stats_before,
                stats_after
            );
        }

        // Clean edits also run identically, warm vs scratch.
        if !warm.has_errors() {
            let limits = Limits { fuel: Some(2_000_000), ..Limits::default() };
            let warm_run = session.run(Engine::Vm, limits);
            let scratch_run = Compiler::new()
                .with_stdlib()
                .engine(Engine::Vm)
                .limits(limits)
                .source(name, edited.as_str())
                .run();
            prop_assert_eq!(warm_run, scratch_run);
        }
    }
}
