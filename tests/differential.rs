//! Differential harness over the shipped sample programs: every file in
//! `samples/` is compiled once through the public `Compiler` API and executed
//! on ALL THREE engines (AST interpreter, bytecode VM, closure-compiled
//! Tier 2), asserting identical rendered values, captured output, and
//! dispatch behaviour. The VM and Tier 2 run at **every** optimization level
//! (0, 1, 2), so the heterogeneous-translation specializer, the cleanup
//! passes, and the tier compiler are held to the same parity bar as the
//! baseline compiler. The VM and Tier 2 additionally run the *same*
//! bytecode, so their fuel accounting is asserted exactly equal.

use genus_repro::{Compiler, Engine, RuntimeError};

/// Every VM optimization level the harness sweeps.
const OPT_LEVELS: [u8; 3] = [0, 1, 2];

fn sample(name: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/samples");
    std::fs::read_to_string(format!("{path}/{name}"))
        .unwrap_or_else(|e| panic!("cannot read sample `{name}`: {e}"))
}

/// Run one sample on a specific engine and return (outcome, output).
fn run_on(name: &str, engine: Engine, opt_level: u8) -> (Result<String, RuntimeError>, String) {
    let ex = Compiler::new()
        .with_stdlib()
        .engine(engine)
        .opt_level(opt_level)
        .source(name.to_string(), sample(name))
        .execute()
        .unwrap_or_else(|e| panic!("sample `{name}` failed to compile: {e}"));
    (ex.outcome, ex.output)
}

/// Every sample must succeed and agree byte-for-byte across engines, with
/// the VM checked at every opt level.
fn check_sample(name: &str) {
    let (ast_outcome, ast_output) = run_on(name, Engine::Ast, 0);
    assert!(
        ast_outcome.is_ok(),
        "`{name}` trapped on AST: {ast_outcome:?}"
    );
    for level in OPT_LEVELS {
        let (vm_outcome, vm_output) = run_on(name, Engine::Vm, level);
        assert_eq!(
            ast_outcome, vm_outcome,
            "`{name}` outcome diverged at opt-level {level}"
        );
        assert_eq!(
            ast_output, vm_output,
            "`{name}` output diverged at opt-level {level}"
        );
        let (jit_outcome, jit_output) = run_on(name, Engine::Jit, level);
        assert_eq!(
            vm_outcome, jit_outcome,
            "`{name}` tier-2 outcome diverged at opt-level {level}"
        );
        assert_eq!(
            vm_output, jit_output,
            "`{name}` tier-2 output diverged at opt-level {level}"
        );
        // And through the one-shot differential runner, which also compares
        // engine results internally and reports any divergence in its error.
        let r = Compiler::new()
            .with_stdlib()
            .opt_level(level)
            .source(name.to_string(), sample(name))
            .run_differential()
            .unwrap_or_else(|e| {
                panic!("differential run of `{name}` at opt-level {level} failed: {e}")
            });
        assert_eq!(
            r.output, ast_output,
            "`{name}` differential output mismatch at opt-level {level}"
        );
    }
}

#[test]
fn sample_hello() {
    let (outcome, output) = run_on("hello.genus", Engine::Vm, 2);
    assert_eq!(outcome.as_deref(), Ok("void"));
    assert_eq!(output, "hello from Genus\n");
    check_sample("hello.genus");
}

#[test]
fn sample_scheduler() {
    check_sample("scheduler.genus");
}

#[test]
fn sample_word_count() {
    check_sample("word_count.genus");
}

#[test]
fn sample_existential_registry() {
    check_sample("existential_registry.genus");
}

#[test]
fn sample_ci_word_count() {
    let (outcome, output) = run_on("ci_word_count.genus", Engine::Vm, 2);
    assert_eq!(outcome.as_deref(), Ok("void"));
    // The case-folding model collapses six spellings into three keys.
    assert_eq!(output, "exact keys: 6\nfolded keys: 3\nthe: 3\nquick: 2\n");
    check_sample("ci_word_count.genus");
}

#[test]
fn sample_comparator_sort() {
    let (outcome, output) = run_on("comparator_sort.genus", Engine::Vm, 2);
    assert_eq!(outcome.as_deref(), Ok("void"));
    assert_eq!(
        output,
        "natural: generics lightweight models site use \n\
         reverse: use site models lightweight generics \n\
         by-len:  use site models generics lightweight \n"
    );
    check_sample("comparator_sort.genus");
}

#[test]
fn sample_gc_churn() {
    let (outcome, output) = run_on("gc_churn.genus", Engine::Vm, 2);
    assert_eq!(outcome.as_deref(), Ok("1999000"));
    assert_eq!(output, "churned\n");
    check_sample("gc_churn.genus");
}

/// The heap acceptance case: the churn sample allocates megabytes while
/// keeping only a checksum live, so every engine must (a) report the
/// **same exact allocated-byte count** — byte accounting is charged at
/// source allocation sites, independent of GC timing — (b) actually
/// collect (collections > 0: the anti-vacuity guard), and (c) finish
/// with a small live set (the garbage really was reclaimed).
#[test]
fn gc_churn_collects_and_byte_accounting_agrees() {
    let mut mem_used: Vec<u64> = Vec::new();
    for (engine, level) in [
        (Engine::Ast, 0),
        (Engine::Vm, 0),
        (Engine::Vm, 2),
        (Engine::Jit, 2),
    ] {
        let ex = Compiler::new()
            .with_stdlib()
            .engine(engine)
            .opt_level(level)
            .source("gc_churn.genus".to_string(), sample("gc_churn.genus"))
            .execute()
            .expect("compiles");
        assert!(ex.outcome.is_ok(), "{engine:?}/O{level}: {:?}", ex.outcome);
        let rs = ex.resource_stats;
        assert!(rs.collections > 0, "{engine:?}/O{level} never collected");
        assert!(
            rs.mem_used > 1_000_000,
            "{engine:?}/O{level} under-accounted: {rs:?}"
        );
        assert!(
            rs.live_bytes < rs.mem_used / 10,
            "{engine:?}/O{level} live set did not shrink: {rs:?}"
        );
        assert!(
            rs.peak_bytes >= rs.live_bytes,
            "{engine:?}/O{level}: {rs:?}"
        );
        mem_used.push(rs.mem_used);
    }
    assert!(
        mem_used.windows(2).all(|w| w[0] == w[1]),
        "allocated-byte accounting diverged across engines: {mem_used:?}"
    );
}

/// R0010 identity under a byte cap: the same churn program trapped under
/// the same memory limit yields the same `(code, span)` pair and the
/// same exact byte count on the AST engine, the VM at every opt level,
/// and Tier 2 — the by-construction guarantee that byte charges happen
/// at identical source allocation sites on all engines.
#[test]
fn memory_trap_parity_across_levels() {
    let run = |engine: Engine, level: u8| {
        let ex = Compiler::new()
            .with_stdlib()
            .engine(engine)
            .opt_level(level)
            .memory_limit(100_000)
            .source("gc_churn.genus".to_string(), sample("gc_churn.genus"))
            .execute()
            .expect("compiles");
        let err = ex.outcome.expect_err("must trap on the byte cap");
        (err.code().to_string(), err.span, ex.resource_stats.mem_used)
    };
    let (ast_code, ast_span, ast_mem) = run(Engine::Ast, 0);
    assert_eq!(ast_code, "R0010");
    assert!(ast_mem > 100_000, "trap fired before the cap: {ast_mem}");
    for level in OPT_LEVELS {
        for engine in [Engine::Vm, Engine::Jit] {
            let (code, span, mem) = run(engine, level);
            assert_eq!(
                (ast_code.as_str(), ast_span, ast_mem),
                (code.as_str(), span, mem),
                "memory trap identity diverges on {engine:?} at opt-level {level}"
            );
        }
    }
}

/// Runtime traps on the existential paths must carry the same stable code
/// and span under both engines and at every opt level: opening a null
/// package is the regression case (the optimizer must not perturb
/// `Op::Open`'s error identity).
#[test]
fn open_null_trap_parity_across_levels() {
    let src = r#"[some T where Comparable[T]] T pick(boolean ok) {
           if (ok) { return 42; }
           return null;
         }
         int main() {
           [U] (U x) where Comparable[U] = pick(false);
           return x.compareTo(x);
         }"#;
    let ast = Compiler::new()
        .source("open_null.genus", src)
        .execute()
        .expect("compiles");
    let ast_err = ast.outcome.expect_err("AST should trap on null open");
    for level in OPT_LEVELS {
        for engine in [Engine::Vm, Engine::Jit] {
            let vm = Compiler::new()
                .engine(engine)
                .opt_level(level)
                .source("open_null.genus", src)
                .execute()
                .expect("compiles");
            let vm_err = vm
                .outcome
                .expect_err("every engine should trap on null open");
            assert_eq!(
                ast_err.code(),
                vm_err.code(),
                "codes diverge on {engine:?} at opt-level {level}"
            );
            assert_eq!(
                ast_err.span, vm_err.span,
                "spans diverge on {engine:?} at opt-level {level}"
            );
        }
    }
}

/// Every shipped sample must terminate within the service's default fuel
/// budget on both engines at every opt level. A sample that loops forever
/// (or regresses into pathological step counts) fails here with `R0009`
/// instead of hanging the differential harness — the same guard `genus
/// batch` applies at run time.
#[test]
fn all_samples_terminate_under_default_fuel() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/samples");
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .expect("samples/ directory exists")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.ends_with(".genus"))
        .collect();
    names.sort();
    assert!(!names.is_empty());
    for name in &names {
        for (engine, level) in [
            (Engine::Ast, 0),
            (Engine::Vm, 0),
            (Engine::Vm, 2),
            (Engine::Jit, 2),
        ] {
            let ex = Compiler::new()
                .with_stdlib()
                .engine(engine)
                .opt_level(level)
                .fuel(genus_serve::DEFAULT_FUEL)
                .source(name.clone(), sample(name))
                .execute()
                .unwrap_or_else(|e| panic!("sample `{name}` failed to compile: {e}"));
            assert!(
                ex.outcome.is_ok(),
                "`{name}` did not terminate under the default fuel budget \
                 on {engine:?} at opt-level {level}: {:?}",
                ex.outcome
            );
            assert!(
                ex.resource_stats.fuel_used < genus_serve::DEFAULT_FUEL,
                "`{name}` fuel accounting out of range"
            );
        }
    }
}

/// Fuel exhaustion must have the same error identity everywhere: the same
/// looping program trapped under the same budget yields the same
/// `(code, span)` pair on the AST engine and on the VM at O0 and O2.
/// (Fuel traps carry no source span — the budget, not a program point,
/// is at fault — so the spans compare equal as dummies by construction;
/// this test locks that in so neither engine starts attaching a span the
/// other lacks.)
#[test]
fn fuel_trap_parity_across_levels() {
    let src = "int main() { int i = 0; while (true) { i = i + 1; } return i; }";
    let run = |engine: Engine, level: u8| {
        Compiler::new()
            .engine(engine)
            .opt_level(level)
            .fuel(25_000)
            .source("spin.genus".to_string(), src.to_string())
            .execute()
            .expect("compiles")
            .outcome
            .expect_err("must trap on fuel")
    };
    let ast_err = run(Engine::Ast, 0);
    assert_eq!(ast_err.code(), "R0009");
    for level in OPT_LEVELS {
        for engine in [Engine::Vm, Engine::Jit] {
            let vm_err = run(engine, level);
            assert_eq!(
                (ast_err.code(), ast_err.span),
                (vm_err.code(), vm_err.span),
                "fuel trap identity diverges on {engine:?} at opt-level {level}"
            );
        }
    }
}

/// No sample file is left out of the harness: if someone adds a new sample,
/// this test forces them to add a differential case for it above.
#[test]
fn all_samples_are_covered() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/samples");
    let mut found: Vec<String> = std::fs::read_dir(dir)
        .expect("samples/ directory exists")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.ends_with(".genus"))
        .collect();
    found.sort();
    assert_eq!(
        found,
        [
            "ci_word_count.genus",
            "comparator_sort.genus",
            "existential_registry.genus",
            "gc_churn.genus",
            "hello.genus",
            "scheduler.genus",
            "word_count.genus"
        ],
        "new sample added: cover it in tests/differential.rs"
    );
}
