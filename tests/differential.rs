//! Differential harness over the shipped sample programs: every file in
//! `samples/` is compiled once through the public `Compiler` API and executed
//! on BOTH engines (AST interpreter and bytecode VM), asserting identical
//! rendered values, captured output, and dispatch behaviour.

use genus_repro::{Compiler, Engine, RuntimeError};

fn sample(name: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/samples");
    std::fs::read_to_string(format!("{path}/{name}"))
        .unwrap_or_else(|e| panic!("cannot read sample `{name}`: {e}"))
}

/// Run one sample on a specific engine and return (outcome, output).
fn run_on(name: &str, engine: Engine) -> (Result<String, RuntimeError>, String) {
    let ex = Compiler::new()
        .with_stdlib()
        .engine(engine)
        .source(name.to_string(), sample(name))
        .execute()
        .unwrap_or_else(|e| panic!("sample `{name}` failed to compile: {e}"));
    (ex.outcome, ex.output)
}

/// Every sample must succeed and agree byte-for-byte across engines.
fn check_sample(name: &str) {
    let (ast_outcome, ast_output) = run_on(name, Engine::Ast);
    let (vm_outcome, vm_output) = run_on(name, Engine::Vm);
    assert!(
        ast_outcome.is_ok(),
        "`{name}` trapped on AST: {ast_outcome:?}"
    );
    assert_eq!(ast_outcome, vm_outcome, "`{name}` outcome diverged");
    assert_eq!(ast_output, vm_output, "`{name}` output diverged");
    // And through the one-shot differential runner, which also compares
    // engine results internally and reports any divergence in its error.
    let r = Compiler::new()
        .with_stdlib()
        .source(name.to_string(), sample(name))
        .run_differential()
        .unwrap_or_else(|e| panic!("differential run of `{name}` failed: {e}"));
    assert_eq!(
        r.output, ast_output,
        "`{name}` differential output mismatch"
    );
}

#[test]
fn sample_hello() {
    let (outcome, output) = run_on("hello.genus", Engine::Vm);
    assert_eq!(outcome.as_deref(), Ok("void"));
    assert_eq!(output, "hello from Genus\n");
    check_sample("hello.genus");
}

#[test]
fn sample_scheduler() {
    check_sample("scheduler.genus");
}

#[test]
fn sample_word_count() {
    check_sample("word_count.genus");
}

/// No sample file is left out of the harness: if someone adds a new sample,
/// this test forces them to add a differential case for it above.
#[test]
fn all_samples_are_covered() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/samples");
    let mut found: Vec<String> = std::fs::read_dir(dir)
        .expect("samples/ directory exists")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.ends_with(".genus"))
        .collect();
    found.sort();
    assert_eq!(
        found,
        ["hello.genus", "scheduler.genus", "word_count.genus"],
        "new sample added: cover it in tests/differential.rs"
    );
}
