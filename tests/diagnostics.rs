//! Integration tests for static diagnostics: the errors the paper's type
//! system is designed to catch.
//!
//! Assertions are **code-based**: each rejected program must report the
//! expected stable diagnostic code (`E0xxx` / `R0xxx`), not a particular
//! message wording. Messages may be reworded freely; codes are the contract.

// Every program in this suite runs on BOTH engines (AST interpreter and
// bytecode VM) with a divergence check — the differential harness.
use genus_repro::{
    run_differential_simple as run_simple, run_differential_with_stdlib as run_with_stdlib,
    Compiler, Engine,
};

/// Type-checks `src` (with the stdlib iff `stdlib`), asserts it is
/// rejected, and returns the stable codes of all reported errors.
fn reject_codes(src: &str, stdlib: bool) -> Vec<&'static str> {
    let mut c = Compiler::new().source("test.genus", src);
    if stdlib {
        c = c.with_stdlib();
    }
    let report = c.check_report();
    assert!(report.has_errors(), "program should be rejected:\n{src}");
    report.error_codes()
}

/// Asserts `src` is rejected with `code` among its compile errors — and
/// that the differential runner agrees the program does not run.
fn assert_rejected(src: &str, stdlib: bool, code: &str) {
    let codes = reject_codes(src, stdlib);
    assert!(codes.contains(&code), "expected {code}, got {codes:?}");
    let r = if stdlib {
        run_with_stdlib(src)
    } else {
        run_simple(src)
    };
    assert!(
        r.is_err(),
        "differential runner accepted a rejected program"
    );
}

/// Runs `src` to a runtime trap on **both** engines, asserts they agree on
/// the structured error (stable code + span), and returns the code.
fn trap_code(src: &str, stdlib: bool) -> &'static str {
    let compiler = |engine| {
        let mut c = Compiler::new().engine(engine).source("test.genus", src);
        if stdlib {
            c = c.with_stdlib();
        }
        c
    };
    let ast = compiler(Engine::Ast).execute().expect("compiles").outcome;
    let vm = compiler(Engine::Vm).execute().expect("compiles").outcome;
    let ast = ast.expect_err("AST engine should trap");
    let vm = vm.expect_err("VM engine should trap");
    assert_eq!(ast.code(), vm.code(), "engines disagree on the trap code");
    assert_eq!(ast.span, vm.span, "engines disagree on the trap span");
    ast.code()
}

// ---------------------------------------------------------------------
// §4.4 — default model resolution rules
// ---------------------------------------------------------------------

#[test]
fn ambiguous_enabled_models_require_with() {
    // The natural model for Comparable[int] and a use-enabled model are
    // both enabled: rule 2 says the programmer must disambiguate.
    assert_rejected(
        "model RevIntCmp for Comparable[int] {
           boolean equals(int that) { return this == that; }
           int compareTo(int that) { return 0 - this.compareTo(that); }
         }
         use RevIntCmp;
         void main() {
           TreeSet[int] s = new TreeSet[int]();
         }",
        true,
        "E0401",
    );
}

#[test]
fn missing_model_is_an_error() {
    assert_rejected(
        "class NoCompare { NoCompare() { } }
         void main() {
           TreeSet[NoCompare] s = new TreeSet[NoCompare]();
         }",
        true,
        "E0402",
    );
}

#[test]
fn with_clause_must_witness_the_constraint() {
    assert_rejected(
        r#"model CIEq for Eq[String] {
             boolean equals(String str) { return equalsIgnoreCase(str); }
           }
           void main() {
             // CIEq witnesses Eq[String], not Comparable[String].
             TreeSet[String with CIEq] s = new TreeSet[String with CIEq]();
           }"#,
        true,
        "E0404",
    );
}

// ---------------------------------------------------------------------
// §4.7 / §9 — termination restriction on use declarations
// ---------------------------------------------------------------------

#[test]
fn use_dualgraph_is_rejected() {
    // The paper's canonical example: `use DualGraph;` cycles.
    assert_rejected("use DualGraph;\nvoid main() { }", true, "E0701");
}

#[test]
fn use_with_smaller_subgoals_is_accepted() {
    let r = run_with_stdlib(
        r#"class Pt {
             int x;
             Pt(int x) { this.x = x; }
             Pt clone() { return new Pt(x); }
           }
           model ALDC[E] for Cloneable[ArrayList[E]] where Cloneable[E] {
             ArrayList[E] clone() {
               ArrayList[E] l = new ArrayList[E]();
               for (E e : this) { l.add(e.clone()); }
               return l;
             }
           }
           use ALDC;
           void main() { }"#,
    );
    assert!(r.is_ok(), "{r:?}");
}

// ---------------------------------------------------------------------
// §5.1 — multimethod ambiguity (load-time unique-best check)
// ---------------------------------------------------------------------

#[test]
fn ambiguous_multimethods_rejected() {
    assert_rejected(
        "constraint Comb[T] { T T.comb(T that); }
         model BadComb for Comb[Shape] {
           Shape Shape.comb(Shape s) { return s; }
           Shape Rectangle.comb(Shape s) { return s; }
           Shape Shape.comb(Rectangle r) { return r; }
         }
         void main() { }",
        true,
        "E0602",
    );
}

#[test]
fn glb_definition_resolves_multimethod_ambiguity() {
    let r = run_with_stdlib(
        "constraint Comb[T] { T T.comb(T that); }
         model OkComb for Comb[Shape] {
           Shape Shape.comb(Shape s) { return s; }
           Shape Rectangle.comb(Shape s) { return s; }
           Shape Shape.comb(Rectangle r) { return r; }
           Shape Rectangle.comb(Rectangle r) { return r; }
         }
         void main() { }",
    );
    assert!(r.is_ok(), "{r:?}");
}

#[test]
fn model_must_cover_constraint_ops() {
    assert_rejected(
        "constraint Weird[T] { T T.definitelyNotProvided(T that); }
         model Nope for Weird[Shape] { }
         void main() { }",
        true,
        "E0601",
    );
}

// ---------------------------------------------------------------------
// Structural errors
// ---------------------------------------------------------------------

#[test]
fn prerequisite_cycles_rejected() {
    assert_rejected(
        "constraint A[T] extends B[T] { }
         constraint B[T] extends A[T] { }
         void main() { }",
        false,
        "E0215",
    );
}

#[test]
fn duplicate_declarations_rejected() {
    assert_rejected(
        "class C { C() { } }\nclass C { C() { } }\nvoid main() { }",
        false,
        "E0201",
    );
}

#[test]
fn interface_instantiation_rejected() {
    assert_rejected(
        "void main() { Map[int, int] m = new Map[int, int](); }",
        true,
        "E0510",
    );
}

#[test]
fn wrong_type_arg_arity() {
    assert_rejected(
        "void main() { ArrayList[int, int] l = null; }",
        true,
        "E0208",
    );
}

#[test]
fn constraint_arity_checked() {
    assert_rejected(
        "void f[T]() where Eq[T, T] { }\nvoid main() { }",
        false,
        "E0209",
    );
}

#[test]
fn receiver_must_be_constraint_param() {
    assert_rejected(
        "constraint Bad[V, E] { V X.source(); }
         void main() { }",
        false,
        "E0214",
    );
}

#[test]
fn overloads_must_differ_in_arity() {
    assert_rejected(
        "class C {
           C() { }
           void m(int x) { }
           void m(String s) { }
         }
         void main() { }",
        false,
        "E0216",
    );
}

#[test]
fn unknown_constraint_in_where() {
    assert_rejected(
        "void f[T]() where Sortable[T] { }\nvoid main() { }",
        false,
        "E0205",
    );
}

#[test]
fn enrich_unknown_model() {
    assert_rejected("enrich Ghost { }\nvoid main() { }", false, "E0207");
}

#[test]
fn break_outside_loop() {
    assert_rejected("void main() { break; }", false, "E0507");
}

#[test]
fn return_type_checked() {
    assert_rejected("int main() { return \"zzz\"; }", false, "E0501");
}

#[test]
fn instanceof_on_primitive_rejected() {
    assert_rejected(
        "void main() { int x = 3; boolean b = x instanceof String; }",
        true,
        "E0513",
    );
}

#[test]
fn unreachable_statement_warns_but_runs() {
    let c = Compiler::new().source("test.genus", "int main() { return 1; int x = 2; }");
    let report = c.check_report();
    assert!(!report.has_errors(), "warnings must not reject the program");
    let warns: Vec<_> = report.warnings().collect();
    assert_eq!(warns.len(), 1, "{warns:?}");
    assert_eq!(warns[0].code, "W0001");
    let r = run_simple("int main() { return 1; int x = 2; }").unwrap();
    assert_eq!(r.rendered_value, "1");
}

// ---------------------------------------------------------------------
// Runtime errors carry stable R-codes shared by both engines, mapped
// onto the Java exception taxonomy (§8.1's CCE metric)
// ---------------------------------------------------------------------

#[test]
fn runtime_cce_code() {
    let code = trap_code(
        "void main() {
           Object o = new Rectangle();
           Triangle t = (Triangle) o;
         }",
        true,
    );
    assert_eq!(code, "R0001");
    // The rendered message keeps the Java exception name.
    let e = run_with_stdlib(
        "void main() {
           Object o = new Rectangle();
           Triangle t = (Triangle) o;
         }",
    )
    .unwrap_err();
    assert!(e.contains("error[R0001]"), "{e}");
    assert!(e.contains("ClassCastException"), "{e}");
}

#[test]
fn index_out_of_bounds() {
    assert_eq!(
        trap_code("int main() { int[] a = new int[2]; return a[5]; }", false),
        "R0003"
    );
}

#[test]
fn division_by_zero() {
    assert_eq!(
        trap_code("int main() { int z = 0; return 3 / z; }", false),
        "R0004"
    );
}

#[test]
fn null_dereference() {
    assert_eq!(
        trap_code(
            "int main() { ArrayList[int] l = null; return l.size(); }",
            true
        ),
        "R0002"
    );
}

#[test]
fn stack_overflow_guard() {
    assert_eq!(
        trap_code(
            "int f(int x) { return f(x + 1); }\nint main() { return f(0); }",
            false
        ),
        "R0007"
    );
}
