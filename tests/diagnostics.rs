//! Integration tests for static diagnostics: the errors the paper's type
//! system is designed to catch.

// Every program in this suite runs on BOTH engines (AST interpreter and
// bytecode VM) with a divergence check — the differential harness.
use genus_repro::{
    run_differential_simple as run_simple, run_differential_with_stdlib as run_with_stdlib,
};

fn err_of(src: &str) -> String {
    run_with_stdlib(src).expect_err("program should be rejected")
}

// ---------------------------------------------------------------------
// §4.4 — default model resolution rules
// ---------------------------------------------------------------------

#[test]
fn ambiguous_enabled_models_require_with() {
    // The natural model for Comparable[int] and a use-enabled model are
    // both enabled: rule 2 says the programmer must disambiguate.
    let e = err_of(
        "model RevIntCmp for Comparable[int] {
           boolean equals(int that) { return this == that; }
           int compareTo(int that) { return 0 - this.compareTo(that); }
         }
         use RevIntCmp;
         void main() {
           TreeSet[int] s = new TreeSet[int]();
         }",
    );
    assert!(e.contains("ambiguous default model"), "{e}");
}

#[test]
fn missing_model_is_an_error() {
    let e = err_of(
        "class NoCompare { NoCompare() { } }
         void main() {
           TreeSet[NoCompare] s = new TreeSet[NoCompare]();
         }",
    );
    assert!(e.contains("no model found"), "{e}");
}

#[test]
fn with_clause_must_witness_the_constraint() {
    let e = err_of(
        r#"model CIEq for Eq[String] {
             boolean equals(String str) { return equalsIgnoreCase(str); }
           }
           void main() {
             // CIEq witnesses Eq[String], not Comparable[String].
             TreeSet[String with CIEq] s = new TreeSet[String with CIEq]();
           }"#,
    );
    assert!(e.contains("does not witness"), "{e}");
}

// ---------------------------------------------------------------------
// §4.7 / §9 — termination restriction on use declarations
// ---------------------------------------------------------------------

#[test]
fn use_dualgraph_is_rejected() {
    // The paper's canonical example: `use DualGraph;` cycles.
    let e = err_of("use DualGraph;\nvoid main() { }");
    assert!(e.contains("termination restriction"), "{e}");
}

#[test]
fn use_with_smaller_subgoals_is_accepted() {
    let r = run_with_stdlib(
        r#"class Pt {
             int x;
             Pt(int x) { this.x = x; }
             Pt clone() { return new Pt(x); }
           }
           model ALDC[E] for Cloneable[ArrayList[E]] where Cloneable[E] {
             ArrayList[E] clone() {
               ArrayList[E] l = new ArrayList[E]();
               for (E e : this) { l.add(e.clone()); }
               return l;
             }
           }
           use ALDC;
           void main() { }"#,
    );
    assert!(r.is_ok(), "{r:?}");
}

// ---------------------------------------------------------------------
// §5.1 — multimethod ambiguity (load-time unique-best check)
// ---------------------------------------------------------------------

#[test]
fn ambiguous_multimethods_rejected() {
    let e = err_of(
        "constraint Comb[T] { T T.comb(T that); }
         model BadComb for Comb[Shape] {
           Shape Shape.comb(Shape s) { return s; }
           Shape Rectangle.comb(Shape s) { return s; }
           Shape Shape.comb(Rectangle r) { return r; }
         }
         void main() { }",
    );
    assert!(e.contains("ambiguous multimethod"), "{e}");
}

#[test]
fn glb_definition_resolves_multimethod_ambiguity() {
    let r = run_with_stdlib(
        "constraint Comb[T] { T T.comb(T that); }
         model OkComb for Comb[Shape] {
           Shape Shape.comb(Shape s) { return s; }
           Shape Rectangle.comb(Shape s) { return s; }
           Shape Shape.comb(Rectangle r) { return r; }
           Shape Rectangle.comb(Rectangle r) { return r; }
         }
         void main() { }",
    );
    assert!(r.is_ok(), "{r:?}");
}

#[test]
fn model_must_cover_constraint_ops() {
    let e = err_of(
        "constraint Weird[T] { T T.definitelyNotProvided(T that); }
         model Nope for Weird[Shape] { }
         void main() { }",
    );
    assert!(e.contains("does not witness"), "{e}");
}

// ---------------------------------------------------------------------
// Structural errors
// ---------------------------------------------------------------------

#[test]
fn prerequisite_cycles_rejected() {
    let e = run_simple(
        "constraint A[T] extends B[T] { }
         constraint B[T] extends A[T] { }
         void main() { }",
    )
    .unwrap_err();
    assert!(e.contains("prerequisite cycle"), "{e}");
}

#[test]
fn duplicate_declarations_rejected() {
    let e = run_simple("class C { C() { } }\nclass C { C() { } }\nvoid main() { }").unwrap_err();
    assert!(e.contains("duplicate type"), "{e}");
}

#[test]
fn interface_instantiation_rejected() {
    let e = err_of("void main() { Map[int, int] m = new Map[int, int](); }");
    assert!(e.contains("cannot instantiate interface"), "{e}");
}

#[test]
fn wrong_type_arg_arity() {
    let e = err_of("void main() { ArrayList[int, int] l = null; }");
    assert!(e.contains("wrong number of type arguments"), "{e}");
}

#[test]
fn constraint_arity_checked() {
    let e = run_simple("void f[T]() where Eq[T, T] { }\nvoid main() { }").unwrap_err();
    assert!(e.contains("expects 1 type argument"), "{e}");
}

#[test]
fn receiver_must_be_constraint_param() {
    let e = run_simple(
        "constraint Bad[V, E] { V X.source(); }
         void main() { }",
    )
    .unwrap_err();
    assert!(e.contains("not a parameter"), "{e}");
}

#[test]
fn overloads_must_differ_in_arity() {
    let e = run_simple(
        "class C {
           C() { }
           void m(int x) { }
           void m(String s) { }
         }
         void main() { }",
    )
    .unwrap_err();
    assert!(e.contains("overloads must differ in arity"), "{e}");
}

#[test]
fn unknown_constraint_in_where() {
    let e = run_simple("void f[T]() where Sortable[T] { }\nvoid main() { }").unwrap_err();
    assert!(e.contains("unknown constraint"), "{e}");
}

#[test]
fn enrich_unknown_model() {
    let e = run_simple("enrich Ghost { }\nvoid main() { }").unwrap_err();
    assert!(e.contains("cannot enrich unknown model"), "{e}");
}

#[test]
fn break_outside_loop() {
    let e = run_simple("void main() { break; }").unwrap_err();
    assert!(e.contains("outside of a loop"), "{e}");
}

#[test]
fn return_type_checked() {
    let e = run_simple("int main() { return \"zzz\"; }").unwrap_err();
    assert!(e.contains("type mismatch"), "{e}");
}

#[test]
fn instanceof_on_primitive_rejected() {
    let e = err_of("void main() { int x = 3; boolean b = x instanceof String; }");
    assert!(e.contains("reference"), "{e}");
}

// ---------------------------------------------------------------------
// Runtime errors carry the Java exception taxonomy (§8.1's CCE metric)
// ---------------------------------------------------------------------

#[test]
fn runtime_cce_message() {
    let e = run_with_stdlib(
        "void main() {
           Object o = new Rectangle();
           Triangle t = (Triangle) o;
         }",
    )
    .unwrap_err();
    assert!(e.contains("ClassCastException"), "{e}");
}

#[test]
fn index_out_of_bounds() {
    let e = run_simple("int main() { int[] a = new int[2]; return a[5]; }").unwrap_err();
    assert!(e.contains("IndexOutOfBoundsException"), "{e}");
}

#[test]
fn division_by_zero() {
    let e = run_simple("int main() { int z = 0; return 3 / z; }").unwrap_err();
    assert!(e.contains("ArithmeticException"), "{e}");
}

#[test]
fn null_dereference() {
    let e = run_with_stdlib("int main() { ArrayList[int] l = null; return l.size(); }")
        .unwrap_err();
    assert!(e.contains("NullPointerException"), "{e}");
}

#[test]
fn stack_overflow_guard() {
    let e = run_simple("int f(int x) { return f(x + 1); }\nint main() { return f(0); }")
        .unwrap_err();
    assert!(e.contains("StackOverflowError"), "{e}");
}
