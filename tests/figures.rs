//! Integration tests: every figure of the paper as an executable Genus
//! program, compiled and run through the full pipeline.

// Every program in this suite runs on BOTH engines (AST interpreter and
// bytecode VM) with a divergence check — the differential harness.
use genus_repro::run_differential_with_stdlib as run_with_stdlib;

fn run_ok(src: &str) -> (String, String) {
    match run_with_stdlib(src) {
        Ok(r) => (r.rendered_value, r.output),
        Err(e) => panic!("program failed:\n{e}"),
    }
}

// ---------------------------------------------------------------------
// Figure 3 — GraphLike[V,E] and OrdRing[T] constraints
// ---------------------------------------------------------------------

#[test]
fn fig3_graph_constraints_via_natural_models() {
    // Vertex/Edge structurally conform to GraphLike, so generic code works
    // with no model declarations at all.
    let (v, _) = run_ok(
        "int countEdges[V, E](V v) where GraphLike[V, E] {
           int n = 0;
           for (E e : v.outgoingEdges()) { n = n + 1; }
           return n;
         }
         int main() {
           Graph g = new Graph();
           Vertex a = g.addVertex();
           Vertex b = g.addVertex();
           g.addEdge(a, b, 1.0);
           g.addEdge(a, a, 2.0);
           return countEdges[Vertex, Edge](a);
         }",
    );
    assert_eq!(v, "2");
}

#[test]
fn fig3_ordring_static_ops() {
    let (v, _) = run_ok(
        "W product[W](W a, W b) where OrdRing[W] {
           return a.times(b).times(W.one());
         }
         double main() {
           return product(3.0, 4.0);
         }",
    );
    assert_eq!(v, "12.0");
}

// ---------------------------------------------------------------------
// Figure 4 — Dijkstra's SSSP generalized to ordered rings
// ---------------------------------------------------------------------

#[test]
fn fig4_sssp_tropical_ring() {
    let (_, out) = run_ok(
        "void main() {
           Graph g = new Graph();
           Vertex a = g.addVertex();
           Vertex b = g.addVertex();
           Vertex c = g.addVertex();
           Vertex d = g.addVertex();
           g.addEdge(a, b, 1.0);
           g.addEdge(b, c, 2.0);
           g.addEdge(a, c, 10.0);
           g.addEdge(c, d, 1.5);
           HashMap[Vertex, double] dist =
             SSSP[Vertex, Edge, double with TropicalRing](a);
           println(dist.get(a));
           println(dist.get(b));
           println(dist.get(c));
           println(dist.get(d));
         }",
    );
    assert_eq!(out, "0.0\n1.0\n3.0\n4.5\n");
}

#[test]
fn fig4_sssp_with_natural_ring_is_different() {
    // With the natural (arithmetic) ring, `times` is multiplication and
    // `plus`/ordering are the usual ones — path "cost" composes by product.
    let (_, out) = run_ok(
        "void main() {
           Graph g = new Graph();
           Vertex a = g.addVertex();
           Vertex b = g.addVertex();
           Vertex c = g.addVertex();
           g.addEdge(a, b, 2.0);
           g.addEdge(b, c, 3.0);
           HashMap[Vertex, double] dist = SSSP[Vertex, Edge, double](a);
           println(dist.get(c));
         }",
    );
    // one() = 1.0, times = *, so cost(a->b->c) = 1.0 * 2.0 * 3.0.
    assert_eq!(out, "6.0\n");
}

// ---------------------------------------------------------------------
// Figure 5 — parameterized model with recursive `use` resolution
// ---------------------------------------------------------------------

#[test]
fn fig5_arraylist_deep_copy() {
    let (v, _) = run_ok(
        r#"class Point {
             int x;
             Point(int x) { this.x = x; }
             Point clone() { return new Point(x); }
           }
           model ArrayListDeepCopy[E] for Cloneable[ArrayList[E]]
               where Cloneable[E] {
             ArrayList[E] clone() {
               ArrayList[E] l = new ArrayList[E]();
               for (E e : this) { l.add(e.clone()); }
               return l;
             }
           }
           use ArrayListDeepCopy;
           ArrayList[E] copy[E](ArrayList[E] src) where Cloneable[ArrayList[E]] cl {
             return src.(cl.clone)();
           }
           int main() {
             ArrayList[Point] ps = new ArrayList[Point]();
             ps.add(new Point(7));
             // Default model resolution recursively solves
             // Cloneable[ArrayList[Point]] via use + natural Cloneable[Point].
             ArrayList[Point] qs = copy(ps);
             qs.get(0).x = 9;
             return ps.get(0).x * 10 + qs.get(0).x;
           }"#,
    );
    // Deep copy: mutating the copy leaves the original at 7.
    assert_eq!(v, "79");
}

// ---------------------------------------------------------------------
// Figure 6 — DualGraph + Kosaraju SCC with two models for one constraint
// ---------------------------------------------------------------------

#[test]
fn fig6_scc_kosaraju() {
    let (_, out) = run_ok(
        "void main() {
           Graph g = new Graph();
           Vertex a = g.addVertex(); // component {a,b,c}
           Vertex b = g.addVertex();
           Vertex c = g.addVertex();
           Vertex d = g.addVertex(); // component {d,e}
           Vertex e = g.addVertex();
           g.addEdge(a, b, 1.0);
           g.addEdge(b, c, 1.0);
           g.addEdge(c, a, 1.0);
           g.addEdge(c, d, 1.0);
           g.addEdge(d, e, 1.0);
           g.addEdge(e, d, 1.0);
           ArrayList[ArrayList[Vertex]] comps = SCC[Vertex, Edge](g.vertices);
           println(comps.size());
           for (ArrayList[Vertex] comp : comps) {
             println(comp.size());
           }
         }",
    );
    let mut lines: Vec<&str> = out.trim().lines().collect();
    assert_eq!(lines.remove(0), "2");
    let mut sizes: Vec<&str> = lines;
    sizes.sort_unstable();
    assert_eq!(sizes, vec!["2", "3"]);
}

#[test]
fn fig6_dual_graph_reverses_edges() {
    let (v, _) = run_ok(
        "int main() {
           Graph g = new Graph();
           Vertex a = g.addVertex();
           Vertex b = g.addVertex();
           g.addEdge(a, b, 1.0);
           // Forward: a has 1 outgoing edge. Through DualGraph, b does.
           int forward = countOut[Vertex, Edge](a);
           int backward = countOut[Vertex, Edge with DualGraph[Vertex, Edge]](b);
           return forward * 10 + backward;
         }
         int countOut[V, E](V v) where GraphLike[V, E] g {
           int n = 0;
           for (E e : v.(g.outgoingEdges)()) { n = n + 1; }
           return n;
         }",
    );
    assert_eq!(v, "11");
}

// ---------------------------------------------------------------------
// Figure 7 — TreeSet with model-dependent types and the reified fast path
// ---------------------------------------------------------------------

#[test]
fn fig7_treeset_same_ordering_fast_path() {
    let (v, _) = run_ok(
        "int main() {
           TreeSet[int] a = new TreeSet[int]();
           a.add(3); a.add(1); a.add(2);
           TreeSet[int] b = new TreeSet[int]();
           b.addAll(a);
           // Same (natural) ordering: the reified instanceof matched and
           // every element went through addFromSorted.
           return b.fastPathAdds * 100 + b.size();
         }",
    );
    assert_eq!(v, "303");
}

#[test]
fn fig7_treeset_different_ordering_slow_path() {
    let (v, _) = run_ok(
        "model RevIntCmp for Comparable[int] {
           boolean equals(int that) { return this == that; }
           int compareTo(int that) { return 0 - this.compareTo(that); }
         }
         int main() {
           TreeSet[int with RevIntCmp] a = new TreeSet[int with RevIntCmp]();
           a.add(1); a.add(2);
           TreeSet[int] b = new TreeSet[int]();
           b.addAll(a);
           // Different ordering model: instanceof fails, slow path taken.
           return b.fastPathAdds * 100 + b.size();
         }",
    );
    assert_eq!(v, "2");
}

#[test]
fn fig7_treeset_ordering_is_part_of_type() {
    // Assigning across differently-moded TreeSets is a *static* error.
    let err = run_with_stdlib(
        "model RevIntCmp for Comparable[int] {
           boolean equals(int that) { return this == that; }
           int compareTo(int that) { return 0 - this.compareTo(that); }
         }
         void main() {
           TreeSet[int] s0 = new TreeSet[int]();
           TreeSet[int with RevIntCmp] s1 = new TreeSet[int with RevIntCmp]();
           s1 = s0;
         }",
    )
    .unwrap_err();
    assert!(err.contains("type mismatch"), "{err}");
}

#[test]
fn fig7_descending_map_view() {
    let (_, out) = run_ok(
        "void main() {
           TreeMap[int, String] m = new TreeMap[int, String]();
           m.put(2, \"b\"); m.put(1, \"a\"); m.put(3, \"c\");
           println(m.firstKey());
           TreeMap[int, String with ReverseCmp[int]] d = m.descendingMap();
           println(d.firstKey());
         }",
    );
    assert_eq!(out, "1\n3\n");
}

// ---------------------------------------------------------------------
// Figure 8 — ShapeIntersect multimethods + enrichment
// ---------------------------------------------------------------------

#[test]
fn fig8_multimethod_dispatch() {
    let (_, out) = run_ok(
        "void main() {
           Shape r = new Rectangle();
           Shape c = new Circle();
           Shape t = new Triangle();
           // All receivers statically Shape: dispatch is dynamic on both
           // receiver and argument.
           println(r.(ShapeIntersect.intersect)(r));
           println(c.(ShapeIntersect.intersect)(r));
           println(t.(ShapeIntersect.intersect)(c));
           println(r.(ShapeIntersect.intersect)(c));
         }",
    );
    let lines: Vec<&str> = out.trim().lines().collect();
    assert!(lines[0].starts_with("rect*rect"), "{out}");
    assert!(lines[1].starts_with("circle*rect"), "{out}");
    assert!(lines[2].starts_with("tri*circle"), "{out}"); // via enrich
    assert!(lines[3].starts_with("generic"), "{out}");
}

#[test]
fn fig8_model_inheritance_rectangle_intersect() {
    let (_, out) = run_ok(
        "void main() {
           Rectangle a = new Rectangle();
           Rectangle b = new Rectangle();
           // RectangleIntersect inherits everything from ShapeIntersect but
           // witnesses Intersectable[Rectangle] with a precise result type.
           Rectangle r = a.(RectangleIntersect.intersect)(b);
           println(r);
         }",
    );
    assert!(out.starts_with("rect*rect"), "{out}");
}

// ---------------------------------------------------------------------
// Figure 9 — existentials: packing, local binding, reified arrays
// ---------------------------------------------------------------------

#[test]
fn fig9_existentials_full() {
    let (v, _) = run_ok(
        r#"[some T where Comparable[T]] List[T] f() {
             ArrayList[String] l = new ArrayList[String]();
             l.add("b");
             l.add("a");
             return l;
           }
           int main() {
             [U] (List[U] l) where Comparable[U] = f();   // bind U
             U first = l.get(0);
             U second = l.get(1);
             int cmp = first.compareTo(second);           // U is comparable
             U[] a = new U[4];                            // reified U
             a[0] = first;
             l = new ArrayList[U]();                      // new list, same U
             l.add(a[0]);
             if (cmp > 0 && l.size() == 1) { return 1; }
             return 0;
           }"#,
    );
    assert_eq!(v, "1");
}

#[test]
fn fig9_wildcard_sugar() {
    let (v, _) = run_ok(
        "int count(List[?] l) {
           return l.size();
         }
         int main() {
           ArrayList[int] xs = new ArrayList[int]();
           xs.add(1); xs.add(2); xs.add(3);
           return count(xs);
         }",
    );
    assert_eq!(v, "3");
}

#[test]
fn constraint_as_type_sugar() {
    // `Printable` as a type means [some U where Printable[U]] U (§6.1).
    let (_, out) = run_ok(
        "void show(Printable p) {
           println(p.toString());
         }
         class Money {
           int cents;
           Money(int cents) { this.cents = cents; }
           String toString() { return \"$\" + cents; }
         }
         void main() {
           show(new Money(99));
           show(\"str\");
         }",
    );
    assert_eq!(out, "$99\nstr\n");
}

// ---------------------------------------------------------------------
// §3.2 — model genericity: List.remove with caller-chosen equality
// ---------------------------------------------------------------------

#[test]
fn model_generic_remove() {
    let (v, _) = run_ok(
        r#"model CIEq for Eq[String] {
             boolean equals(String str) { return equalsIgnoreCase(str); }
           }
           int main() {
             ArrayList[String] l = new ArrayList[String]();
             l.add("Hello");
             boolean removedCS = l.remove("HELLO");          // case-sensitive: no
             boolean removedCI = l.remove[with CIEq]("HELLO"); // case-insensitive: yes
             int a = 0;
             if (removedCS) { a = a + 10; }
             if (removedCI) { a = a + 1; }
             return a * 100 + l.size();
           }"#,
    );
    assert_eq!(v, "100");
}

// ---------------------------------------------------------------------
// §4.3 — multiple models for one constraint coexist in one scope
// ---------------------------------------------------------------------

#[test]
fn coexisting_models_set_string() {
    let (v, _) = run_ok(
        r#"model CIEq2 for Hashable[String] {
             boolean equals(String str) { return equalsIgnoreCase(str); }
             int hashCode() { return toLowerCase().hashCode(); }
           }
           int main() {
             HashSet[String] s0 = new HashSet[String]();
             HashSet[String with CIEq2] s1 = new HashSet[String with CIEq2]();
             s0.add("x"); s0.add("X");
             s1.add("x"); s1.add("X");
             return s0.size() * 10 + s1.size();
           }"#,
    );
    assert_eq!(v, "21");
}
