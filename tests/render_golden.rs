//! Golden-file tests for diagnostic rendering: the exact bytes of the
//! rustc-style snippet renderer (caret underlines, labeled secondary
//! spans, elided goal chains) and of the short and JSON modes.
//!
//! Goldens live in `tests/goldens/`. To refresh after an intentional
//! rendering change, run with `UPDATE_GOLDENS=1` and review the diff.

use genus_repro::{Compiler, Diagnostic, ErrorFormat, SourceMap, Span};

fn check_golden(name: &str, actual: &str) {
    let path = format!("{}/tests/goldens/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden `{path}` ({e}); run with UPDATE_GOLDENS=1"));
    assert_eq!(
        actual, expected,
        "rendered output drifted from golden `{name}`;\n\
         if the change is intentional, refresh with UPDATE_GOLDENS=1"
    );
}

/// The §4.4 ambiguity error: one primary span at the use site plus a
/// labeled secondary span at each candidate model declaration.
const AMBIGUOUS: &str = "\
model RevIntCmp for Comparable[int] {
  boolean equals(int that) { return this == that; }
  int compareTo(int that) { return 0 - this.compareTo(that); }
}
use RevIntCmp;
void main() {
  TreeSet[int] s = new TreeSet[int]();
}
";

fn ambiguous_report() -> genus_repro::CheckReport {
    let report = Compiler::new()
        .with_stdlib()
        .source("ambig.genus", AMBIGUOUS)
        .check_report();
    assert!(report.has_errors());
    assert!(
        report.error_codes().contains(&"E0401"),
        "{:?}",
        report.error_codes()
    );
    report
}

#[test]
fn ambiguous_model_human_snippet() {
    check_golden(
        "ambiguous_model.human.txt",
        &ambiguous_report().render(ErrorFormat::Human),
    );
}

#[test]
fn ambiguous_model_short() {
    check_golden(
        "ambiguous_model.short.txt",
        &ambiguous_report().render(ErrorFormat::Short),
    );
}

#[test]
fn ambiguous_model_json() {
    let rendered = ambiguous_report().render(ErrorFormat::Json);
    // Every line must be a well-formed JSON object.
    for line in rendered.lines() {
        genus_repro::json::parse(line).unwrap_or_else(|e| panic!("bad JSON `{line}`: {e}"));
    }
    check_golden("ambiguous_model.json.txt", &rendered);
}

/// A long model-resolution goal chain is elided in the middle (4 head
/// links, an elision marker, 2 tail links) so the snippet stays readable.
#[test]
fn goal_chain_elision_human_snippet() {
    let mut sm = SourceMap::new();
    let file = sm.add_file("chain.genus", "use Diverge;\nvoid main() { }\n");
    let span = Span::new(file, 0, 12);
    let links = (0..10).map(|i| format!("Cloneable[List{i}[int]]"));
    let d = Diagnostic::error(
        "E0403",
        span,
        "default model resolution for `Cloneable[List0[int]]` exceeded its recursion bound \
         (64 levels) — a recursive `use` likely diverges",
    )
    .with_goal_chain(span, links);
    check_golden(
        "goal_chain.human.txt",
        &d.render_with(&sm, ErrorFormat::Human),
    );
}
