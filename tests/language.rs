//! Language-semantics tests: primitives, control flow, strings, casts, and
//! multi-file compilation — the Java-core substrate underneath the
//! genericity mechanism.

// Every program in this suite runs on BOTH engines (AST interpreter and
// bytecode VM) with a divergence check — the differential harness.
use genus_repro::{run_differential_simple as run_simple, Compiler};

fn run_ok(src: &str) -> (String, String) {
    match run_simple(src) {
        Ok(r) => (r.rendered_value, r.output),
        Err(e) => panic!("program failed:\n{e}"),
    }
}

#[test]
fn long_arithmetic_and_widening() {
    let (v, _) = run_ok(
        "long main() {
           long big = 4000000000L;
           int small = 5;
           long sum = big + small;      // int widens to long
           if (sum > 4000000000L) { return sum % 100L; }
           return -1L;
         }",
    );
    assert_eq!(v, "5");
}

#[test]
fn int_to_double_widening_in_calls() {
    let (v, _) = run_ok(
        "double half(double x) { return x / 2.0; }
         double main() { return half(7); }",
    );
    assert_eq!(v, "3.5");
}

#[test]
fn narrowing_casts() {
    let (v, _) = run_ok(
        "int main() {
           double d = 3.99;
           long l = 300L;
           return (int) d * 100 + (int) l;
         }",
    );
    assert_eq!(v, "600");
}

#[test]
fn char_arithmetic() {
    let (v, _) = run_ok(
        "int main() {
           char c = 'a';
           int code = (int) c;
           char next = (char) (code + 1);
           if (next == 'b' && c < 'z') { return code; }
           return 0;
         }",
    );
    assert_eq!(v, "97");
}

#[test]
fn integer_overflow_wraps() {
    let (v, _) = run_ok(
        "int main() {
           int big = 2147483647;
           return big + 1;
         }",
    );
    assert_eq!(v, "-2147483648");
}

#[test]
fn ternary_and_short_circuit() {
    let (v, _) = run_ok(
        "int risky() { return 1 / 0; }
         int main() {
           int a = 5;
           boolean safe = a > 0 || risky() > 0;   // short-circuits
           int pick = a > 3 ? 10 : risky();       // ternary lazy
           if (safe) { return pick; }
           return 0;
         }",
    );
    assert_eq!(v, "10");
}

#[test]
fn nested_loops_break_continue() {
    let (v, _) = run_ok(
        "int main() {
           int s = 0;
           for (int i = 0; i < 5; i = i + 1) {
             for (int j = 0; j < 5; j = j + 1) {
               if (j == 3) { break; }
               if (j == 1) { continue; }
               s = s + 1;
             }
           }
           return s;
         }",
    );
    assert_eq!(v, "10"); // j in {0, 2} per outer iteration
}

#[test]
fn continue_in_c_style_for_still_updates() {
    let (v, _) = run_ok(
        "int main() {
           int s = 0;
           for (int i = 0; i < 10; i = i + 1) {
             if (i % 2 == 0) { continue; }
             s = s + i;
           }
           return s;
         }",
    );
    assert_eq!(v, "25"); // 1+3+5+7+9
}

#[test]
fn string_builtins() {
    let (_, out) = run_ok(
        r#"void main() {
             String s = "Hello World";
             println(s.length());
             println(s.substring(0, 5));
             println(s.toLowerCase());
             println(s.indexOf("World"));
             println(s.charAt(4));
             println(s.concat("!"));
           }"#,
    );
    assert_eq!(out, "11\nHello\nhello world\n6\no\nHello World!\n");
}

#[test]
fn string_concat_stringifies_everything() {
    let (_, out) = run_ok(
        r#"void main() {
             println("i=" + 3 + " d=" + 2.5 + " b=" + true + " c=" + 'x' + " n=" + null);
           }"#,
    );
    assert_eq!(out, "i=3 d=2.5 b=true c=x n=null\n");
}

#[test]
fn to_string_dispatches_dynamically_in_concat() {
    let (_, out) = run_ok(
        "class Money {
           int cents;
           Money(int cents) { this.cents = cents; }
           String toString() { return \"$\" + cents / 100 + \".\" + cents % 100; }
         }
         void main() {
           Object o = new Money(1234);
           println(\"price: \" + o);
         }",
    );
    assert_eq!(out, "price: $12.34\n");
}

#[test]
fn static_fields_and_methods() {
    let (v, _) = run_ok(
        "class Registry {
           static int count = 100;
           Registry() { }
           static int next() {
             count = count + 1;
             return count;
           }
         }
         int main() {
           int a = Registry.next();
           int b = Registry.next();
           return Registry.count + a + b;
         }",
    );
    assert_eq!(v, "305");
}

#[test]
fn field_initializers_run_per_instance() {
    let (v, _) = run_ok(
        "class Counter {
           int start = 10;
           Counter() { }
         }
         int main() {
           Counter a = new Counter();
           Counter b = new Counter();
           a.start = 99;
           return b.start;
         }",
    );
    assert_eq!(v, "10");
}

#[test]
fn inherited_fields_and_dispatch_through_base() {
    let (v, _) = run_ok(
        "class Base {
           int tag = 1;
           Base() { }
           int describe() { return tag * 100 + kind(); }
           int kind() { return 0; }
         }
         class Derived extends Base {
           Derived() { tag = 2; }
           int kind() { return 7; }
         }
         int main() {
           Base b = new Derived();
           return b.describe();
         }",
    );
    // tag assigned in Derived's ctor; kind() dispatches to Derived.
    assert_eq!(v, "207");
}

#[test]
fn array_of_objects_default_null() {
    let (v, _) = run_ok(
        "class P { P() { } }
         int main() {
           P[] ps = new P[3];
           int nulls = 0;
           for (int i = 0; i < ps.length; i = i + 1) {
             if (ps[i] == null) { nulls = nulls + 1; }
           }
           ps[1] = new P();
           if (ps[1] != null) { nulls = nulls * 10; }
           return nulls;
         }",
    );
    assert_eq!(v, "30");
}

#[test]
fn generic_array_in_generic_class_defaults_correctly() {
    // T[] in a class instantiated at int must default to 0, not null.
    let (v, _) = run_ok(
        "class Buf[T] {
           T[] data;
           Buf(int n) { data = new T[n]; }
           T at(int i) { return data[i]; }
         }
         int main() {
           Buf[int] b = new Buf[int](4);
           return b.at(2);
         }",
    );
    assert_eq!(v, "0");
}

#[test]
fn t_default_for_primitives_and_refs() {
    let (v, _) = run_ok(
        "T firstOrDefault[T](T[] xs) {
           if (xs.length > 0) { return xs[0]; }
           return T.default();
         }
         int main() {
           int[] empty = new int[0];
           int d = firstOrDefault(empty);
           String[] sempty = new String[0];
           String s = firstOrDefault(sempty);
           if (s == null && d == 0) { return 1; }
           return 0;
         }",
    );
    assert_eq!(v, "1");
}

#[test]
fn multi_file_compilation() {
    let r = Compiler::new()
        .source(
            "lib.genus",
            "constraint Scalable[T] { T scale(int k); }
             class Vec2 {
               int x; int y;
               Vec2(int x, int y) { this.x = x; this.y = y; }
               Vec2 scale(int k) { return new Vec2(x * k, y * k); }
             }",
        )
        .source(
            "main.genus",
            "T twice[T](T v) where Scalable[T] { return v.scale(2); }
             int main() {
               Vec2 v = twice(new Vec2(3, 4));
               return v.x * 10 + v.y;
             }",
        )
        .run_differential()
        .expect("multi-file program runs");
    assert_eq!(r.rendered_value, "68");
}

#[test]
fn instanceof_with_generics_reified() {
    let r = Compiler::new()
        .with_stdlib()
        .source(
            "main.genus",
            "int main() {
               Object a = new ArrayList[int]();
               Object b = new ArrayList[String]();
               int r = 0;
               if (a instanceof ArrayList[int]) { r = r + 1; }
               if (a instanceof ArrayList[String]) { r = r + 10; }
               if (b instanceof ArrayList[String]) { r = r + 100; }
               return r;
             }",
        )
        .run_differential()
        .expect("program runs");
    // Reified generics: ArrayList[int] is not an ArrayList[String].
    assert_eq!(r.rendered_value, "101");
}

#[test]
fn cast_to_wrong_instantiation_fails() {
    let e = Compiler::new()
        .with_stdlib()
        .source(
            "main.genus",
            "void main() {
               Object a = new ArrayList[int]();
               ArrayList[String] s = (ArrayList[String]) a;
             }",
        )
        .run_differential()
        .unwrap_err();
    assert!(e.contains("ClassCastException"), "{e}");
}
