//! Use-site genericity (§6): wildcard types and models, packing, capture
//! conversion, and explicit local binding beyond the Figure 9 basics.

// Every program in this suite runs on BOTH engines (AST interpreter and
// bytecode VM) with a divergence check — the differential harness.
use genus_repro::{
    run_differential_simple as run_simple, run_differential_with_stdlib as run_with_stdlib,
};

fn run_ok(src: &str) -> (String, String) {
    match run_with_stdlib(src) {
        Ok(r) => (r.rendered_value, r.output),
        Err(e) => panic!("program failed:\n{e}"),
    }
}

#[test]
fn wildcard_model_accepts_any_witness() {
    // `Set[String with ?]` is a supertype of both Set[String] and
    // Set[String with CIEq] (§3.3).
    let (v, _) = run_ok(
        r#"model CIEq2 for Hashable[String] {
             boolean equals(String str) { return equalsIgnoreCase(str); }
             int hashCode() { return toLowerCase().hashCode(); }
           }
           int sizeOf(Set[String with ?] s) {
             return s.size();
           }
           int main() {
             HashSet[String] a = new HashSet[String]();
             a.add("x"); a.add("X");
             HashSet[String with CIEq2] b = new HashSet[String with CIEq2]();
             b.add("x"); b.add("X");
             return sizeOf(a) * 10 + sizeOf(b);
           }"#,
    );
    assert_eq!(v, "21");
}

#[test]
fn wildcard_type_and_model_combined() {
    let (v, _) = run_ok(
        "int sizes(Set[? with ?] s, List[?] l) {
           return s.size() * 10 + l.size();
         }
         int main() {
           HashSet[int] h = new HashSet[int]();
           h.add(1); h.add(2); h.add(3);
           ArrayList[String] a = new ArrayList[String]();
           a.add(\"q\");
           return sizes(h, a);
         }",
    );
    assert_eq!(v, "31");
}

#[test]
fn bounded_wildcard_accepts_subtypes_only() {
    let (v, _) = run_ok(
        "double area(ArrayList[? extends Shape] shapes) {
           double n = 0.0;
           for (Shape s : shapes) { n = n + 1.0; }
           return n;
         }
         double main() {
           ArrayList[Circle] cs = new ArrayList[Circle]();
           cs.add(new Circle());
           cs.add(new Circle());
           return area(cs);
         }",
    );
    assert_eq!(v, "2.0");
}

#[test]
fn bounded_wildcard_rejects_non_subtypes() {
    let e = run_with_stdlib(
        "void takeShapes(ArrayList[? extends Shape] shapes) { }
         void main() {
           ArrayList[String] ss = new ArrayList[String]();
           takeShapes(ss);
         }",
    )
    .unwrap_err();
    assert!(e.contains("type mismatch"), "{e}");
}

#[test]
fn packing_carries_the_witness() {
    // The witness chosen at the packing coercion site — not anything at the
    // opening site — defines the behavior after opening (§6.1).
    let (_, out) = run_ok(
        r#"constraint Describe[T] { String describe(); }
           model ShortDesc for Describe[String] {
             String describe() { return "short"; }
           }
           model LongDesc for Describe[String] {
             String describe() { return "looong"; }
           }
           [some T where Describe[T]] List[T] make(boolean longer) {
             ArrayList[String] l = new ArrayList[String]();
             l.add("x");
             if (longer) { return packWith[String with LongDesc](l); }
             return packWith[String with ShortDesc](l);
           }
           [some T where Describe[T]] List[T] packWith[T](ArrayList[T] l)
               where Describe[T] d {
             // Packing resolves Describe[T] to the unique enabled witness d.
             return l;
           }
           void main() {
             [A] (List[A] a) where Describe[A] = make(true);
             println(a.get(0).describe());
             [B] (List[B] b) where Describe[B] = make(false);
             println(b.get(0).describe());
           }"#,
    );
    assert_eq!(out, "looong\nshort\n");
}

#[test]
fn capture_conversion_enables_witnesses() {
    // Calling a method on an existential receiver opens it; the bound
    // witness is then used for the element comparisons inside.
    let (v, _) = run_ok(
        r#"[some T where Comparable[T]] List[T] nums() {
             ArrayList[int] l = new ArrayList[int]();
             l.add(30); l.add(10); l.add(20);
             return l;
           }
           int main() {
             [U] (List[U] l) where Comparable[U] u = nums();
             sortList[U with u](l);
             U first = l.get(0);
             U last = l.get(l.size() - 1);
             if (first.compareTo(last) < 0) { return l.size(); }
             return 0;
           }"#,
    );
    assert_eq!(v, "3");
}

#[test]
fn homogeneous_list_of_lists() {
    // ∃U. List[List[U]] — inexpressible as a Java wildcard (§6.1).
    let (v, _) = run_ok(
        "[some U] ArrayList[ArrayList[U]] grid() {
           ArrayList[ArrayList[int]] g = new ArrayList[ArrayList[int]]();
           ArrayList[int] row = new ArrayList[int]();
           row.add(5);
           g.add(row);
           return g;
         }
         int main() {
           [U] (ArrayList[ArrayList[U]] g) = grid();
           ArrayList[U] first = g.get(0);
           // Homogeneity: an element of one inner list can be added to
           // another inner list — they share the same unknown U.
           ArrayList[U] other = new ArrayList[U]();
           other.add(first.get(0));
           g.add(other);
           return g.size() * 10 + other.size();
         }",
    );
    assert_eq!(v, "21");
}

#[test]
fn existential_instanceof_with_model_hole() {
    let (v, _) = run_ok(
        "int main() {
           Object o = new TreeSet[int]();
           int r = 0;
           if (o instanceof TreeSet[?]) { r = r + 1; }
           if (o instanceof HashSet[?]) { r = r + 10; }
           return r;
         }",
    );
    assert_eq!(v, "1");
}

#[test]
fn plain_prelude_existentials_work_without_stdlib() {
    let r = run_simple(
        "[some T where Comparable[T]] T pick() {
           return 42;
         }
         int main() {
           [U] (U x) where Comparable[U] = pick();
           if (x.compareTo(x) == 0) { return 7; }
           return 0;
         }",
    )
    .unwrap();
    assert_eq!(r.rendered_value, "7");
}
