//! Tests for the extended standard library: PriorityQueue, Stack, Queue,
//! and the generic list algorithms.

// Every program in this suite runs on BOTH engines (AST interpreter and
// bytecode VM) with a divergence check — the differential harness.
use genus_repro::run_differential_with_stdlib as run_with_stdlib;

fn run_ok(src: &str) -> (String, String) {
    match run_with_stdlib(src) {
        Ok(r) => (r.rendered_value, r.output),
        Err(e) => panic!("program failed:\n{e}"),
    }
}

#[test]
fn priority_queue_pops_in_order() {
    let (_, out) = run_ok(
        "void main() {
           PriorityQueue[int] pq = new PriorityQueue[int]();
           pq.push(5); pq.push(1); pq.push(4); pq.push(1); pq.push(3);
           while (!pq.isEmpty()) { print(pq.pop()); print(\" \"); }
         }",
    );
    assert_eq!(out, "1 1 3 4 5 ");
}

#[test]
fn priority_queue_with_reverse_model_is_max_heap() {
    let (_, out) = run_ok(
        "void main() {
           PriorityQueue[int with ReverseCmp[int]] pq =
               new PriorityQueue[int with ReverseCmp[int]]();
           pq.push(2); pq.push(9); pq.push(5);
           while (!pq.isEmpty()) { print(pq.pop()); print(\" \"); }
         }",
    );
    assert_eq!(out, "9 5 2 ");
}

#[test]
fn priority_queue_strings() {
    let (_, out) = run_ok(
        "void main() {
           PriorityQueue[String] pq = new PriorityQueue[String]();
           pq.push(\"pear\"); pq.push(\"apple\"); pq.push(\"mango\");
           while (!pq.isEmpty()) { println(pq.pop()); }
         }",
    );
    assert_eq!(out, "apple\nmango\npear\n");
}

#[test]
fn stack_and_queue_adapters() {
    let (_, out) = run_ok(
        "void main() {
           Stack[int] s = new Stack[int]();
           s.push(1); s.push(2); s.push(3);
           while (!s.isEmpty()) { print(s.pop()); }
           print(\"|\");
           Queue[int] q = new Queue[int]();
           q.enqueue(1); q.enqueue(2); q.enqueue(3);
           while (!q.isEmpty()) { print(q.dequeue()); }
         }",
    );
    assert_eq!(out, "321|123");
}

#[test]
fn sort_list_and_binary_search() {
    let (v, _) = run_ok(
        "int main() {
           ArrayList[int] l = new ArrayList[int]();
           l.add(9); l.add(2); l.add(7); l.add(2); l.add(5);
           sortList(l);
           int found = binarySearch(l, 7);
           int missing = binarySearch(l, 6);
           return found * 10 + (missing + 1);
         }",
    );
    // sorted: 2 2 5 7 9 → index of 7 is 3; 6 missing → -1.
    assert_eq!(v, "30");
}

#[test]
fn min_max_reverse() {
    let (_, out) = run_ok(
        "void main() {
           ArrayList[int] l = new ArrayList[int]();
           l.add(4); l.add(1); l.add(7);
           println(minOf(l));
           println(maxOf(l));
           reverseList(l);
           for (int x : l) { print(x); }
         }",
    );
    assert_eq!(out, "1\n7\n714");
}

#[test]
fn sort_list_under_explicit_model() {
    // The same list, sorted descending by passing ReverseCmp explicitly —
    // model genericity at a call site (§3.2).
    let (_, out) = run_ok(
        "void main() {
           ArrayList[int] l = new ArrayList[int]();
           l.add(2); l.add(9); l.add(5);
           sortList[int with ReverseCmp[int]](l);
           for (int x : l) { print(x); }
         }",
    );
    assert_eq!(out, "952");
}

#[test]
fn list_equals_under_models() {
    let (v, _) = run_ok(
        r#"model CIEq for Eq[String] {
             boolean equals(String str) { return equalsIgnoreCase(str); }
           }
           int main() {
             ArrayList[String] a = new ArrayList[String]();
             a.add("Ab"); a.add("cD");
             ArrayList[String] b = new ArrayList[String]();
             b.add("AB"); b.add("CD");
             int r = 0;
             if (listEquals(a, b)) { r = r + 1; }
             if (listEquals[String with CIEq](a, b)) { r = r + 10; }
             return r;
           }"#,
    );
    assert_eq!(v, "10");
}

#[test]
fn shortest_paths_pq_handles_duplicate_weights() {
    // The TreeMap frontier of Figure 4 merges equal accumulated weights;
    // the PriorityQueue version is robust to them.
    let (_, out) = run_ok(
        "void main() {
           Graph g = new Graph();
           Vertex s = g.addVertex();
           Vertex a = g.addVertex();
           Vertex b = g.addVertex();
           Vertex t = g.addVertex();
           g.addEdge(s, a, 1.0);
           g.addEdge(s, b, 1.0);   // duplicate accumulated weight 1.0
           g.addEdge(a, t, 1.0);
           g.addEdge(b, t, 5.0);
           HashMap[Vertex, double] dist =
               ShortestPaths[Vertex, Edge, double with TropicalRing](s);
           println(dist.get(a));
           println(dist.get(b));
           println(dist.get(t));
         }",
    );
    assert_eq!(out, "1.0\n1.0\n2.0\n");
}

#[test]
fn weighted_entry_ordering_is_model_dependent() {
    let (_, out) = run_ok(
        "void main() {
           PriorityQueue[WeightedEntry[int, String]] pq =
               new PriorityQueue[WeightedEntry[int, String]]();
           pq.push(new WeightedEntry[int, String](3, \"c\"));
           pq.push(new WeightedEntry[int, String](1, \"a\"));
           pq.push(new WeightedEntry[int, String](2, \"b\"));
           while (!pq.isEmpty()) { print(pq.pop().v); }
         }",
    );
    assert_eq!(out, "abc");
}
