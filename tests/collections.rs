//! Behavioral tests for the Genus-source collections framework (§8.1).

// Every program in this suite runs on BOTH engines (AST interpreter and
// bytecode VM) with a divergence check — the differential harness.
use genus_repro::run_differential_with_stdlib as run_with_stdlib;

fn run_ok(src: &str) -> (String, String) {
    match run_with_stdlib(src) {
        Ok(r) => (r.rendered_value, r.output),
        Err(e) => panic!("program failed:\n{e}"),
    }
}

#[test]
fn arraylist_grows_and_indexes() {
    let (v, _) = run_ok(
        "int main() {
           ArrayList[int] l = new ArrayList[int]();
           for (int i = 0; i < 100; i = i + 1) { l.add(i * 2); }
           int s = 0;
           for (int x : l) { s = s + x; }
           return s + l.get(99) - l.get(0);
         }",
    );
    assert_eq!(v, (9900 + 198).to_string());
}

#[test]
fn arraylist_set_remove_indexof() {
    let (v, _) = run_ok(
        "int main() {
           ArrayList[String] l = new ArrayList[String]();
           l.add(\"a\"); l.add(\"b\"); l.add(\"c\");
           l.set(1, \"B\");
           int i = l.indexOf(\"B\");
           l.removeAt(0);
           boolean gone = l.remove(\"c\");
           int code = 0;
           if (gone) { code = 100; }
           return code + i * 10 + l.size();
         }",
    );
    assert_eq!(v, "111");
}

#[test]
fn linkedlist_matches_arraylist() {
    let (v, _) = run_ok(
        "int main() {
           LinkedList[int] l = new LinkedList[int]();
           l.add(2); l.add(3); l.addFirst(1);
           int s = 0;
           for (int x : l) { s = s * 10 + x; }
           l.removeFirst();
           l.removeLast();
           return s * 10 + l.get(0);
         }",
    );
    assert_eq!(v, "1232");
}

#[test]
fn linkedlist_remove_by_equality() {
    let (v, _) = run_ok(
        "int main() {
           LinkedList[String] l = new LinkedList[String]();
           l.add(\"x\"); l.add(\"y\"); l.add(\"x\");
           boolean r = l.remove(\"x\");
           int n = l.indexOf(\"x\");
           int code = 0;
           if (r) { code = 100; }
           return code + n * 10 + l.size();
         }",
    );
    assert_eq!(v, "112");
}

#[test]
fn hashmap_puts_gets_removes_grows() {
    let (v, _) = run_ok(
        "int main() {
           HashMap[int, int] m = new HashMap[int, int]();
           for (int i = 0; i < 200; i = i + 1) { m.put(i, i * i); }
           for (int i = 0; i < 100; i = i + 1) { m.removeKey(i); }
           int hit = 0;
           if (m.containsKey(150) && !m.containsKey(50)) { hit = 1; }
           return hit * 100000 + m.get(140) + m.size();
         }",
    );
    assert_eq!(v, (100000 + 140 * 140 + 100).to_string());
}

#[test]
fn hashmap_string_keys() {
    let (v, _) = run_ok(
        "int main() {
           HashMap[String, int] m = new HashMap[String, int]();
           m.put(\"one\", 1);
           m.put(\"two\", 2);
           m.put(\"one\", 11);
           return m.get(\"one\") * 10 + m.get(\"two\");
         }",
    );
    assert_eq!(v, "112");
}

#[test]
fn hashset_dedups() {
    let (v, _) = run_ok(
        "int main() {
           HashSet[int] s = new HashSet[int]();
           for (int i = 0; i < 50; i = i + 1) { s.add(i % 10); }
           int n = 0;
           for (int x : s) { n = n + 1; }
           boolean r = s.remove(3);
           int code = 0;
           if (r && !s.contains(3)) { code = 1000; }
           return code + n * 10 + s.size();
         }",
    );
    assert_eq!(v, "1109");
}

#[test]
fn treemap_sorts_keys() {
    let (_, out) = run_ok(
        "void main() {
           TreeMap[int, String] m = new TreeMap[int, String]();
           m.put(5, \"e\"); m.put(1, \"a\"); m.put(3, \"c\");
           m.put(2, \"b\"); m.put(4, \"d\");
           Iterator[int] it = m.keyIterator();
           while (it.hasNext()) { print(it.next()); }
           println(\"\");
           m.removeKey(3);
           Iterator[int] it2 = m.keyIterator();
           while (it2.hasNext()) { print(it2.next()); }
         }",
    );
    assert_eq!(out, "12345\n1245");
}

#[test]
fn treemap_poll_first_drains_in_order() {
    let (_, out) = run_ok(
        "void main() {
           TreeMap[int, int] m = new TreeMap[int, int]();
           m.put(3, 30); m.put(1, 10); m.put(2, 20);
           while (m.size() > 0) {
             MapEntry[int, int] e = m.pollFirstEntry();
             print(e.getKey());
             print(\":\");
             print(e.getValue());
             print(\" \");
           }
         }",
    );
    assert_eq!(out, "1:10 2:20 3:30 ");
}

#[test]
fn treeset_sorted_iteration_and_first() {
    let (_, out) = run_ok(
        "void main() {
           TreeSet[String] s = new TreeSet[String]();
           s.add(\"pear\"); s.add(\"apple\"); s.add(\"orange\");
           println(s.first());
           for (String x : s) { println(x); }
         }",
    );
    assert_eq!(out, "apple\napple\norange\npear\n");
}

#[test]
fn treeset_with_reverse_ordering_model() {
    let (_, out) = run_ok(
        "void main() {
           TreeSet[int with ReverseCmp[int]] s = new TreeSet[int with ReverseCmp[int]]();
           s.add(1); s.add(3); s.add(2);
           for (int x : s) { print(x); }
         }",
    );
    assert_eq!(out, "321");
}

#[test]
fn collections_are_polymorphic_through_interfaces() {
    let (v, _) = run_ok(
        "int total(Collection[int] c) {
           int s = 0;
           for (int x : c) { s = s + x; }
           return s;
         }
         int main() {
           ArrayList[int] a = new ArrayList[int]();
           a.add(1); a.add(2);
           LinkedList[int] l = new LinkedList[int]();
           l.add(3); l.add(4);
           HashSet[int] h = new HashSet[int]();
           h.add(5);
           return total(a) + total(l) + total(h);
         }",
    );
    assert_eq!(v, "15");
}

#[test]
fn map_interface_dynamic_dispatch() {
    let (v, _) = run_ok(
        "int probe(Map[int, int] m) {
           m.put(1, 10);
           m.put(2, 20);
           return m.get(1) + m.get(2) + m.size();
         }
         int main() {
           int viaHash = probe(new HashMap[int, int]());
           int viaTree = probe(new TreeMap[int, int]());
           return viaHash + viaTree;
         }",
    );
    assert_eq!(v, "64");
}

#[test]
fn primitive_storage_in_generic_collections() {
    // ArrayList[double] stores unboxed doubles; summing is exact.
    let (v, _) = run_ok(
        "double main() {
           ArrayList[double] l = new ArrayList[double]();
           for (int i = 0; i < 64; i = i + 1) { l.add(0.5); }
           double s = 0.0;
           for (double x : l) { s = s + x; }
           return s;
         }",
    );
    assert_eq!(v, "32.0");
}

#[test]
fn generic_sort_method_over_lists() {
    let (_, out) = run_ok(
        "void sort[T](List[T] l) where Comparable[T] {
           int n = l.size();
           for (int i = 1; i < n; i = i + 1) {
             T x = l.get(i);
             int j = i;
             while (j > 0 && l.get(j - 1).compareTo(x) > 0) {
               l.set(j, l.get(j - 1));
               j = j - 1;
             }
             l.set(j, x);
           }
         }
         void main() {
           ArrayList[int] xs = new ArrayList[int]();
           xs.add(3); xs.add(1); xs.add(2);
           sort(xs);
           for (int x : xs) { print(x); }
           ArrayList[String] ss = new ArrayList[String]();
           ss.add(\"b\"); ss.add(\"a\");
           sort(ss);
           for (String s : ss) { print(s); }
         }",
    );
    assert_eq!(out, "123ab");
}

#[test]
fn nested_generics() {
    let (v, _) = run_ok(
        "int main() {
           ArrayList[ArrayList[int]] grid = new ArrayList[ArrayList[int]]();
           for (int i = 0; i < 3; i = i + 1) {
             ArrayList[int] row = new ArrayList[int]();
             for (int j = 0; j < 3; j = j + 1) { row.add(i * 3 + j); }
             grid.add(row);
           }
           int s = 0;
           for (ArrayList[int] row : grid) {
             for (int x : row) { s = s + x; }
           }
           return s;
         }",
    );
    assert_eq!(v, "36");
}
