//! Deeper model-system semantics: self-enablement, inheritance overrides,
//! enrichment visibility, and model-dependent behavior differences.

// Every program in this suite runs on BOTH engines (AST interpreter and
// bytecode VM) with a divergence check — the differential harness.
use genus_repro::run_differential_with_stdlib as run_with_stdlib;

fn run_ok(src: &str) -> (String, String) {
    match run_with_stdlib(src) {
        Ok(r) => (r.rendered_value, r.output),
        Err(e) => panic!("program failed:\n{e}"),
    }
}

#[test]
fn model_is_enabled_inside_its_own_body() {
    // Enablement source 4 (§4.4): within a model's definition, the model
    // itself is a default candidate — here the recursive rendering of a
    // nested structure resolves Render[Tree] to the enclosing model.
    let (_, out) = run_ok(
        "class Tree {
           int value;
           Tree left;
           Tree right;
           Tree(int value) { this.value = value; }
         }
         constraint Render[T] { String render(); }
         String renderAny[T](T x) where Render[T] {
           return x.render();
         }
         model TreeRender for Render[Tree] {
           String render() {
             String s = \"\" + value;
             if (left != null) { s = renderAny(left) + \" \" + s; }
             if (right != null) { s = s + \" \" + renderAny(right); }
             return s;
           }
         }
         void main() {
           Tree root = new Tree(2);
           root.left = new Tree(1);
           root.right = new Tree(3);
           println(renderAny[Tree with TreeRender](root));
         }",
    );
    assert_eq!(out, "1 2 3\n");
}

#[test]
fn inheriting_model_overrides_inherited_definitions() {
    let (_, out) = run_ok(
        "constraint Greet[T] { String greet(); }
         class Person {
           String name;
           Person(String name) { this.name = name; }
         }
         model Plain for Greet[Person] {
           String greet() { return \"hi \" + name; }
         }
         model Fancy for Greet[Person] extends Plain {
           String greet() { return \"good day, \" + name; }
         }
         void main() {
           Person p = new Person(\"ada\");
           println(p.(Plain.greet)());
           println(p.(Fancy.greet)());
         }",
    );
    assert_eq!(out, "hi ada\ngood day, ada\n");
}

#[test]
fn inherited_definitions_visible_through_child_model() {
    let (_, out) = run_ok(
        "constraint Pair[T] { String first(); String second(); }
         class Duo { Duo() { } }
         model Base for Pair[Duo] {
           String first() { return \"base-first\"; }
           String second() { return \"base-second\"; }
         }
         model Child for Pair[Duo] extends Base {
           String second() { return \"child-second\"; }
         }
         void main() {
           Duo d = new Duo();
           println(d.(Child.first)());
           println(d.(Child.second)());
         }",
    );
    assert_eq!(out, "base-first\nchild-second\n");
}

#[test]
fn enrichment_applies_to_inherited_uses_too() {
    // RectangleIntersect extends ShapeIntersect; the Triangle enrichment of
    // the parent is visible through the child (it is part of the parent's
    // method set).
    let (_, out) = run_ok(
        "void main() {
           Shape t = new Triangle();
           Shape c = new Circle();
           println(t.(ShapeIntersect.intersect)(c));
         }",
    );
    assert!(out.starts_with("tri*circle"), "{out}");
}

#[test]
fn same_algorithm_different_models_different_results() {
    // One generic algorithm; three models; three answers (§4.3's point
    // about expressive power from non-unique witnesses).
    let (_, out) = run_ok(
        "T fold[T](T[] xs) where OrdRing[T] {
           T acc = T.one();
           for (T x : xs) { acc = acc.times(x); }
           return acc;
         }
         model MaxPlus for OrdRing[double] {
           static double zero() { return 0.0 - 1.0 / 0.0; }
           static double one() { return 0.0; }
           double plus(double that) { return this.max(that); }
           double times(double that) { return this + that; }
           int compareTo(double that) { return this.compareTo(that); }
           boolean equals(double that) { return this == that; }
         }
         void main() {
           double[] xs = new double[3];
           xs[0] = 2.0; xs[1] = 3.0; xs[2] = 4.0;
           println(fold(xs));                               // natural: product
           println(fold[double with TropicalRing](xs));     // min-plus: sum
           println(fold[double with MaxPlus](xs));          // max-plus: sum
         }",
    );
    assert_eq!(out, "24.0\n9.0\n9.0\n");
}

#[test]
fn treemap_key_type_uses_model_from_where_clause() {
    // A generic class whose TreeMap field orders by the class's witness —
    // the chain class-where → field type → TreeMap behavior.
    let (_, out) = run_ok(
        "class Ranking[T where Comparable[T] c] {
           TreeMap[T, int with c] scores;
           Ranking() { scores = new TreeMap[T, int with c](); }
           void record(T item, int score) { scores.put(item, score); }
           T best() { return scores.firstKey(); }
         }
         void main() {
           Ranking[int] lowFirst = new Ranking[int]();
           lowFirst.record(5, 1); lowFirst.record(2, 9);
           Ranking[int with ReverseCmp[int]] highFirst =
               new Ranking[int with ReverseCmp[int]]();
           highFirst.record(5, 1); highFirst.record(2, 9);
           println(lowFirst.best());
           println(highFirst.best());
         }",
    );
    assert_eq!(out, "2\n5\n");
}

#[test]
fn natural_model_requires_conformant_signature_not_just_name() {
    let e = run_with_stdlib(
        "class Odd {
           Odd() { }
           // Wrong arity for Eq's equals(T).
           boolean equals(Odd a, Odd b) { return true; }
         }
         boolean same[T](T a, T b) where Eq[T] { return a.equals(b); }
         void main() { same(new Odd(), new Odd()); }",
    )
    .unwrap_err();
    assert!(e.contains("no model found"), "{e}");
}

#[test]
fn contravariant_entailment_at_call_sites() {
    // A witness for Eq[Shape] serves where Eq[Circle] is required (§5.2).
    let (v, _) = run_ok(
        "model ShapeKindEq for Eq[Shape] {
           boolean equals(Shape other) { return kind.equals(other.kind); }
         }
         boolean same[T](T a, T b) where Eq[T] { return a.equals(b); }
         int main() {
           Circle a = new Circle();
           Circle b = new Circle();
           if (same[Circle with ShapeKindEq](a, b)) { return 1; }
           return 0;
         }",
    );
    assert_eq!(v, "1");
}
