//! Integration tests for incremental compile sessions at the facade
//! level: dependency-directed invalidation across `import` modules,
//! verdict-LRU eviction accounting, and parity between warm re-checks
//! and from-scratch one-shot checks.

use genus_repro::{CompileSession, Compiler, Engine, Limits};

/// Four closed modules in two independent import pairs:
/// `base <-> dep` and `sib <-> sib2`. Mutual imports keep every unit
/// closed (a unit with no imports is open, and open units are visible
/// everywhere, which would defeat dependency-directed invalidation).
const BASE: &str = "import dep;\nclass Base { Base() { } int id() { return 1; } }\n";
const DEP: &str =
    "import base;\nclass Dep { Dep() { } int callBase() { return new Base().id(); } }\n";
const SIB: &str = "import sib2;\nclass Sib { Sib() { } int s() { return new Sib2().t(); } }\n";
const SIB2: &str = "import sib;\nclass Sib2 { Sib2() { } int t() { return 2; } }\n";

fn module_session() -> CompileSession {
    let mut s = CompileSession::new();
    s.update_source("base.genus", BASE);
    s.update_source("dep.genus", DEP);
    s.update_source("sib.genus", SIB);
    s.update_source("sib2.genus", SIB2);
    s
}

#[test]
fn interface_edit_invalidates_dependents_not_siblings() {
    let mut s = module_session();
    assert!(!s.check().has_errors());
    let before = s.stats();
    // Interface edit: `int id()` becomes `long id()`. `dep` must be
    // re-checked (its import's interface changed — and now mis-types);
    // the sibling pair's verdicts survive the prefix rebuild via the
    // verdict LRU.
    s.update_source(
        "base.genus",
        "import dep;\nclass Base { Base() { } long id() { return 1; } }\n",
    );
    let report = s.check();
    assert!(report.has_errors(), "long -> int narrowing in dep");
    let after = s.stats();
    assert_eq!(
        after.units_rechecked - before.units_rechecked,
        2,
        "exactly base + dep re-check: {after:?}"
    );
    assert!(
        after.units_restored - before.units_restored >= 3,
        "prelude + sib + sib2 restored from the LRU: {after:?}"
    );
}

#[test]
fn body_edit_keeps_the_semantic_prefix() {
    let mut s = module_session();
    assert!(!s.check().has_errors());
    let before = s.stats();
    // Body-only edit: same interface fingerprint, so the collect/wf
    // prefix is patched in place and only `base` itself re-checks.
    s.update_source(
        "base.genus",
        "import dep;\nclass Base { Base() { } int id() { return 2; } }\n",
    );
    assert!(!s.check().has_errors());
    let after = s.stats();
    assert_eq!(after.prefix_rebuilt, before.prefix_rebuilt, "prefix reused");
    assert_eq!(after.units_patched - before.units_patched, 1);
    assert_eq!(after.units_rechecked - before.units_rechecked, 1);
    assert_eq!(after.units_reused - before.units_reused, 4, "{after:?}");
}

#[test]
fn verdict_lru_eviction_is_counted_and_harmless() {
    let mut s = CompileSession::new();
    // Cycle through more distinct programs than the verdict LRU holds.
    // Every check stays correct; the eviction counter records the cap.
    for i in 0..140u32 {
        s.update_source("main.genus", &format!("int main() {{ return {i}; }}"));
        assert!(!s.check().has_errors(), "iteration {i}");
    }
    let stats = s.stats();
    assert!(
        stats.verdict_evictions > 0,
        "cycling 140 programs must evict: {stats:?}"
    );
    // A fresh-looking old version is simply re-checked, not corrupted.
    s.update_source("main.genus", "int main() { return 0; }");
    let mut runner = s;
    let r = runner.run(Engine::Vm, Limits::default()).unwrap();
    assert_eq!(r.rendered_value, "0");
}

#[test]
fn warm_recheck_diagnostics_match_one_shot() {
    // A program with both a warning and (after the edit) an error.
    let v1 = "int main() { int unused = 1; return 3; }";
    let v2 = "int main() { int unused = 1; return nope; }";
    let mut s = CompileSession::with_stdlib();
    s.update_source("main.genus", v1);
    s.check();
    s.update_source("main.genus", v2);
    let warm = s.check();
    let scratch = Compiler::new().with_stdlib().source("main.genus", v2);
    let report = scratch.check_report();
    assert_eq!(
        warm.diags, report.diags,
        "warm == from-scratch, byte for byte"
    );
}

#[test]
fn import_errors_have_stable_codes_at_the_facade() {
    let mut s = CompileSession::new();
    s.update_source("main.genus", "import nowhere;\nint main() { return 1; }");
    let r = s.check();
    assert_eq!(r.diags.len(), 1, "{:?}", r.diags);
    assert_eq!(r.diags[0].code, "E0801");
    // Referencing a module that exists but was not imported is E0802.
    s.update_source("util.genus", "import main;\nclass Util { Util() { } }");
    s.update_source(
        "main.genus",
        "import util;\nint main() { Util u = new Util(); return 1; }",
    );
    let r = s.check();
    assert!(!r.has_errors(), "{:?}", r.diags);
    s.update_source("extra.genus", "import main;\nclass Extra { Extra() { } }");
    s.update_source(
        "main.genus",
        "import util;\nint main() { Extra e = new Extra(); return 1; }",
    );
    let r = s.check();
    assert!(
        r.diags.iter().any(|d| d.code == "E0802"),
        "unimported reference: {:?}",
        r.diags
    );
}
