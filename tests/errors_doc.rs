//! Keeps `docs/ERRORS.md` and the code registry in lock-step: every
//! registered code must be documented (heading, matching title, phase
//! line, and a triggering-program fence), and every documented code must
//! be registered. Renaming, adding, or removing a code without updating
//! the index fails here.

use genus_repro::codes::REGISTRY;

fn doc() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/docs/ERRORS.md");
    std::fs::read_to_string(path).expect("docs/ERRORS.md must exist")
}

/// The `## CODE: title` headings in the doc, in order.
fn doc_headings(doc: &str) -> Vec<(&str, &str)> {
    doc.lines()
        .filter_map(|l| l.strip_prefix("## "))
        .filter_map(|h| h.split_once(": "))
        .collect()
}

#[test]
fn every_registered_code_is_documented() {
    let doc = doc();
    let headings = doc_headings(&doc);
    for info in REGISTRY {
        let Some((_, title)) = headings.iter().find(|(c, _)| *c == info.code) else {
            panic!(
                "code {} is registered but missing from docs/ERRORS.md",
                info.code
            );
        };
        assert_eq!(
            *title, info.title,
            "docs/ERRORS.md title for {} drifted from the registry",
            info.code
        );
    }
}

#[test]
fn every_documented_code_is_registered_with_its_phase() {
    let doc = doc();
    let headings = doc_headings(&doc);
    assert_eq!(
        headings.len(),
        REGISTRY.len(),
        "docs/ERRORS.md documents a different number of codes than the registry"
    );
    for (code, _) in &headings {
        let info = genus_repro::codes::lookup(code)
            .unwrap_or_else(|| panic!("docs/ERRORS.md documents unregistered code {code}"));
        // The section must state the emitting phase recorded in the registry.
        let section = section_of(&doc, code);
        assert!(
            section.contains(&format!("Phase: `{}`", info.phase)),
            "section for {code} must contain `Phase: `{}``",
            info.phase
        );
        assert!(
            section.contains("```genus"),
            "section for {code} must show a triggering program in a ```genus fence"
        );
    }
}

/// The doc text between a code's heading and the next heading.
fn section_of<'a>(doc: &'a str, code: &str) -> &'a str {
    let start = doc.find(&format!("## {code}: ")).expect("heading exists");
    let rest = &doc[start..];
    match rest[3..].find("\n## ") {
        Some(end) => &rest[..end + 3],
        None => rest,
    }
}

/// Tiered execution introduces **no** new runtime codes: Tier 2 reuses
/// the engines' shared error identities verbatim, so the runtime
/// registry stays exactly R0001–R0010. If a tier (or any engine) ever
/// grows a new trap, it must be registered, documented, AND produced
/// identically by every engine — this assertion is the tripwire.
#[test]
fn runtime_registry_is_exactly_r0001_to_r0010() {
    let runtime: Vec<&str> = REGISTRY
        .iter()
        .filter(|i| i.code.starts_with('R'))
        .map(|i| i.code)
        .collect();
    let expected: Vec<String> = (1..=10).map(|n| format!("R{n:04}")).collect();
    assert_eq!(
        runtime,
        expected.iter().map(String::as_str).collect::<Vec<_>>(),
        "runtime error codes changed: update docs/ERRORS.md and verify \
         three-way engine parity for the new code"
    );
}

#[test]
fn doc_order_follows_the_registry() {
    let doc = doc();
    let headings = doc_headings(&doc);
    let doc_codes: Vec<&str> = headings.iter().map(|(c, _)| *c).collect();
    let reg_codes: Vec<&str> = REGISTRY.iter().map(|i| i.code).collect();
    assert_eq!(
        doc_codes, reg_codes,
        "docs/ERRORS.md must list codes in registry order"
    );
}
