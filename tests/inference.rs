//! Tests for §4.7's two-stage inference: type arguments and *intrinsic*
//! constraint witnesses (those occurring in parameter types) are solved by
//! unification; *extrinsic* witnesses go through default model resolution.

// Every program in this suite runs on BOTH engines (AST interpreter and
// bytecode VM) with a divergence check — the differential harness.
use genus_repro::run_differential_with_stdlib as run_with_stdlib;

fn run_ok(src: &str) -> (String, String) {
    match run_with_stdlib(src) {
        Ok(r) => (r.rendered_value, r.output),
        Err(e) => panic!("program failed:\n{e}"),
    }
}

#[test]
fn intrinsic_witness_unified_from_argument_type() {
    // `h` appears in the parameter type `HashSet[T with h]`, so it is
    // INTRINSIC: the call site's set type determines it by unification —
    // default resolution (which would pick the natural model) never runs.
    let (v, _) = run_ok(
        r#"model CIHash for Hashable[String] {
             boolean equals(String str) { return equalsIgnoreCase(str); }
             int hashCode() { return toLowerCase().hashCode(); }
           }
           boolean sameUnder[T where Hashable[T] h](HashSet[T with h] s, T a, T b) {
             // a.equals(b) dispatches through h — whatever the set uses.
             return a.equals(b);
           }
           int main() {
             HashSet[String with CIHash] ci = new HashSet[String with CIHash]();
             HashSet[String] cs = new HashSet[String]();
             int r = 0;
             if (sameUnder(ci, "x", "X")) { r = r + 1; }   // h = CIHash
             if (sameUnder(cs, "x", "X")) { r = r + 10; }  // h = natural
             return r;
           }"#,
    );
    assert_eq!(v, "1");
}

#[test]
fn extrinsic_witness_resolved_by_default() {
    // `Printable`-style extrinsic constraint: no parameter type mentions the
    // witness, so it resolves by default (here, the natural model).
    let (_, out) = run_ok(
        "constraint Show[T] { String toString(); }
         void showAll[T](ArrayList[T] l) where Show[T] {
           for (T x : l) { println(x.toString()); }
         }
         void main() {
           ArrayList[int] xs = new ArrayList[int]();
           xs.add(4); xs.add(2);
           showAll(xs);
         }",
    );
    assert_eq!(out, "4\n2\n");
}

#[test]
fn type_argument_inferred_through_container_lifting() {
    // The argument is an ArrayList but the parameter is List[T]: inference
    // lifts the argument to the parameter's class before unifying.
    let (v, _) = run_ok(
        "int count[T](List[T] l) { return l.size(); }
         int main() {
           ArrayList[String] a = new ArrayList[String]();
           a.add(\"x\");
           LinkedList[int] b = new LinkedList[int]();
           b.add(1); b.add(2);
           return count(a) * 10 + count(b);
         }",
    );
    assert_eq!(v, "12");
}

#[test]
fn uninferable_type_argument_requires_explicit() {
    let e = run_with_stdlib(
        "T make[T]() { return T.default(); }
         void main() { make(); }",
    )
    .unwrap_err();
    assert!(e.contains("cannot infer type argument"), "{e}");
}

#[test]
fn explicit_instantiation_fixes_uninferable() {
    let (v, _) = run_ok(
        "T make[T]() { return T.default(); }
         int main() {
           int x = make[int]();
           String s = make[String]();
           if (s == null) { return x + 1; }
           return -1;
         }",
    );
    assert_eq!(v, "1");
}

#[test]
fn two_witnesses_for_one_constraint_need_expanders() {
    // With two enabled witnesses for GraphLike[V,E], the elided call is
    // ambiguous; explicit expanders disambiguate (§4.1, §4.4).
    let e = run_with_stdlib(
        "int f[V, E](V v) where GraphLike[V, E] g, GraphLike[V, E] h {
           int n = 0;
           for (E e : v.outgoingEdges()) { n = n + 1; }
           return n;
         }
         void main() { }",
    )
    .unwrap_err();
    assert!(e.contains("ambiguous"), "{e}");

    let (v, _) = run_ok(
        "int f[V, E](V v) where GraphLike[V, E] g, GraphLike[V, E] h {
           int n = 0;
           for (E e : v.(g.outgoingEdges)()) { n = n + 1; }
           for (E e : v.(h.outgoingEdges)()) { n = n + 10; }
           return n;
         }
         int main() {
           Graph gr = new Graph();
           Vertex a = gr.addVertex();
           Vertex b = gr.addVertex();
           gr.addEdge(a, b, 1.0);
           return f[Vertex, Edge](a);
         }",
    );
    // Both witnesses are the natural model here: 1 edge each way.
    assert_eq!(v, "11");
}

#[test]
fn static_ops_route_through_the_right_witness() {
    let (_, out) = run_ok(
        "W unit[W]() where OrdRing[W] {
           return W.one();
         }
         void main() {
           println(unit[double with TropicalRing]());
           println(unit[double]());
         }",
    );
    // Tropical one() = 0.0; natural one() = 1.0.
    assert_eq!(out, "0.0\n1.0\n");
}

#[test]
fn model_arguments_flow_through_virtual_dispatch() {
    // The method-level witness chosen at the call site reaches the
    // dynamically dispatched implementation.
    let (v, _) = run_ok(
        r#"model CIEq for Eq[String] {
             boolean equals(String str) { return equalsIgnoreCase(str); }
           }
           int main() {
             List[String] l = new ArrayList[String]();
             l.add("Hello");
             boolean cs = l.contains("HELLO");
             boolean ci = l.contains[with CIEq]("HELLO");
             int r = 0;
             if (cs) { r = r + 1; }
             if (ci) { r = r + 10; }
             return r;
           }"#,
    );
    assert_eq!(v, "10");
}
