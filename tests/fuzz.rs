//! Integration tests for `genus-fuzz`: generator validity, loop
//! determinism, coverage signal, and the catch → minimize → report
//! path (via a planted bug).

use genus_fuzz::{fuzz, pipeline, FuzzConfig, FuzzReport, Verdict};
use std::sync::Arc;

/// Every *generated* program must type-check: the generator is
/// well-typed by construction, so a reject here is a generator bug.
#[test]
fn generated_programs_compile() {
    for seed in 0..40u64 {
        let src = genus_fuzz::generate(seed);
        let report = pipeline::compile(&src);
        assert!(
            report.program.is_some(),
            "seed {seed} generated an ill-typed program:\n{}\n--- diagnostics ---\n{}",
            src,
            report.render_errors_short()
        );
    }
}

/// Generated programs must also *run* cleanly through the whole oracle
/// suite (passing or fuel-skipping, never diverging or rejecting).
#[test]
fn generated_programs_pass_oracles() {
    for seed in 0..12u64 {
        let src = genus_fuzz::generate(seed);
        match genus_fuzz::replay(&src, 100_000) {
            Verdict::Pass | Verdict::ResourceSkip => {}
            v => panic!("seed {seed}: oracle verdict {v:?} on\n{src}"),
        }
    }
}

fn run_with_seed(seed: u64, cases: u64) -> FuzzReport {
    fuzz(FuzzConfig {
        seed,
        cases,
        ..FuzzConfig::default()
    })
    .expect("in-memory fuzz run cannot fail on IO")
}

/// Same seed + same (empty) corpus ⇒ identical corpus contents, edge
/// counts, and case statistics across two runs.
#[test]
fn fuzz_loop_is_deterministic() {
    let a = run_with_seed(7, 30);
    let b = run_with_seed(7, 30);
    assert_eq!(a.total_edges, b.total_edges);
    assert_eq!(a.corpus_len, b.corpus_len);
    assert_eq!(a.generated, b.generated);
    assert_eq!(a.mutated, b.mutated);
    assert_eq!(a.compile_rejects, b.compile_rejects);
    assert_eq!(a.resource_skips, b.resource_skips);
    assert!(
        a.crashes.is_empty(),
        "unexpected divergence: {}",
        a.summary()
    );
    assert!(b.crashes.is_empty());
    // And the run actually produced a coverage signal.
    assert!(a.new_edges > 0, "no coverage feedback: {}", a.summary());
    assert!(
        a.corpus_len > 0,
        "nothing entered the corpus: {}",
        a.summary()
    );
}

/// A planted "bug" (a textual predicate standing in for a real engine
/// divergence) is caught by the loop and minimized to a small repro
/// that still triggers the predicate and still compiles.
#[test]
fn planted_bug_is_caught_and_minimized() {
    // `1013` never appears in generated programs (literals stay within
    // ±1000); it is one of the constant-tweak mutation's boundary
    // values, so only the mutation path can plant it.
    let planted = |src: &str| src.contains("1013");
    let report = fuzz(FuzzConfig {
        seed: 1,
        cases: 400,
        planted: Some(Arc::new(planted)),
        ..FuzzConfig::default()
    })
    .expect("in-memory fuzz run cannot fail on IO");
    assert!(
        !report.crashes.is_empty(),
        "planted bug never triggered: {}",
        report.summary()
    );
    let crash = &report.crashes[0];
    assert_eq!(crash.oracle, "planted");
    assert!(planted(&crash.minimized), "minimized repro lost the bug");
    assert!(
        pipeline::compile(&crash.minimized).program.is_some(),
        "minimized repro no longer compiles:\n{}",
        crash.minimized
    );
    let lines = crash.minimized.lines().count();
    assert!(
        lines < 15,
        "repro not minimal ({lines} lines):\n{}",
        crash.minimized
    );
}

/// Regression: a model for an unresolved constraint used to build an
/// arity-inconsistent placeholder instantiation, which panicked the
/// checker ("arity mismatch in substitution") when the model body
/// called methods through the enabled-model context. Found by the
/// fuzzer's minimizer; must produce diagnostics, not a panic.
#[test]
fn model_for_unknown_constraint_diagnoses_instead_of_panicking() {
    let src = "model StrRank for Rank[String] {\n    \
               int rank() { return ((this.compareTo(\"m\") * 5) + this.length()); }\n\
               }\n\
               int total[T](List[T] xs) where Rank[T] {\n}\n\
               int main() {\n}\n";
    let report = pipeline::compile(src);
    assert!(report.program.is_none(), "ill-formed program was accepted");
}

/// The replay entry point agrees with the loop's verdicts on a known
/// sample (used by CI to re-check checked-in crash repros).
#[test]
fn replay_passes_on_shipped_samples() {
    for sample in [
        "hello",
        "word_count",
        "existential_registry",
        "ci_word_count",
        "comparator_sort",
    ] {
        let src = std::fs::read_to_string(format!("samples/{sample}.genus")).unwrap();
        match genus_fuzz::replay(&src, 10_000_000) {
            Verdict::Pass => {}
            v => panic!("{sample}: {v:?}"),
        }
    }
}
