//! Pretty-printer for the Genus AST.
//!
//! Output is valid Genus source: `parse(pretty(parse(s)))` equals
//! `parse(s)` structurally, which the test suite checks by property.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole program back to Genus source.
pub fn program_to_string(p: &Program) -> String {
    let mut pr = Printer::default();
    for i in &p.imports {
        let _ = writeln!(pr.out, "import {};", i.name.as_str());
    }
    if !p.imports.is_empty() {
        pr.out.push('\n');
    }
    for d in &p.decls {
        pr.decl(d);
        pr.out.push('\n');
    }
    pr.out
}

/// Renders one type.
pub fn ty_to_string(t: &Ty) -> String {
    let mut pr = Printer::default();
    pr.ty(t);
    pr.out
}

/// Renders one expression.
pub fn expr_to_string(e: &Expr) -> String {
    let mut pr = Printer::default();
    pr.expr(e);
    pr.out
}

/// Renders one model expression.
pub fn model_expr_to_string(m: &ModelExpr) -> String {
    let mut pr = Printer::default();
    pr.model_expr(m);
    pr.out
}

#[derive(Default)]
struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn nl(&mut self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }

    fn decl(&mut self, d: &Decl) {
        match d {
            Decl::Class(c) => self.class(c),
            Decl::Interface(i) => self.interface(i),
            Decl::Constraint(c) => self.constraint(c),
            Decl::Model(m) => self.model(m),
            Decl::Enrich(e) => self.enrich(e),
            Decl::Use(u) => self.use_decl(u),
            Decl::Method(m) => self.method(m),
        }
    }

    fn generic_sig(&mut self, g: &GenericSig) {
        if g.is_empty() {
            return;
        }
        self.out.push('[');
        for (i, tp) in g.type_params.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.out.push_str(tp.name.as_str());
            if let Some(b) = &tp.bound {
                self.out.push_str(" extends ");
                self.ty(b);
            }
        }
        if !g.wheres.is_empty() {
            if !g.type_params.is_empty() {
                self.out.push(' ');
            }
            self.out.push_str("where ");
            self.wheres(&g.wheres);
        }
        self.out.push(']');
    }

    fn wheres(&mut self, ws: &[WhereBinding]) {
        for (i, w) in ws.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.constraint_ref(&w.constraint);
            if let Some(v) = w.var {
                let _ = write!(self.out, " {v}");
            }
        }
    }

    fn constraint_ref(&mut self, c: &ConstraintRef) {
        self.out.push_str(c.name.as_str());
        if !c.args.is_empty() {
            self.out.push('[');
            for (i, a) in c.args.iter().enumerate() {
                if i > 0 {
                    self.out.push_str(", ");
                }
                self.ty(a);
            }
            self.out.push(']');
        }
    }

    fn ty(&mut self, t: &Ty) {
        match &t.kind {
            TyKind::Prim(p) => self.out.push_str(p.name()),
            TyKind::Named { name, args, models } => {
                self.out.push_str(name.as_str());
                if !args.is_empty() || !models.is_empty() {
                    self.out.push('[');
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            self.out.push_str(", ");
                        }
                        self.ty(a);
                    }
                    if !models.is_empty() {
                        self.out.push_str(" with ");
                        for (i, m) in models.iter().enumerate() {
                            if i > 0 {
                                self.out.push_str(", ");
                            }
                            self.model_expr(m);
                        }
                    }
                    self.out.push(']');
                }
            }
            TyKind::Array(e) => {
                self.ty(e);
                self.out.push_str("[]");
            }
            TyKind::Existential {
                params,
                wheres,
                body,
            } => {
                self.out.push_str("[some ");
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.out.push_str(p.name.as_str());
                    if let Some(b) = &p.bound {
                        self.out.push_str(" extends ");
                        self.ty(b);
                    }
                }
                if !wheres.is_empty() {
                    self.out.push_str(" where ");
                    self.wheres(wheres);
                }
                self.out.push(']');
                self.ty(body);
            }
            TyKind::Wildcard { bound } => {
                self.out.push('?');
                if let Some(b) = bound {
                    self.out.push_str(" extends ");
                    self.ty(b);
                }
            }
        }
    }

    fn model_expr(&mut self, m: &ModelExpr) {
        match m {
            ModelExpr::Named {
                name, args, models, ..
            } => {
                self.out.push_str(name.as_str());
                if !args.is_empty() || !models.is_empty() {
                    self.out.push('[');
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            self.out.push_str(", ");
                        }
                        self.ty(a);
                    }
                    if !models.is_empty() {
                        self.out.push_str(" with ");
                        for (i, mm) in models.iter().enumerate() {
                            if i > 0 {
                                self.out.push_str(", ");
                            }
                            self.model_expr(mm);
                        }
                    }
                    self.out.push(']');
                }
            }
            ModelExpr::Wildcard { .. } => self.out.push('?'),
        }
    }

    fn params(&mut self, ps: &[Param]) {
        self.out.push('(');
        for (i, p) in ps.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.ty(&p.ty);
            let _ = write!(self.out, " {}", p.name);
        }
        self.out.push(')');
    }

    fn class(&mut self, c: &ClassDecl) {
        if c.is_abstract {
            self.out.push_str("abstract ");
        }
        let _ = write!(self.out, "class {}", c.name);
        self.generic_sig(&c.generics);
        if let Some(e) = &c.extends {
            self.out.push_str(" extends ");
            self.ty(e);
        }
        if !c.implements.is_empty() {
            self.out.push_str(" implements ");
            for (i, t) in c.implements.iter().enumerate() {
                if i > 0 {
                    self.out.push_str(", ");
                }
                self.ty(t);
            }
        }
        self.out.push_str(" {");
        self.indent += 1;
        for f in &c.fields {
            self.nl();
            if f.is_static {
                self.out.push_str("static ");
            }
            self.ty(&f.ty);
            let _ = write!(self.out, " {}", f.name);
            if let Some(init) = &f.init {
                self.out.push_str(" = ");
                self.expr(init);
            }
            self.out.push(';');
        }
        for ct in &c.ctors {
            self.nl();
            self.out.push_str(c.name.as_str());
            self.params(&ct.params);
            self.out.push(' ');
            self.block(&ct.body);
        }
        for m in &c.methods {
            self.nl();
            self.method(m);
        }
        self.indent -= 1;
        self.nl();
        self.out.push('}');
    }

    fn interface(&mut self, i: &InterfaceDecl) {
        let _ = write!(self.out, "interface {}", i.name);
        self.generic_sig(&i.generics);
        if !i.extends.is_empty() {
            self.out.push_str(" extends ");
            for (k, t) in i.extends.iter().enumerate() {
                if k > 0 {
                    self.out.push_str(", ");
                }
                self.ty(t);
            }
        }
        self.out.push_str(" {");
        self.indent += 1;
        for m in &i.methods {
            self.nl();
            self.method(m);
        }
        self.indent -= 1;
        self.nl();
        self.out.push('}');
    }

    fn constraint(&mut self, c: &ConstraintDecl) {
        let _ = write!(self.out, "constraint {}[", c.name);
        for (i, p) in c.params.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.out.push_str(p.name.as_str());
        }
        self.out.push(']');
        if !c.extends.is_empty() {
            self.out.push_str(" extends ");
            for (i, e) in c.extends.iter().enumerate() {
                if i > 0 {
                    self.out.push_str(", ");
                }
                self.constraint_ref(e);
            }
        }
        self.out.push_str(" {");
        self.indent += 1;
        for m in &c.methods {
            self.nl();
            if m.is_static {
                self.out.push_str("static ");
            }
            self.ty(&m.ret);
            self.out.push(' ');
            if let Some(r) = m.receiver {
                let _ = write!(self.out, "{r}.");
            }
            self.out.push_str(m.name.as_str());
            self.params(&m.params);
            self.out.push(';');
        }
        self.indent -= 1;
        self.nl();
        self.out.push('}');
    }

    fn model(&mut self, m: &ModelDecl) {
        let _ = write!(self.out, "model {}", m.name);
        self.generic_sig_params_only(&m.generics);
        self.out.push_str(" for ");
        self.constraint_ref(&m.for_constraint);
        if !m.extends.is_empty() {
            self.out.push_str(" extends ");
            for (i, e) in m.extends.iter().enumerate() {
                if i > 0 {
                    self.out.push_str(", ");
                }
                self.model_expr(e);
            }
        }
        if !m.generics.wheres.is_empty() {
            self.out.push_str(" where ");
            let ws = m.generics.wheres.clone();
            self.wheres(&ws);
        }
        self.out.push_str(" {");
        self.indent += 1;
        for d in &m.methods {
            self.nl();
            self.model_method(d);
        }
        self.indent -= 1;
        self.nl();
        self.out.push('}');
    }

    /// Prints only the bracketed type parameters, leaving `where` for the
    /// trailing clause (models read better that way, as in the paper).
    fn generic_sig_params_only(&mut self, g: &GenericSig) {
        if g.type_params.is_empty() {
            return;
        }
        self.out.push('[');
        for (i, tp) in g.type_params.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.out.push_str(tp.name.as_str());
        }
        self.out.push(']');
    }

    fn model_method(&mut self, d: &ModelMethodDef) {
        if d.is_static {
            self.out.push_str("static ");
        }
        self.ty(&d.ret);
        self.out.push(' ');
        if let Some(r) = &d.receiver {
            self.ty(r);
            self.out.push('.');
        }
        self.out.push_str(d.name.as_str());
        self.params(&d.params);
        self.out.push(' ');
        self.block(&d.body);
    }

    fn enrich(&mut self, e: &EnrichDecl) {
        let _ = write!(self.out, "enrich {} {{", e.target);
        self.indent += 1;
        for d in &e.methods {
            self.nl();
            self.model_method(d);
        }
        self.indent -= 1;
        self.nl();
        self.out.push('}');
    }

    fn use_decl(&mut self, u: &UseDecl) {
        self.out.push_str("use ");
        if !u.generics.is_empty() {
            self.generic_sig(&u.generics);
            self.out.push(' ');
        }
        self.model_expr(&u.model);
        if let Some(c) = &u.for_constraint {
            self.out.push_str(" for ");
            self.constraint_ref(c);
        }
        self.out.push(';');
    }

    fn method(&mut self, m: &MethodDecl) {
        if m.is_static {
            self.out.push_str("static ");
        }
        if m.is_native {
            self.out.push_str("native ");
        }
        self.ty(&m.ret);
        let _ = write!(self.out, " {}", m.name);
        self.generic_sig(&m.generics);
        self.params(&m.params);
        match &m.body {
            Some(b) => {
                self.out.push(' ');
                self.block(b);
            }
            None => self.out.push(';'),
        }
    }

    fn block(&mut self, b: &Block) {
        self.out.push('{');
        self.indent += 1;
        for s in &b.stmts {
            self.nl();
            self.stmt(s);
        }
        self.indent -= 1;
        self.nl();
        self.out.push('}');
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Local { ty, name, init } => {
                self.ty(ty);
                let _ = write!(self.out, " {name}");
                if let Some(e) = init {
                    self.out.push_str(" = ");
                    self.expr(e);
                }
                self.out.push(';');
            }
            StmtKind::LocalBind {
                params,
                ty,
                name,
                wheres,
                init,
            } => {
                self.out.push('[');
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.out.push_str(p.name.as_str());
                }
                self.out.push_str("] (");
                self.ty(ty);
                let _ = write!(self.out, " {name})");
                if !wheres.is_empty() {
                    self.out.push_str(" where ");
                    self.wheres(wheres);
                }
                self.out.push_str(" = ");
                self.expr(init);
                self.out.push(';');
            }
            StmtKind::Expr(e) => {
                self.expr(e);
                self.out.push(';');
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.out.push_str("if (");
                self.expr(cond);
                self.out.push_str(") ");
                self.block(then_blk);
                if let Some(e) = else_blk {
                    self.out.push_str(" else ");
                    self.block(e);
                }
            }
            StmtKind::While { cond, body } => {
                self.out.push_str("while (");
                self.expr(cond);
                self.out.push_str(") ");
                self.block(body);
            }
            StmtKind::For {
                init,
                cond,
                update,
                body,
            } => {
                self.out.push_str("for (");
                match init {
                    Some(s) => self.stmt(s),
                    None => self.out.push(';'),
                }
                self.out.push(' ');
                if let Some(c) = cond {
                    self.expr(c);
                }
                self.out.push_str("; ");
                if let Some(u) = update {
                    self.expr(u);
                }
                self.out.push_str(") ");
                self.block(body);
            }
            StmtKind::ForEach {
                ty,
                name,
                iter,
                body,
            } => {
                self.out.push_str("for (");
                self.ty(ty);
                let _ = write!(self.out, " {name} : ");
                self.expr(iter);
                self.out.push_str(") ");
                self.block(body);
            }
            StmtKind::Return(e) => {
                self.out.push_str("return");
                if let Some(e) = e {
                    self.out.push(' ');
                    self.expr(e);
                }
                self.out.push(';');
            }
            StmtKind::Break => self.out.push_str("break;"),
            StmtKind::Continue => self.out.push_str("continue;"),
            StmtKind::Block(b) => self.block(b),
        }
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::IntLit(v) => {
                let _ = write!(self.out, "{v}");
            }
            ExprKind::LongLit(v) => {
                let _ = write!(self.out, "{v}L");
            }
            ExprKind::DoubleLit(v) => {
                if v.fract() == 0.0 && v.is_finite() {
                    let _ = write!(self.out, "{v:.1}");
                } else {
                    let _ = write!(self.out, "{v}");
                }
            }
            ExprKind::BoolLit(b) => {
                let _ = write!(self.out, "{b}");
            }
            ExprKind::CharLit(c) => {
                let _ = write!(self.out, "'{}'", escape_char(*c));
            }
            ExprKind::StrLit(s) => {
                self.out.push('"');
                for c in s.chars() {
                    self.out.push_str(&escape_char(c));
                }
                self.out.push('"');
            }
            ExprKind::Null => self.out.push_str("null"),
            ExprKind::This => self.out.push_str("this"),
            ExprKind::Name(n) => self.out.push_str(n.as_str()),
            ExprKind::Field { recv, name } => {
                self.expr_atom(recv);
                let _ = write!(self.out, ".{name}");
            }
            ExprKind::Call {
                recv,
                name,
                type_args,
                args,
            } => {
                if let Some(r) = recv {
                    self.expr_atom(r);
                    self.out.push('.');
                }
                self.out.push_str(name.as_str());
                if let Some(ta) = type_args {
                    self.out.push('[');
                    for (i, t) in ta.types.iter().enumerate() {
                        if i > 0 {
                            self.out.push_str(", ");
                        }
                        self.ty(t);
                    }
                    if !ta.models.is_empty() {
                        self.out.push_str(" with ");
                        for (i, m) in ta.models.iter().enumerate() {
                            if i > 0 {
                                self.out.push_str(", ");
                            }
                            self.model_expr(m);
                        }
                    }
                    self.out.push(']');
                }
                self.args(args);
            }
            ExprKind::ExpanderCall {
                recv,
                expander,
                name,
                args,
            } => {
                self.expr_atom(recv);
                self.out.push_str(".(");
                self.model_expr(expander);
                let _ = write!(self.out, ".{name})");
                self.args(args);
            }
            ExprKind::New { ty, args } => {
                self.out.push_str("new ");
                self.ty(ty);
                self.args(args);
            }
            ExprKind::NewArray { elem, len } => {
                self.out.push_str("new ");
                self.ty(elem);
                self.out.push('[');
                self.expr(len);
                self.out.push(']');
            }
            ExprKind::Index { arr, idx } => {
                self.expr_atom(arr);
                self.out.push('[');
                self.expr(idx);
                self.out.push(']');
            }
            ExprKind::Assign { lhs, rhs, op } => {
                self.expr(lhs);
                match op {
                    None => self.out.push_str(" = "),
                    Some(BinOp::Add) => self.out.push_str(" += "),
                    Some(BinOp::Sub) => self.out.push_str(" -= "),
                    Some(other) => {
                        let _ = write!(self.out, " {}= ", other.text());
                    }
                }
                self.expr(rhs);
            }
            ExprKind::Binary { op, lhs, rhs } => {
                self.out.push('(');
                self.expr(lhs);
                let _ = write!(self.out, " {} ", op.text());
                self.expr(rhs);
                self.out.push(')');
            }
            ExprKind::Unary { op, expr } => {
                self.out.push(match op {
                    UnOp::Not => '!',
                    UnOp::Neg => '-',
                });
                self.expr_atom(expr);
            }
            ExprKind::InstanceOf { expr, ty } => {
                self.out.push('(');
                self.expr_atom(expr);
                self.out.push_str(" instanceof ");
                self.ty(ty);
                self.out.push(')');
            }
            ExprKind::Cast { ty, expr } => {
                self.out.push('(');
                self.out.push('(');
                self.ty(ty);
                self.out.push_str(") ");
                self.expr_atom(expr);
                self.out.push(')');
            }
            ExprKind::Cond {
                cond,
                then_e,
                else_e,
            } => {
                self.out.push('(');
                self.expr(cond);
                self.out.push_str(" ? ");
                self.expr(then_e);
                self.out.push_str(" : ");
                self.expr(else_e);
                self.out.push(')');
            }
        }
    }

    /// Parenthesizes non-atomic receivers so reparse keeps structure.
    fn expr_atom(&mut self, e: &Expr) {
        let atomic = matches!(
            e.kind,
            ExprKind::IntLit(_)
                | ExprKind::LongLit(_)
                | ExprKind::DoubleLit(_)
                | ExprKind::BoolLit(_)
                | ExprKind::CharLit(_)
                | ExprKind::StrLit(_)
                | ExprKind::Null
                | ExprKind::This
                | ExprKind::Name(_)
                | ExprKind::Field { .. }
                | ExprKind::Call { .. }
                | ExprKind::ExpanderCall { .. }
                | ExprKind::Index { .. }
                | ExprKind::Binary { .. }
                | ExprKind::InstanceOf { .. }
                | ExprKind::Cond { .. }
        );
        if atomic {
            self.expr(e);
        } else {
            self.out.push('(');
            self.expr(e);
            self.out.push(')');
        }
    }

    fn args(&mut self, args: &[Expr]) {
        self.out.push('(');
        for (i, a) in args.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.expr(a);
        }
        self.out.push(')');
    }
}

fn escape_char(c: char) -> String {
    match c {
        '\n' => "\\n".to_string(),
        '\t' => "\\t".to_string(),
        '\r' => "\\r".to_string(),
        '\\' => "\\\\".to_string(),
        '"' => "\\\"".to_string(),
        '\'' => "\\'".to_string(),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use genus_common::{Diagnostics, SourceMap};

    fn roundtrip(src: &str) {
        let mut sm = SourceMap::new();
        let f = sm.add_file("t", src);
        let mut d = Diagnostics::new();
        let p1 = parse_program(&sm, f, &mut d);
        assert!(!d.has_errors(), "{}", d.render_all(&sm));
        let printed = program_to_string(&p1);
        let f2 = sm.add_file("t2", printed.clone());
        let mut d2 = Diagnostics::new();
        let p2 = parse_program(&sm, f2, &mut d2);
        assert!(
            !d2.has_errors(),
            "reparse failed:\n{printed}\n{}",
            d2.render_all(&sm)
        );
        let printed2 = program_to_string(&p2);
        assert_eq!(printed, printed2, "pretty-print not a fixpoint");
    }

    #[test]
    fn roundtrip_constraint() {
        roundtrip("constraint Eq[T] { boolean equals(T other); }");
    }

    #[test]
    fn roundtrip_graphlike() {
        roundtrip(
            "constraint GraphLike[V,E] {
               Iterable[E] V.outgoingEdges();
               V E.source();
               static V V.origin();
             }",
        );
    }

    #[test]
    fn roundtrip_model_and_class() {
        roundtrip(
            "model DualGraph[V,E] for GraphLike[V,E] where GraphLike[V,E] g {
               V E.source() { return this.(g.sink)(); }
             }
             class TreeSet[T where Comparable[T] c] implements Set[T with c] {
               TreeSet() { }
               void add(T x) { size = size + 1; }
               int size;
             }",
        );
    }

    #[test]
    fn roundtrip_statements() {
        roundtrip(
            "void h(int n) {
               int acc = 0;
               for (int i = 0; i < n; i = i + 1) { acc += i; }
               if (acc == 0) { } else { acc = -acc; }
               double d = acc > 3 ? 1.5 : 2.0;
               String s = \"x\\n\" + 'y';
               int[] xs = new int[4];
               for (int x : xs) { acc = acc + x; }
             }",
        );
    }

    #[test]
    fn roundtrip_existentials() {
        roundtrip(
            "[some T where Comparable[T]] List[T] f() { return new ArrayList[String](); }
             void g(Set[String with ?] a, List[?] b) {
               [U] (List[U] l) where Comparable[U] = f();
             }",
        );
    }
}
