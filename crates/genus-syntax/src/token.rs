//! Token definitions for the Genus lexer.

use genus_common::{Span, Symbol};
use std::fmt;

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals
    /// Integer literal, e.g. `42`.
    IntLit(i64),
    /// Long literal, e.g. `42L`.
    LongLit(i64),
    /// Floating literal, e.g. `3.14`.
    DoubleLit(f64),
    /// String literal with escapes resolved.
    StrLit(String),
    /// Character literal.
    CharLit(char),

    /// Identifier or non-keyword word.
    Ident(Symbol),

    // Keywords
    Class,
    Interface,
    Constraint,
    Model,
    Enrich,
    Use,
    Where,
    With,
    Some_,
    For,
    Extends,
    Implements,
    Static,
    New,
    Return,
    If,
    Else,
    While,
    Break,
    Continue,
    This,
    Null,
    True,
    False,
    Instanceof,
    Native,
    Abstract,
    Final,
    Void,
    Int,
    Long,
    Double,
    Boolean,
    Char,

    // Punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Colon,
    Question,
    Arrow,

    // Operators
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Not,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    NotEq,
    AndAnd,
    OrOr,
    PlusAssign,
    MinusAssign,

    /// End of file sentinel.
    Eof,
}

impl TokenKind {
    /// Keyword lookup for an identifier-shaped word.
    pub fn keyword(word: &str) -> Option<TokenKind> {
        Some(match word {
            "class" => TokenKind::Class,
            "interface" => TokenKind::Interface,
            "constraint" => TokenKind::Constraint,
            "model" => TokenKind::Model,
            "enrich" => TokenKind::Enrich,
            "use" => TokenKind::Use,
            "where" => TokenKind::Where,
            "with" => TokenKind::With,
            "some" => TokenKind::Some_,
            "for" => TokenKind::For,
            "extends" => TokenKind::Extends,
            "implements" => TokenKind::Implements,
            "static" => TokenKind::Static,
            "new" => TokenKind::New,
            "return" => TokenKind::Return,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "break" => TokenKind::Break,
            "continue" => TokenKind::Continue,
            "this" => TokenKind::This,
            "null" => TokenKind::Null,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            "instanceof" => TokenKind::Instanceof,
            "native" => TokenKind::Native,
            "abstract" => TokenKind::Abstract,
            "final" => TokenKind::Final,
            "void" => TokenKind::Void,
            "int" => TokenKind::Int,
            "long" => TokenKind::Long,
            "double" => TokenKind::Double,
            "boolean" => TokenKind::Boolean,
            "char" => TokenKind::Char,
            _ => return None,
        })
    }

    /// Short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::IntLit(v) => format!("integer literal `{v}`"),
            TokenKind::LongLit(v) => format!("long literal `{v}L`"),
            TokenKind::DoubleLit(v) => format!("double literal `{v}`"),
            TokenKind::StrLit(_) => "string literal".to_string(),
            TokenKind::CharLit(c) => format!("char literal `{c:?}`"),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Eof => "end of file".to_string(),
            other => format!("`{}`", other.text()),
        }
    }

    /// Literal source text for fixed tokens (keywords / punctuation).
    pub fn text(&self) -> &'static str {
        match self {
            TokenKind::Class => "class",
            TokenKind::Interface => "interface",
            TokenKind::Constraint => "constraint",
            TokenKind::Model => "model",
            TokenKind::Enrich => "enrich",
            TokenKind::Use => "use",
            TokenKind::Where => "where",
            TokenKind::With => "with",
            TokenKind::Some_ => "some",
            TokenKind::For => "for",
            TokenKind::Extends => "extends",
            TokenKind::Implements => "implements",
            TokenKind::Static => "static",
            TokenKind::New => "new",
            TokenKind::Return => "return",
            TokenKind::If => "if",
            TokenKind::Else => "else",
            TokenKind::While => "while",
            TokenKind::Break => "break",
            TokenKind::Continue => "continue",
            TokenKind::This => "this",
            TokenKind::Null => "null",
            TokenKind::True => "true",
            TokenKind::False => "false",
            TokenKind::Instanceof => "instanceof",
            TokenKind::Native => "native",
            TokenKind::Abstract => "abstract",
            TokenKind::Final => "final",
            TokenKind::Void => "void",
            TokenKind::Int => "int",
            TokenKind::Long => "long",
            TokenKind::Double => "double",
            TokenKind::Boolean => "boolean",
            TokenKind::Char => "char",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Semi => ";",
            TokenKind::Comma => ",",
            TokenKind::Dot => ".",
            TokenKind::Colon => ":",
            TokenKind::Question => "?",
            TokenKind::Arrow => "->",
            TokenKind::Assign => "=",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::Not => "!",
            TokenKind::Lt => "<",
            TokenKind::Gt => ">",
            TokenKind::Le => "<=",
            TokenKind::Ge => ">=",
            TokenKind::EqEq => "==",
            TokenKind::NotEq => "!=",
            TokenKind::AndAnd => "&&",
            TokenKind::OrOr => "||",
            TokenKind::PlusAssign => "+=",
            TokenKind::MinusAssign => "-=",
            _ => "<dynamic>",
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(TokenKind::keyword("class"), Some(TokenKind::Class));
        assert_eq!(
            TokenKind::keyword("constraint"),
            Some(TokenKind::Constraint)
        );
        assert_eq!(TokenKind::keyword("frobnicate"), None);
    }

    #[test]
    fn describe_fixed_tokens() {
        assert_eq!(TokenKind::Where.describe(), "`where`");
        assert_eq!(TokenKind::LBracket.describe(), "`[`");
    }
}
