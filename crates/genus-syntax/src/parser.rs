//! Recursive-descent parser for Genus with bounded backtracking.
//!
//! Backtracking is used where Java-family grammars are classically ambiguous:
//! casts vs. parenthesized expressions, local declarations vs. expression
//! statements, generic type arguments vs. array indexing, and for-each vs.
//! C-style `for`.

use crate::ast::*;
use crate::lexer::lex;
use crate::token::{Token, TokenKind};
use genus_common::{Diagnostics, FileId, SourceMap, Span, Symbol};

/// Parses the registered file `file` into a [`Program`].
///
/// Parse errors are reported into `diags`; the parser recovers at declaration
/// and statement boundaries so a partial AST is produced on error.
pub fn parse_program(sm: &SourceMap, file: FileId, diags: &mut Diagnostics) -> Program {
    let tokens = lex(sm, file, diags);
    let mut p = Parser {
        tokens,
        pos: 0,
        diags,
    };
    p.program()
}

/// The parser state. Exposed so embedders can parse fragments in tests.
pub struct Parser<'d> {
    tokens: Vec<Token>,
    pos: usize,
    diags: &'d mut Diagnostics,
}

type PResult<T> = Result<T, ()>;

// `PResult`'s error is `()` by design: the real error is already in
// `diags` when a parse routine fails.
#[allow(clippy::result_unit_err)]
impl<'d> Parser<'d> {
    /// Creates a parser over a pre-lexed token stream.
    pub fn new(tokens: Vec<Token>, diags: &'d mut Diagnostics) -> Self {
        Parser {
            tokens,
            pos: 0,
            diags,
        }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1).min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .kind
            .clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        k
    }

    fn at(&self, k: &TokenKind) -> bool {
        self.peek() == k
    }

    fn eat(&mut self, k: &TokenKind) -> bool {
        if self.at(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, k: &TokenKind) -> PResult<Span> {
        if self.at(k) {
            let sp = self.span();
            self.bump();
            Ok(sp)
        } else {
            self.error_here(format!(
                "expected {}, found {}",
                k.describe(),
                self.peek().describe()
            ));
            Err(())
        }
    }

    fn error_here(&mut self, msg: String) {
        let sp = self.span();
        self.diags.error("E0101", sp, msg);
    }

    fn ident(&mut self) -> PResult<(Symbol, Span)> {
        if let TokenKind::Ident(s) = self.peek().clone() {
            let sp = self.span();
            self.bump();
            Ok((s, sp))
        } else {
            self.error_here(format!(
                "expected identifier, found {}",
                self.peek().describe()
            ));
            Err(())
        }
    }

    fn checkpoint(&self) -> (usize, usize) {
        (self.pos, self.diags.len())
    }

    fn rollback(&mut self, cp: (usize, usize)) {
        self.pos = cp.0;
        // Diagnostics produced during a failed speculative parse are dropped
        // by truncating back to the checkpoint length.
        self.diags.truncate(cp.1);
    }

    /// Runs `f` speculatively: on `Err`, restores the token position and
    /// drops diagnostics produced by the attempt.
    fn speculate<T>(&mut self, f: impl FnOnce(&mut Self) -> PResult<T>) -> Option<T> {
        let cp = self.checkpoint();
        match f(self) {
            Ok(v) => Some(v),
            Err(()) => {
                self.rollback(cp);
                None
            }
        }
    }

    // ------------------------------------------------------------------
    // Program and declarations
    // ------------------------------------------------------------------

    /// Parses a whole program.
    pub fn program(&mut self) -> Program {
        let mut imports = Vec::new();
        // `import` is a contextual keyword, recognized only as the exact
        // shape `import <ident> ;` in declaration position so programs using
        // `import` as an ordinary identifier keep parsing. Imports must
        // precede all declarations.
        while self.at_import() {
            let lo = self.span();
            self.bump(); // `import`
            let (name, _) = self.ident().expect("at_import guarantees an ident");
            let semi = self.span();
            self.bump(); // `;`
            imports.push(ImportDecl {
                name,
                span: lo.to(semi),
            });
        }
        let mut decls = Vec::new();
        while !self.at(&TokenKind::Eof) {
            let before = self.pos;
            match self.decl() {
                Ok(d) => decls.push(d),
                Err(()) => {
                    self.recover_to_decl();
                    if self.pos == before {
                        self.bump(); // guarantee progress
                    }
                }
            }
        }
        Program { imports, decls }
    }

    fn at_import(&self) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s.as_str() == "import")
            && matches!(self.peek_at(1), TokenKind::Ident(_))
            && matches!(self.peek_at(2), TokenKind::Semi)
    }

    fn recover_to_decl(&mut self) {
        let mut depth = 0usize;
        loop {
            match self.peek() {
                TokenKind::Eof => return,
                TokenKind::LBrace => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::RBrace => {
                    self.bump();
                    if depth <= 1 {
                        return;
                    }
                    depth -= 1;
                }
                TokenKind::Semi if depth == 0 => {
                    self.bump();
                    return;
                }
                TokenKind::Class
                | TokenKind::Interface
                | TokenKind::Constraint
                | TokenKind::Model
                | TokenKind::Enrich
                | TokenKind::Use
                    if depth == 0 =>
                {
                    return;
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn decl(&mut self) -> PResult<Decl> {
        let mut is_abstract = false;
        loop {
            match self.peek() {
                TokenKind::Abstract => {
                    is_abstract = true;
                    self.bump();
                }
                TokenKind::Final => {
                    self.bump();
                }
                _ => break,
            }
        }
        match self.peek() {
            TokenKind::Class => Ok(Decl::Class(self.class_decl(is_abstract)?)),
            TokenKind::Interface => Ok(Decl::Interface(self.interface_decl()?)),
            TokenKind::Constraint => Ok(Decl::Constraint(self.constraint_decl()?)),
            TokenKind::Model => Ok(Decl::Model(self.model_decl()?)),
            TokenKind::Enrich => Ok(Decl::Enrich(self.enrich_decl()?)),
            TokenKind::Use => Ok(Decl::Use(self.use_decl()?)),
            _ => {
                // Top-level generic method.
                let m = self.method_decl(false, is_abstract)?;
                Ok(Decl::Method(m))
            }
        }
    }

    /// `[T1, T2 where K[T] v, K2[T]]` — the bracketed generic header. Also
    /// accepts bounds `[X extends Foo]` for existential binders.
    fn generic_header(&mut self) -> PResult<GenericSig> {
        let mut sig = GenericSig::default();
        if !self.eat(&TokenKind::LBracket) {
            return Ok(sig);
        }
        if self.eat(&TokenKind::RBracket) {
            return Ok(sig);
        }
        if !self.at(&TokenKind::Where) {
            loop {
                let (name, sp) = self.ident()?;
                let bound = if self.eat(&TokenKind::Extends) {
                    Some(self.ty()?)
                } else {
                    None
                };
                sig.type_params.push(TypeParam {
                    name,
                    bound,
                    span: sp,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        if self.eat(&TokenKind::Where) {
            sig.wheres = self.where_bindings()?;
        }
        self.expect(&TokenKind::RBracket)?;
        Ok(sig)
    }

    fn where_bindings(&mut self) -> PResult<Vec<WhereBinding>> {
        let mut out = Vec::new();
        loop {
            let cref = self.constraint_ref()?;
            let var = if let TokenKind::Ident(_) = self.peek() {
                // `where Comparable[T] c` — a model variable name.
                let (v, _) = self.ident()?;
                Some(v)
            } else {
                None
            };
            let span = cref.span;
            out.push(WhereBinding {
                constraint: cref,
                var,
                span,
            });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(out)
    }

    fn constraint_ref(&mut self) -> PResult<ConstraintRef> {
        let (name, lo) = self.ident()?;
        let mut args = Vec::new();
        if self.eat(&TokenKind::LBracket) {
            loop {
                args.push(self.ty()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RBracket)?;
        }
        let span = lo.to(self.prev_span());
        Ok(ConstraintRef { name, args, span })
    }

    fn ty_list(&mut self) -> PResult<Vec<Ty>> {
        let mut out = vec![self.ty()?];
        while self.eat(&TokenKind::Comma) {
            out.push(self.ty()?);
        }
        Ok(out)
    }

    fn class_decl(&mut self, is_abstract: bool) -> PResult<ClassDecl> {
        let lo = self.expect(&TokenKind::Class)?;
        let (name, _) = self.ident()?;
        let mut generics = self.generic_header()?;
        let extends = if self.eat(&TokenKind::Extends) {
            Some(self.ty()?)
        } else {
            None
        };
        let implements = if self.eat(&TokenKind::Implements) {
            self.ty_list()?
        } else {
            Vec::new()
        };
        if self.eat(&TokenKind::Where) {
            let mut extra = self.where_bindings()?;
            generics.wheres.append(&mut extra);
        }
        self.expect(&TokenKind::LBrace)?;
        let mut fields = Vec::new();
        let mut ctors = Vec::new();
        let mut methods = Vec::new();
        while !self.at(&TokenKind::RBrace) && !self.at(&TokenKind::Eof) {
            let before = self.pos;
            if self
                .class_member(name, &mut fields, &mut ctors, &mut methods)
                .is_err()
            {
                self.recover_in_body();
                if self.pos == before {
                    self.bump();
                }
            }
        }
        let hi = self.expect(&TokenKind::RBrace)?;
        Ok(ClassDecl {
            name,
            generics,
            extends,
            implements,
            fields,
            ctors,
            methods,
            is_abstract,
            span: lo.to(hi),
        })
    }

    fn recover_in_body(&mut self) {
        let mut depth = 0usize;
        loop {
            match self.peek() {
                TokenKind::Eof => return,
                TokenKind::LBrace => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::RBrace => {
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                    self.bump();
                    if depth == 0 {
                        return;
                    }
                }
                TokenKind::Semi if depth == 0 => {
                    self.bump();
                    return;
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn class_member(
        &mut self,
        class_name: Symbol,
        fields: &mut Vec<FieldDecl>,
        ctors: &mut Vec<CtorDecl>,
        methods: &mut Vec<MethodDecl>,
    ) -> PResult<()> {
        let mut is_static = false;
        let mut is_abstract = false;
        let mut is_native = false;
        loop {
            match self.peek() {
                TokenKind::Static => {
                    is_static = true;
                    self.bump();
                }
                TokenKind::Abstract => {
                    is_abstract = true;
                    self.bump();
                }
                TokenKind::Native => {
                    is_native = true;
                    self.bump();
                }
                TokenKind::Final => {
                    self.bump();
                }
                _ => break,
            }
        }
        // Constructor: `ClassName ( ... ) { ... }`
        if let TokenKind::Ident(s) = self.peek() {
            if *s == class_name && matches!(self.peek_at(1), TokenKind::LParen) {
                let (_, lo) = self.ident()?;
                let params = self.params()?;
                let body = self.block()?;
                let span = lo.to(body.span);
                ctors.push(CtorDecl { params, body, span });
                return Ok(());
            }
        }
        let ty = self.ty_or_void()?;
        let (name, name_sp) = self.ident()?;
        // Method (possibly generic) or field.
        if self.at(&TokenKind::LBracket) || self.at(&TokenKind::LParen) {
            let mut m = self.method_tail(is_static, is_abstract || is_native, ty, name, name_sp)?;
            m.is_native = is_native;
            methods.push(m);
            Ok(())
        } else {
            let init = if self.eat(&TokenKind::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            let hi = self.expect(&TokenKind::Semi)?;
            fields.push(FieldDecl {
                is_static,
                ty,
                name,
                init,
                span: name_sp.to(hi),
            });
            Ok(())
        }
    }

    fn ty_or_void(&mut self) -> PResult<Ty> {
        if self.at(&TokenKind::Void) {
            let sp = self.span();
            self.bump();
            return Ok(Ty::new(TyKind::Prim(PrimTy::Void), sp));
        }
        self.ty()
    }

    /// The part of a method after its return type and name.
    fn method_tail(
        &mut self,
        is_static: bool,
        is_abstract: bool,
        ret: Ty,
        name: Symbol,
        name_sp: Span,
    ) -> PResult<MethodDecl> {
        let mut generics = self.generic_header()?;
        let params = self.params()?;
        if self.eat(&TokenKind::Where) {
            // CLU-style: `where` after the formal parameters is sugar for
            // placing it in the brackets (§3.2).
            let mut extra = self.where_bindings()?;
            generics.wheres.append(&mut extra);
        }
        let (body, hi) = if self.at(&TokenKind::LBrace) {
            let b = self.block()?;
            let sp = b.span;
            (Some(b), sp)
        } else {
            let sp = self.expect(&TokenKind::Semi)?;
            (None, sp)
        };
        Ok(MethodDecl {
            is_static,
            is_abstract: is_abstract || body.is_none(),
            is_native: false,
            ret,
            name,
            generics,
            params,
            body,
            span: name_sp.to(hi),
        })
    }

    /// Free-standing method declaration (top level).
    fn method_decl(&mut self, is_static: bool, is_abstract: bool) -> PResult<MethodDecl> {
        let ret = self.ty_or_void()?;
        let (name, name_sp) = self.ident()?;
        self.method_tail(is_static, is_abstract, ret, name, name_sp)
    }

    fn params(&mut self) -> PResult<Vec<Param>> {
        self.expect(&TokenKind::LParen)?;
        let mut out = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                let ty = self.ty()?;
                let (name, sp) = self.ident()?;
                out.push(Param {
                    span: ty.span.to(sp),
                    ty,
                    name,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(out)
    }

    fn interface_decl(&mut self) -> PResult<InterfaceDecl> {
        let lo = self.expect(&TokenKind::Interface)?;
        let (name, _) = self.ident()?;
        let mut generics = self.generic_header()?;
        let extends = if self.eat(&TokenKind::Extends) {
            self.ty_list()?
        } else {
            Vec::new()
        };
        if self.eat(&TokenKind::Where) {
            let mut extra = self.where_bindings()?;
            generics.wheres.append(&mut extra);
        }
        self.expect(&TokenKind::LBrace)?;
        let mut methods = Vec::new();
        while !self.at(&TokenKind::RBrace) && !self.at(&TokenKind::Eof) {
            let before = self.pos;
            let mut is_static = false;
            while matches!(
                self.peek(),
                TokenKind::Static | TokenKind::Abstract | TokenKind::Final
            ) {
                if self.at(&TokenKind::Static) {
                    is_static = true;
                }
                self.bump();
            }
            match self.method_decl(is_static, true) {
                Ok(m) => methods.push(m),
                Err(()) => {
                    self.recover_in_body();
                    if self.pos == before {
                        self.bump();
                    }
                }
            }
        }
        let hi = self.expect(&TokenKind::RBrace)?;
        Ok(InterfaceDecl {
            name,
            generics,
            extends,
            methods,
            span: lo.to(hi),
        })
    }

    fn constraint_decl(&mut self) -> PResult<ConstraintDecl> {
        let lo = self.expect(&TokenKind::Constraint)?;
        let (name, _) = self.ident()?;
        self.expect(&TokenKind::LBracket)?;
        let mut params = Vec::new();
        loop {
            let (pn, psp) = self.ident()?;
            params.push(TypeParam {
                name: pn,
                bound: None,
                span: psp,
            });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RBracket)?;
        let mut extends = Vec::new();
        if self.eat(&TokenKind::Extends) {
            loop {
                extends.push(self.constraint_ref()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::LBrace)?;
        let mut methods = Vec::new();
        while !self.at(&TokenKind::RBrace) && !self.at(&TokenKind::Eof) {
            let before = self.pos;
            match self.constraint_member() {
                Ok(m) => methods.push(m),
                Err(()) => {
                    self.recover_in_body();
                    if self.pos == before {
                        self.bump();
                    }
                }
            }
        }
        let hi = self.expect(&TokenKind::RBrace)?;
        Ok(ConstraintDecl {
            name,
            params,
            extends,
            methods,
            span: lo.to(hi),
        })
    }

    /// `static? RetTy Recv.name(params);` or `RetTy name(params);`
    fn constraint_member(&mut self) -> PResult<ConstraintMethodSig> {
        let is_static = self.eat(&TokenKind::Static);
        let ret = self.ty_or_void()?;
        let (first, first_sp) = self.ident()?;
        let (receiver, name, name_sp) = if self.eat(&TokenKind::Dot) {
            let (m, msp) = self.ident()?;
            (Some(first), m, msp)
        } else {
            (None, first, first_sp)
        };
        let params = self.params()?;
        let hi = self.expect(&TokenKind::Semi)?;
        Ok(ConstraintMethodSig {
            is_static,
            ret,
            receiver,
            name,
            params,
            span: name_sp.to(hi),
        })
    }

    fn model_decl(&mut self) -> PResult<ModelDecl> {
        let lo = self.expect(&TokenKind::Model)?;
        let (name, _) = self.ident()?;
        let mut generics = self.generic_header()?;
        self.expect(&TokenKind::For)?;
        let for_constraint = self.constraint_ref()?;
        let mut extends = Vec::new();
        if self.eat(&TokenKind::Extends) {
            loop {
                extends.push(self.model_expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        if self.eat(&TokenKind::Where) {
            let mut extra = self.where_bindings()?;
            generics.wheres.append(&mut extra);
        }
        self.expect(&TokenKind::LBrace)?;
        let mut methods = Vec::new();
        while !self.at(&TokenKind::RBrace) && !self.at(&TokenKind::Eof) {
            let before = self.pos;
            match self.model_method() {
                Ok(m) => methods.push(m),
                Err(()) => {
                    self.recover_in_body();
                    if self.pos == before {
                        self.bump();
                    }
                }
            }
        }
        let hi = self.expect(&TokenKind::RBrace)?;
        Ok(ModelDecl {
            name,
            generics,
            for_constraint,
            extends,
            methods,
            span: lo.to(hi),
        })
    }

    /// `static? RetTy (RecvTy .)? name (params) { ... }`
    fn model_method(&mut self) -> PResult<ModelMethodDef> {
        let is_static = self.eat(&TokenKind::Static);
        let ret = self.ty_or_void()?;
        // Try the receiver-typed form first: `RecvTy . name (`.
        let with_recv = self.speculate(|p| {
            let recv = p.ty()?;
            p.expect(&TokenKind::Dot)?;
            let (name, nsp) = p.ident()?;
            if !p.at(&TokenKind::LParen) {
                return Err(());
            }
            Ok((recv, name, nsp))
        });
        let (receiver, name, name_sp) = match with_recv {
            Some((r, n, sp)) => (Some(r), n, sp),
            None => {
                let (n, sp) = self.ident()?;
                (None, n, sp)
            }
        };
        let params = self.params()?;
        let body = self.block()?;
        let span = name_sp.to(body.span);
        Ok(ModelMethodDef {
            is_static,
            ret,
            receiver,
            name,
            params,
            body,
            span,
        })
    }

    fn enrich_decl(&mut self) -> PResult<EnrichDecl> {
        let lo = self.expect(&TokenKind::Enrich)?;
        let (target, _) = self.ident()?;
        self.expect(&TokenKind::LBrace)?;
        let mut methods = Vec::new();
        while !self.at(&TokenKind::RBrace) && !self.at(&TokenKind::Eof) {
            let before = self.pos;
            match self.model_method() {
                Ok(m) => methods.push(m),
                Err(()) => {
                    self.recover_in_body();
                    if self.pos == before {
                        self.bump();
                    }
                }
            }
        }
        let hi = self.expect(&TokenKind::RBrace)?;
        Ok(EnrichDecl {
            target,
            methods,
            span: lo.to(hi),
        })
    }

    fn use_decl(&mut self) -> PResult<UseDecl> {
        let lo = self.expect(&TokenKind::Use)?;
        let generics = if self.at(&TokenKind::LBracket) {
            self.generic_header()?
        } else {
            GenericSig::default()
        };
        let model = self.model_expr()?;
        let for_constraint = if self.eat(&TokenKind::For) {
            Some(self.constraint_ref()?)
        } else {
            None
        };
        let hi = self.expect(&TokenKind::Semi)?;
        Ok(UseDecl {
            generics,
            model,
            for_constraint,
            span: lo.to(hi),
        })
    }

    // ------------------------------------------------------------------
    // Types and model expressions
    // ------------------------------------------------------------------

    /// Parses a type.
    pub fn ty(&mut self) -> PResult<Ty> {
        let lo = self.span();
        let base = match self.peek().clone() {
            TokenKind::Int => {
                self.bump();
                Ty::new(TyKind::Prim(PrimTy::Int), lo)
            }
            TokenKind::Long => {
                self.bump();
                Ty::new(TyKind::Prim(PrimTy::Long), lo)
            }
            TokenKind::Double => {
                self.bump();
                Ty::new(TyKind::Prim(PrimTy::Double), lo)
            }
            TokenKind::Boolean => {
                self.bump();
                Ty::new(TyKind::Prim(PrimTy::Boolean), lo)
            }
            TokenKind::Char => {
                self.bump();
                Ty::new(TyKind::Prim(PrimTy::Char), lo)
            }
            TokenKind::LBracket => {
                // Existential: `[some U where ...] Body`.
                self.bump();
                self.expect(&TokenKind::Some_)?;
                let mut params = Vec::new();
                if !self.at(&TokenKind::Where) && !self.at(&TokenKind::RBracket) {
                    loop {
                        let (n, sp) = self.ident()?;
                        let bound = if self.eat(&TokenKind::Extends) {
                            Some(self.ty()?)
                        } else {
                            None
                        };
                        params.push(TypeParam {
                            name: n,
                            bound,
                            span: sp,
                        });
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                let wheres = if self.eat(&TokenKind::Where) {
                    self.where_bindings()?
                } else {
                    Vec::new()
                };
                self.expect(&TokenKind::RBracket)?;
                let body = self.ty()?;
                let span = lo.to(body.span);
                Ty::new(
                    TyKind::Existential {
                        params,
                        wheres,
                        body: Box::new(body),
                    },
                    span,
                )
            }
            TokenKind::Ident(name) => {
                self.bump();
                let mut args = Vec::new();
                let mut models = Vec::new();
                if self.at(&TokenKind::LBracket) && !matches!(self.peek_at(1), TokenKind::RBracket)
                {
                    self.bump();
                    if !self.at(&TokenKind::With) {
                        loop {
                            args.push(self.type_arg()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    if self.eat(&TokenKind::With) {
                        loop {
                            models.push(self.model_expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RBracket)?;
                }
                let span = lo.to(self.prev_span());
                Ty::new(TyKind::Named { name, args, models }, span)
            }
            other => {
                self.error_here(format!("expected a type, found {}", other.describe()));
                return Err(());
            }
        };
        self.array_suffix(base)
    }

    fn array_suffix(&mut self, mut base: Ty) -> PResult<Ty> {
        while self.at(&TokenKind::LBracket) && matches!(self.peek_at(1), TokenKind::RBracket) {
            self.bump();
            let hi = self.span();
            self.bump();
            let span = base.span.to(hi);
            base = Ty::new(TyKind::Array(Box::new(base)), span);
        }
        Ok(base)
    }

    /// A type argument: a type or a wildcard `?` / `? extends T`.
    fn type_arg(&mut self) -> PResult<Ty> {
        if self.at(&TokenKind::Question) {
            let lo = self.span();
            self.bump();
            let bound = if self.eat(&TokenKind::Extends) {
                Some(Box::new(self.ty()?))
            } else {
                None
            };
            let span = lo.to(self.prev_span());
            return Ok(Ty::new(TyKind::Wildcard { bound }, span));
        }
        self.ty()
    }

    /// Parses a model expression (`with`-clause operand or expander).
    pub fn model_expr(&mut self) -> PResult<ModelExpr> {
        if self.at(&TokenKind::Question) {
            let span = self.span();
            self.bump();
            return Ok(ModelExpr::Wildcard { span });
        }
        let (name, lo) = self.ident()?;
        let mut args = Vec::new();
        let mut models = Vec::new();
        if self.at(&TokenKind::LBracket) && !matches!(self.peek_at(1), TokenKind::RBracket) {
            self.bump();
            if !self.at(&TokenKind::With) {
                loop {
                    args.push(self.type_arg()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            if self.eat(&TokenKind::With) {
                loop {
                    models.push(self.model_expr()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RBracket)?;
        }
        let span = lo.to(self.prev_span());
        Ok(ModelExpr::Named {
            name,
            args,
            models,
            span,
        })
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    /// Parses a `{ ... }` block.
    pub fn block(&mut self) -> PResult<Block> {
        let lo = self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) && !self.at(&TokenKind::Eof) {
            let before = self.pos;
            match self.stmt() {
                Ok(s) => stmts.push(s),
                Err(()) => {
                    self.recover_in_body();
                    if self.pos == before {
                        self.bump();
                    }
                }
            }
        }
        let hi = self.expect(&TokenKind::RBrace)?;
        Ok(Block {
            stmts,
            span: lo.to(hi),
        })
    }

    fn stmt_as_block(&mut self) -> PResult<Block> {
        if self.at(&TokenKind::LBrace) {
            self.block()
        } else {
            let s = self.stmt()?;
            let span = s.span;
            Ok(Block {
                stmts: vec![s],
                span,
            })
        }
    }

    /// Parses one statement.
    pub fn stmt(&mut self) -> PResult<Stmt> {
        let lo = self.span();
        match self.peek() {
            TokenKind::LBrace => {
                let b = self.block()?;
                let span = b.span;
                Ok(Stmt {
                    kind: StmtKind::Block(b),
                    span,
                })
            }
            TokenKind::If => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let then_blk = self.stmt_as_block()?;
                let else_blk = if self.eat(&TokenKind::Else) {
                    Some(self.stmt_as_block()?)
                } else {
                    None
                };
                let span = lo.to(self.prev_span());
                Ok(Stmt {
                    kind: StmtKind::If {
                        cond,
                        then_blk,
                        else_blk,
                    },
                    span,
                })
            }
            TokenKind::While => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let body = self.stmt_as_block()?;
                let span = lo.to(self.prev_span());
                Ok(Stmt {
                    kind: StmtKind::While { cond, body },
                    span,
                })
            }
            TokenKind::For => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                // Try for-each: `Ty Ident :`.
                let foreach = self.speculate(|p| {
                    let ty = p.ty()?;
                    let (name, _) = p.ident()?;
                    p.expect(&TokenKind::Colon)?;
                    Ok((ty, name))
                });
                if let Some((ty, name)) = foreach {
                    let iter = self.expr()?;
                    self.expect(&TokenKind::RParen)?;
                    let body = self.stmt_as_block()?;
                    let span = lo.to(self.prev_span());
                    return Ok(Stmt {
                        kind: StmtKind::ForEach {
                            ty,
                            name,
                            iter,
                            body,
                        },
                        span,
                    });
                }
                let init = if self.eat(&TokenKind::Semi) {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                let cond = if self.at(&TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semi)?;
                let update = if self.at(&TokenKind::RParen) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::RParen)?;
                let body = self.stmt_as_block()?;
                let span = lo.to(self.prev_span());
                Ok(Stmt {
                    kind: StmtKind::For {
                        init,
                        cond,
                        update,
                        body,
                    },
                    span,
                })
            }
            TokenKind::Return => {
                self.bump();
                let e = if self.at(&TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                let hi = self.expect(&TokenKind::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::Return(e),
                    span: lo.to(hi),
                })
            }
            TokenKind::Break => {
                self.bump();
                let hi = self.expect(&TokenKind::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::Break,
                    span: lo.to(hi),
                })
            }
            TokenKind::Continue => {
                self.bump();
                let hi = self.expect(&TokenKind::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::Continue,
                    span: lo.to(hi),
                })
            }
            TokenKind::Semi => {
                self.bump();
                Ok(Stmt {
                    kind: StmtKind::Block(Block {
                        stmts: vec![],
                        span: lo,
                    }),
                    span: lo,
                })
            }
            TokenKind::LBracket => {
                // Explicit local binding (§6.2):
                // `[U] (List[U] l) where Comparable[U] = f();`
                self.bump();
                let mut params = Vec::new();
                loop {
                    let (n, sp) = self.ident()?;
                    params.push(TypeParam {
                        name: n,
                        bound: None,
                        span: sp,
                    });
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RBracket)?;
                self.expect(&TokenKind::LParen)?;
                let ty = self.ty()?;
                let (name, _) = self.ident()?;
                self.expect(&TokenKind::RParen)?;
                let wheres = if self.eat(&TokenKind::Where) {
                    self.where_bindings()?
                } else {
                    Vec::new()
                };
                self.expect(&TokenKind::Assign)?;
                let init = self.expr()?;
                let hi = self.expect(&TokenKind::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::LocalBind {
                        params,
                        ty,
                        name,
                        wheres,
                        init,
                    },
                    span: lo.to(hi),
                })
            }
            _ => {
                let s = self.simple_stmt()?;
                Ok(s)
            }
        }
    }

    /// A local declaration or expression statement, consuming `;`.
    fn simple_stmt(&mut self) -> PResult<Stmt> {
        let lo = self.span();
        // Try a local declaration: `Ty Ident (= expr)? ;`
        let local = self.speculate(|p| {
            let ty = p.ty()?;
            let (name, _) = p.ident()?;
            let init = if p.eat(&TokenKind::Assign) {
                Some(p.expr()?)
            } else {
                None
            };
            let hi = p.expect(&TokenKind::Semi)?;
            Ok((ty, name, init, hi))
        });
        if let Some((ty, name, init, hi)) = local {
            return Ok(Stmt {
                kind: StmtKind::Local { ty, name, init },
                span: lo.to(hi),
            });
        }
        let e = self.expr()?;
        let hi = self.expect(&TokenKind::Semi)?;
        Ok(Stmt {
            kind: StmtKind::Expr(e),
            span: lo.to(hi),
        })
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    /// Parses an expression.
    pub fn expr(&mut self) -> PResult<Expr> {
        self.assignment()
    }

    fn assignment(&mut self) -> PResult<Expr> {
        let lhs = self.ternary()?;
        let op = match self.peek() {
            TokenKind::Assign => None,
            TokenKind::PlusAssign => Some(BinOp::Add),
            TokenKind::MinusAssign => Some(BinOp::Sub),
            _ => return Ok(lhs),
        };
        let is_plain = matches!(self.peek(), TokenKind::Assign);
        self.bump();
        let rhs = self.assignment()?;
        let span = lhs.span.to(rhs.span);
        let op = if is_plain { None } else { op };
        Ok(Expr {
            kind: ExprKind::Assign {
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                op,
            },
            span,
        })
    }

    fn ternary(&mut self) -> PResult<Expr> {
        let cond = self.or_expr()?;
        if self.eat(&TokenKind::Question) {
            let then_e = self.expr()?;
            self.expect(&TokenKind::Colon)?;
            let else_e = self.expr()?;
            let span = cond.span.to(else_e.span);
            return Ok(Expr {
                kind: ExprKind::Cond {
                    cond: Box::new(cond),
                    then_e: Box::new(then_e),
                    else_e: Box::new(else_e),
                },
                span,
            });
        }
        Ok(cond)
    }

    fn or_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.and_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary {
                    op: BinOp::Or,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.equality()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.equality()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary {
                    op: BinOp::And,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            };
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> PResult<Expr> {
        let mut lhs = self.relational()?;
        loop {
            let op = match self.peek() {
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::NotEq => BinOp::Ne,
                _ => break,
            };
            self.bump();
            let rhs = self.relational()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            };
        }
        Ok(lhs)
    }

    fn relational(&mut self) -> PResult<Expr> {
        let mut lhs = self.additive()?;
        loop {
            if self.at(&TokenKind::Instanceof) {
                self.bump();
                let ty = self.ty()?;
                let span = lhs.span.to(ty.span);
                lhs = Expr {
                    kind: ExprKind::InstanceOf {
                        expr: Box::new(lhs),
                        ty,
                    },
                    span,
                };
                continue;
            }
            let op = match self.peek() {
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.additive()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            };
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> PResult<Expr> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            };
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> PResult<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> PResult<Expr> {
        let lo = self.span();
        match self.peek() {
            TokenKind::Not => {
                self.bump();
                let e = self.unary()?;
                let span = lo.to(e.span);
                Ok(Expr {
                    kind: ExprKind::Unary {
                        op: UnOp::Not,
                        expr: Box::new(e),
                    },
                    span,
                })
            }
            TokenKind::Minus => {
                self.bump();
                let e = self.unary()?;
                let span = lo.to(e.span);
                Ok(Expr {
                    kind: ExprKind::Unary {
                        op: UnOp::Neg,
                        expr: Box::new(e),
                    },
                    span,
                })
            }
            TokenKind::LParen => {
                // Possible cast: `( Ty ) unary-expr`.
                let cast = self.speculate(|p| {
                    p.expect(&TokenKind::LParen)?;
                    let ty = p.ty()?;
                    p.expect(&TokenKind::RParen)?;
                    if !matches!(
                        p.peek(),
                        TokenKind::Ident(_)
                            | TokenKind::IntLit(_)
                            | TokenKind::LongLit(_)
                            | TokenKind::DoubleLit(_)
                            | TokenKind::StrLit(_)
                            | TokenKind::CharLit(_)
                            | TokenKind::LParen
                            | TokenKind::This
                            | TokenKind::New
                            | TokenKind::Null
                            | TokenKind::True
                            | TokenKind::False
                    ) {
                        return Err(());
                    }
                    let e = p.unary()?;
                    Ok((ty, e))
                });
                if let Some((ty, e)) = cast {
                    let span = lo.to(e.span);
                    return Ok(Expr {
                        kind: ExprKind::Cast {
                            ty,
                            expr: Box::new(e),
                        },
                        span,
                    });
                }
                self.postfix()
            }
            _ => self.postfix(),
        }
    }

    fn call_args(&mut self) -> PResult<Vec<Expr>> {
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                args.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(args)
    }

    /// `[T1, T2 with m]` explicit instantiation at a call site.
    fn explicit_type_args(&mut self) -> PResult<TypeArgs> {
        self.expect(&TokenKind::LBracket)?;
        let mut ta = TypeArgs::default();
        if !self.at(&TokenKind::With) && !self.at(&TokenKind::RBracket) {
            loop {
                ta.types.push(self.type_arg()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        if self.eat(&TokenKind::With) {
            loop {
                ta.models.push(self.model_expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RBracket)?;
        Ok(ta)
    }

    fn postfix(&mut self) -> PResult<Expr> {
        let mut e = self.primary()?;
        loop {
            if self.at(&TokenKind::Dot) {
                // `.name`, `.name(args)`, `.name[T](args)`, or expander
                // `.(modelExpr.name)(args)`.
                if matches!(self.peek_at(1), TokenKind::LParen) {
                    self.bump(); // dot
                    self.bump(); // lparen
                    let expander = self.model_expr()?;
                    self.expect(&TokenKind::Dot)?;
                    let (name, _) = self.ident()?;
                    self.expect(&TokenKind::RParen)?;
                    let args = self.call_args()?;
                    let span = e.span.to(self.prev_span());
                    e = Expr {
                        kind: ExprKind::ExpanderCall {
                            recv: Box::new(e),
                            expander,
                            name,
                            args,
                        },
                        span,
                    };
                    continue;
                }
                self.bump(); // dot
                let (name, nsp) = self.ident()?;
                if self.at(&TokenKind::LParen) {
                    let args = self.call_args()?;
                    let span = e.span.to(self.prev_span());
                    e = Expr {
                        kind: ExprKind::Call {
                            recv: Some(Box::new(e)),
                            name,
                            type_args: None,
                            args,
                        },
                        span,
                    };
                } else if self.at(&TokenKind::LBracket) {
                    // Maybe `recv.m[T](args)`.
                    let gen_call = self.speculate(|p| {
                        let ta = p.explicit_type_args()?;
                        if !p.at(&TokenKind::LParen) {
                            return Err(());
                        }
                        let args = p.call_args()?;
                        Ok((ta, args))
                    });
                    if let Some((ta, args)) = gen_call {
                        let span = e.span.to(self.prev_span());
                        e = Expr {
                            kind: ExprKind::Call {
                                recv: Some(Box::new(e)),
                                name,
                                type_args: Some(ta),
                                args,
                            },
                            span,
                        };
                    } else {
                        let span = e.span.to(nsp);
                        e = Expr {
                            kind: ExprKind::Field {
                                recv: Box::new(e),
                                name,
                            },
                            span,
                        };
                    }
                } else {
                    let span = e.span.to(nsp);
                    e = Expr {
                        kind: ExprKind::Field {
                            recv: Box::new(e),
                            name,
                        },
                        span,
                    };
                }
                continue;
            }
            if self.at(&TokenKind::LBracket) {
                self.bump();
                let idx = self.expr()?;
                let hi = self.expect(&TokenKind::RBracket)?;
                let span = e.span.to(hi);
                e = Expr {
                    kind: ExprKind::Index {
                        arr: Box::new(e),
                        idx: Box::new(idx),
                    },
                    span,
                };
                continue;
            }
            break;
        }
        Ok(e)
    }

    fn primary(&mut self) -> PResult<Expr> {
        let lo = self.span();
        match self.peek().clone() {
            TokenKind::IntLit(v) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::IntLit(v),
                    span: lo,
                })
            }
            TokenKind::LongLit(v) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::LongLit(v),
                    span: lo,
                })
            }
            TokenKind::DoubleLit(v) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::DoubleLit(v),
                    span: lo,
                })
            }
            TokenKind::StrLit(s) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::StrLit(s),
                    span: lo,
                })
            }
            TokenKind::CharLit(c) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::CharLit(c),
                    span: lo,
                })
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::BoolLit(true),
                    span: lo,
                })
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::BoolLit(false),
                    span: lo,
                })
            }
            TokenKind::Null => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::Null,
                    span: lo,
                })
            }
            TokenKind::This => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::This,
                    span: lo,
                })
            }
            TokenKind::New => {
                self.bump();
                // `new Ty(args)` or `new Elem[len]`.
                if matches!(
                    self.peek(),
                    TokenKind::Int
                        | TokenKind::Long
                        | TokenKind::Double
                        | TokenKind::Boolean
                        | TokenKind::Char
                ) {
                    let elem = self.ty()?; // consumes `[]` suffixes but not `[len]`
                    self.expect(&TokenKind::LBracket)?;
                    let len = self.expr()?;
                    let hi = self.expect(&TokenKind::RBracket)?;
                    return Ok(Expr {
                        kind: ExprKind::NewArray {
                            elem,
                            len: Box::new(len),
                        },
                        span: lo.to(hi),
                    });
                }
                // Named head: could be generic ctor or array of named type.
                let ctor = self.speculate(|p| {
                    let ty = p.ty()?;
                    if !p.at(&TokenKind::LParen) {
                        return Err(());
                    }
                    let args = p.call_args()?;
                    Ok((ty, args))
                });
                if let Some((ty, args)) = ctor {
                    let span = lo.to(self.prev_span());
                    return Ok(Expr {
                        kind: ExprKind::New { ty, args },
                        span,
                    });
                }
                // Array form: `new T[expr]` where T may carry generic args.
                let arr = self.speculate(|p| {
                    let (name, nsp) = p.ident()?;
                    // Optional generic args on the element type.
                    let elem = if p.at(&TokenKind::LBracket) {
                        // Distinguish `[len]` from `[T,...]` by attempting a
                        // type-args parse that must be followed by `[len]`.
                        let with_args = p.speculate(|q| {
                            q.expect(&TokenKind::LBracket)?;
                            let mut args = Vec::new();
                            if !q.at(&TokenKind::With) {
                                loop {
                                    args.push(q.type_arg()?);
                                    if !q.eat(&TokenKind::Comma) {
                                        break;
                                    }
                                }
                            }
                            let mut models = Vec::new();
                            if q.eat(&TokenKind::With) {
                                loop {
                                    models.push(q.model_expr()?);
                                    if !q.eat(&TokenKind::Comma) {
                                        break;
                                    }
                                }
                            }
                            q.expect(&TokenKind::RBracket)?;
                            if !q.at(&TokenKind::LBracket) {
                                return Err(());
                            }
                            Ok((args, models))
                        });
                        match with_args {
                            Some((args, models)) => {
                                Ty::new(TyKind::Named { name, args, models }, nsp.to(p.prev_span()))
                            }
                            None => Ty::simple(name, nsp),
                        }
                    } else {
                        Ty::simple(name, nsp)
                    };
                    p.expect(&TokenKind::LBracket)?;
                    let len = p.expr()?;
                    let hi = p.expect(&TokenKind::RBracket)?;
                    Ok((elem, len, hi))
                });
                if let Some((elem, len, hi)) = arr {
                    return Ok(Expr {
                        kind: ExprKind::NewArray {
                            elem,
                            len: Box::new(len),
                        },
                        span: lo.to(hi),
                    });
                }
                self.error_here("malformed `new` expression".to_string());
                Err(())
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.at(&TokenKind::LParen) {
                    let args = self.call_args()?;
                    let span = lo.to(self.prev_span());
                    return Ok(Expr {
                        kind: ExprKind::Call {
                            recv: None,
                            name,
                            type_args: None,
                            args,
                        },
                        span,
                    });
                }
                if self.at(&TokenKind::LBracket) {
                    // Maybe a generic call `m[T](args)`.
                    let gen_call = self.speculate(|p| {
                        let ta = p.explicit_type_args()?;
                        if !p.at(&TokenKind::LParen) {
                            return Err(());
                        }
                        let args = p.call_args()?;
                        Ok((ta, args))
                    });
                    if let Some((ta, args)) = gen_call {
                        let span = lo.to(self.prev_span());
                        return Ok(Expr {
                            kind: ExprKind::Call {
                                recv: None,
                                name,
                                type_args: Some(ta),
                                args,
                            },
                            span,
                        });
                    }
                }
                Ok(Expr {
                    kind: ExprKind::Name(name),
                    span: lo,
                })
            }
            other => {
                self.error_here(format!(
                    "expected an expression, found {}",
                    other.describe()
                ));
                Err(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genus_common::SourceMap;

    fn parse_ok(src: &str) -> Program {
        let mut sm = SourceMap::new();
        let f = sm.add_file("t.genus", src);
        let mut d = Diagnostics::new();
        let prog = parse_program(&sm, f, &mut d);
        assert!(!d.has_errors(), "unexpected errors:\n{}", d.render_all(&sm));
        prog
    }

    fn parse_err(src: &str) -> Diagnostics {
        let mut sm = SourceMap::new();
        let f = sm.add_file("t.genus", src);
        let mut d = Diagnostics::new();
        let _ = parse_program(&sm, f, &mut d);
        assert!(d.has_errors(), "expected errors for {src}");
        d
    }

    #[test]
    fn constraint_eq() {
        let p = parse_ok("constraint Eq[T] { boolean equals(T other); }");
        match &p.decls[0] {
            Decl::Constraint(c) => {
                assert_eq!(c.name.as_str(), "Eq");
                assert_eq!(c.params.len(), 1);
                assert_eq!(c.methods.len(), 1);
                assert_eq!(c.methods[0].name.as_str(), "equals");
                assert_eq!(c.methods[0].receiver, None);
            }
            _ => panic!("expected constraint"),
        }
    }

    #[test]
    fn constraint_multiparam_receivers() {
        let p = parse_ok(
            "constraint GraphLike[V,E] {
               Iterable[E] V.outgoingEdges();
               V E.source();
               static V V.origin();
             }",
        );
        match &p.decls[0] {
            Decl::Constraint(c) => {
                assert_eq!(c.methods[0].receiver.unwrap().as_str(), "V");
                assert_eq!(c.methods[1].receiver.unwrap().as_str(), "E");
                assert!(c.methods[2].is_static);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn constraint_prereq_and_static() {
        let p = parse_ok(
            "constraint OrdRing[T] extends Comparable[T] {
               static T T.zero();
               static T T.one();
               T T.plus(T that);
             }",
        );
        match &p.decls[0] {
            Decl::Constraint(c) => {
                assert_eq!(c.extends.len(), 1);
                assert_eq!(c.extends[0].name.as_str(), "Comparable");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn class_with_where_and_model_var() {
        let p = parse_ok(
            "class TreeSet[T where Comparable[T] c] implements Set[T with c] {
               TreeSet() { }
               void add(T x) { }
             }",
        );
        match &p.decls[0] {
            Decl::Class(cl) => {
                assert_eq!(cl.generics.type_params.len(), 1);
                assert_eq!(cl.generics.wheres.len(), 1);
                assert_eq!(cl.generics.wheres[0].var.unwrap().as_str(), "c");
                assert_eq!(cl.ctors.len(), 1);
                assert_eq!(cl.methods.len(), 1);
                match &cl.implements[0].kind {
                    TyKind::Named { models, .. } => assert_eq!(models.len(), 1),
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn method_level_where() {
        let p = parse_ok(
            "interface List[E] {
               boolean remove(E e) where Eq[E];
             }",
        );
        match &p.decls[0] {
            Decl::Interface(i) => {
                assert_eq!(i.methods[0].generics.wheres.len(), 1);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn model_simple() {
        let p = parse_ok(
            "model CIEq for Eq[String] {
               boolean equals(String str) { return equalsIgnoreCase(str); }
             }",
        );
        match &p.decls[0] {
            Decl::Model(m) => {
                assert_eq!(m.name.as_str(), "CIEq");
                assert_eq!(m.for_constraint.name.as_str(), "Eq");
                assert_eq!(m.methods.len(), 1);
                assert!(m.methods[0].receiver.is_none());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn model_inheritance() {
        let p = parse_ok(
            "model CICmp for Comparable[String] extends CIEq {
               int compareTo(String str) { return compareToIgnoreCase(str); }
             }",
        );
        match &p.decls[0] {
            Decl::Model(m) => assert_eq!(m.extends.len(), 1),
            _ => panic!(),
        }
    }

    #[test]
    fn parameterized_model_with_where() {
        let p = parse_ok(
            "model ArrayListDeepCopy[E] for Cloneable[ArrayList[E]] where Cloneable[E] {
               ArrayList[E] clone() {
                 ArrayList[E] l = new ArrayList[E]();
                 for (E e : this) { l.add(e.clone()); }
                 return l;
               }
             }",
        );
        match &p.decls[0] {
            Decl::Model(m) => {
                assert_eq!(m.generics.type_params.len(), 1);
                assert_eq!(m.generics.wheres.len(), 1);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn dualgraph_model_with_expanders() {
        let p = parse_ok(
            "model DualGraph[V,E] for GraphLike[V,E] where GraphLike[V,E] g {
               V E.source() { return this.(g.sink)(); }
               V E.sink() { return this.(g.source)(); }
             }",
        );
        match &p.decls[0] {
            Decl::Model(m) => {
                assert_eq!(m.methods.len(), 2);
                let recv = m.methods[0].receiver.clone().unwrap();
                match recv.kind {
                    TyKind::Named { name, .. } => assert_eq!(name.as_str(), "E"),
                    _ => panic!(),
                }
                match &m.methods[0].body.stmts[0].kind {
                    StmtKind::Return(Some(e)) => match &e.kind {
                        ExprKind::ExpanderCall { name, .. } => assert_eq!(name.as_str(), "sink"),
                        other => panic!("expected expander call, got {other:?}"),
                    },
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn multimethod_model_and_enrich() {
        let p = parse_ok(
            "model ShapeIntersect for Intersectable[Shape] {
               Shape Shape.intersect(Shape s) { return s; }
               Rectangle Rectangle.intersect(Rectangle r) { return r; }
               Shape Circle.intersect(Rectangle r) { return r; }
             }
             enrich ShapeIntersect {
               Shape Triangle.intersect(Circle c) { return c; }
             }",
        );
        assert_eq!(p.decls.len(), 2);
        match &p.decls[1] {
            Decl::Enrich(e) => assert_eq!(e.methods.len(), 1),
            _ => panic!(),
        }
    }

    #[test]
    fn use_decls() {
        let p = parse_ok(
            "use ArrayListDeepCopy;
             use [E where Cloneable[E] c] ArrayListDeepCopy[E with c] for Cloneable[ArrayList[E]];",
        );
        assert_eq!(p.decls.len(), 2);
        match &p.decls[1] {
            Decl::Use(u) => {
                assert_eq!(u.generics.type_params.len(), 1);
                assert!(u.for_constraint.is_some());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn top_level_generic_method() {
        let p = parse_ok("void sort[T](List[T] l) where Comparable[T] { }");
        match &p.decls[0] {
            Decl::Method(m) => {
                assert_eq!(m.name.as_str(), "sort");
                assert_eq!(m.generics.type_params.len(), 1);
                assert_eq!(m.generics.wheres.len(), 1);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn sssp_header() {
        let p = parse_ok(
            "Map[V,W] SSSP[V,E,W](V s)
               where GraphLike[V,E], Weighted[E,W], OrdRing[W], Hashable[V] {
               return null;
             }",
        );
        match &p.decls[0] {
            Decl::Method(m) => {
                assert_eq!(m.generics.type_params.len(), 3);
                assert_eq!(m.generics.wheres.len(), 4);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn existential_types() {
        let p = parse_ok(
            "[some T where Comparable[T]] List[T] f() {
               return new ArrayList[String]();
             }",
        );
        match &p.decls[0] {
            Decl::Method(m) => match &m.ret.kind {
                TyKind::Existential {
                    params,
                    wheres,
                    body,
                } => {
                    assert_eq!(params.len(), 1);
                    assert_eq!(wheres.len(), 1);
                    match &body.kind {
                        TyKind::Named { name, .. } => assert_eq!(name.as_str(), "List"),
                        _ => panic!(),
                    }
                }
                other => panic!("expected existential, got {other:?}"),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn wildcards_and_wildcard_models() {
        let p = parse_ok("void f(Set[String with ?] a, List[?] b, Collection[? extends T] c) { }");
        match &p.decls[0] {
            Decl::Method(m) => {
                match &m.params[0].ty.kind {
                    TyKind::Named { models, .. } => {
                        assert!(matches!(models[0], ModelExpr::Wildcard { .. }))
                    }
                    _ => panic!(),
                }
                match &m.params[1].ty.kind {
                    TyKind::Named { args, .. } => {
                        assert!(matches!(args[0].kind, TyKind::Wildcard { bound: None }))
                    }
                    _ => panic!(),
                }
                match &m.params[2].ty.kind {
                    TyKind::Named { args, .. } => {
                        assert!(matches!(args[0].kind, TyKind::Wildcard { bound: Some(_) }))
                    }
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn explicit_local_binding() {
        let p = parse_ok(
            "void g() {
               [U] (List[U] l) where Comparable[U] = f();
               U[] a = new U[64];
               l = new ArrayList[U]();
             }",
        );
        match &p.decls[0] {
            Decl::Method(m) => {
                let b = m.body.as_ref().unwrap();
                assert!(matches!(b.stmts[0].kind, StmtKind::LocalBind { .. }));
                match &b.stmts[1].kind {
                    StmtKind::Local { ty, init, .. } => {
                        assert!(matches!(ty.kind, TyKind::Array(_)));
                        assert!(matches!(
                            init.as_ref().unwrap().kind,
                            ExprKind::NewArray { .. }
                        ));
                    }
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn statements_and_exprs() {
        let p = parse_ok(
            "void h(int n) {
               int acc = 0;
               for (int i = 0; i < n; i = i + 1) { acc = acc + i; }
               while (acc > 0) { acc = acc - 2; }
               if (acc == 0) { acc = 1; } else if (acc < 0) { acc = 2; } else { acc = 3; }
               int[] xs = new int[4];
               xs[0] = acc;
               for (int x : xs) { acc += x; }
               boolean b = acc > 1 && acc < 100 || !(acc == 7);
               double d = b ? 1.5 : 2.5;
               String s = \"n=\" + n;
             }",
        );
        match &p.decls[0] {
            Decl::Method(m) => {
                assert_eq!(m.body.as_ref().unwrap().stmts.len(), 10);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn casts_and_instanceof() {
        let p = parse_ok(
            "void k(Object src) {
               if (src instanceof TreeSet[? extends T with c]) {
                 addFromSorted((TreeSet[? extends T with c]) src);
               }
             }",
        );
        match &p.decls[0] {
            Decl::Method(m) => {
                let b = m.body.as_ref().unwrap();
                match &b.stmts[0].kind {
                    StmtKind::If { cond, then_blk, .. } => {
                        assert!(matches!(cond.kind, ExprKind::InstanceOf { .. }));
                        match &then_blk.stmts[0].kind {
                            StmtKind::Expr(e) => match &e.kind {
                                ExprKind::Call { args, .. } => {
                                    assert!(matches!(args[0].kind, ExprKind::Cast { .. }))
                                }
                                _ => panic!(),
                            },
                            _ => panic!(),
                        }
                    }
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn explicit_instantiation_call() {
        let p = parse_ok(
            "void g() {
               sort[int](l);
               x = new DFIterator[V, E with DualGraph[V, E with g]]();
             }",
        );
        match &p.decls[0] {
            Decl::Method(m) => {
                let b = m.body.as_ref().unwrap();
                match &b.stmts[0].kind {
                    StmtKind::Expr(e) => match &e.kind {
                        ExprKind::Call { type_args, .. } => {
                            assert_eq!(type_args.as_ref().unwrap().types.len(), 1)
                        }
                        _ => panic!(),
                    },
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn index_vs_type_args() {
        // `l[i]` must parse as indexing, not as generic instantiation.
        let p = parse_ok("void g(int[] l, int i) { int x = l[i]; l[i] = x + l[i + 1]; }");
        match &p.decls[0] {
            Decl::Method(m) => {
                let b = m.body.as_ref().unwrap();
                assert!(matches!(b.stmts[0].kind, StmtKind::Local { .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn expander_with_type_name() {
        let p = parse_ok("void g(String x) { boolean b = x.(String.equals)(\"X\"); }");
        match &p.decls[0] {
            Decl::Method(m) => {
                let b = m.body.as_ref().unwrap();
                match &b.stmts[0].kind {
                    StmtKind::Local { init, .. } => {
                        assert!(matches!(
                            init.as_ref().unwrap().kind,
                            ExprKind::ExpanderCall { .. }
                        ));
                    }
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn bad_input_reports_errors() {
        parse_err("class {}");
        parse_err("constraint Eq { }");
        parse_err("model M for { }");
        parse_err("void f( { }");
    }

    #[test]
    fn recovery_continues_after_bad_decl() {
        let mut sm = SourceMap::new();
        let f = sm.add_file("t.genus", "class %%%; class Ok { }");
        let mut d = Diagnostics::new();
        let p = parse_program(&sm, f, &mut d);
        assert!(d.has_errors());
        assert!(p
            .decls
            .iter()
            .any(|dd| dd.name().map(|n| n.as_str()) == Some("Ok")));
    }
}
