//! Per-file parse memoization, keyed by content fingerprint.
//!
//! A [`ParseCache`] remembers parse trees (and their parse diagnostics and
//! derived fingerprints) per `(file id, content fingerprint)`. A compile
//! session re-checking after an edit re-parses only the edited files;
//! untouched files hit the cache, and reverting an edit restores the prior
//! tree without re-parsing. Entries are evicted FIFO past a fixed capacity
//! so a long-lived session cannot grow without bound.

use crate::ast::Program;
use crate::fingerprint::{self, Fp};
use genus_common::{Diagnostic, Diagnostics, FastMap, FileId, SourceMap};
use std::sync::Arc;

/// One memoized parse: the tree, its parse diagnostics, and the unit's
/// fingerprints at every sensitivity level.
#[derive(Debug)]
pub struct ParsedUnit {
    /// The parse tree (possibly partial after parse errors).
    pub program: Arc<Program>,
    /// Diagnostics the parse produced, in emission order.
    pub diags: Vec<Diagnostic>,
    /// Fingerprint of the raw text.
    pub content_fp: Fp,
    /// Fingerprint of the declared interface (bodies blanked).
    pub interface_fp: Fp,
    /// Structural fingerprint of the unit's global-environment contribution.
    pub env_fp: Fp,
}

/// A bounded memo table of parses, keyed by `(file, content fingerprint)`.
#[derive(Debug, Default)]
pub struct ParseCache {
    map: FastMap<(u32, Fp), Arc<ParsedUnit>>,
    order: Vec<(u32, Fp)>,
    hits: u64,
    misses: u64,
}

/// FIFO eviction bound: plenty for an editing session's back-and-forth
/// while keeping a runaway session at a few hundred retained trees.
const CAPACITY: usize = 256;

impl ParseCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ParseCache::default()
    }

    /// Returns the memoized parse of `file` (whose current text is in `sm`),
    /// parsing and recording it on a miss.
    pub fn get_or_parse(&mut self, sm: &SourceMap, file: FileId, name: &str) -> Arc<ParsedUnit> {
        let src = sm.file(file).src.as_str();
        let content_fp = fingerprint::content_fp(name, src);
        if let Some(u) = self.map.get(&(file.0, content_fp)) {
            self.hits += 1;
            return u.clone();
        }
        self.misses += 1;
        let mut diags = Diagnostics::new();
        let program = crate::parse_program(sm, file, &mut diags);
        let unit = Arc::new(ParsedUnit {
            interface_fp: fingerprint::interface_fp(name, src, &program),
            env_fp: fingerprint::env_fp_part(name, &program),
            program: Arc::new(program),
            diags: diags.iter().cloned().collect(),
            content_fp,
        });
        if self.order.len() >= CAPACITY {
            let oldest = self.order.remove(0);
            self.map.remove(&oldest);
        }
        self.map.insert((file.0, content_fp), unit.clone());
        self.order.push((file.0, content_fp));
        unit
    }

    /// Inserts an externally produced parse (e.g. the process-wide stdlib
    /// parse) without consuming miss quota.
    pub fn insert(&mut self, file: FileId, unit: Arc<ParsedUnit>) {
        if self.order.len() >= CAPACITY {
            let oldest = self.order.remove(0);
            self.map.remove(&oldest);
        }
        self.order.push((file.0, unit.content_fp));
        self.map.insert((file.0, unit.content_fp), unit);
    }

    /// `(hits, misses)` since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// Parses a unit outside any cache, producing the same [`ParsedUnit`] shape
/// (used to seed shared caches).
pub fn parse_unit(sm: &SourceMap, file: FileId, name: &str) -> ParsedUnit {
    let src = sm.file(file).src.as_str();
    let mut diags = Diagnostics::new();
    let program = crate::parse_program(sm, file, &mut diags);
    ParsedUnit {
        content_fp: fingerprint::content_fp(name, src),
        interface_fp: fingerprint::interface_fp(name, src, &program),
        env_fp: fingerprint::env_fp_part(name, &program),
        program: Arc::new(program),
        diags: diags.iter().cloned().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoizes_identical_content() {
        let mut sm = SourceMap::new();
        let f = sm.add_file("a.genus", "void main() { }");
        let mut cache = ParseCache::new();
        let u1 = cache.get_or_parse(&sm, f, "a");
        let u2 = cache.get_or_parse(&sm, f, "a");
        assert!(Arc::ptr_eq(&u1, &u2));
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn edit_and_revert_both_hit() {
        let mut sm = SourceMap::new();
        let f = sm.add_file("a.genus", "void main() { }");
        let mut cache = ParseCache::new();
        let u1 = cache.get_or_parse(&sm, f, "a");
        sm.update_file(f, "void main() { return; }");
        let u2 = cache.get_or_parse(&sm, f, "a");
        assert_ne!(u1.content_fp, u2.content_fp);
        sm.update_file(f, "void main() { }");
        let u3 = cache.get_or_parse(&sm, f, "a");
        assert!(Arc::ptr_eq(&u1, &u3));
        assert_eq!(cache.stats(), (1, 2));
    }
}
