//! Abstract syntax tree for the Genus surface language.
//!
//! The AST mirrors the paper's syntax closely: square-bracket generics,
//! `where` clauses binding constraint witnesses to optional model variables,
//! `with` clauses selecting models inside types, receiver-typed constraint
//! operations (`V E.source();`), model declarations with multimethod
//! definitions, `enrich` and `use` declarations, and existential types
//! `[some U where Printable[U]]List[U]`.

use genus_common::{Span, Symbol};

/// A parsed compilation unit.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// `import m;` declarations at the top of the unit, in source order.
    pub imports: Vec<ImportDecl>,
    /// Top-level declarations in source order.
    pub decls: Vec<Decl>,
}

/// An `import m;` declaration naming another compilation unit.
///
/// A unit that declares imports sees only the prelude, the stdlib, itself,
/// and the transitive closure of its imports; a unit with no imports keeps
/// the historical whole-program namespace. `import` is a contextual keyword:
/// it is only recognized in declaration position, so existing programs using
/// `import` as an identifier still parse.
#[derive(Debug, Clone, PartialEq)]
pub struct ImportDecl {
    /// The imported module name (a unit's file stem).
    pub name: Symbol,
    /// Source span of the whole declaration.
    pub span: Span,
}

/// Any top-level declaration.
#[derive(Debug, Clone)]
pub enum Decl {
    /// `class C[...] ... { ... }`
    Class(ClassDecl),
    /// `interface I[...] ... { ... }`
    Interface(InterfaceDecl),
    /// `constraint K[X, Y] ... { ... }`
    Constraint(ConstraintDecl),
    /// `model M[...] for K[...] ... { ... }`
    Model(ModelDecl),
    /// `enrich M { ... }`
    Enrich(EnrichDecl),
    /// `use M;` or the parameterized form.
    Use(UseDecl),
    /// A free-standing generic method (the paper writes `sort[T](...)`,
    /// `SSSP[V,E,W](...)` at top level).
    Method(MethodDecl),
}

impl Decl {
    /// Primary span of the declaration.
    pub fn span(&self) -> Span {
        match self {
            Decl::Class(d) => d.span,
            Decl::Interface(d) => d.span,
            Decl::Constraint(d) => d.span,
            Decl::Model(d) => d.span,
            Decl::Enrich(d) => d.span,
            Decl::Use(d) => d.span,
            Decl::Method(d) => d.span,
        }
    }

    /// Declared name, if the declaration introduces one.
    pub fn name(&self) -> Option<Symbol> {
        match self {
            Decl::Class(d) => Some(d.name),
            Decl::Interface(d) => Some(d.name),
            Decl::Constraint(d) => Some(d.name),
            Decl::Model(d) => Some(d.name),
            Decl::Enrich(_) | Decl::Use(_) => None,
            Decl::Method(d) => Some(d.name),
        }
    }
}

/// A declared type parameter, e.g. the `T` in `class Set[T ...]`.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeParam {
    /// Parameter name.
    pub name: Symbol,
    /// Optional upper (subtype) bound — used for desugared wildcards
    /// (`? extends T`) and explicit existential bounds.
    pub bound: Option<Ty>,
    /// Source span.
    pub span: Span,
}

/// One `where`-clause entry: a constraint plus an optional model variable,
/// e.g. `where Comparable[T] c`.
#[derive(Debug, Clone, PartialEq)]
pub struct WhereBinding {
    /// The constraint being required.
    pub constraint: ConstraintRef,
    /// Optional model-variable name naming the witness.
    pub var: Option<Symbol>,
    /// Source span.
    pub span: Span,
}

/// The generic signature of a declaration: type parameters plus where-clause
/// constraints.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GenericSig {
    /// Declared type parameters.
    pub type_params: Vec<TypeParam>,
    /// Required constraints with optional model variables.
    pub wheres: Vec<WhereBinding>,
}

impl GenericSig {
    /// Whether the signature declares neither parameters nor constraints.
    pub fn is_empty(&self) -> bool {
        self.type_params.is_empty() && self.wheres.is_empty()
    }
}

/// A reference to a constraint applied to argument types, e.g.
/// `GraphLike[V, E]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintRef {
    /// Constraint name.
    pub name: Symbol,
    /// Argument types.
    pub args: Vec<Ty>,
    /// Source span.
    pub span: Span,
}

/// Built-in primitive types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimTy {
    /// 32-bit integer.
    Int,
    /// 64-bit integer.
    Long,
    /// 64-bit IEEE float.
    Double,
    /// Boolean.
    Boolean,
    /// Unicode scalar.
    Char,
    /// Method return type `void`.
    Void,
}

impl PrimTy {
    /// Source keyword for the primitive.
    pub fn name(&self) -> &'static str {
        match self {
            PrimTy::Int => "int",
            PrimTy::Long => "long",
            PrimTy::Double => "double",
            PrimTy::Boolean => "boolean",
            PrimTy::Char => "char",
            PrimTy::Void => "void",
        }
    }
}

/// A surface type.
#[derive(Debug, Clone, PartialEq)]
pub struct Ty {
    /// Shape of the type.
    pub kind: TyKind,
    /// Source span.
    pub span: Span,
}

impl Ty {
    /// Convenience constructor.
    pub fn new(kind: TyKind, span: Span) -> Self {
        Ty { kind, span }
    }

    /// A named type with no arguments (also used for type variables).
    pub fn simple(name: Symbol, span: Span) -> Self {
        Ty {
            kind: TyKind::Named {
                name,
                args: Vec::new(),
                models: Vec::new(),
            },
            span,
        }
    }
}

/// Shapes of surface types.
#[derive(Debug, Clone, PartialEq)]
pub enum TyKind {
    /// `int`, `double`, ... or `void` in return position.
    Prim(PrimTy),
    /// Class, interface, or type-variable reference with type arguments and
    /// an optional `with` clause of model expressions:
    /// `TreeSet[T with c]`, `List[E]`, `T`.
    Named {
        /// Head name.
        name: Symbol,
        /// Type arguments (may contain wildcards).
        args: Vec<Ty>,
        /// Models from the `with` clause; empty means "resolve defaults".
        models: Vec<ModelExpr>,
    },
    /// `T[]`.
    Array(Box<Ty>),
    /// `[some U where K[U] m] Body` — use-site existential quantification.
    Existential {
        /// Existentially bound type parameters.
        params: Vec<TypeParam>,
        /// Existentially bound constraint witnesses.
        wheres: Vec<WhereBinding>,
        /// The quantified body type.
        body: Box<Ty>,
    },
    /// A wildcard in type-argument position: `?` or `? extends T`.
    Wildcard {
        /// Optional upper bound.
        bound: Option<Box<Ty>>,
    },
}

/// A model expression: something that can witness a constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelExpr {
    /// A named model, model variable, or type name (natural model), possibly
    /// applied: `CIEq`, `g`, `String`, `DualGraph[V, E with g]`.
    Named {
        /// Head name.
        name: Symbol,
        /// Type arguments of a parameterized model.
        args: Vec<Ty>,
        /// Model arguments (`with` part).
        models: Vec<ModelExpr>,
        /// Source span.
        span: Span,
    },
    /// A wildcard model `?` (sugar for existential quantification over the
    /// witness, §6).
    Wildcard {
        /// Source span.
        span: Span,
    },
}

impl ModelExpr {
    /// Source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            ModelExpr::Named { span, .. } => *span,
            ModelExpr::Wildcard { span } => *span,
        }
    }
}

/// A formal value parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter type.
    pub ty: Ty,
    /// Parameter name.
    pub name: Symbol,
    /// Source span.
    pub span: Span,
}

/// `class` declaration.
#[derive(Debug, Clone)]
pub struct ClassDecl {
    /// Class name.
    pub name: Symbol,
    /// Generic signature (type params + where clauses).
    pub generics: GenericSig,
    /// Superclass, if any.
    pub extends: Option<Ty>,
    /// Implemented interfaces.
    pub implements: Vec<Ty>,
    /// Field declarations.
    pub fields: Vec<FieldDecl>,
    /// Constructors.
    pub ctors: Vec<CtorDecl>,
    /// Methods.
    pub methods: Vec<MethodDecl>,
    /// Whether declared `abstract`.
    pub is_abstract: bool,
    /// Source span.
    pub span: Span,
}

/// `interface` declaration.
#[derive(Debug, Clone)]
pub struct InterfaceDecl {
    /// Interface name.
    pub name: Symbol,
    /// Generic signature.
    pub generics: GenericSig,
    /// Extended interfaces.
    pub extends: Vec<Ty>,
    /// Method signatures (bodies optional: default methods are allowed).
    pub methods: Vec<MethodDecl>,
    /// Source span.
    pub span: Span,
}

/// `constraint` declaration: a predicate over its type parameters.
#[derive(Debug, Clone)]
pub struct ConstraintDecl {
    /// Constraint name.
    pub name: Symbol,
    /// Type parameters of the predicate.
    pub params: Vec<TypeParam>,
    /// Prerequisite constraints (`extends` clause).
    pub extends: Vec<ConstraintRef>,
    /// Required operations.
    pub methods: Vec<ConstraintMethodSig>,
    /// Source span.
    pub span: Span,
}

/// One operation required by a constraint, with an explicit receiver type for
/// multiparameter constraints (`V E.source();`) or the implicit sole
/// parameter for single-parameter constraints (`boolean equals(T other);`).
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintMethodSig {
    /// Whether this is a `static` requirement (invoked on the type, e.g.
    /// `T.zero()`).
    pub is_static: bool,
    /// Return type.
    pub ret: Ty,
    /// Receiver type parameter name; `None` in the single-parameter sugar
    /// (normalized during collection).
    pub receiver: Option<Symbol>,
    /// Operation name.
    pub name: Symbol,
    /// Value parameters.
    pub params: Vec<Param>,
    /// Source span.
    pub span: Span,
}

/// `model` declaration witnessing a constraint.
#[derive(Debug, Clone)]
pub struct ModelDecl {
    /// Model name.
    pub name: Symbol,
    /// Generic signature (parameterized models, Figure 5).
    pub generics: GenericSig,
    /// The constraint instantiation this model witnesses.
    pub for_constraint: ConstraintRef,
    /// Inherited models (`extends`, §5.3 — code reuse, not subtyping).
    pub extends: Vec<ModelExpr>,
    /// Method definitions, possibly multimethods (§5.1).
    pub methods: Vec<ModelMethodDef>,
    /// Source span.
    pub span: Span,
}

/// A method definition inside a model or enrichment.
///
/// The receiver type may be a *subtype* of the constrained parameter
/// (`Shape Circle.intersect(Rectangle r)`), which is what makes models
/// multimethods.
#[derive(Debug, Clone)]
pub struct ModelMethodDef {
    /// Whether this implements a `static` constraint operation.
    pub is_static: bool,
    /// Return type.
    pub ret: Ty,
    /// Explicit receiver type; `None` in single-parameter sugar.
    pub receiver: Option<Ty>,
    /// Method name.
    pub name: Symbol,
    /// Value parameters.
    pub params: Vec<Param>,
    /// Body.
    pub body: Block,
    /// Source span.
    pub span: Span,
}

/// `enrich M { ... }` — post-factum addition of methods to a model (§5.1).
#[derive(Debug, Clone)]
pub struct EnrichDecl {
    /// Name of the enriched model.
    pub target: Symbol,
    /// Added method definitions.
    pub methods: Vec<ModelMethodDef>,
    /// Source span.
    pub span: Span,
}

/// `use` declaration enabling a model for default resolution (§4.4), possibly
/// parameterized (§4.7):
/// `use [E where Cloneable[E] c] ArrayListDeepCopy[E with c] for Cloneable[ArrayList[E]];`
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// Generic signature of the parameterized form (empty for `use M;`).
    pub generics: GenericSig,
    /// The model being enabled.
    pub model: ModelExpr,
    /// Constraint the model is enabled for (inferred from the model's
    /// declaration when omitted).
    pub for_constraint: Option<ConstraintRef>,
    /// Source span.
    pub span: Span,
}

/// Field declaration inside a class.
#[derive(Debug, Clone)]
pub struct FieldDecl {
    /// Whether the field is `static`.
    pub is_static: bool,
    /// Field type.
    pub ty: Ty,
    /// Field name.
    pub name: Symbol,
    /// Optional initializer.
    pub init: Option<Expr>,
    /// Source span.
    pub span: Span,
}

/// Constructor declaration.
#[derive(Debug, Clone)]
pub struct CtorDecl {
    /// Value parameters.
    pub params: Vec<Param>,
    /// Body.
    pub body: Block,
    /// Source span.
    pub span: Span,
}

/// Method declaration (in classes, interfaces, or at top level).
#[derive(Debug, Clone)]
pub struct MethodDecl {
    /// Whether declared `static`.
    pub is_static: bool,
    /// Whether declared `abstract` (no body).
    pub is_abstract: bool,
    /// Whether declared `native` (implemented by the runtime, used by the
    /// built-in standard library).
    pub is_native: bool,
    /// Return type (`void` for none).
    pub ret: Ty,
    /// Method name.
    pub name: Symbol,
    /// Method-level generic signature, including *model genericity* — a
    /// method may add `where` constraints without adding type parameters
    /// (§3.2, `List.remove`).
    pub generics: GenericSig,
    /// Value parameters.
    pub params: Vec<Param>,
    /// Body; `None` for abstract/interface signatures.
    pub body: Option<Block>,
    /// Source span.
    pub span: Span,
}

/// A block of statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Source span.
    pub span: Span,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Shape of the statement.
    pub kind: StmtKind,
    /// Source span.
    pub span: Span,
}

/// Shapes of statements.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `T x = e;` or `T x;`
    Local {
        /// Declared type.
        ty: Ty,
        /// Variable name.
        name: Symbol,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// Explicit local binding of existentials (§6.2):
    /// `[U] (List[U] l) where Comparable[U] = f();`
    LocalBind {
        /// Freshly bound type variables.
        params: Vec<TypeParam>,
        /// Declared type of the new local (mentions the bound variables).
        ty: Ty,
        /// Variable name.
        name: Symbol,
        /// Constraints whose witnesses are unpacked alongside.
        wheres: Vec<WhereBinding>,
        /// The packed existential value.
        init: Expr,
    },
    /// Expression statement.
    Expr(Expr),
    /// `if (c) { ... } else { ... }` — `else if` is nested in the else block.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_blk: Block,
        /// Optional else branch.
        else_blk: Option<Block>,
    },
    /// `while (c) { ... }`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Block,
    },
    /// C-style `for (init; cond; update) { ... }`.
    For {
        /// Optional init statement (local or expression).
        init: Option<Box<Stmt>>,
        /// Optional condition.
        cond: Option<Expr>,
        /// Optional update expression.
        update: Option<Expr>,
        /// Body.
        body: Block,
    },
    /// `for (T x : e) { ... }` over arrays and `Iterable`s.
    ForEach {
        /// Element type.
        ty: Ty,
        /// Element variable.
        name: Symbol,
        /// Iterated expression.
        iter: Expr,
        /// Body.
        body: Block,
    },
    /// `return e;` / `return;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// Nested block.
    Block(Block),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+` (numeric addition or string concatenation).
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
    /// `%`.
    Rem,
    /// `==` (reference/primitive equality).
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `&&` (short-circuit).
    And,
    /// `||` (short-circuit).
    Or,
}

impl BinOp {
    /// Source text of the operator.
    pub fn text(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Logical `!`.
    Not,
    /// Numeric negation `-`.
    Neg,
}

/// Explicit type/model arguments at a generic method call:
/// `sort[int](l)`, `m[T with c](x)`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TypeArgs {
    /// Type arguments.
    pub types: Vec<Ty>,
    /// Model arguments.
    pub models: Vec<ModelExpr>,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Shape of the expression.
    pub kind: ExprKind,
    /// Source span.
    pub span: Span,
}

/// Shapes of expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// `42`
    IntLit(i64),
    /// `42L`
    LongLit(i64),
    /// `3.14`
    DoubleLit(f64),
    /// `true` / `false`
    BoolLit(bool),
    /// `'c'`
    CharLit(char),
    /// `"s"`
    StrLit(String),
    /// `null`
    Null,
    /// `this`
    This,
    /// A simple name: local variable, parameter, field of `this`, or a type
    /// name used as a static receiver (`W.one()`), resolved during checking.
    Name(Symbol),
    /// `e.f` — field access (also array `.length`).
    Field {
        /// Receiver.
        recv: Box<Expr>,
        /// Field name.
        name: Symbol,
    },
    /// Method call: `e.m(args)`, `m(args)`, or with explicit instantiation
    /// `m[T with c](args)`. A `recv` that is a type name becomes a static /
    /// constraint-static call during checking.
    Call {
        /// Optional receiver (`None` = unqualified).
        recv: Option<Box<Expr>>,
        /// Method name.
        name: Symbol,
        /// Optional explicit type/model arguments.
        type_args: Option<TypeArgs>,
        /// Actual arguments.
        args: Vec<Expr>,
    },
    /// Expander call `e.(m.f)(args)` (§4.1): invoke operation `f` of model
    /// expression `m` with `e` as receiver.
    ExpanderCall {
        /// Receiver value.
        recv: Box<Expr>,
        /// The expander (a model expression, e.g. `CIEq`, `g`, `String`).
        expander: ModelExpr,
        /// Operation name.
        name: Symbol,
        /// Actual arguments.
        args: Vec<Expr>,
    },
    /// `new C[T with m](args)`.
    New {
        /// Instantiated class type.
        ty: Ty,
        /// Constructor arguments.
        args: Vec<Expr>,
    },
    /// `new T[n]` — arrays of type variables are creatable thanks to
    /// reified models (§3.1).
    NewArray {
        /// Element type.
        elem: Ty,
        /// Length.
        len: Box<Expr>,
    },
    /// `a[i]`.
    Index {
        /// Array expression.
        arr: Box<Expr>,
        /// Index expression.
        idx: Box<Expr>,
    },
    /// `lhs = rhs`, `lhs += rhs`, `lhs -= rhs`.
    Assign {
        /// Assignment target (name, field, or index).
        lhs: Box<Expr>,
        /// Value.
        rhs: Box<Expr>,
        /// `Some(op)` for compound assignment.
        op: Option<BinOp>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `e instanceof T` — fully reified, including model arguments (§4.6).
    InstanceOf {
        /// Tested expression.
        expr: Box<Expr>,
        /// Tested type.
        ty: Ty,
    },
    /// `(T) e`.
    Cast {
        /// Target type.
        ty: Ty,
        /// Source expression.
        expr: Box<Expr>,
    },
    /// `c ? t : e`.
    Cond {
        /// Condition.
        cond: Box<Expr>,
        /// Then value.
        then_e: Box<Expr>,
        /// Else value.
        else_e: Box<Expr>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use genus_common::Span;

    #[test]
    fn simple_ty_helper() {
        let t = Ty::simple(Symbol::intern("T"), Span::dummy());
        match t.kind {
            TyKind::Named {
                name,
                ref args,
                ref models,
            } => {
                assert_eq!(name.as_str(), "T");
                assert!(args.is_empty());
                assert!(models.is_empty());
            }
            _ => panic!("expected named type"),
        }
    }

    #[test]
    fn decl_name_extraction() {
        let d = Decl::Use(UseDecl {
            generics: GenericSig::default(),
            model: ModelExpr::Named {
                name: Symbol::intern("M"),
                args: vec![],
                models: vec![],
                span: Span::dummy(),
            },
            for_constraint: None,
            span: Span::dummy(),
        });
        assert_eq!(d.name(), None);
    }

    #[test]
    fn binop_text() {
        assert_eq!(BinOp::Le.text(), "<=");
        assert_eq!(BinOp::And.text(), "&&");
    }
}
