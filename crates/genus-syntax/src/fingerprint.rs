//! Content-hash fingerprints over source units, the keys of the
//! incremental compilation pipeline.
//!
//! Three fingerprints are computed per compilation unit, at three levels of
//! sensitivity:
//!
//! * [`content_fp`] — a hash of the raw source text. Changes on *any* edit;
//!   keys parse-tree memoization and a unit's own body verdicts.
//! * [`interface_fp`] — a hash of the source text with every executable
//!   body region (method/constructor bodies, field initializers) blanked
//!   out. Body-only edits leave it unchanged, so it keys everything that
//!   depends on a unit's *declarations*: the semantic table, and other
//!   units' verdicts through their import closure.
//! * [`env_fp_part`] — a structural, span-free hash of the unit's
//!   contribution to the *global* checking environment: its top-level name
//!   list, model/use/enrich declarations (default model resolution is
//!   whole-program), class headers (natural models come from `implements`
//!   clauses), and global method signatures (calls are not import-checked).
//!   Unlike [`interface_fp`] it ignores comments, whitespace, and member
//!   signatures, so a member-signature edit in one unit does not disturb
//!   unrelated units' verdict keys.
//!
//! All three are FNV-1a (`genus_common::FnvHasher`): the keys are trusted,
//! in-process, and collision-adversarial inputs are not a concern.

use crate::ast::*;
use genus_common::FnvHasher;
use std::hash::Hasher;

/// A 64-bit content fingerprint.
pub type Fp = u64;

fn fnv(f: impl FnOnce(&mut FnvHasher)) -> Fp {
    let mut h = FnvHasher::default();
    f(&mut h);
    h.finish()
}

/// Combines an ordered sequence of fingerprints into one.
pub fn combine_fps(fps: impl IntoIterator<Item = Fp>) -> Fp {
    fnv(|h| {
        for fp in fps {
            h.write(&fp.to_le_bytes());
        }
    })
}

/// Fingerprint of a unit's raw text (plus its name, so same-content files
/// under different names key separately).
pub fn content_fp(name: &str, src: &str) -> Fp {
    fnv(|h| {
        h.write(name.as_bytes());
        h.write(&[0xFE]);
        h.write(src.as_bytes());
    })
}

/// Collects the byte ranges of every executable body region in `p`:
/// method and constructor bodies, field initializers, and model/enrich
/// method bodies. Spans are relative to the unit's own file.
fn body_ranges(p: &Program) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    fn block(out: &mut Vec<(u32, u32)>, b: &Block) {
        out.push((b.span.lo, b.span.hi));
    }
    for d in &p.decls {
        match d {
            Decl::Class(c) => {
                for f in &c.fields {
                    if let Some(init) = &f.init {
                        out.push((init.span.lo, init.span.hi));
                    }
                }
                for k in &c.ctors {
                    block(&mut out, &k.body);
                }
                for m in &c.methods {
                    if let Some(b) = &m.body {
                        block(&mut out, b);
                    }
                }
            }
            Decl::Interface(i) => {
                for m in &i.methods {
                    if let Some(b) = &m.body {
                        block(&mut out, b);
                    }
                }
            }
            Decl::Model(m) => {
                for mm in &m.methods {
                    block(&mut out, &mm.body);
                }
            }
            Decl::Enrich(e) => {
                for mm in &e.methods {
                    block(&mut out, &mm.body);
                }
            }
            Decl::Method(m) => {
                if let Some(b) = &m.body {
                    block(&mut out, b);
                }
            }
            Decl::Constraint(_) | Decl::Use(_) => {}
        }
    }
    out.sort_unstable();
    out
}

/// Fingerprint of a unit's declared interface: the source text with every
/// executable body region replaced by a placeholder byte. Edits confined to
/// bodies leave it unchanged; any edit to a signature, a declaration list,
/// an import, or surrounding trivia changes it (trivia sensitivity merely
/// over-invalidates, which is safe).
pub fn interface_fp(name: &str, src: &str, p: &Program) -> Fp {
    let ranges = body_ranges(p);
    fnv(|h| {
        h.write(name.as_bytes());
        h.write(&[0xFE]);
        let bytes = src.as_bytes();
        let mut pos = 0usize;
        for (lo, hi) in ranges {
            let (lo, hi) = (lo as usize, hi as usize);
            if lo >= bytes.len() || hi > bytes.len() || lo < pos {
                continue; // malformed span after parse errors: hash it all
            }
            h.write(&bytes[pos..lo]);
            h.write(&[0xFF]); // placeholder keeps hole positions distinct
            pos = hi;
        }
        h.write(&bytes[pos..]);
    })
}

/// The unit's structural contribution to the global checking environment.
/// See the module docs for exactly what this covers; everything hashed here
/// is span-free so body edits (which shift spans) never disturb it.
pub fn env_fp_part(name: &str, p: &Program) -> Fp {
    fnv(|h| {
        h.write(name.as_bytes());
        let mut e = EnvHasher { h };
        for i in &p.imports {
            e.tag("import");
            e.sym(i.name);
        }
        for d in &p.decls {
            match d {
                Decl::Class(c) => {
                    e.tag(if c.is_abstract { "aclass" } else { "class" });
                    e.sym(c.name);
                    e.generics(&c.generics);
                    if let Some(x) = &c.extends {
                        e.tag("ext");
                        e.ty(x);
                    }
                    for t in &c.implements {
                        e.tag("impl");
                        e.ty(t);
                    }
                    // Static members are callable by other units *without*
                    // naming the class in any type position (`Counter.bump()`),
                    // so their signatures are environment-relevant even
                    // though instance members are not.
                    for f in c.fields.iter().filter(|f| f.is_static) {
                        e.tag("sfield");
                        e.sym(f.name);
                        e.ty(&f.ty);
                    }
                    for m in c.methods.iter().filter(|m| m.is_static) {
                        e.tag("smethod");
                        e.method_sig(m);
                    }
                }
                Decl::Interface(i) => {
                    e.tag("iface");
                    e.sym(i.name);
                    e.generics(&i.generics);
                    for t in &i.extends {
                        e.tag("ext");
                        e.ty(t);
                    }
                }
                Decl::Constraint(c) => {
                    e.tag("constraint");
                    e.sym(c.name);
                }
                Decl::Model(m) => {
                    e.tag("model");
                    e.sym(m.name);
                    e.generics(&m.generics);
                    e.cref(&m.for_constraint);
                    for x in &m.extends {
                        e.tag("ext");
                        e.model(x);
                    }
                    for mm in &m.methods {
                        e.model_method_sig(mm);
                    }
                }
                Decl::Enrich(en) => {
                    e.tag("enrich");
                    e.sym(en.target);
                    for mm in &en.methods {
                        e.model_method_sig(mm);
                    }
                }
                Decl::Use(u) => {
                    e.tag("use");
                    e.generics(&u.generics);
                    e.model(&u.model);
                    if let Some(c) = &u.for_constraint {
                        e.tag("for");
                        e.cref(c);
                    }
                }
                Decl::Method(m) => {
                    e.tag("global");
                    e.method_sig(m);
                }
            }
        }
    })
}

/// Span-free structural hashing of signature-level AST nodes.
struct EnvHasher<'a> {
    h: &'a mut FnvHasher,
}

impl EnvHasher<'_> {
    fn tag(&mut self, t: &str) {
        self.h.write(t.as_bytes());
        self.h.write(&[0xFE]);
    }

    fn sym(&mut self, s: genus_common::Symbol) {
        self.h.write(s.as_str().as_bytes());
        self.h.write(&[0xFE]);
    }

    fn u8(&mut self, b: u8) {
        self.h.write(&[b]);
    }

    fn ty(&mut self, t: &Ty) {
        match &t.kind {
            TyKind::Prim(p) => {
                self.u8(1);
                self.tag(p.name());
            }
            TyKind::Named { name, args, models } => {
                self.u8(2);
                self.sym(*name);
                self.u8(args.len() as u8);
                for a in args {
                    self.ty(a);
                }
                self.u8(models.len() as u8);
                for m in models {
                    self.model(m);
                }
            }
            TyKind::Array(el) => {
                self.u8(3);
                self.ty(el);
            }
            TyKind::Existential {
                params,
                wheres,
                body,
            } => {
                self.u8(4);
                for p in params {
                    self.tparam(p);
                }
                self.u8(0xFD);
                for w in wheres {
                    self.where_binding(w);
                }
                self.ty(body);
            }
            TyKind::Wildcard { bound } => {
                self.u8(5);
                if let Some(b) = bound {
                    self.ty(b);
                }
            }
        }
    }

    fn model(&mut self, m: &ModelExpr) {
        match m {
            ModelExpr::Named {
                name, args, models, ..
            } => {
                self.u8(6);
                self.sym(*name);
                self.u8(args.len() as u8);
                for a in args {
                    self.ty(a);
                }
                self.u8(models.len() as u8);
                for mm in models {
                    self.model(mm);
                }
            }
            ModelExpr::Wildcard { .. } => self.u8(7),
        }
    }

    fn tparam(&mut self, p: &TypeParam) {
        self.sym(p.name);
        if let Some(b) = &p.bound {
            self.tag("bnd");
            self.ty(b);
        }
    }

    fn where_binding(&mut self, w: &WhereBinding) {
        self.cref(&w.constraint);
        if let Some(v) = w.var {
            self.sym(v);
        }
        self.u8(0xFD);
    }

    fn cref(&mut self, c: &ConstraintRef) {
        self.sym(c.name);
        self.u8(c.args.len() as u8);
        for a in &c.args {
            self.ty(a);
        }
    }

    fn generics(&mut self, g: &GenericSig) {
        self.u8(g.type_params.len() as u8);
        for p in &g.type_params {
            self.tparam(p);
        }
        self.u8(g.wheres.len() as u8);
        for w in &g.wheres {
            self.where_binding(w);
        }
    }

    fn method_sig(&mut self, m: &MethodDecl) {
        self.u8((m.is_static as u8) | ((m.is_abstract as u8) << 1) | ((m.is_native as u8) << 2));
        self.ty(&m.ret);
        self.sym(m.name);
        self.generics(&m.generics);
        self.u8(m.params.len() as u8);
        for p in &m.params {
            self.ty(&p.ty);
            self.sym(p.name);
        }
    }

    fn model_method_sig(&mut self, m: &ModelMethodDef) {
        self.u8(m.is_static as u8);
        self.ty(&m.ret);
        if let Some(r) = &m.receiver {
            self.tag("recv");
            self.ty(r);
        }
        self.sym(m.name);
        self.u8(m.params.len() as u8);
        for p in &m.params {
            self.ty(&p.ty);
            self.sym(p.name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genus_common::{Diagnostics, SourceMap};

    fn parse(src: &str) -> (Program, String) {
        let mut sm = SourceMap::new();
        let mut d = Diagnostics::new();
        let f = sm.add_file("t.genus", src);
        let p = crate::parse_program(&sm, f, &mut d);
        assert!(!d.has_errors(), "{src}");
        (p, src.to_string())
    }

    #[test]
    fn body_edit_keeps_interface_fp() {
        let (p1, s1) = parse("int main() { return 1; }");
        let (p2, s2) = parse("int main() { return 2; }");
        assert_ne!(content_fp("t", &s1), content_fp("t", &s2));
        assert_eq!(interface_fp("t", &s1, &p1), interface_fp("t", &s2, &p2));
        assert_eq!(env_fp_part("t", &p1), env_fp_part("t", &p2));
    }

    #[test]
    fn signature_edit_changes_interface_fp() {
        let (p1, s1) = parse("int main() { return 1; }");
        let (p2, s2) = parse("long main() { return 1; }");
        assert_ne!(interface_fp("t", &s1, &p1), interface_fp("t", &s2, &p2));
        // Global signatures participate in the environment fingerprint.
        assert_ne!(env_fp_part("t", &p1), env_fp_part("t", &p2));
    }

    #[test]
    fn member_body_and_sig_sensitivity() {
        let base = "class C { int f() { return 1; } }";
        let body = "class C { int f() { return 2; } }";
        let sig = "class C { long f() { return 1; } }";
        let (pb, sb) = parse(base);
        let (p2, s2) = parse(body);
        let (p3, s3) = parse(sig);
        assert_eq!(interface_fp("t", &sb, &pb), interface_fp("t", &s2, &p2));
        assert_ne!(interface_fp("t", &sb, &pb), interface_fp("t", &s3, &p3));
        // Instance member signatures deliberately stay out of the env part:
        // they are only reachable through the import closure.
        assert_eq!(env_fp_part("t", &pb), env_fp_part("t", &p3));
    }

    #[test]
    fn static_members_are_env_relevant() {
        // `C.f()` is callable from a unit that never names `C` in a type
        // position, so static signatures must perturb the env fingerprint.
        let (p1, _) = parse("class C { static int f() { return 1; } }");
        let (p2, _) = parse("class C { static long f() { return 1; } }");
        assert_ne!(env_fp_part("t", &p1), env_fp_part("t", &p2));
        let (p3, _) = parse("class C { static int x = 1; }");
        let (p4, _) = parse("class C { static long x = 1; }");
        assert_ne!(env_fp_part("t", &p3), env_fp_part("t", &p4));
        // Static *bodies* stay irrelevant.
        let (p5, _) = parse("class C { static int f() { return 2; } }");
        assert_eq!(env_fp_part("t", &p1), env_fp_part("t", &p5));
    }

    #[test]
    fn model_and_use_decls_are_env_relevant() {
        let (p1, _) = parse("constraint K[T] { int op(T x); } void main() { }");
        let (p2, _) = parse(
            "constraint K[T] { int op(T x); } model M for K[int] { int op(int x) { return x; } } void main() { }",
        );
        assert_ne!(env_fp_part("t", &p1), env_fp_part("t", &p2));
    }

    #[test]
    fn imports_parse_and_fingerprint() {
        let (p, s) = parse("import util;\nvoid main() { }");
        assert_eq!(p.imports.len(), 1);
        assert_eq!(p.imports[0].name.as_str(), "util");
        let (p2, s2) = parse("void main() { }");
        assert_ne!(interface_fp("t", &s, &p), interface_fp("t", &s2, &p2));
        assert_ne!(env_fp_part("t", &p), env_fp_part("t", &p2));
    }

    #[test]
    fn import_stays_an_ordinary_identifier() {
        let (p, _) = parse("void main() { int import = 3; import = import + 1; }");
        assert!(p.imports.is_empty());
        assert_eq!(p.decls.len(), 1);
    }
}
