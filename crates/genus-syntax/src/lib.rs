//! Front end for the Genus surface language: lexer, parser, AST, and
//! pretty-printer.
//!
//! Genus (PLDI 2015) is a Java-like language whose genericity mechanism is
//! built on *constraints* (predicates over types) and *models* (witnesses
//! that types satisfy constraints). This crate understands the full surface
//! syntax used in the paper:
//!
//! * `constraint Eq[T] { boolean equals(T other); }`
//! * `class TreeSet[T where Comparable[T] c] implements Set[T with c] { ... }`
//! * `model CIEq for Eq[String] { ... }`, `enrich ShapeIntersect { ... }`
//! * `use ArrayListDeepCopy;`, expander calls `"x".(CIEq.equals)("X")`,
//!   existential types `[some U where Printable[U]]List[U]`, wildcard models
//!   `Set[String with ?]`, and explicit local binding.
//!
//! # Examples
//!
//! ```
//! use genus_syntax::parse_program;
//! use genus_common::{SourceMap, Diagnostics};
//!
//! let mut sm = SourceMap::new();
//! let mut diags = Diagnostics::new();
//! let file = sm.add_file("eq.genus", "constraint Eq[T] { boolean equals(T other); }");
//! let program = parse_program(&sm, file, &mut diags);
//! assert!(!diags.has_errors());
//! assert_eq!(program.decls.len(), 1);
//! ```

pub mod ast;
pub mod fingerprint;
pub mod lexer;
pub mod memo;
pub mod parser;
pub mod pretty;
pub mod token;

pub use ast::*;
pub use fingerprint::{combine_fps, content_fp, env_fp_part, interface_fp, Fp};
pub use lexer::lex;
pub use memo::{parse_unit, ParseCache, ParsedUnit};
pub use parser::{parse_program, Parser};
pub use token::{Token, TokenKind};

use genus_common::{Diagnostics, FileId, SourceMap};

/// Lexes and parses one source file into a [`Program`].
///
/// Errors are reported into `diags`; a best-effort partial program is
/// returned even on error so later phases can continue for diagnostics.
pub fn parse(sm: &SourceMap, file: FileId, diags: &mut Diagnostics) -> Program {
    parse_program(sm, file, diags)
}
