//! Hand-written lexer for Genus source text.

use crate::token::{Token, TokenKind};
use genus_common::{Diagnostics, FileId, SourceMap, Span, Symbol};

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    file: FileId,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> u8 {
        *self.bytes.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.bytes.get(self.pos + 1).unwrap_or(&0)
    }

    fn span(&self, lo: usize) -> Span {
        Span::new(self.file, lo as u32, self.pos as u32)
    }

    fn skip_trivia(&mut self, diags: &mut Diagnostics) {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'/' if self.peek2() == b'/' => {
                    while self.pos < self.bytes.len() && self.peek() != b'\n' {
                        self.pos += 1;
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let lo = self.pos;
                    self.pos += 2;
                    let mut closed = false;
                    while self.pos < self.bytes.len() {
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.pos += 2;
                            closed = true;
                            break;
                        }
                        self.pos += 1;
                    }
                    if !closed {
                        diags.error("E0001", self.span(lo), "unterminated block comment");
                    }
                }
                _ => break,
            }
        }
    }

    fn lex_number(&mut self) -> TokenKind {
        let lo = self.pos;
        while self.peek().is_ascii_digit() {
            self.pos += 1;
        }
        let mut is_double = false;
        if self.peek() == b'.' && self.peek2().is_ascii_digit() {
            is_double = true;
            self.pos += 1;
            while self.peek().is_ascii_digit() {
                self.pos += 1;
            }
        }
        if self.peek() == b'e' || self.peek() == b'E' {
            let mut look = self.pos + 1;
            if self.bytes.get(look) == Some(&b'+') || self.bytes.get(look) == Some(&b'-') {
                look += 1;
            }
            if self.bytes.get(look).is_some_and(|b| b.is_ascii_digit()) {
                is_double = true;
                self.pos = look;
                while self.peek().is_ascii_digit() {
                    self.pos += 1;
                }
            }
        }
        let text = &self.src[lo..self.pos];
        if is_double {
            TokenKind::DoubleLit(text.parse().unwrap_or(0.0))
        } else if self.peek() == b'L' || self.peek() == b'l' {
            self.pos += 1;
            TokenKind::LongLit(text.parse().unwrap_or(0))
        } else if self.peek() == b'd' || self.peek() == b'D' {
            self.pos += 1;
            TokenKind::DoubleLit(text.parse().unwrap_or(0.0))
        } else {
            TokenKind::IntLit(text.parse().unwrap_or(0))
        }
    }

    fn lex_escape(&mut self, diags: &mut Diagnostics) -> char {
        // Caller consumed the backslash. Consume one full character (the
        // escaped char may be multi-byte).
        let lo = self.pos;
        let Some(c) = self.src[self.pos.min(self.src.len())..].chars().next() else {
            diags.error("E0004", self.span(lo), "unterminated escape at end of file");
            return '\0';
        };
        self.pos += c.len_utf8();
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            '0' => '\0',
            '\\' => '\\',
            '\'' => '\'',
            '"' => '"',
            other => {
                diags.error(
                    "E0004",
                    self.span(lo),
                    format!("unknown escape `\\{other}`"),
                );
                other
            }
        }
    }

    fn lex_string(&mut self, diags: &mut Diagnostics) -> TokenKind {
        let lo = self.pos;
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                0 | b'\n' => {
                    diags.error("E0002", self.span(lo), "unterminated string literal");
                    break;
                }
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\\' => {
                    self.pos += 1;
                    out.push(self.lex_escape(diags));
                }
                _ => {
                    // Consume a full UTF-8 character.
                    let rest = &self.src[self.pos..];
                    let c = rest.chars().next().unwrap_or('\u{FFFD}');
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
        TokenKind::StrLit(out)
    }

    fn lex_char(&mut self, diags: &mut Diagnostics) -> TokenKind {
        let lo = self.pos;
        self.pos += 1; // opening quote
        let c = match self.peek() {
            b'\\' => {
                self.pos += 1;
                self.lex_escape(diags)
            }
            0 => {
                diags.error("E0003", self.span(lo), "unterminated char literal");
                '\0'
            }
            _ => {
                let rest = &self.src[self.pos..];
                let c = rest.chars().next().unwrap_or('\u{FFFD}');
                self.pos += c.len_utf8();
                c
            }
        };
        if self.peek() == b'\'' {
            self.pos += 1;
        } else {
            diags.error("E0003", self.span(lo), "unterminated char literal");
        }
        TokenKind::CharLit(c)
    }
}

/// Lexes the registered file `file` into a token stream ending with `Eof`.
///
/// Lexical errors are pushed into `diags`; the lexer always makes progress
/// and produces a usable stream.
pub fn lex(sm: &SourceMap, file: FileId, diags: &mut Diagnostics) -> Vec<Token> {
    let src = &sm.file(file).src;
    let mut lx = Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        file,
    };
    let mut out = Vec::new();
    loop {
        lx.skip_trivia(diags);
        let lo = lx.pos;
        if lx.pos >= lx.bytes.len() {
            out.push(Token {
                kind: TokenKind::Eof,
                span: lx.span(lo),
            });
            return out;
        }
        let b = lx.peek();
        let kind = match b {
            b'0'..=b'9' => lx.lex_number(),
            b'"' => lx.lex_string(diags),
            b'\'' => lx.lex_char(diags),
            b'A'..=b'Z' | b'a'..=b'z' | b'_' | b'$' | b'#' => {
                while matches!(lx.peek(), b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_' | b'$' | b'#')
                {
                    lx.pos += 1;
                }
                let word = &lx.src[lo..lx.pos];
                TokenKind::keyword(word).unwrap_or_else(|| TokenKind::Ident(Symbol::intern(word)))
            }
            b'(' => {
                lx.pos += 1;
                TokenKind::LParen
            }
            b')' => {
                lx.pos += 1;
                TokenKind::RParen
            }
            b'{' => {
                lx.pos += 1;
                TokenKind::LBrace
            }
            b'}' => {
                lx.pos += 1;
                TokenKind::RBrace
            }
            b'[' => {
                lx.pos += 1;
                TokenKind::LBracket
            }
            b']' => {
                lx.pos += 1;
                TokenKind::RBracket
            }
            b';' => {
                lx.pos += 1;
                TokenKind::Semi
            }
            b',' => {
                lx.pos += 1;
                TokenKind::Comma
            }
            b'.' => {
                lx.pos += 1;
                TokenKind::Dot
            }
            b':' => {
                lx.pos += 1;
                TokenKind::Colon
            }
            b'?' => {
                lx.pos += 1;
                TokenKind::Question
            }
            b'=' => {
                lx.pos += 1;
                if lx.peek() == b'=' {
                    lx.pos += 1;
                    TokenKind::EqEq
                } else {
                    TokenKind::Assign
                }
            }
            b'+' => {
                lx.pos += 1;
                if lx.peek() == b'=' {
                    lx.pos += 1;
                    TokenKind::PlusAssign
                } else {
                    TokenKind::Plus
                }
            }
            b'-' => {
                lx.pos += 1;
                if lx.peek() == b'=' {
                    lx.pos += 1;
                    TokenKind::MinusAssign
                } else if lx.peek() == b'>' {
                    lx.pos += 1;
                    TokenKind::Arrow
                } else {
                    TokenKind::Minus
                }
            }
            b'*' => {
                lx.pos += 1;
                TokenKind::Star
            }
            b'/' => {
                lx.pos += 1;
                TokenKind::Slash
            }
            b'%' => {
                lx.pos += 1;
                TokenKind::Percent
            }
            b'!' => {
                lx.pos += 1;
                if lx.peek() == b'=' {
                    lx.pos += 1;
                    TokenKind::NotEq
                } else {
                    TokenKind::Not
                }
            }
            b'<' => {
                lx.pos += 1;
                if lx.peek() == b'=' {
                    lx.pos += 1;
                    TokenKind::Le
                } else {
                    TokenKind::Lt
                }
            }
            b'>' => {
                lx.pos += 1;
                if lx.peek() == b'=' {
                    lx.pos += 1;
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            b'&' => {
                lx.pos += 1;
                if lx.peek() == b'&' {
                    lx.pos += 1;
                    TokenKind::AndAnd
                } else {
                    diags.error("E0005", lx.span(lo), "single `&` is not a Genus operator");
                    continue;
                }
            }
            b'|' => {
                lx.pos += 1;
                if lx.peek() == b'|' {
                    lx.pos += 1;
                    TokenKind::OrOr
                } else {
                    diags.error("E0005", lx.span(lo), "single `|` is not a Genus operator");
                    continue;
                }
            }
            _ => {
                // Advance over one full character (may be multi-byte).
                let c = lx.src[lx.pos..].chars().next().unwrap_or('\u{FFFD}');
                lx.pos += c.len_utf8();
                diags.error("E0005", lx.span(lo), format!("unexpected character `{c}`"));
                continue;
            }
        };
        out.push(Token {
            kind,
            span: lx.span(lo),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genus_common::SourceMap;

    fn lex_str(s: &str) -> Vec<TokenKind> {
        let mut sm = SourceMap::new();
        let f = sm.add_file("t", s);
        let mut d = Diagnostics::new();
        let toks = lex(&sm, f, &mut d);
        assert!(!d.has_errors(), "{}", d.render_all(&sm));
        toks.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        let k = lex_str("constraint Eq[T] where");
        assert_eq!(
            k,
            vec![
                TokenKind::Constraint,
                TokenKind::Ident(Symbol::intern("Eq")),
                TokenKind::LBracket,
                TokenKind::Ident(Symbol::intern("T")),
                TokenKind::RBracket,
                TokenKind::Where,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        let k = lex_str("1 23L 3.5 1e3 2.5e-2 7d");
        assert_eq!(
            k,
            vec![
                TokenKind::IntLit(1),
                TokenKind::LongLit(23),
                TokenKind::DoubleLit(3.5),
                TokenKind::DoubleLit(1e3),
                TokenKind::DoubleLit(2.5e-2),
                TokenKind::DoubleLit(7.0),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn strings_and_chars() {
        let k = lex_str(r#""a\nb" 'x' '\\'"#);
        assert_eq!(
            k,
            vec![
                TokenKind::StrLit("a\nb".to_string()),
                TokenKind::CharLit('x'),
                TokenKind::CharLit('\\'),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn operators() {
        let k = lex_str("== != <= >= && || + - * / % ! = += -=");
        assert_eq!(
            k,
            vec![
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Percent,
                TokenKind::Not,
                TokenKind::Assign,
                TokenKind::PlusAssign,
                TokenKind::MinusAssign,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let k = lex_str("a // line\n b /* block\n more */ c");
        assert_eq!(k.len(), 4); // a b c eof
    }

    #[test]
    fn unterminated_string_reports() {
        let mut sm = SourceMap::new();
        let f = sm.add_file("t", "\"abc");
        let mut d = Diagnostics::new();
        let _ = lex(&sm, f, &mut d);
        assert!(d.has_errors());
    }

    #[test]
    fn spans_cover_tokens() {
        let mut sm = SourceMap::new();
        let f = sm.add_file("t", "model Foo");
        let mut d = Diagnostics::new();
        let toks = lex(&sm, f, &mut d);
        assert_eq!(sm.snippet(toks[0].span), "model");
        assert_eq!(sm.snippet(toks[1].span), "Foo");
    }
}
