//! Property tests: the pretty-printer is a fixpoint under reparsing for
//! randomly generated types, expressions, and declarations.

use genus_common::{Diagnostics, SourceMap};
use genus_syntax::ast;
use genus_syntax::pretty;
use genus_syntax::Parser;
use proptest::prelude::*;

fn sym(s: &str) -> genus_common::Symbol {
    genus_common::Symbol::intern(s)
}

fn dummy() -> genus_common::Span {
    genus_common::Span::dummy()
}

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

fn type_name() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("Foo"),
        Just("Bar"),
        Just("List"),
        Just("Set"),
        Just("T"),
        Just("U")
    ]
}

fn model_name() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("M"), Just("CIEq"), Just("g")]
}

fn arb_ty() -> impl Strategy<Value = ast::Ty> {
    let leaf = prop_oneof![
        Just(ast::Ty::new(ast::TyKind::Prim(ast::PrimTy::Int), dummy())),
        Just(ast::Ty::new(
            ast::TyKind::Prim(ast::PrimTy::Double),
            dummy()
        )),
        Just(ast::Ty::new(
            ast::TyKind::Prim(ast::PrimTy::Boolean),
            dummy()
        )),
        type_name().prop_map(|n| ast::Ty::simple(sym(n), dummy())),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            // Arrays.
            inner
                .clone()
                .prop_map(|t| ast::Ty::new(ast::TyKind::Array(Box::new(t)), dummy())),
            // Generic applications with optional models.
            (
                type_name(),
                prop::collection::vec(inner.clone(), 1..3),
                prop::collection::vec(arb_model_leaf(), 0..2)
            )
                .prop_map(|(n, args, models)| ast::Ty::new(
                    ast::TyKind::Named {
                        name: sym(n),
                        args,
                        models
                    },
                    dummy()
                )),
            // Wildcards inside a generic application.
            (type_name(), inner.clone(), any::<bool>()).prop_map(|(n, bound, bounded)| {
                let w = ast::Ty::new(
                    ast::TyKind::Wildcard {
                        bound: if bounded { Some(Box::new(bound)) } else { None },
                    },
                    dummy(),
                );
                ast::Ty::new(
                    ast::TyKind::Named {
                        name: sym(n),
                        args: vec![w],
                        models: vec![],
                    },
                    dummy(),
                )
            }),
            // Existentials.
            (type_name(), inner).prop_map(|(n, body)| ast::Ty::new(
                ast::TyKind::Existential {
                    params: vec![ast::TypeParam {
                        name: sym(n),
                        bound: None,
                        span: dummy()
                    }],
                    wheres: vec![],
                    body: Box::new(body),
                },
                dummy()
            )),
        ]
    })
}

fn arb_model_leaf() -> impl Strategy<Value = ast::ModelExpr> {
    prop_oneof![
        model_name().prop_map(|n| ast::ModelExpr::Named {
            name: sym(n),
            args: vec![],
            models: vec![],
            span: dummy(),
        }),
        Just(ast::ModelExpr::Wildcard { span: dummy() }),
    ]
}

fn var_name() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("x"), Just("y"), Just("acc"), Just("item")]
}

fn method_name() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("f"), Just("get"), Just("compareTo")]
}

fn arb_expr() -> impl Strategy<Value = ast::Expr> {
    let leaf = prop_oneof![
        (0i64..1000).prop_map(|v| ast::Expr {
            kind: ast::ExprKind::IntLit(v),
            span: dummy()
        }),
        (0i64..100).prop_map(|v| ast::Expr {
            kind: ast::ExprKind::LongLit(v),
            span: dummy()
        }),
        (0u32..1000).prop_map(|v| ast::Expr {
            kind: ast::ExprKind::DoubleLit(f64::from(v) / 8.0),
            span: dummy()
        }),
        any::<bool>().prop_map(|b| ast::Expr {
            kind: ast::ExprKind::BoolLit(b),
            span: dummy()
        }),
        "[a-z]{0,6}".prop_map(|s| ast::Expr {
            kind: ast::ExprKind::StrLit(s),
            span: dummy()
        }),
        Just(ast::Expr {
            kind: ast::ExprKind::Null,
            span: dummy()
        }),
        Just(ast::Expr {
            kind: ast::ExprKind::This,
            span: dummy()
        }),
        var_name().prop_map(|n| ast::Expr {
            kind: ast::ExprKind::Name(sym(n)),
            span: dummy()
        }),
    ];
    leaf.prop_recursive(3, 32, 3, |inner| {
        prop_oneof![
            // Binary operations.
            (
                prop_oneof![
                    Just(ast::BinOp::Add),
                    Just(ast::BinOp::Sub),
                    Just(ast::BinOp::Mul),
                    Just(ast::BinOp::Lt),
                    Just(ast::BinOp::Eq),
                    Just(ast::BinOp::And)
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| ast::Expr {
                    kind: ast::ExprKind::Binary {
                        op,
                        lhs: Box::new(l),
                        rhs: Box::new(r)
                    },
                    span: dummy(),
                }),
            // Unary not.
            inner.clone().prop_map(|e| ast::Expr {
                kind: ast::ExprKind::Unary {
                    op: ast::UnOp::Not,
                    expr: Box::new(e)
                },
                span: dummy(),
            }),
            // Calls.
            (
                method_name(),
                prop::collection::vec(inner.clone(), 0..3),
                inner.clone()
            )
                .prop_map(|(m, args, recv)| ast::Expr {
                    kind: ast::ExprKind::Call {
                        recv: Some(Box::new(recv)),
                        name: sym(m),
                        type_args: None,
                        args,
                    },
                    span: dummy(),
                }),
            // Field access.
            (var_name(), inner.clone()).prop_map(|(f, recv)| ast::Expr {
                kind: ast::ExprKind::Field {
                    recv: Box::new(recv),
                    name: sym(f)
                },
                span: dummy(),
            }),
            // Indexing.
            (inner.clone(), inner.clone()).prop_map(|(a, i)| ast::Expr {
                kind: ast::ExprKind::Index {
                    arr: Box::new(a),
                    idx: Box::new(i)
                },
                span: dummy(),
            }),
            // Ternary.
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| ast::Expr {
                kind: ast::ExprKind::Cond {
                    cond: Box::new(c),
                    then_e: Box::new(t),
                    else_e: Box::new(e),
                },
                span: dummy(),
            }),
            // Instanceof against a simple type.
            (inner.clone(), type_name()).prop_map(|(e, t)| ast::Expr {
                kind: ast::ExprKind::InstanceOf {
                    expr: Box::new(e),
                    ty: ast::Ty::simple(sym(t), dummy()),
                },
                span: dummy(),
            }),
            // New with constructor args.
            (type_name(), prop::collection::vec(inner, 0..2)).prop_map(|(t, args)| ast::Expr {
                kind: ast::ExprKind::New {
                    ty: ast::Ty::simple(sym(t), dummy()),
                    args
                },
                span: dummy(),
            }),
        ]
    })
}

// ---------------------------------------------------------------------
// Round-trip properties: print → parse → print is a fixpoint.
// ---------------------------------------------------------------------

fn parse_ty(src: &str) -> Option<ast::Ty> {
    let mut sm = SourceMap::new();
    let f = sm.add_file("t", src);
    let mut d = Diagnostics::new();
    let toks = genus_syntax::lex(&sm, f, &mut d);
    let mut p = Parser::new(toks, &mut d);
    let t = p.ty().ok()?;
    if d.has_errors() {
        return None;
    }
    Some(t)
}

fn parse_expr(src: &str) -> Option<ast::Expr> {
    let mut sm = SourceMap::new();
    let f = sm.add_file("t", src);
    let mut d = Diagnostics::new();
    let toks = genus_syntax::lex(&sm, f, &mut d);
    let mut p = Parser::new(toks, &mut d);
    let e = p.expr().ok()?;
    if d.has_errors() {
        return None;
    }
    Some(e)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn type_print_parse_fixpoint(t in arb_ty()) {
        let s1 = pretty::ty_to_string(&t);
        let t2 = parse_ty(&s1).unwrap_or_else(|| panic!("failed to reparse `{s1}`"));
        let s2 = pretty::ty_to_string(&t2);
        prop_assert_eq!(s1, s2);
    }

    #[test]
    fn expr_print_parse_fixpoint(e in arb_expr()) {
        let s1 = pretty::expr_to_string(&e);
        let e2 = parse_expr(&s1).unwrap_or_else(|| panic!("failed to reparse `{s1}`"));
        let s2 = pretty::expr_to_string(&e2);
        prop_assert_eq!(s1, s2);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn program_print_parse_fixpoint(
        tys in prop::collection::vec(arb_ty(), 1..4),
        body in arb_expr(),
    ) {
        // Assemble a method declaration using the generated pieces.
        let params: Vec<ast::Param> = tys
            .iter()
            .enumerate()
            .map(|(i, t)| ast::Param {
                ty: t.clone(),
                name: sym(&format!("p{i}")),
                span: dummy(),
            })
            .collect();
        let prog = ast::Program {
            imports: vec![],
            decls: vec![ast::Decl::Method(ast::MethodDecl {
                is_static: false,
                is_abstract: false,
                is_native: false,
                ret: ast::Ty::new(ast::TyKind::Prim(ast::PrimTy::Void), dummy()),
                name: sym("generated"),
                generics: ast::GenericSig::default(),
                params,
                body: Some(ast::Block {
                    stmts: vec![ast::Stmt {
                        kind: ast::StmtKind::Expr(body),
                        span: dummy(),
                    }],
                    span: dummy(),
                }),
                span: dummy(),
            })],
        };
        let s1 = pretty::program_to_string(&prog);
        let mut sm = SourceMap::new();
        let f = sm.add_file("t", s1.clone());
        let mut d = Diagnostics::new();
        let prog2 = genus_syntax::parse_program(&sm, f, &mut d);
        prop_assert!(!d.has_errors(), "reparse failed for:\n{}\n{}", s1, d.render_all(&sm));
        let s2 = pretty::program_to_string(&prog2);
        prop_assert_eq!(s1, s2);
    }
}
