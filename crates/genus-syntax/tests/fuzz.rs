//! Robustness: the lexer and parser must never panic, whatever the input —
//! they report diagnostics and recover.

use genus_common::{Diagnostics, SourceMap};
use proptest::prelude::*;

fn parse_anything(src: &str) {
    let mut sm = SourceMap::new();
    let f = sm.add_file("fuzz", src);
    let mut d = Diagnostics::new();
    let _ = genus_syntax::parse_program(&sm, f, &mut d);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parser_never_panics_on_ascii(src in "[ -~\n]{0,300}") {
        parse_anything(&src);
    }

    #[test]
    fn parser_never_panics_on_genus_ish_tokens(
        toks in prop::collection::vec(
            prop_oneof![
                Just("class"), Just("constraint"), Just("model"), Just("where"),
                Just("with"), Just("for"), Just("["), Just("]"), Just("{"),
                Just("}"), Just("("), Just(")"), Just(";"), Just(","), Just("."),
                Just("?"), Just("extends"), Just("some"), Just("use"), Just("new"),
                Just("T"), Just("Foo"), Just("x"), Just("1"), Just("\"s\""),
                Just("=="), Just("="), Just("+"), Just("instanceof"), Just("return"),
            ],
            0..60,
        )
    ) {
        parse_anything(&toks.join(" "));
    }

    #[test]
    fn parser_never_panics_on_unicode(src in "\\PC{0,120}") {
        parse_anything(&src);
    }
}
