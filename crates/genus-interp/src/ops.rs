//! Primitive operator semantics: arithmetic, comparison, and widening.

use crate::value::{ErrorKind, RuntimeError, Value};
use genus_check::hir::NumKind;
use genus_syntax::ast::BinOp;
use genus_types::PrimTy;

type RResult<T> = Result<T, RuntimeError>;

/// Applies a numeric widening (int→long/double, long→double, char→int);
/// non-widening pairs pass through unchanged.
#[must_use]
pub fn widen_value(v: Value, to: PrimTy) -> Value {
    match (v, to) {
        (Value::Int(x), PrimTy::Long) => Value::Long(i64::from(x)),
        (Value::Int(x), PrimTy::Double) => Value::Double(f64::from(x)),
        (Value::Long(x), PrimTy::Double) => Value::Double(x as f64),
        (Value::Char(c), PrimTy::Int) => Value::Int(c as i32),
        (v, _) => v,
    }
}

/// Evaluates a numeric arithmetic operator with Java wrapping semantics.
///
/// # Errors
///
/// `ArithmeticException` on integer division/remainder by zero; `Other`
/// on operand kind mismatches.
pub fn arith(op: BinOp, nk: NumKind, l: Value, r: Value) -> RResult<Value> {
    match nk {
        NumKind::Int => {
            let (Value::Int(a), Value::Int(b)) = (&l, &r) else {
                return Err(RuntimeError::new(
                    ErrorKind::Other,
                    "int arithmetic on non-ints",
                ));
            };
            let (a, b) = (*a, *b);
            Ok(Value::Int(match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return Err(RuntimeError::new(ErrorKind::Arithmetic, "/ by zero"));
                    }
                    a.wrapping_div(b)
                }
                BinOp::Rem => {
                    if b == 0 {
                        return Err(RuntimeError::new(ErrorKind::Arithmetic, "% by zero"));
                    }
                    a.wrapping_rem(b)
                }
                _ => return Err(RuntimeError::new(ErrorKind::Other, "bad arith op")),
            }))
        }
        NumKind::Long => {
            let (Value::Long(a), Value::Long(b)) = (&l, &r) else {
                return Err(RuntimeError::new(
                    ErrorKind::Other,
                    "long arithmetic on non-longs",
                ));
            };
            let (a, b) = (*a, *b);
            Ok(Value::Long(match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return Err(RuntimeError::new(ErrorKind::Arithmetic, "/ by zero"));
                    }
                    a.wrapping_div(b)
                }
                BinOp::Rem => {
                    if b == 0 {
                        return Err(RuntimeError::new(ErrorKind::Arithmetic, "% by zero"));
                    }
                    a.wrapping_rem(b)
                }
                _ => return Err(RuntimeError::new(ErrorKind::Other, "bad arith op")),
            }))
        }
        NumKind::Double => {
            let (Value::Double(a), Value::Double(b)) = (&l, &r) else {
                return Err(RuntimeError::new(
                    ErrorKind::Other,
                    "double arithmetic mismatch",
                ));
            };
            let (a, b) = (*a, *b);
            Ok(Value::Double(match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                BinOp::Rem => a % b,
                _ => return Err(RuntimeError::new(ErrorKind::Other, "bad arith op")),
            }))
        }
    }
}

/// Evaluates a numeric comparison (NaN compares false except `!=`).
///
/// # Errors
///
/// `Other` on operand kind mismatches.
pub fn compare(op: BinOp, nk: NumKind, l: Value, r: Value) -> RResult<Value> {
    let ord: std::cmp::Ordering = match nk {
        NumKind::Int => {
            let (Value::Int(a), Value::Int(b)) = (&l, &r) else {
                return Err(RuntimeError::new(
                    ErrorKind::Other,
                    "int comparison mismatch",
                ));
            };
            a.cmp(b)
        }
        NumKind::Long => {
            let (Value::Long(a), Value::Long(b)) = (&l, &r) else {
                return Err(RuntimeError::new(
                    ErrorKind::Other,
                    "long comparison mismatch",
                ));
            };
            a.cmp(b)
        }
        NumKind::Double => {
            let (Value::Double(a), Value::Double(b)) = (&l, &r) else {
                return Err(RuntimeError::new(
                    ErrorKind::Other,
                    "double comparison mismatch",
                ));
            };
            match a.partial_cmp(b) {
                Some(o) => o,
                None => {
                    // NaN: all comparisons false, != true.
                    return Ok(Value::Bool(matches!(op, BinOp::Ne)));
                }
            }
        }
    };
    use std::cmp::Ordering::{Equal, Greater, Less};
    Ok(Value::Bool(match op {
        BinOp::Lt => ord == Less,
        BinOp::Le => ord != Greater,
        BinOp::Gt => ord == Greater,
        BinOp::Ge => ord != Less,
        BinOp::Eq => ord == Equal,
        BinOp::Ne => ord != Equal,
        _ => return Err(RuntimeError::new(ErrorKind::Other, "bad comparison op")),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_arith_wraps_and_divides() {
        let v = arith(
            BinOp::Add,
            NumKind::Int,
            Value::Int(i32::MAX),
            Value::Int(1),
        )
        .unwrap();
        assert!(matches!(v, Value::Int(i32::MIN)));
        let v = arith(BinOp::Div, NumKind::Int, Value::Int(7), Value::Int(2)).unwrap();
        assert!(matches!(v, Value::Int(3)));
        let e = arith(BinOp::Div, NumKind::Int, Value::Int(7), Value::Int(0)).unwrap_err();
        assert_eq!(e.kind, ErrorKind::Arithmetic);
        let e = arith(BinOp::Rem, NumKind::Long, Value::Long(7), Value::Long(0)).unwrap_err();
        assert_eq!(e.kind, ErrorKind::Arithmetic);
    }

    #[test]
    fn double_division_by_zero_is_infinite() {
        let v = arith(
            BinOp::Div,
            NumKind::Double,
            Value::Double(1.0),
            Value::Double(0.0),
        )
        .unwrap();
        assert!(matches!(v, Value::Double(x) if x.is_infinite()));
    }

    #[test]
    fn comparisons() {
        let v = compare(BinOp::Lt, NumKind::Int, Value::Int(1), Value::Int(2)).unwrap();
        assert!(matches!(v, Value::Bool(true)));
        let v = compare(BinOp::Ge, NumKind::Long, Value::Long(5), Value::Long(5)).unwrap();
        assert!(matches!(v, Value::Bool(true)));
        // NaN: every comparison false except `!=`.
        let nan = Value::Double(f64::NAN);
        let v = compare(BinOp::Le, NumKind::Double, nan.clone(), Value::Double(1.0)).unwrap();
        assert!(matches!(v, Value::Bool(false)));
        let v = compare(BinOp::Ne, NumKind::Double, nan, Value::Double(1.0)).unwrap();
        assert!(matches!(v, Value::Bool(true)));
    }

    #[test]
    fn widening() {
        assert!(matches!(
            widen_value(Value::Int(3), PrimTy::Long),
            Value::Long(3)
        ));
        assert!(matches!(widen_value(Value::Int(3), PrimTy::Double), Value::Double(x) if x == 3.0));
        assert!(matches!(
            widen_value(Value::Char('a'), PrimTy::Int),
            Value::Int(97)
        ));
        // Non-widening pairs pass through unchanged.
        assert!(matches!(
            widen_value(Value::Bool(true), PrimTy::Int),
            Value::Bool(true)
        ));
    }

    #[test]
    fn type_mismatch_is_an_error_not_a_panic() {
        let e = arith(BinOp::Add, NumKind::Int, Value::Int(1), Value::Long(1)).unwrap_err();
        assert_eq!(e.kind, ErrorKind::Other);
        let e = compare(BinOp::Lt, NumKind::Double, Value::Int(1), Value::Int(2)).unwrap_err();
        assert_eq!(e.kind, ErrorKind::Other);
    }
}
