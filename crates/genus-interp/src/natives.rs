//! Runtime-implemented (`native`) operations: primitive methods and the
//! `String`/`Object` built-ins (the "common methods" of natural models,
//! §3.3).

use crate::value::{ErrorKind, RtType, RuntimeError, Value};
use crate::{Heap, Interp};
use genus_check::hir::NativeOp;
use genus_common::Symbol;
use genus_types::PrimTy;
use std::rc::Rc;

type RResult<T> = Result<T, RuntimeError>;

impl<'p> Interp<'p> {
    /// Dispatches a `String` method dynamically (reached when a string is
    /// stored behind `Object` or a type variable).
    pub(crate) fn string_virtual(
        &self,
        recv: &Value,
        name: Symbol,
        args: Vec<Value>,
    ) -> RResult<Value> {
        let Some(op) = string_native_op(name) else {
            return Err(RuntimeError::new(
                ErrorKind::NoSuchMethod,
                format!("no String method `{name}`"),
            ));
        };
        self.native_call(op, Some(recv.clone()), args)
    }

    pub(crate) fn prim_call(
        &self,
        prim: PrimTy,
        name: Symbol,
        recv: Option<Value>,
        args: Vec<Value>,
    ) -> RResult<Value> {
        prim_call(&self.heap, prim, name, recv, args)
    }

    pub(crate) fn native_call(
        &self,
        op: NativeOp,
        recv: Option<Value>,
        args: Vec<Value>,
    ) -> RResult<Value> {
        native_call_with(&self.heap, |v| self.stringify(v), op, recv, args)
    }
}

/// The [`NativeOp`] behind a dynamically dispatched `String` method, if
/// any (reached when a string is stored behind `Object` or a type
/// variable).
#[must_use]
pub fn string_native_op(name: Symbol) -> Option<NativeOp> {
    Some(match name.as_str() {
        "equals" => NativeOp::StrEquals,
        "compareTo" => NativeOp::StrCompareTo,
        "equalsIgnoreCase" => NativeOp::StrEqualsIgnoreCase,
        "compareToIgnoreCase" => NativeOp::StrCompareToIgnoreCase,
        "length" => NativeOp::StrLength,
        "charAt" => NativeOp::StrCharAt,
        "substring" => NativeOp::StrSubstring,
        "concat" => NativeOp::StrConcat,
        "hashCode" => NativeOp::StrHashCode,
        "toLowerCase" => NativeOp::StrToLowerCase,
        "indexOf" => NativeOp::StrIndexOf,
        "toString" => NativeOp::ToString,
        _ => return None,
    })
}

// ----------------------------------------------------------------------
// Primitives and natives
// ----------------------------------------------------------------------

/// Calls a primitive-type method (the natural models of `int`, `double`,
/// … — §3.3). `recv: None` is a static operation like `int.zero()`.
///
/// # Errors
///
/// `NoSuchMethodError` for unknown operations; `Other` for mismatched
/// primitive operands.
pub fn prim_call(
    heap: &Heap,
    prim: PrimTy,
    name: Symbol,
    recv: Option<Value>,
    args: Vec<Value>,
) -> RResult<Value> {
    let n = name.as_str();
    let Some(r) = recv else {
        // Static primitive operations.
        return match n {
            "default" => Ok(RtType::Prim(prim).default_value()),
            "zero" => Ok(match prim {
                PrimTy::Int => Value::Int(0),
                PrimTy::Long => Value::Long(0),
                PrimTy::Double => Value::Double(0.0),
                _ => RtType::Prim(prim).default_value(),
            }),
            "one" => Ok(match prim {
                PrimTy::Int => Value::Int(1),
                PrimTy::Long => Value::Long(1),
                PrimTy::Double => Value::Double(1.0),
                _ => RtType::Prim(prim).default_value(),
            }),
            _ => Err(RuntimeError::new(
                ErrorKind::NoSuchMethod,
                format!("no static `{n}` on `{}`", prim.name()),
            )),
        };
    };
    let r = heap.unpack(r);
    match n {
        "equals" => Ok(Value::Bool(heap.ref_eq(&r, &args[0]))),
        "compareTo" => {
            let ord = match (&r, &args[0]) {
                (Value::Int(a), Value::Int(b)) => a.cmp(b) as i32,
                (Value::Long(a), Value::Long(b)) => a.cmp(b) as i32,
                (Value::Double(a), Value::Double(b)) => {
                    a.partial_cmp(b).map(|o| o as i32).unwrap_or(0)
                }
                (Value::Char(a), Value::Char(b)) => a.cmp(b) as i32,
                (Value::Bool(a), Value::Bool(b)) => a.cmp(b) as i32,
                _ => {
                    return Err(RuntimeError::new(
                        ErrorKind::Other,
                        "compareTo on mismatched primitives",
                    ))
                }
            };
            Ok(Value::Int(ord))
        }
        "hashCode" => Ok(Value::Int(match &r {
            Value::Int(x) => *x,
            Value::Long(x) => (*x ^ (*x >> 32)) as i32,
            Value::Double(x) => {
                let b = x.to_bits();
                (b ^ (b >> 32)) as i32
            }
            Value::Bool(b) => {
                if *b {
                    1231
                } else {
                    1237
                }
            }
            Value::Char(c) => *c as i32,
            _ => 0,
        })),
        "toString" => Ok(Value::Str(Rc::from(heap.render(&r).as_str()))),
        "plus" | "minus" | "times" | "min" | "max" => {
            let op = n;
            let b = args[0].clone();
            Ok(match (&r, &b) {
                (Value::Int(x), Value::Int(y)) => Value::Int(match op {
                    "plus" => x.wrapping_add(*y),
                    "minus" => x.wrapping_sub(*y),
                    "times" => x.wrapping_mul(*y),
                    "min" => *x.min(y),
                    _ => *x.max(y),
                }),
                (Value::Long(x), Value::Long(y)) => Value::Long(match op {
                    "plus" => x.wrapping_add(*y),
                    "minus" => x.wrapping_sub(*y),
                    "times" => x.wrapping_mul(*y),
                    "min" => *x.min(y),
                    _ => *x.max(y),
                }),
                (Value::Double(x), Value::Double(y)) => Value::Double(match op {
                    "plus" => x + y,
                    "minus" => x - y,
                    "times" => x * y,
                    "min" => x.min(*y),
                    _ => x.max(*y),
                }),
                _ => {
                    return Err(RuntimeError::new(
                        ErrorKind::Other,
                        "ring op on mismatched primitives",
                    ))
                }
            })
        }
        "abs" => Ok(match r {
            Value::Int(x) => Value::Int(x.wrapping_abs()),
            Value::Long(x) => Value::Long(x.wrapping_abs()),
            Value::Double(x) => Value::Double(x.abs()),
            other => other,
        }),
        _ => Err(RuntimeError::new(
            ErrorKind::NoSuchMethod,
            format!("no `{n}` on `{}`", prim.name()),
        )),
    }
}

/// Executes a [`NativeOp`]. `stringify` renders a value for
/// `Object.toString`-style operations (it needs to call back into the
/// engine because `toString` overrides can be user code).
///
/// # Errors
///
/// Operation-specific runtime errors (`NullPointerException`,
/// `IndexOutOfBounds`, …).
pub fn native_call_with(
    heap: &Heap,
    mut stringify: impl FnMut(&Value) -> RResult<String>,
    op: NativeOp,
    recv: Option<Value>,
    args: Vec<Value>,
) -> RResult<Value> {
    let as_str = |v: &Value| -> RResult<Rc<str>> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            Value::Packed(h) => match &heap.packed(*h).value {
                Value::Str(s) => Ok(s.clone()),
                _ => Err(RuntimeError::new(ErrorKind::Other, "expected a string")),
            },
            Value::Null => Err(RuntimeError::new(
                ErrorKind::NullPointer,
                "null string dereference",
            )),
            _ => Err(RuntimeError::new(ErrorKind::Other, "expected a string")),
        }
    };
    match op {
        NativeOp::StrEquals => {
            let r = as_str(recv.as_ref().expect("recv"))?;
            Ok(Value::Bool(match &args[0] {
                Value::Str(s) => *r == **s,
                Value::Packed(h) => {
                    matches!(&heap.packed(*h).value, Value::Str(s) if *r == **s)
                }
                _ => false,
            }))
        }
        NativeOp::StrCompareTo => {
            let r = as_str(recv.as_ref().expect("recv"))?;
            let o = as_str(&args[0])?;
            Ok(Value::Int(match r.cmp(&o) {
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => 0,
                std::cmp::Ordering::Greater => 1,
            }))
        }
        NativeOp::StrEqualsIgnoreCase => {
            let r = as_str(recv.as_ref().expect("recv"))?;
            let o = as_str(&args[0])?;
            Ok(Value::Bool(r.to_lowercase() == o.to_lowercase()))
        }
        NativeOp::StrCompareToIgnoreCase => {
            let r = as_str(recv.as_ref().expect("recv"))?.to_lowercase();
            let o = as_str(&args[0])?.to_lowercase();
            Ok(Value::Int(match r.cmp(&o) {
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => 0,
                std::cmp::Ordering::Greater => 1,
            }))
        }
        NativeOp::StrLength => {
            let r = as_str(recv.as_ref().expect("recv"))?;
            Ok(Value::Int(r.chars().count() as i32))
        }
        NativeOp::StrCharAt => {
            let r = as_str(recv.as_ref().expect("recv"))?;
            let Value::Int(i) = args[0] else {
                return Err(RuntimeError::new(
                    ErrorKind::Other,
                    "charAt index must be int",
                ));
            };
            r.chars()
                .nth(i.max(0) as usize)
                .map(Value::Char)
                .ok_or_else(|| {
                    RuntimeError::new(
                        ErrorKind::IndexOutOfBounds,
                        format!("charAt({i}) out of range"),
                    )
                })
        }
        NativeOp::StrSubstring => {
            let r = as_str(recv.as_ref().expect("recv"))?;
            let (Value::Int(lo), Value::Int(hi)) = (&args[0], &args[1]) else {
                return Err(RuntimeError::new(ErrorKind::Other, "substring indices"));
            };
            let chars: Vec<char> = r.chars().collect();
            let lo = (*lo).max(0) as usize;
            let hi = (*hi).max(0) as usize;
            if lo > hi || hi > chars.len() {
                return Err(RuntimeError::new(
                    ErrorKind::IndexOutOfBounds,
                    format!("substring({lo}, {hi}) out of range"),
                ));
            }
            let s: String = chars[lo..hi].iter().collect();
            Ok(Value::Str(Rc::from(s.as_str())))
        }
        NativeOp::StrConcat => {
            let r = as_str(recv.as_ref().expect("recv"))?;
            let o = as_str(&args[0])?;
            Ok(Value::Str(Rc::from(format!("{r}{o}").as_str())))
        }
        NativeOp::StrHashCode => {
            let r = as_str(recv.as_ref().expect("recv"))?;
            let mut h: i32 = 0;
            for c in r.chars() {
                h = h.wrapping_mul(31).wrapping_add(c as i32);
            }
            Ok(Value::Int(h))
        }
        NativeOp::StrToLowerCase => {
            let r = as_str(recv.as_ref().expect("recv"))?;
            Ok(Value::Str(Rc::from(r.to_lowercase().as_str())))
        }
        NativeOp::StrIndexOf => {
            let r = as_str(recv.as_ref().expect("recv"))?;
            let o = as_str(&args[0])?;
            Ok(Value::Int(
                r.find(&*o)
                    .map(|p| r[..p].chars().count() as i32)
                    .unwrap_or(-1),
            ))
        }
        NativeOp::ObjHashCode => {
            let r = recv.as_ref().expect("recv");
            Ok(Value::Int(match r {
                // Allocation sequence number: deterministic across runs
                // and engines, unlike the host pointer it replaced.
                Value::Obj(o) => heap.identity_hash(*o),
                Value::Str(s) => {
                    let mut h: i32 = 0;
                    for c in s.chars() {
                        h = h.wrapping_mul(31).wrapping_add(c as i32);
                    }
                    h
                }
                _ => 0,
            }))
        }
        NativeOp::ObjEquals => {
            let r = recv.as_ref().expect("recv");
            Ok(Value::Bool(heap.ref_eq(r, &args[0])))
        }
        NativeOp::ObjToString | NativeOp::ToString => {
            let r = recv.as_ref().expect("recv");
            match r {
                Value::Str(s) => Ok(Value::Str(s.clone())),
                other => Ok(Value::Str(Rc::from(stringify(other)?.as_str()))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genus_check::check_source;

    fn with_interp(f: impl FnOnce(&Interp<'_>)) {
        let prog = check_source("void main() { }").expect("empty program checks");
        let interp = Interp::new(&prog);
        f(&interp);
    }

    fn s(v: &str) -> Value {
        Value::Str(Rc::from(v))
    }

    #[test]
    fn string_natives() {
        with_interp(|i| {
            let v = i
                .native_call(NativeOp::StrLength, Some(s("héllo")), vec![])
                .unwrap();
            assert!(matches!(v, Value::Int(5)));
            let v = i
                .native_call(NativeOp::StrCompareTo, Some(s("a")), vec![s("b")])
                .unwrap();
            assert!(matches!(v, Value::Int(-1)));
            let v = i
                .native_call(
                    NativeOp::StrEqualsIgnoreCase,
                    Some(s("AbC")),
                    vec![s("aBc")],
                )
                .unwrap();
            assert!(matches!(v, Value::Bool(true)));
            let v = i
                .native_call(
                    NativeOp::StrSubstring,
                    Some(s("hello")),
                    vec![Value::Int(1), Value::Int(3)],
                )
                .unwrap();
            assert!(matches!(v, Value::Str(x) if &*x == "el"));
            let v = i
                .native_call(NativeOp::StrIndexOf, Some(s("hello")), vec![s("ll")])
                .unwrap();
            assert!(matches!(v, Value::Int(2)));
        });
    }

    #[test]
    fn string_native_errors() {
        with_interp(|i| {
            let e = i
                .native_call(NativeOp::StrCharAt, Some(s("ab")), vec![Value::Int(9)])
                .unwrap_err();
            assert_eq!(e.kind, ErrorKind::IndexOutOfBounds);
            let e = i
                .native_call(NativeOp::StrLength, Some(Value::Null), vec![])
                .unwrap_err();
            assert_eq!(e.kind, ErrorKind::NullPointer);
        });
    }

    #[test]
    fn prim_calls() {
        with_interp(|i| {
            let name = Symbol::intern("plus");
            let v = i
                .prim_call(
                    PrimTy::Double,
                    name,
                    Some(Value::Double(1.5)),
                    vec![Value::Double(2.0)],
                )
                .unwrap();
            assert!(matches!(v, Value::Double(x) if (x - 3.5).abs() < 1e-12));
            let v = i
                .prim_call(PrimTy::Int, Symbol::intern("zero"), None, vec![])
                .unwrap();
            assert!(matches!(v, Value::Int(0)));
            let v = i
                .prim_call(
                    PrimTy::Int,
                    Symbol::intern("compareTo"),
                    Some(Value::Int(3)),
                    vec![Value::Int(5)],
                )
                .unwrap();
            assert!(matches!(v, Value::Int(-1)));
            let e = i
                .prim_call(
                    PrimTy::Boolean,
                    Symbol::intern("plus"),
                    Some(Value::Bool(true)),
                    vec![Value::Bool(false)],
                )
                .unwrap_err();
            assert_eq!(e.kind, ErrorKind::Other);
        });
    }

    #[test]
    fn string_virtual_dispatch_by_name() {
        with_interp(|i| {
            let v = i
                .string_virtual(&s("Hello"), Symbol::intern("toLowerCase"), vec![])
                .unwrap();
            assert!(matches!(v, Value::Str(x) if &*x == "hello"));
            let e = i
                .string_virtual(&s("x"), Symbol::intern("nonsense"), vec![])
                .unwrap_err();
            assert_eq!(e.kind, ErrorKind::NoSuchMethod);
        });
    }
}
