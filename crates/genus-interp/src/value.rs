//! Runtime values — re-exported from [`genus_heap::value`].
//!
//! The value representation (and the heap the reference values index
//! into) lives in the `genus-heap` crate so the VM and Tier 2 can share
//! it without depending on the tree-walking interpreter. This module
//! keeps the historical `genus_interp::value::*` import paths working.

pub use genus_heap::value::*;
