//! Tree-walking interpreter for checked Genus programs.
//!
//! The interpreter executes the typed HIR produced by `genus-check` against
//! a reified runtime: objects carry their type arguments and model
//! witnesses (§7.2), arrays use element-specialized storage (§7.3), model
//! operations dispatch as multimethods over the dynamic receiver and
//! argument classes (§5.1), and `instanceof`/casts test reified
//! model-dependent types (§4.6).
//!
//! # Examples
//!
//! ```
//! use genus_check::check_source;
//! use genus_interp::Interp;
//!
//! let prog = check_source(r#"
//!     int main() { println("hi"); return 41 + 1; }
//! "#).unwrap();
//! let mut interp = Interp::new(&prog);
//! let v = interp.run_main().unwrap();
//! assert!(matches!(v, genus_interp::Value::Int(42)));
//! assert_eq!(interp.take_output(), "hi\n");
//! ```

pub mod meter;
pub mod natives;
pub mod ops;
pub mod rtti;
pub mod value;

pub use genus_heap::{Handle, Heap, HeapStats};
pub use meter::{Limits, Meter, ResourceStats};
pub use value::{
    ArrayData, ClassMethodIndex, ErrorKind, ModelValue, ObjData, PackedData, RtType, RuntimeError,
    Storage, Value,
};

use crate::ops::{arith, compare, widen_value};
use crate::rtti::{ModelDispatchKey, ModelTarget, RecvKind, VirtTarget};
use genus_check::hir::{self, BinKind, NumKind};
use genus_check::CheckedProgram;
use genus_common::{FastMap, Symbol};
use genus_syntax::ast::BinOp;
use genus_types::{caches_enabled, ClassId, Model, ModelId, MvId, TvId, Type};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

type RResult<T> = Result<T, RuntimeError>;

/// Non-error control flow out of a statement.
enum Flow {
    Normal,
    Return(Value),
    Break,
    Continue,
}

/// One activation record. Locals are shared with the interpreter's frame
/// stack ([`Interp`]'s `frames` field) so the collector can enumerate
/// every live slot of every activation at a safe point.
#[derive(Default)]
struct Frame {
    locals: Rc<RefCell<Vec<Value>>>,
    tenv: HashMap<TvId, RtType>,
    menv: HashMap<MvId, ModelValue>,
}

/// Hit/miss counters for the interpreter's dispatch caches, snapshot via
/// [`Interp::dispatch_stats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DispatchStats {
    /// Per-call-site inline cache hits (receiver class matched last time).
    pub ic_hits: u64,
    /// Per-call-site inline cache misses.
    pub ic_misses: u64,
    /// Virtual-target memo hits.
    pub virt_hits: u64,
    /// Virtual-target memo misses (full hierarchy walks).
    pub virt_misses: u64,
    /// Multimethod dispatch memo hits.
    pub model_hits: u64,
    /// Multimethod dispatch memo misses (full candidate scans).
    pub model_misses: u64,
}

/// Per-class virtual-dispatch memo: `(dynamic class, name, arity)`
/// to the resolved target (or `None` for a guaranteed miss).
type VirtMemo = FastMap<(ClassId, Symbol, usize), Option<Rc<VirtTarget>>>;

/// Monomorphic inline-cache entries keyed by call-site HIR address.
type SiteCache = FastMap<usize, (ClassId, Option<Rc<VirtTarget>>)>;

/// Memo tables behind the interpreter's dispatch fast paths. All are
/// per-`Interp` and never invalidated: the checked program is immutable
/// for the interpreter's lifetime.
#[derive(Default)]
struct DispatchTables {
    /// Lazily built per-class `(name, arity) → method index` maps.
    class_index: rtti::ClassIndexes,
    /// `(dynamic class, name, arity) → target` for virtual dispatch.
    virt: RefCell<VirtMemo>,
    /// Monomorphic inline caches keyed by call-site HIR node address:
    /// last-seen receiver class and its resolved target.
    sites: RefCell<SiteCache>,
    /// Multimethod dispatch results (§5.1).
    model: RefCell<FastMap<ModelDispatchKey, Option<Rc<ModelTarget>>>>,
    ic_hits: Cell<u64>,
    ic_misses: Cell<u64>,
    virt_hits: Cell<u64>,
    virt_misses: Cell<u64>,
    model_hits: Cell<u64>,
    model_misses: Cell<u64>,
}

fn bump(c: &Cell<u64>) {
    c.set(c.get() + 1);
}

/// The interpreter. Holds static fields and captured output across calls.
pub struct Interp<'p> {
    prog: &'p CheckedProgram,
    statics: RefCell<HashMap<(u32, u32), Value>>,
    output: RefCell<String>,
    dispatch: DispatchTables,
    /// Whether `print` also writes to process stdout.
    pub echo: bool,
    depth: std::cell::Cell<usize>,
    /// Maximum Genus call depth before a `StackOverflowError`.
    pub max_depth: usize,
    /// Per-run resource meter (fuel / memory / deadline). Unlimited by
    /// default; replace via [`Interp::set_limits`] before running.
    pub meter: Meter,
    /// The run's arena heap. Objects, arrays, and packed existentials
    /// live here; `Value` reference variants are handles into it.
    pub heap: Heap,
    /// Root set, part 1: the locals of every live activation record.
    frames: RefCell<Vec<Rc<RefCell<Vec<Value>>>>>,
    /// Root set, part 2: every reference value produced by an expression
    /// in the current statement. `exec_stmt` records a watermark and
    /// truncates on completion, so temporaries stay rooted exactly while
    /// a statement can still use them.
    temps: RefCell<Vec<Value>>,
}

fn is_ref(v: &Value) -> bool {
    matches!(v, Value::Obj(_) | Value::Arr(_) | Value::Packed(_))
}

impl<'p> Interp<'p> {
    /// Creates an interpreter for a checked program.
    pub fn new(prog: &'p CheckedProgram) -> Self {
        Interp {
            prog,
            statics: RefCell::new(HashMap::new()),
            output: RefCell::new(String::new()),
            dispatch: DispatchTables::default(),
            echo: false,
            depth: std::cell::Cell::new(0),
            // Each Genus frame costs tens of KiB of native stack in debug
            // builds; run deep programs on a large-stack thread (the
            // `genus` facade does this automatically).
            max_depth: 1000,
            meter: Meter::unlimited(),
            heap: Heap::new(),
            frames: RefCell::new(Vec::new()),
            temps: RefCell::new(Vec::new()),
        }
    }

    /// Installs resource limits for this interpreter's next run, resetting
    /// the meter (fuel/memory counters start from zero, deadline from now).
    pub fn set_limits(&mut self, limits: Limits) {
        self.meter = Meter::with_limits(limits);
    }

    /// Resources consumed so far: fuel steps and exact heap bytes from
    /// the meter, live/peak/collection statistics from the heap.
    pub fn resource_stats(&self) -> ResourceStats {
        let mut s = self.meter.stats();
        self.heap.fill_stats(&mut s);
        s
    }

    /// Renders a value the way `print` would (without dispatching a
    /// user-defined `toString`).
    pub fn render(&self, v: &Value) -> String {
        self.heap.render(v)
    }

    /// Collects garbage if the heap asks for it. Called only at safe
    /// points: the top of each statement and immediately before each
    /// heap allocation, where every live reference is reachable from
    /// the frame stack, the temporaries, or the statics map.
    fn maybe_gc(&self) {
        if !self.heap.should_collect() {
            return;
        }
        let mut roots = Vec::new();
        for f in self.frames.borrow().iter() {
            for v in f.borrow().iter() {
                self.heap.root(&mut roots, v);
            }
        }
        for v in self.temps.borrow().iter() {
            self.heap.root(&mut roots, v);
        }
        for v in self.statics.borrow().values() {
            self.heap.root(&mut roots, v);
        }
        self.heap.collect(roots);
    }

    /// Runs static initializers then `main()`.
    ///
    /// # Errors
    ///
    /// Returns the first uncaught [`RuntimeError`].
    pub fn run_main(&mut self) -> RResult<Value> {
        self.init_statics()?;
        let Some(main) = self.prog.main_index() else {
            return Err(RuntimeError::new(ErrorKind::Other, "no `main()` method"));
        };
        self.call_global(main, vec![], vec![], vec![])
    }

    /// Runs static initializers (idempotent per interpreter).
    ///
    /// # Errors
    ///
    /// Returns any [`RuntimeError`] raised by an initializer.
    pub fn init_statics(&self) -> RResult<()> {
        let mark = self.temps.borrow().len();
        for (cid, fi, init) in &self.prog.static_inits {
            let mut frame = Frame::default();
            let v = self.eval(&mut frame, init)?;
            self.statics.borrow_mut().insert((cid.0, *fi as u32), v);
        }
        // Initializer temporaries are dead now; the values themselves are
        // rooted through the statics map.
        self.temps.borrow_mut().truncate(mark);
        Ok(())
    }

    /// Calls a global (top-level) method by index.
    ///
    /// # Errors
    ///
    /// Returns any [`RuntimeError`] raised by the body.
    pub fn call_global(
        &self,
        index: usize,
        targs: Vec<RtType>,
        margs: Vec<ModelValue>,
        args: Vec<Value>,
    ) -> RResult<Value> {
        let g = &self.prog.table.globals[index];
        let Some(body) = self.prog.global_bodies.get(&(index as u32)) else {
            return Err(RuntimeError::new(
                ErrorKind::NoSuchMethod,
                format!("global `{}` has no body", g.name),
            ));
        };
        let mut frame = Frame::default();
        for (tv, t) in g.tparams.iter().zip(targs) {
            frame.tenv.insert(*tv, t);
        }
        for (w, m) in g.wheres.iter().zip(margs) {
            frame.menv.insert(w.mv, m);
        }
        self.run_body(frame, body, None, args, g.ret.is_void())
    }

    /// Takes the captured `print` output.
    pub fn take_output(&mut self) -> String {
        std::mem::take(&mut self.output.borrow_mut())
    }

    /// Snapshot of the dispatch-cache hit/miss counters.
    pub fn dispatch_stats(&self) -> DispatchStats {
        DispatchStats {
            ic_hits: self.dispatch.ic_hits.get(),
            ic_misses: self.dispatch.ic_misses.get(),
            virt_hits: self.dispatch.virt_hits.get(),
            virt_misses: self.dispatch.virt_misses.get(),
            model_hits: self.dispatch.model_hits.get(),
            model_misses: self.dispatch.model_misses.get(),
        }
    }

    // ------------------------------------------------------------------
    // Frames and bodies
    // ------------------------------------------------------------------

    fn run_body(
        &self,
        mut frame: Frame,
        body: &hir::Body,
        this: Option<Value>,
        args: Vec<Value>,
        is_void: bool,
    ) -> RResult<Value> {
        if self.depth.get() >= self.max_depth {
            return Err(RuntimeError::new(
                ErrorKind::StackOverflow,
                "call depth exceeded",
            ));
        }
        self.depth.set(self.depth.get() + 1);
        {
            let mut locals = frame.locals.borrow_mut();
            *locals = vec![Value::Null; body.num_locals];
            let mut slot = 0;
            if let Some(t) = this {
                locals[0] = t;
                slot = 1;
            }
            for a in args {
                locals[slot] = a;
                slot += 1;
            }
        }
        self.frames.borrow_mut().push(Rc::clone(&frame.locals));
        let r = self.exec_block(&mut frame, &body.block);
        self.frames.borrow_mut().pop();
        self.depth.set(self.depth.get() - 1);
        match r? {
            Flow::Return(v) => Ok(v),
            Flow::Normal if is_void => Ok(Value::Void),
            Flow::Normal => Err(RuntimeError::new(
                ErrorKind::MissingReturn,
                "non-void body completed without returning",
            )),
            _ => Err(RuntimeError::new(
                ErrorKind::Other,
                "break/continue escaped a body",
            )),
        }
    }

    fn exec_block(&self, frame: &mut Frame, b: &hir::Block) -> RResult<Flow> {
        for s in &b.stmts {
            match self.exec_stmt(frame, s)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    /// Statement boundary: GC safe point plus temporary-root scoping.
    /// Reference values produced while executing `s` are rooted in
    /// `temps` (by [`Interp::eval`]); they die with the statement, except
    /// a `Return` value, which is re-rooted for the calling frame.
    fn exec_stmt(&self, frame: &mut Frame, s: &hir::Stmt) -> RResult<Flow> {
        self.maybe_gc();
        let mark = self.temps.borrow().len();
        let r = self.exec_stmt_inner(frame, s);
        let mut temps = self.temps.borrow_mut();
        temps.truncate(mark);
        if let Ok(Flow::Return(v)) = &r {
            if is_ref(v) {
                temps.push(v.clone());
            }
        }
        r
    }

    fn exec_stmt_inner(&self, frame: &mut Frame, s: &hir::Stmt) -> RResult<Flow> {
        self.meter.step()?;
        match s {
            hir::Stmt::Expr(e) => {
                self.eval(frame, e)?;
                Ok(Flow::Normal)
            }
            hir::Stmt::Let { local, init, ty } => {
                let v = match init {
                    Some(e) => self.eval(frame, e)?,
                    None => self.eval_type(frame, ty).default_value(),
                };
                frame.locals.borrow_mut()[local.0 as usize] = v;
                Ok(Flow::Normal)
            }
            hir::Stmt::LetOpen {
                local,
                init,
                tvs,
                mvs,
            } => {
                let v = self.eval(frame, init)?;
                match v {
                    Value::Packed(h) => {
                        let p = self.heap.packed(h);
                        for (tv, t) in tvs.iter().zip(&p.types) {
                            frame.tenv.insert(*tv, t.clone());
                        }
                        for (mv, m) in mvs.iter().zip(&p.models) {
                            frame.menv.insert(*mv, m.clone());
                        }
                        frame.locals.borrow_mut()[local.0 as usize] = p.value.clone();
                    }
                    Value::Null => {
                        return Err(RuntimeError::new(
                            ErrorKind::NullPointer,
                            "cannot open a null existential",
                        ));
                    }
                    other => {
                        // A value whose witnesses were statically evident
                        // (no packing was needed): bind from its runtime
                        // type if possible.
                        let rt = self.value_rt_type(&other);
                        for tv in tvs {
                            frame.tenv.insert(*tv, rt.clone());
                        }
                        frame.locals.borrow_mut()[local.0 as usize] = other;
                    }
                }
                Ok(Flow::Normal)
            }
            hir::Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                if self.truthy(frame, cond)? {
                    self.exec_block(frame, then_blk)
                } else {
                    self.exec_block(frame, else_blk)
                }
            }
            hir::Stmt::While { cond, body, update } => {
                let mark = self.temps.borrow().len();
                loop {
                    // Bound temp-root growth: values from previous
                    // iterations (notably the condition's) are dead.
                    self.temps.borrow_mut().truncate(mark);
                    if !self.truthy(frame, cond)? {
                        break;
                    }
                    match self.exec_block(frame, body)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        r @ Flow::Return(_) => return Ok(r),
                    }
                    match self.exec_block(frame, update)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        r @ Flow::Return(_) => return Ok(r),
                    }
                }
                Ok(Flow::Normal)
            }
            hir::Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(frame, e)?,
                    None => Value::Void,
                };
                Ok(Flow::Return(v))
            }
            hir::Stmt::Break => Ok(Flow::Break),
            hir::Stmt::Continue => Ok(Flow::Continue),
            hir::Stmt::Block(b) => self.exec_block(frame, b),
        }
    }

    fn truthy(&self, frame: &mut Frame, e: &hir::Expr) -> RResult<bool> {
        match self.eval(frame, e)? {
            Value::Bool(b) => Ok(b),
            other => Err(RuntimeError::new(
                ErrorKind::Other,
                format!("condition evaluated to non-boolean {other:?}"),
            )),
        }
    }

    // ------------------------------------------------------------------
    // Reification
    // ------------------------------------------------------------------

    /// Evaluates a static type to its runtime reification in `frame`.
    fn eval_type(&self, frame: &Frame, t: &Type) -> RtType {
        rtti::eval_type(self.prog, &frame.tenv, &frame.menv, t)
    }

    /// Evaluates a static model to its runtime witness in `frame`.
    fn eval_model(&self, frame: &Frame, m: &Model) -> ModelValue {
        rtti::eval_model(self.prog, &frame.tenv, &frame.menv, m)
    }

    /// Runtime type of a value.
    pub fn value_rt_type(&self, v: &Value) -> RtType {
        rtti::value_rt_type(self.prog, &self.heap, v)
    }

    /// Direct supertypes of a reified class instantiation.
    fn rt_parents(
        &self,
        id: ClassId,
        args: &[RtType],
        models: &[ModelValue],
    ) -> Vec<(ClassId, Vec<RtType>, Vec<ModelValue>)> {
        rtti::rt_parents(self.prog, id, args, models)
    }

    /// Runtime subtyping over reified types (invariant generics, reference
    /// types below `Object`).
    pub fn rt_subtype(&self, a: &RtType, b: &RtType) -> bool {
        rtti::rt_subtype(self.prog, a, b)
    }

    /// Reified `instanceof` (null is not an instance of anything).
    pub fn value_instanceof(&self, v: &Value, t: &RtType) -> bool {
        rtti::value_instanceof(self.prog, &self.heap, v, t)
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    /// Evaluates an expression, rooting any produced reference value in
    /// the statement-scoped temporaries so it survives a collection at
    /// any nested safe point until the enclosing statement completes.
    fn eval(&self, frame: &mut Frame, e: &hir::Expr) -> RResult<Value> {
        let v = self.eval_inner(frame, e)?;
        if is_ref(&v) {
            self.temps.borrow_mut().push(v.clone());
        }
        Ok(v)
    }

    #[allow(clippy::too_many_lines)]
    fn eval_inner(&self, frame: &mut Frame, e: &hir::Expr) -> RResult<Value> {
        use hir::ExprKind as K;
        self.meter.step()?;
        match &e.kind {
            K::Int(v) => Ok(Value::Int(*v as i32)),
            K::Long(v) => Ok(Value::Long(*v)),
            K::Double(v) => Ok(Value::Double(*v)),
            K::Bool(v) => Ok(Value::Bool(*v)),
            K::Char(v) => Ok(Value::Char(*v)),
            K::Str(s) => Ok(Value::Str(Rc::from(s.as_str()))),
            K::Null => Ok(Value::Null),
            K::Local(l) => Ok(frame.locals.borrow()[l.0 as usize].clone()),
            K::SetLocal { local, value } => {
                let v = self.eval(frame, value)?;
                frame.locals.borrow_mut()[local.0 as usize] = v.clone();
                Ok(v)
            }
            K::GetField { recv, class, field } => {
                let r = self.eval(frame, recv)?;
                let o = self.expect_obj(&r)?;
                let v = o
                    .fields
                    .borrow()
                    .get(&(class.0, *field as u32))
                    .cloned()
                    .unwrap_or(Value::Null);
                Ok(v)
            }
            K::SetField {
                recv,
                class,
                field,
                value,
            } => {
                let r = self.eval(frame, recv)?;
                let v = self.eval(frame, value)?;
                let o = self.expect_obj(&r)?;
                o.fields
                    .borrow_mut()
                    .insert((class.0, *field as u32), v.clone());
                Ok(v)
            }
            K::GetStatic { class, field } => Ok(self
                .statics
                .borrow()
                .get(&(class.0, *field as u32))
                .cloned()
                .unwrap_or(Value::Null)),
            K::SetStatic {
                class,
                field,
                value,
            } => {
                let v = self.eval(frame, value)?;
                self.statics
                    .borrow_mut()
                    .insert((class.0, *field as u32), v.clone());
                Ok(v)
            }
            K::CallVirtual {
                recv,
                name,
                arity,
                targs,
                margs,
                args,
            } => {
                let r = self.eval(frame, recv)?;
                let vargs = self.eval_args(frame, args)?;
                let rt = targs
                    .iter()
                    .map(|t| self.eval_type(frame, t))
                    .collect::<Vec<_>>();
                let rm = margs
                    .iter()
                    .map(|m| self.eval_model(frame, m))
                    .collect::<Vec<_>>();
                // The HIR node's address identifies the call site for its
                // inline cache; nodes live as long as the program borrow.
                let site = e as *const hir::Expr as usize;
                self.call_virtual_at(Some(site), r, *name, *arity, rt, rm, vargs)
            }
            K::CallStatic {
                class,
                method,
                targs,
                margs,
                args,
            } => {
                let vargs = self.eval_args(frame, args)?;
                let rt = targs
                    .iter()
                    .map(|t| self.eval_type(frame, t))
                    .collect::<Vec<_>>();
                let rm = margs
                    .iter()
                    .map(|m| self.eval_model(frame, m))
                    .collect::<Vec<_>>();
                self.invoke_class_method(*class, *method, vec![], vec![], None, rt, rm, vargs)
            }
            K::CallGlobal {
                index,
                targs,
                margs,
                args,
            } => {
                let vargs = self.eval_args(frame, args)?;
                let rt = targs
                    .iter()
                    .map(|t| self.eval_type(frame, t))
                    .collect::<Vec<_>>();
                let rm = margs
                    .iter()
                    .map(|m| self.eval_model(frame, m))
                    .collect::<Vec<_>>();
                self.call_global(*index, rt, rm, vargs)
            }
            K::CallModel {
                model,
                name,
                recv,
                static_recv,
                args,
            } => {
                let mv = self.eval_model(frame, model);
                let r = match recv {
                    Some(r) => Some(self.eval(frame, r)?),
                    None => None,
                };
                let srt = static_recv.as_ref().map(|t| self.eval_type(frame, t));
                let vargs = self.eval_args(frame, args)?;
                self.call_model(&mv, *name, r, srt, vargs)
            }
            K::DefaultValue { of } => Ok(self.eval_type(frame, of).default_value()),
            K::New {
                class,
                targs,
                models,
                ctor,
                args,
            } => {
                let rt = targs
                    .iter()
                    .map(|t| self.eval_type(frame, t))
                    .collect::<Vec<_>>();
                let rm = models
                    .iter()
                    .map(|m| self.eval_model(frame, m))
                    .collect::<Vec<_>>();
                let vargs = self.eval_args(frame, args)?;
                self.construct(*class, rt, rm, *ctor, vargs)
            }
            K::NewArray { elem, len } => {
                let et = self.eval_type(frame, elem);
                let l = self.eval(frame, len)?;
                let Value::Int(n) = l else {
                    return Err(RuntimeError::new(
                        ErrorKind::Other,
                        "array length must be int",
                    ));
                };
                if n < 0 {
                    return Err(RuntimeError::new(
                        ErrorKind::IndexOutOfBounds,
                        format!("negative array length {n}"),
                    ));
                }
                self.maybe_gc();
                self.heap.alloc_arr(&self.meter, et, n as usize)
            }
            K::ArrayLen { arr } => {
                let a = self.eval(frame, arr)?;
                let a = self.expect_arr(&a)?;
                let len = a.storage.borrow().len();
                Ok(Value::Int(len as i32))
            }
            K::ArrayGet { arr, idx } => {
                let a = self.eval(frame, arr)?;
                let i = self.eval(frame, idx)?;
                let a = self.expect_arr(&a)?;
                let i = self.expect_index(&i, a.storage.borrow().len())?;
                let v = a.storage.borrow().get(i);
                Ok(v)
            }
            K::ArraySet { arr, idx, value } => {
                let a = self.eval(frame, arr)?;
                let i = self.eval(frame, idx)?;
                let v = self.eval(frame, value)?;
                let a = self.expect_arr(&a)?;
                let i = self.expect_index(&i, a.storage.borrow().len())?;
                a.storage.borrow_mut().set(i, v.clone());
                Ok(v)
            }
            K::Binary { kind, lhs, rhs } => self.eval_binary(frame, *kind, lhs, rhs),
            K::Not(x) => match self.eval(frame, x)? {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                _ => Err(RuntimeError::new(ErrorKind::Other, "`!` on non-boolean")),
            },
            K::Neg { expr, kind } => {
                let v = self.eval(frame, expr)?;
                Ok(match (kind, v) {
                    (NumKind::Int, Value::Int(x)) => Value::Int(x.wrapping_neg()),
                    (NumKind::Long, Value::Long(x)) => Value::Long(x.wrapping_neg()),
                    (NumKind::Double, Value::Double(x)) => Value::Double(-x),
                    (_, v) => {
                        return Err(RuntimeError::new(
                            ErrorKind::Other,
                            format!("cannot negate {v:?}"),
                        ))
                    }
                })
            }
            K::Widen { expr, from: _, to } => {
                let v = self.eval(frame, expr)?;
                Ok(widen_value(v, *to))
            }
            K::InstanceOf { expr, ty } => {
                let v = self.eval(frame, expr)?;
                Ok(Value::Bool(self.instanceof_type(frame, &v, ty)))
            }
            K::Cast { expr, ty } => {
                let v = self.eval(frame, expr)?;
                // A cast to an existential allocates a package; give the
                // collector its pre-allocation safe point.
                self.maybe_gc();
                self.cast(frame, v, ty)
            }
            K::Pack {
                expr,
                ex: _,
                types,
                models,
            } => {
                let v = self.eval(frame, expr)?;
                let ts = types.iter().map(|t| self.eval_type(frame, t)).collect();
                let ms = models.iter().map(|m| self.eval_model(frame, m)).collect();
                self.maybe_gc();
                self.heap.alloc_packed(&self.meter, v, ts, ms)
            }
            K::Cond {
                cond,
                then_e,
                else_e,
            } => {
                if self.truthy(frame, cond)? {
                    self.eval(frame, then_e)
                } else {
                    self.eval(frame, else_e)
                }
            }
            K::Print { arg, newline } => {
                let v = self.eval(frame, arg)?;
                let s = self.stringify(&v)?;
                let mut out = self.output.borrow_mut();
                out.push_str(&s);
                if *newline {
                    out.push('\n');
                }
                if self.echo {
                    if *newline {
                        println!("{s}");
                    } else {
                        print!("{s}");
                    }
                }
                Ok(Value::Void)
            }
            K::PrimCall {
                prim,
                name,
                recv,
                args,
            } => {
                let r = match recv {
                    Some(r) => Some(self.eval(frame, r)?),
                    None => None,
                };
                let vargs = self.eval_args(frame, args)?;
                self.prim_call(*prim, *name, r, vargs)
            }
            K::Native { op, recv, args } => {
                let r = match recv {
                    Some(r) => Some(self.eval(frame, r)?),
                    None => None,
                };
                let vargs = self.eval_args(frame, args)?;
                self.native_call(*op, r, vargs)
            }
        }
    }

    fn eval_args(&self, frame: &mut Frame, args: &[hir::Expr]) -> RResult<Vec<Value>> {
        args.iter().map(|a| self.eval(frame, a)).collect()
    }

    fn expect_obj(&self, v: &Value) -> RResult<Rc<ObjData>> {
        rtti::expect_obj(&self.heap, v)
    }

    fn expect_arr(&self, v: &Value) -> RResult<Rc<ArrayData>> {
        rtti::expect_arr(&self.heap, v)
    }

    fn expect_index(&self, v: &Value, len: usize) -> RResult<usize> {
        rtti::expect_index(v, len)
    }

    fn eval_binary(
        &self,
        frame: &mut Frame,
        kind: BinKind,
        lhs: &hir::Expr,
        rhs: &hir::Expr,
    ) -> RResult<Value> {
        match kind {
            BinKind::And => {
                if !self.truthy(frame, lhs)? {
                    return Ok(Value::Bool(false));
                }
                Ok(Value::Bool(self.truthy(frame, rhs)?))
            }
            BinKind::Or => {
                if self.truthy(frame, lhs)? {
                    return Ok(Value::Bool(true));
                }
                Ok(Value::Bool(self.truthy(frame, rhs)?))
            }
            BinKind::Concat => {
                let l = self.eval(frame, lhs)?;
                let r = self.eval(frame, rhs)?;
                let mut s = self.stringify(&l)?;
                s.push_str(&self.stringify(&r)?);
                self.meter.charge(genus_heap::str_bytes(s.len()))?;
                Ok(Value::Str(Rc::from(s.as_str())))
            }
            BinKind::EqRef(op) | BinKind::EqPrim(op) => {
                let l = self.eval(frame, lhs)?;
                let r = self.eval(frame, rhs)?;
                let eq = self.heap.ref_eq(&l, &r);
                Ok(Value::Bool(if op == BinOp::Eq { eq } else { !eq }))
            }
            BinKind::Arith(op, nk) => {
                let l = self.eval(frame, lhs)?;
                let r = self.eval(frame, rhs)?;
                arith(op, nk, l, r)
            }
            BinKind::Cmp(op, nk) => {
                let l = self.eval(frame, lhs)?;
                let r = self.eval(frame, rhs)?;
                compare(op, nk, l, r)
            }
        }
    }

    fn instanceof_type(&self, frame: &Frame, v: &Value, ty: &Type) -> bool {
        rtti::instanceof_type(self.prog, &self.heap, &frame.tenv, &frame.menv, v, ty)
    }

    fn cast(&self, frame: &Frame, v: Value, ty: &Type) -> RResult<Value> {
        rtti::cast_value(
            self.prog,
            &self.heap,
            &self.meter,
            &frame.tenv,
            &frame.menv,
            v,
            ty,
        )
    }

    /// Stringification used by concatenation and `print`: objects get their
    /// `toString` dispatched dynamically.
    pub fn stringify(&self, v: &Value) -> RResult<String> {
        match v {
            Value::Obj(_) => {
                match self.call_virtual(
                    v.clone(),
                    Symbol::intern("toString"),
                    0,
                    vec![],
                    vec![],
                    vec![],
                ) {
                    Ok(Value::Str(s)) => Ok(s.to_string()),
                    _ => Ok(self.heap.render(v)),
                }
            }
            Value::Packed(h) => {
                let p = self.heap.packed(*h);
                self.stringify(&p.value)
            }
            other => Ok(self.heap.render(other)),
        }
    }

    // ------------------------------------------------------------------
    // Calls
    // ------------------------------------------------------------------

    /// The lazily built method index for `id`.
    fn class_index(&self, id: ClassId) -> Rc<ClassMethodIndex> {
        self.dispatch.class_index.get(self.prog, id)
    }

    /// Memoized virtual-target lookup keyed on the dynamic class.
    fn virt_target(
        &self,
        id: ClassId,
        args: &[RtType],
        models: &[ModelValue],
        name: Symbol,
        arity: usize,
    ) -> Option<Rc<VirtTarget>> {
        let key = (id, name, arity);
        if let Some(t) = self.dispatch.virt.borrow().get(&key) {
            bump(&self.dispatch.virt_hits);
            return t.clone();
        }
        bump(&self.dispatch.virt_misses);
        let t = rtti::resolve_virtual(
            self.prog,
            &self.dispatch.class_index,
            id,
            args,
            models,
            name,
            arity,
        );
        self.dispatch.virt.borrow_mut().insert(key, t.clone());
        t
    }

    /// Virtual-target lookup through the call site's inline cache (when a
    /// site is known), falling back to the per-class memo.
    fn cached_virt_target(
        &self,
        site: Option<usize>,
        id: ClassId,
        args: &[RtType],
        models: &[ModelValue],
        name: Symbol,
        arity: usize,
    ) -> Option<Rc<VirtTarget>> {
        let Some(site) = site else {
            return self.virt_target(id, args, models, name, arity);
        };
        if let Some((cls, t)) = self.dispatch.sites.borrow().get(&site) {
            if *cls == id {
                bump(&self.dispatch.ic_hits);
                return t.clone();
            }
        }
        bump(&self.dispatch.ic_misses);
        let t = self.virt_target(id, args, models, name, arity);
        self.dispatch
            .sites
            .borrow_mut()
            .insert(site, (id, t.clone()));
        t
    }

    /// Invokes a virtual method on a value.
    ///
    /// # Errors
    ///
    /// `NoSuchMethodError` when dispatch fails; any error from the body.
    pub fn call_virtual(
        &self,
        recv: Value,
        name: Symbol,
        arity: usize,
        targs: Vec<RtType>,
        margs: Vec<ModelValue>,
        args: Vec<Value>,
    ) -> RResult<Value> {
        self.call_virtual_at(None, recv, name, arity, targs, margs, args)
    }

    /// [`Interp::call_virtual`] with an optional call-site key for the
    /// inline cache.
    #[allow(clippy::too_many_arguments)]
    fn call_virtual_at(
        &self,
        site: Option<usize>,
        recv: Value,
        name: Symbol,
        arity: usize,
        targs: Vec<RtType>,
        margs: Vec<ModelValue>,
        args: Vec<Value>,
    ) -> RResult<Value> {
        let recv = self.heap.unpack(recv);
        match &recv {
            Value::Obj(h) => {
                let o = self.heap.obj(*h);
                let found = if caches_enabled() {
                    self.cached_virt_target(site, o.class, &o.targs, &o.models, name, arity)
                        .map(|t| match &t.fixed {
                            Some((a, m)) => (t.cid, t.mi, a.clone(), m.clone()),
                            None => {
                                rtti::replay_target(self.prog, &t, o.class, &o.targs, &o.models)
                            }
                        })
                } else {
                    rtti::find_virtual(self.prog, o.class, &o.targs, &o.models, name, arity)
                };
                let Some((cid, mi, cargs, cmodels)) = found else {
                    return Err(RuntimeError::new(
                        ErrorKind::NoSuchMethod,
                        format!(
                            "no method `{name}`/{arity} on class `{}`",
                            self.prog.table.class(o.class).name
                        ),
                    ));
                };
                self.invoke_class_method(
                    cid,
                    mi,
                    cargs,
                    cmodels,
                    Some(recv.clone()),
                    targs,
                    margs,
                    args,
                )
            }
            Value::Str(_) => self.string_virtual(&recv, name, args),
            Value::Int(_) | Value::Long(_) | Value::Double(_) | Value::Bool(_) | Value::Char(_) => {
                let p = match self.value_rt_type(&recv) {
                    RtType::Prim(p) => p,
                    _ => unreachable!("primitive value"),
                };
                self.prim_call(p, name, Some(recv), args)
            }
            Value::Null => Err(RuntimeError::new(ErrorKind::NullPointer, "call on null")),
            other => Err(RuntimeError::new(
                ErrorKind::Other,
                format!("cannot dispatch `{name}` on {other:?}"),
            )),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn invoke_class_method(
        &self,
        cid: ClassId,
        mi: usize,
        cargs: Vec<RtType>,
        cmodels: Vec<ModelValue>,
        this: Option<Value>,
        targs: Vec<RtType>,
        margs: Vec<ModelValue>,
        args: Vec<Value>,
    ) -> RResult<Value> {
        let def = self.prog.table.class(cid);
        let m = &def.methods[mi];
        if m.is_native {
            if let Some(op) = genus_check::body::native_op(def.name, m.name) {
                return self.native_call(op, this, args);
            }
        }
        let Some(body) = self.prog.method_bodies.get(&(cid.0, mi as u32)) else {
            return Err(RuntimeError::new(
                ErrorKind::NoSuchMethod,
                format!("method `{}::{}` has no body", def.name, m.name),
            ));
        };
        let mut frame = Frame::default();
        for (tv, t) in def.params.iter().zip(cargs) {
            frame.tenv.insert(*tv, t);
        }
        for (w, mm) in def.wheres.iter().zip(cmodels) {
            frame.menv.insert(w.mv, mm);
        }
        for (tv, t) in m.tparams.iter().zip(targs) {
            frame.tenv.insert(*tv, t);
        }
        for (w, mm) in m.wheres.iter().zip(margs) {
            frame.menv.insert(w.mv, mm);
        }
        self.run_body(frame, body, this, args, m.ret.is_void())
    }

    fn construct(
        &self,
        cid: ClassId,
        targs: Vec<RtType>,
        models: Vec<ModelValue>,
        ctor: usize,
        args: Vec<Value>,
    ) -> RResult<Value> {
        self.maybe_gc();
        let field_slots = rtti::instance_field_slots(self.prog, cid);
        let this =
            self.heap
                .alloc_obj(&self.meter, cid, targs.clone(), models.clone(), field_slots)?;
        // Root the fresh object for the whole construction sequence (the
        // field initializers and constructor below can all collect).
        self.temps.borrow_mut().push(this.clone());
        // Default-initialize and run field initializers for the whole chain
        // (base classes first).
        let mut chain = Vec::new();
        let mut cur = Some((cid, targs.clone(), models.clone()));
        while let Some((id, a, m)) = cur {
            let parents = self.rt_parents(id, &a, &m);
            chain.push((id, a, m));
            cur = parents
                .into_iter()
                .find(|(pid, _, _)| !self.prog.table.class(*pid).is_interface);
        }
        for (id, a, m) in chain.iter().rev() {
            let def = self.prog.table.class(*id);
            let mut env = Frame::default();
            for (tv, t) in def.params.iter().zip(a) {
                env.tenv.insert(*tv, t.clone());
            }
            for (w, mm) in def.wheres.iter().zip(m) {
                env.menv.insert(w.mv, mm.clone());
            }
            for (fi, f) in def.fields.iter().enumerate() {
                if f.is_static {
                    continue;
                }
                let key = (id.0, fi as u32);
                let v = match self.prog.field_inits.get(&key) {
                    Some(init) => {
                        let mut frame = Frame {
                            locals: Rc::new(RefCell::new(vec![this.clone()])),
                            tenv: env.tenv.clone(),
                            menv: env.menv.clone(),
                        };
                        self.eval(&mut frame, init)?
                    }
                    None => self.eval_type(&env, &f.ty).default_value(),
                };
                if let Value::Obj(h) = &this {
                    self.heap.obj(*h).fields.borrow_mut().insert(key, v);
                }
            }
        }
        // Run the constructor.
        let def = self.prog.table.class(cid);
        let Some(body) = self.prog.ctor_bodies.get(&(cid.0, ctor as u32)) else {
            return Err(RuntimeError::new(
                ErrorKind::NoSuchMethod,
                format!("class `{}` ctor {ctor} has no body", def.name),
            ));
        };
        let mut frame = Frame::default();
        for (tv, t) in def.params.iter().zip(&targs) {
            frame.tenv.insert(*tv, t.clone());
        }
        for (w, mm) in def.wheres.iter().zip(&models) {
            frame.menv.insert(w.mv, mm.clone());
        }
        self.run_body(frame, body, Some(this.clone()), args, true)?;
        Ok(this)
    }

    // ------------------------------------------------------------------
    // Model dispatch (multimethods, §5.1)
    // ------------------------------------------------------------------

    /// Invokes constraint operation `name` through a model witness.
    ///
    /// # Errors
    ///
    /// `NoSuchMethodError` when no definition applies; any body error.
    pub fn call_model(
        &self,
        model: &ModelValue,
        name: Symbol,
        recv: Option<Value>,
        static_recv: Option<RtType>,
        args: Vec<Value>,
    ) -> RResult<Value> {
        match model {
            ModelValue::Natural { .. } => match recv {
                Some(r) => self.call_virtual(r, name, args.len(), vec![], vec![], args),
                None => {
                    let Some(rt) = static_recv else {
                        return Err(RuntimeError::new(
                            ErrorKind::Other,
                            "static model call without receiver type",
                        ));
                    };
                    match rt {
                        RtType::Prim(p) => self.prim_call(p, name, None, args),
                        RtType::Class {
                            id,
                            args: cargs,
                            models: cmodels,
                        } => {
                            let def = self.prog.table.class(id);
                            let mi = if caches_enabled() {
                                self.class_index(id).static_method(name, args.len())
                            } else {
                                def.methods.iter().position(|m| {
                                    m.is_static && m.name == name && m.params.len() == args.len()
                                })
                            };
                            match mi {
                                Some(mi) => self.invoke_class_method(
                                    id,
                                    mi,
                                    cargs,
                                    cmodels,
                                    None,
                                    vec![],
                                    vec![],
                                    args,
                                ),
                                None => Err(RuntimeError::new(
                                    ErrorKind::NoSuchMethod,
                                    format!("no static `{name}` on `{}`", def.name),
                                )),
                            }
                        }
                        other => Err(RuntimeError::new(
                            ErrorKind::NoSuchMethod,
                            format!("no static `{name}` on {other:?}"),
                        )),
                    }
                }
            },
            ModelValue::Decl { id, targs, margs } => {
                self.model_dispatch(*id, targs, margs, name, recv, static_recv, args)
            }
        }
    }

    /// Runs the chosen multimethod candidate (or the fallback when no
    /// candidate applied): the shared tail of cached and uncached
    /// dispatch.
    fn invoke_model_target(
        &self,
        target: Option<&ModelTarget>,
        id: ModelId,
        name: Symbol,
        recv: Option<Value>,
        args: Vec<Value>,
    ) -> RResult<Value> {
        let Some(t) = target else {
            // Fall back to the underlying type's own method (a model may
            // leave prerequisite operations to the natural model).
            if let Some(r) = recv {
                return self.call_virtual(r, name, args.len(), vec![], vec![], args);
            }
            return Err(RuntimeError::new(
                ErrorKind::NoSuchMethod,
                format!(
                    "model `{}` has no applicable `{name}`",
                    self.prog.table.model(id).name
                ),
            ));
        };
        let Some(body) = self.prog.model_bodies.get(&(t.mid.0, t.mi as u32)) else {
            return Err(RuntimeError::new(
                ErrorKind::NoSuchMethod,
                format!("model method `{name}` has no body"),
            ));
        };
        let m = &self.prog.table.model(t.mid).methods[t.mi];
        let frame = Frame {
            locals: Rc::default(),
            tenv: t.tenv.clone(),
            menv: t.menv.clone(),
        };
        let recv = recv.map(|r| self.heap.unpack(r));
        self.run_body(frame, body, recv, args, m.ret.is_void())
    }

    #[allow(clippy::too_many_arguments)]
    fn model_dispatch(
        &self,
        id: ModelId,
        targs: &[RtType],
        margs: &[ModelValue],
        name: Symbol,
        recv: Option<Value>,
        static_recv: Option<RtType>,
        args: Vec<Value>,
    ) -> RResult<Value> {
        let is_static = recv.is_none();
        // The dispatch decision is a pure function of the model instance,
        // the operation, and the dynamic receiver/argument types (nulls
        // reify as `RtType::Null`), so it memoizes cleanly.
        let key = if caches_enabled() {
            let key = ModelDispatchKey {
                id,
                targs: targs.to_vec(),
                margs: margs.to_vec(),
                name,
                is_static,
                recv: recv
                    .as_ref()
                    .map(|r| self.value_rt_type(r))
                    .or_else(|| static_recv.clone()),
                args: args.iter().map(|a| self.value_rt_type(a)).collect(),
            };
            if let Some(t) = self.dispatch.model.borrow().get(&key).cloned() {
                bump(&self.dispatch.model_hits);
                return self.invoke_model_target(t.as_deref(), id, name, recv, args);
            }
            bump(&self.dispatch.model_misses);
            Some(key)
        } else {
            None
        };
        let (recv_t, recv_kind) = match (&recv, &static_recv) {
            (Some(r), _) => {
                let vt = self.value_rt_type(r);
                (Some(vt), true)
            }
            (None, Some(_)) => (static_recv.clone(), false),
            (None, None) => (None, false),
        };
        let kind = match (&recv_t, recv_kind) {
            (Some(vt), true) => Some(RecvKind::Value(
                vt,
                recv.as_ref().is_some_and(|r| self.heap.is_null(r)),
            )),
            (Some(srt), false) => Some(RecvKind::Static(srt)),
            (None, _) => None,
        };
        let arg_ts: Vec<RtType> = args.iter().map(|a| self.value_rt_type(a)).collect();
        let args_null: Vec<bool> = args.iter().map(|a| self.heap.is_null(a)).collect();
        let target =
            rtti::select_model_target(self.prog, id, targs, margs, name, kind, &arg_ts, &args_null);
        if let Some(key) = key {
            self.dispatch.model.borrow_mut().insert(key, target.clone());
        }
        self.invoke_model_target(target.as_deref(), id, name, recv, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genus_check::check_source;

    fn run(src: &str) -> (Value, String) {
        let prog = check_source(src).unwrap_or_else(|e| panic!("check failed:\n{e}"));
        let mut i = Interp::new(&prog);
        let v = i
            .run_main()
            .unwrap_or_else(|e| panic!("runtime error: {e}"));
        let out = i.take_output();
        (v, out)
    }

    #[test]
    fn arithmetic_and_loops() {
        let (v, _) = run(
            "int main() { int s = 0; for (int i = 1; i <= 10; i = i + 1) { s += i; } return s; }",
        );
        assert!(matches!(v, Value::Int(55)));
    }

    #[test]
    fn strings_and_print() {
        let (_, out) = run(r#"void main() { String s = "a" + "b"; println(s + 1); }"#);
        assert_eq!(out, "ab1\n");
    }

    #[test]
    fn arrays_are_specialized() {
        let (v, _) = run("double main() {
               double[] xs = new double[3];
               xs[0] = 1.5; xs[1] = 2.5; xs[2] = xs[0] + xs[1];
               double s = 0.0;
               for (double x : xs) { s = s + x; }
               return s;
             }");
        assert!(matches!(v, Value::Double(x) if (x - 8.0).abs() < 1e-9));
    }

    #[test]
    fn classes_fields_methods() {
        let (v, _) = run("class Counter {
               int count;
               Counter() { count = 0; }
               void inc() { count = count + 1; }
               int get() { return count; }
             }
             int main() {
               Counter c = new Counter();
               c.inc(); c.inc(); c.inc();
               return c.get();
             }");
        assert!(matches!(v, Value::Int(3)));
    }

    #[test]
    fn generic_class_with_constraint() {
        let (v, _) = run("class Box[T where Comparable[T]] {
               T item;
               Box(T item) { this.item = item; }
               boolean isBigger(T other) { return item.compareTo(other) > 0; }
             }
             boolean main() {
               Box[int] b = new Box[int](5);
               return b.isBigger(3);
             }");
        assert!(matches!(v, Value::Bool(true)));
    }

    #[test]
    fn generic_method_inference_and_default_models() {
        let (v, _) = run("int which[T](T a, T b) where Comparable[T] {
               if (a.compareTo(b) >= 0) { return 0; } else { return 1; }
             }
             int main() {
               return which(3, 7) + which(\"b\", \"a\");
             }");
        // which(3,7) = 1, which("b","a") = 0.
        assert!(matches!(v, Value::Int(1)));
    }

    #[test]
    fn explicit_model_selection() {
        let (v, _) = run(r#"model CIEq for Eq[String] {
                 boolean equals(String str) { return equalsIgnoreCase(str); }
               }
               boolean same[T](T a, T b) where Eq[T] {
                 return a.equals(b);
               }
               boolean main() {
                 boolean ci = same[String with CIEq]("Hello", "HELLO");
                 boolean cs = same("Hello", "HELLO");
                 return ci && !cs;
               }"#);
        assert!(matches!(v, Value::Bool(true)));
    }

    #[test]
    fn static_constraint_ops() {
        let (v, _) = run("constraint Ring[T] {
               static T T.zero();
               T T.plus(T that);
             }
             T sum[T](T[] xs) where Ring[T] {
               T acc = T.zero();
               for (T x : xs) { acc = acc.plus(x); }
               return acc;
             }
             double main() {
               double[] xs = new double[3];
               xs[0] = 1.0; xs[1] = 2.0; xs[2] = 3.5;
               return sum(xs);
             }");
        assert!(matches!(v, Value::Double(x) if (x - 6.5).abs() < 1e-9));
    }

    #[test]
    fn class_cast_exception_surfaces() {
        let prog = check_source(
            "int main() {
               Object o = \"hi\";
               Counter c = (Counter) o;
               return 0;
             }
             class Counter { Counter() { } }",
        )
        .unwrap();
        let mut i = Interp::new(&prog);
        let err = i.run_main().unwrap_err();
        assert_eq!(err.kind, ErrorKind::ClassCast);
    }

    #[test]
    fn inheritance_and_override() {
        let (v, _) = run("class Animal {
               Animal() { }
               int legs() { return 4; }
             }
             class Bird extends Animal {
               Bird() { }
               int legs() { return 2; }
             }
             int main() {
               Animal a = new Bird();
               return a.legs();
             }");
        assert!(matches!(v, Value::Int(2)));
    }
}
