//! Shared runtime-type machinery: reification, runtime subtyping,
//! existential matching, casts, and dispatch-target resolution.
//!
//! Both execution engines — the tree-walking interpreter ([`crate::Interp`])
//! and the bytecode VM (`genus-vm`) — implement the *same* dynamic
//! semantics (§4.6, §5.1, §7.2 of the paper). The semantics live here as
//! free functions over the checked program plus explicit type/model
//! environments, so an engine only contributes its evaluation strategy and
//! its caches, never a second copy of the rules.

use crate::value::{ClassMethodIndex, ErrorKind, ModelValue, ObjData, RtType, RuntimeError, Value};
use crate::{ArrayData, Heap, Meter};
use genus_check::CheckedProgram;
use genus_common::{FastMap, Symbol};
use genus_types::{ClassId, Model, ModelId, MvId, PrimTy, TvId, Type, WhereReq};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

type RResult<T> = Result<T, RuntimeError>;

/// Type-variable bindings of a runtime environment.
pub type TEnv = HashMap<TvId, RtType>;
/// Model-variable bindings of a runtime environment.
pub type MEnv = HashMap<MvId, ModelValue>;

// ----------------------------------------------------------------------
// Reification
// ----------------------------------------------------------------------

/// Evaluates a static type to its runtime reification under `tenv`/`menv`.
pub fn eval_type(prog: &CheckedProgram, tenv: &TEnv, menv: &MEnv, t: &Type) -> RtType {
    match t {
        Type::Prim(p) => RtType::Prim(*p),
        Type::Null => RtType::Null,
        Type::Infer(_) => RtType::Null,
        Type::Var(v) => tenv.get(v).cloned().unwrap_or(RtType::Null),
        Type::Array(e) => RtType::Array(Box::new(eval_type(prog, tenv, menv, e))),
        Type::Class { id, args, models } => RtType::Class {
            id: *id,
            args: args
                .iter()
                .map(|a| eval_type(prog, tenv, menv, a))
                .collect(),
            models: models
                .iter()
                .map(|m| eval_model(prog, tenv, menv, m))
                .collect(),
        },
        // Existentials erase to a generic reference at run time; their
        // witnesses live in `Packed` values.
        Type::Existential { .. } => RtType::Null,
    }
}

/// Evaluates a static model to its runtime witness under `tenv`/`menv`.
pub fn eval_model(prog: &CheckedProgram, tenv: &TEnv, menv: &MEnv, m: &Model) -> ModelValue {
    match m {
        Model::Var(v) => menv.get(v).cloned().unwrap_or(ModelValue::Natural {
            constraint: genus_types::ConstraintId(0),
            args: vec![],
        }),
        Model::Infer(_) => ModelValue::Natural {
            constraint: genus_types::ConstraintId(0),
            args: vec![],
        },
        Model::Natural { inst } => ModelValue::Natural {
            constraint: inst.id,
            args: inst
                .args
                .iter()
                .map(|a| eval_type(prog, tenv, menv, a))
                .collect(),
        },
        Model::Decl {
            id,
            type_args,
            model_args,
        } => ModelValue::Decl {
            id: *id,
            targs: type_args
                .iter()
                .map(|a| eval_type(prog, tenv, menv, a))
                .collect(),
            margs: model_args
                .iter()
                .map(|x| eval_model(prog, tenv, menv, x))
                .collect(),
        },
    }
}

/// Runtime type of a value.
pub fn value_rt_type(prog: &CheckedProgram, heap: &Heap, v: &Value) -> RtType {
    match v {
        Value::Int(_) => RtType::Prim(PrimTy::Int),
        Value::Long(_) => RtType::Prim(PrimTy::Long),
        Value::Double(_) => RtType::Prim(PrimTy::Double),
        Value::Bool(_) => RtType::Prim(PrimTy::Boolean),
        Value::Char(_) => RtType::Prim(PrimTy::Char),
        Value::Str(_) => match prog.table.lookup_class(Symbol::intern("String")) {
            Some(id) => RtType::Class {
                id,
                args: vec![],
                models: vec![],
            },
            None => RtType::Null,
        },
        Value::Obj(h) => {
            let o = heap.obj(*h);
            RtType::Class {
                id: o.class,
                args: o.targs.clone(),
                models: o.models.clone(),
            }
        }
        Value::Arr(h) => RtType::Array(Box::new(heap.arr(*h).elem.clone())),
        Value::Packed(h) => value_rt_type(prog, heap, &heap.packed(*h).value),
        Value::Null | Value::Void => RtType::Null,
    }
}

/// Whether `v`'s runtime type is exactly `rt` — structurally equivalent
/// to `value_rt_type(prog, v) == *rt`, but without constructing the type
/// (no `targs`/`models` clones for objects, no boxed element clone for
/// arrays). This is the hot-path comparator behind the VM's per-site
/// model-dispatch inline caches.
pub fn value_matches_rt(prog: &CheckedProgram, heap: &Heap, v: &Value, rt: &RtType) -> bool {
    match v {
        Value::Obj(h) => {
            let o = heap.obj(*h);
            matches!(
                rt,
                RtType::Class { id, args, models }
                    if o.class == *id && o.targs == *args && o.models == *models
            )
        }
        Value::Arr(h) => matches!(rt, RtType::Array(e) if heap.arr(*h).elem == **e),
        Value::Packed(h) => value_matches_rt(prog, heap, &heap.packed(*h).value, rt),
        // Primitives, strings, null: `value_rt_type` is allocation-free
        // for these shapes (empty vecs never touch the heap), so reuse it
        // for exact parity with the memo-key construction.
        _ => value_rt_type(prog, heap, v) == *rt,
    }
}

/// Human-readable name of a runtime type, for diagnostic messages
/// (`ArrayList[int]`, `int[]`, ...).
pub fn rt_type_name(prog: &CheckedProgram, t: &RtType) -> String {
    match t {
        RtType::Prim(p) => p.name().to_string(),
        RtType::Class { id, args, .. } => {
            let name = prog.table.class(*id).name.to_string();
            if args.is_empty() {
                name
            } else {
                let args: Vec<String> = args.iter().map(|a| rt_type_name(prog, a)).collect();
                format!("{name}[{}]", args.join(", "))
            }
        }
        RtType::Array(elem) => format!("{}[]", rt_type_name(prog, elem)),
        RtType::Null => "null".to_string(),
    }
}

/// Whether evaluating this type yields the same reification in every
/// frame (no type/model variables; inference leftovers and existentials
/// erase deterministically).
pub fn ty_receiver_independent(t: &Type) -> bool {
    match t {
        Type::Prim(_) | Type::Null | Type::Infer(_) | Type::Existential { .. } => true,
        Type::Var(_) => false,
        Type::Array(e) => ty_receiver_independent(e),
        Type::Class { args, models, .. } => {
            args.iter().all(ty_receiver_independent)
                && models.iter().all(model_receiver_independent)
        }
    }
}

/// Model analogue of [`ty_receiver_independent`].
pub fn model_receiver_independent(m: &Model) -> bool {
    match m {
        Model::Var(_) => false,
        Model::Infer(_) => true,
        Model::Natural { inst } => inst.args.iter().all(ty_receiver_independent),
        Model::Decl {
            type_args,
            model_args,
            ..
        } => {
            type_args.iter().all(ty_receiver_independent)
                && model_args.iter().all(model_receiver_independent)
        }
    }
}

// ----------------------------------------------------------------------
// Runtime subtyping
// ----------------------------------------------------------------------

/// Direct supertypes of a reified class instantiation.
pub fn rt_parents(
    prog: &CheckedProgram,
    id: ClassId,
    args: &[RtType],
    models: &[ModelValue],
) -> Vec<(ClassId, Vec<RtType>, Vec<ModelValue>)> {
    let def = prog.table.class(id);
    let mut tenv = TEnv::new();
    let mut menv = MEnv::new();
    for (tv, t) in def.params.iter().zip(args) {
        tenv.insert(*tv, t.clone());
    }
    for (w, m) in def.wheres.iter().zip(models) {
        menv.insert(w.mv, m.clone());
    }
    let mut out = Vec::new();
    let mut push = |t: &Type| {
        if let RtType::Class { id, args, models } = eval_type(prog, &tenv, &menv, t) {
            out.push((id, args, models));
        }
    };
    if let Some(e) = &def.extends {
        push(e);
    }
    for i in &def.implements {
        push(i);
    }
    out
}

/// The instantiation of a reified class viewed at ancestor `target`.
pub fn rt_supertype_at(
    prog: &CheckedProgram,
    id: ClassId,
    args: &[RtType],
    models: &[ModelValue],
    target: ClassId,
) -> Option<(Vec<RtType>, Vec<ModelValue>)> {
    if id == target {
        return Some((args.to_vec(), models.to_vec()));
    }
    for (pid, pargs, pmodels) in rt_parents(prog, id, args, models) {
        if let Some(found) = rt_supertype_at(prog, pid, &pargs, &pmodels, target) {
            return Some(found);
        }
    }
    None
}

/// Runtime subtyping over reified types (invariant generics, reference
/// types below `Object`).
pub fn rt_subtype(prog: &CheckedProgram, a: &RtType, b: &RtType) -> bool {
    if a == b {
        return true;
    }
    if let RtType::Class { id, args, .. } = b {
        if args.is_empty() {
            if let Some(obj) = prog.table.lookup_class(Symbol::intern("Object")) {
                if *id == obj && !matches!(a, RtType::Prim(_)) {
                    return true;
                }
            }
        }
    }
    match (a, b) {
        (RtType::Null, x) => !matches!(x, RtType::Prim(_)),
        (
            RtType::Class { id, args, models },
            RtType::Class {
                id: tid,
                args: targs,
                models: tmodels,
            },
        ) => match rt_supertype_at(prog, *id, args, models, *tid) {
            Some((sargs, smodels)) => &sargs == targs && &smodels == tmodels,
            None => false,
        },
        _ => false,
    }
}

/// Reified `instanceof` (null is not an instance of anything).
pub fn value_instanceof(prog: &CheckedProgram, heap: &Heap, v: &Value, t: &RtType) -> bool {
    if heap.is_null(v) {
        return false;
    }
    let vt = value_rt_type(prog, heap, v);
    rt_subtype(prog, &vt, t)
}

/// `instanceof` against a (possibly existential) static type.
pub fn instanceof_type(
    prog: &CheckedProgram,
    heap: &Heap,
    tenv: &TEnv,
    menv: &MEnv,
    v: &Value,
    ty: &Type,
) -> bool {
    match ty {
        Type::Existential {
            params,
            bounds,
            wheres,
            body,
        } => match_existential(prog, heap, tenv, menv, v, params, bounds, wheres, body).is_some(),
        _ => {
            let t = eval_type(prog, tenv, menv, ty);
            value_instanceof(prog, heap, v, &t)
        }
    }
}

/// Matches a value against an existential pattern, returning the hole
/// solutions `(types, models)` on success. This is what makes
/// Figure 7's `src instanceof TreeSet[? extends T with c]` work.
#[allow(clippy::too_many_arguments)]
pub fn match_existential(
    prog: &CheckedProgram,
    heap: &Heap,
    tenv: &TEnv,
    menv: &MEnv,
    v: &Value,
    params: &[TvId],
    bounds: &[Option<Type>],
    wheres: &[WhereReq],
    body: &Type,
) -> Option<(Vec<RtType>, Vec<ModelValue>)> {
    if heap.is_null(v) {
        return None;
    }
    let packed = match v {
        Value::Packed(h) => Some(heap.packed(*h)),
        _ => None,
    };
    let inner: &Value = packed.as_ref().map_or(v, |p| &p.value);
    let Type::Class { id, args, models } = body else {
        // `[some U] U` matches anything; witnesses come from packaging.
        if let Type::Var(u) = body {
            if params.contains(u) {
                let vt = value_rt_type(prog, heap, inner);
                if let Some(p) = &packed {
                    return Some((vec![vt], p.models.clone()));
                }
                if wheres.is_empty() {
                    return Some((vec![vt], vec![]));
                }
            }
        }
        return None;
    };
    let vt = value_rt_type(prog, heap, inner);
    let RtType::Class {
        id: vid,
        args: vargs,
        models: vmodels,
    } = &vt
    else {
        return None;
    };
    let (sargs, smodels) = rt_supertype_at(prog, *vid, vargs, vmodels, *id)?;
    let mut hole_tys: HashMap<TvId, RtType> = HashMap::new();
    for (pat, actual) in args.iter().zip(&sargs) {
        match pat {
            Type::Var(u) if params.contains(u) => {
                if let Some(prev) = hole_tys.get(u) {
                    if prev != actual {
                        return None;
                    }
                } else {
                    let idx = params.iter().position(|p| p == u).expect("hole in params");
                    if let Some(Some(b)) = bounds.get(idx) {
                        let bt = eval_type(prog, tenv, menv, b);
                        if !rt_subtype(prog, actual, &bt) {
                            return None;
                        }
                    }
                    hole_tys.insert(*u, actual.clone());
                }
            }
            _ => {
                let want = eval_type(prog, tenv, menv, pat);
                if &want != actual {
                    return None;
                }
            }
        }
    }
    let mut hole_models: HashMap<MvId, ModelValue> = HashMap::new();
    let hole_mvs: Vec<MvId> = wheres.iter().map(|w| w.mv).collect();
    for (pat, actual) in models.iter().zip(&smodels) {
        match pat {
            Model::Var(mv) if hole_mvs.contains(mv) => {
                if let Some(prev) = hole_models.get(mv) {
                    if prev != actual {
                        return None;
                    }
                } else {
                    hole_models.insert(*mv, actual.clone());
                }
            }
            _ => {
                let want = eval_model(prog, tenv, menv, pat);
                if &want != actual {
                    return None;
                }
            }
        }
    }
    let types = params
        .iter()
        .map(|p| hole_tys.get(p).cloned().unwrap_or(RtType::Null))
        .collect();
    let models = wheres
        .iter()
        .map(|w| hole_models.get(&w.mv).cloned())
        .collect::<Option<Vec<_>>>()?;
    Some((types, models))
}

/// Checked cast semantics shared by both engines: numeric conversion
/// matrices, null passthrough, existential (re)packing, and the reified
/// class-cast check. A successful cast to an existential allocates a
/// package on `heap`, charged to `meter` (it can trap with `R0010`).
pub fn cast_value(
    prog: &CheckedProgram,
    heap: &Heap,
    meter: &Meter,
    tenv: &TEnv,
    menv: &MEnv,
    v: Value,
    ty: &Type,
) -> RResult<Value> {
    // Numeric casts (including narrowing) go through the reified matrix
    // below; everything else lets `null` pass through unchanged first.
    if !matches!(ty, Type::Prim(_)) && heap.is_null(&v) {
        return Ok(Value::Null);
    }
    if let Type::Existential {
        params,
        bounds,
        wheres,
        body,
    } = ty
    {
        return match match_existential(prog, heap, tenv, menv, &v, params, bounds, wheres, body) {
            Some((types, models)) => {
                let inner = heap.unpack(v);
                heap.alloc_packed(meter, inner, types, models)
            }
            None => Err(RuntimeError::new(
                ErrorKind::ClassCast,
                "value does not match existential type".to_string(),
            )),
        };
    }
    let t = eval_type(prog, tenv, menv, ty);
    cast_value_rt(prog, heap, v, &t)
}

/// Checked cast against an already-reified (non-existential) target type:
/// the tail of [`cast_value`], split out so engines that pre-reify their
/// cast targets (the VM optimizer's `rt_types` table) share the exact
/// same conversion matrix and failure messages.
pub fn cast_value_rt(prog: &CheckedProgram, heap: &Heap, v: Value, t: &RtType) -> RResult<Value> {
    if let RtType::Prim(p) = t {
        return match (&v, p) {
            (Value::Int(x), PrimTy::Int) => Ok(Value::Int(*x)),
            (Value::Int(x), PrimTy::Long) => Ok(Value::Long(i64::from(*x))),
            (Value::Int(x), PrimTy::Double) => Ok(Value::Double(f64::from(*x))),
            (Value::Long(x), PrimTy::Int) => Ok(Value::Int(*x as i32)),
            (Value::Long(x), PrimTy::Long) => Ok(Value::Long(*x)),
            (Value::Long(x), PrimTy::Double) => Ok(Value::Double(*x as f64)),
            (Value::Double(x), PrimTy::Int) => Ok(Value::Int(*x as i32)),
            (Value::Double(x), PrimTy::Long) => Ok(Value::Long(*x as i64)),
            (Value::Double(x), PrimTy::Double) => Ok(Value::Double(*x)),
            (Value::Char(c), PrimTy::Int) => Ok(Value::Int(*c as i32)),
            (Value::Int(x), PrimTy::Char) => {
                Ok(Value::Char(char::from_u32(*x as u32).unwrap_or('\u{FFFD}')))
            }
            (Value::Char(c), PrimTy::Char) => Ok(Value::Char(*c)),
            (Value::Bool(b), PrimTy::Boolean) => Ok(Value::Bool(*b)),
            _ => Err(RuntimeError::new(
                ErrorKind::ClassCast,
                format!("cannot cast {v:?} to {}", p.name()),
            )),
        };
    }
    if heap.is_null(&v) {
        return Ok(Value::Null);
    }
    if value_instanceof(prog, heap, &v, t) {
        Ok(heap.unpack(v))
    } else {
        Err(RuntimeError::new(
            ErrorKind::ClassCast,
            format!(
                "cannot cast value of type `{}` to `{}`",
                rt_type_name(prog, &value_rt_type(prog, heap, &v)),
                rt_type_name(prog, t),
            ),
        ))
    }
}

// ----------------------------------------------------------------------
// Virtual dispatch resolution
// ----------------------------------------------------------------------

/// Lazily built per-class `(name, arity) → method index` tables, shared
/// cache structure for any engine.
#[derive(Default)]
pub struct ClassIndexes {
    map: RefCell<FastMap<ClassId, Rc<ClassMethodIndex>>>,
}

impl ClassIndexes {
    /// The (lazily built) method index for `id`.
    pub fn get(&self, prog: &CheckedProgram, id: ClassId) -> Rc<ClassMethodIndex> {
        if let Some(ix) = self.map.borrow().get(&id) {
            return Rc::clone(ix);
        }
        let ix = Rc::new(ClassMethodIndex::build(prog.table.class(id)));
        self.map.borrow_mut().insert(id, Rc::clone(&ix));
        ix
    }
}

/// A memoized virtual-dispatch target: the defining class and method
/// index, plus the parent-edge path (`hops`) from the dynamic class to
/// the defining class. The path is instantiation-independent — parent
/// class ids come from `extends`/`implements` clauses whose head classes
/// are fixed — so one entry serves every instantiation of the class;
/// receiver-specific type/model arguments are re-derived by replaying
/// the hops.
#[derive(Debug, Clone)]
pub struct VirtTarget {
    /// Parent-edge indices from the dynamic class to the defining class.
    pub hops: Vec<usize>,
    /// Defining class.
    pub cid: ClassId,
    /// Method index within the defining class.
    pub mi: usize,
    /// The defining class's instantiation, precomputed when every parent
    /// edge on the path is receiver-independent (mentions no type/model
    /// variables) — then hits skip the hop replay entirely.
    pub fixed: Option<(Vec<RtType>, Vec<ModelValue>)>,
}

/// Finds `(declaring class, method index, class targs, class models)`
/// for a virtual call, walking the dynamic class chain then interfaces.
/// This is the uncached slow path (`no-cache` builds).
pub fn find_virtual(
    prog: &CheckedProgram,
    id: ClassId,
    args: &[RtType],
    models: &[ModelValue],
    name: Symbol,
    arity: usize,
) -> Option<(ClassId, usize, Vec<RtType>, Vec<ModelValue>)> {
    let def = prog.table.class(id);
    for (mi, m) in def.methods.iter().enumerate() {
        if m.name == name && m.params.len() == arity && !m.is_static {
            // Skip pure signatures (abstract or interface methods
            // without a body) so the search continues to an
            // implementation; native methods are kept.
            if m.body.is_some() || m.is_native {
                return Some((id, mi, args.to_vec(), models.to_vec()));
            }
        }
    }
    for (pid, pargs, pmodels) in rt_parents(prog, id, args, models) {
        if let Some(found) = find_virtual(prog, pid, &pargs, &pmodels, name, arity) {
            return Some(found);
        }
    }
    None
}

/// Walks the hierarchy like [`find_virtual`] but records the parent-edge
/// path taken, so the result can be memoized per class and replayed for
/// other instantiations.
#[allow(clippy::too_many_arguments)]
fn find_virtual_path(
    prog: &CheckedProgram,
    indexes: &ClassIndexes,
    id: ClassId,
    args: &[RtType],
    models: &[ModelValue],
    name: Symbol,
    arity: usize,
    hops: &mut Vec<usize>,
) -> Option<(ClassId, usize)> {
    if let Some(mi) = indexes.get(prog, id).virtual_method(name, arity) {
        return Some((id, mi));
    }
    for (h, (pid, pargs, pmodels)) in rt_parents(prog, id, args, models).into_iter().enumerate() {
        hops.push(h);
        if let Some(found) =
            find_virtual_path(prog, indexes, pid, &pargs, &pmodels, name, arity, hops)
        {
            return Some(found);
        }
        hops.pop();
    }
    None
}

/// Whether every parent edge along `hops` evaluates identically for
/// all instantiations of `id` (so the target's instantiation can be
/// computed once and frozen).
fn path_is_receiver_independent(prog: &CheckedProgram, id: ClassId, hops: &[usize]) -> bool {
    let mut cur = id;
    for &h in hops {
        let def = prog.table.class(cur);
        // Hop indices follow `rt_parents` order: `extends` first,
        // then `implements`.
        let t = match def.extends.as_ref() {
            Some(ext) if h == 0 => ext,
            ext => &def.implements[h - usize::from(ext.is_some())],
        };
        if !ty_receiver_independent(t) {
            return false;
        }
        let Type::Class { id: pid, .. } = t else {
            return false;
        };
        cur = *pid;
    }
    true
}

/// Resolves a virtual-dispatch target for the dynamic class `id`,
/// precomputing the fixed instantiation where the path allows it. The
/// result is engine-memoizable per `(class, name, arity)`.
pub fn resolve_virtual(
    prog: &CheckedProgram,
    indexes: &ClassIndexes,
    id: ClassId,
    args: &[RtType],
    models: &[ModelValue],
    name: Symbol,
    arity: usize,
) -> Option<Rc<VirtTarget>> {
    let mut hops = Vec::new();
    find_virtual_path(prog, indexes, id, args, models, name, arity, &mut hops).map(|(cid, mi)| {
        let mut vt = VirtTarget {
            hops,
            cid,
            mi,
            fixed: None,
        };
        if !vt.hops.is_empty() && path_is_receiver_independent(prog, id, &vt.hops) {
            let (_, _, cargs, cmodels) = replay_target(prog, &vt, id, args, models);
            vt.fixed = Some((cargs, cmodels));
        }
        Rc::new(vt)
    })
}

/// Re-derives the receiver-specific instantiation of the defining
/// class by replaying a memoized target's parent-edge path.
pub fn replay_target(
    prog: &CheckedProgram,
    t: &VirtTarget,
    id: ClassId,
    args: &[RtType],
    models: &[ModelValue],
) -> (ClassId, usize, Vec<RtType>, Vec<ModelValue>) {
    let (mut id, mut args, mut models) = (id, args.to_vec(), models.to_vec());
    for &h in &t.hops {
        let (pid, pargs, pmodels) = rt_parents(prog, id, &args, &models)
            .into_iter()
            .nth(h)
            .expect("memoized hop path stays within the class's parents");
        id = pid;
        args = pargs;
        models = pmodels;
    }
    debug_assert_eq!(id, t.cid);
    (t.cid, t.mi, args, models)
}

// ----------------------------------------------------------------------
// Value projections shared by the engines
// ----------------------------------------------------------------------

/// Projects a value to an object reference, unwrapping existential
/// packages.
///
/// # Errors
///
/// `NullPointerException` on null; `Other` on non-objects.
pub fn expect_obj(heap: &Heap, v: &Value) -> RResult<Rc<ObjData>> {
    match v {
        Value::Obj(h) => Ok(heap.obj(*h)),
        Value::Packed(h) => match &heap.packed(*h).value {
            Value::Obj(o) => Ok(heap.obj(*o)),
            Value::Null => Err(RuntimeError::new(
                ErrorKind::NullPointer,
                "null dereference",
            )),
            other => Err(RuntimeError::new(
                ErrorKind::Other,
                format!("expected object, got {other:?}"),
            )),
        },
        Value::Null => Err(RuntimeError::new(
            ErrorKind::NullPointer,
            "null dereference",
        )),
        other => Err(RuntimeError::new(
            ErrorKind::Other,
            format!("expected object, got {other:?}"),
        )),
    }
}

/// Projects a value to an array reference, unwrapping existential
/// packages.
///
/// # Errors
///
/// `NullPointerException` on null; `Other` on non-arrays.
pub fn expect_arr(heap: &Heap, v: &Value) -> RResult<Rc<ArrayData>> {
    match v {
        Value::Arr(h) => Ok(heap.arr(*h)),
        Value::Packed(h) => match &heap.packed(*h).value {
            Value::Arr(a) => Ok(heap.arr(*a)),
            _ => Err(RuntimeError::new(ErrorKind::Other, "expected array")),
        },
        Value::Null => Err(RuntimeError::new(ErrorKind::NullPointer, "null array")),
        other => Err(RuntimeError::new(
            ErrorKind::Other,
            format!("expected array, got {other:?}"),
        )),
    }
}

/// Number of declared instance fields over `id`'s superclass chain: the
/// field-table capacity an instance will grow to, used for exact object
/// sizing at allocation. Static (class structure only), so every engine
/// computes the same size for the same class.
pub fn instance_field_slots(prog: &CheckedProgram, id: ClassId) -> usize {
    let mut n = 0;
    let mut cur = Some(id);
    while let Some(cid) = cur {
        let def = prog.table.class(cid);
        n += def.fields.iter().filter(|f| !f.is_static).count();
        cur = def.extends.as_ref().and_then(|t| match t {
            Type::Class { id, .. } => Some(*id),
            _ => None,
        });
    }
    n
}

/// Bounds-checks an array index value.
///
/// # Errors
///
/// `Other` for non-int indices; `IndexOutOfBounds` otherwise.
pub fn expect_index(v: &Value, len: usize) -> RResult<usize> {
    let Value::Int(i) = v else {
        return Err(RuntimeError::new(
            ErrorKind::Other,
            "array index must be int",
        ));
    };
    if *i < 0 || *i as usize >= len {
        return Err(RuntimeError::new(
            ErrorKind::IndexOutOfBounds,
            format!("index {i} out of bounds for length {len}"),
        ));
    }
    Ok(*i as usize)
}

// ----------------------------------------------------------------------
// Multimethod (model) dispatch resolution (§5.1)
// ----------------------------------------------------------------------

/// Key for a multimethod dispatch memo: model instance, operation, and
/// the dynamic receiver/argument types the applicability and specificity
/// rules (§5.1) depend on. `RtType::Null` stands for null values, whose
/// applicability is also type-determined.
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct ModelDispatchKey {
    /// Model declaration.
    pub id: ModelId,
    /// Reified model type arguments.
    pub targs: Vec<RtType>,
    /// Reified model model-arguments.
    pub margs: Vec<ModelValue>,
    /// Operation name.
    pub name: Symbol,
    /// Static (receiverless) operation?
    pub is_static: bool,
    /// Dynamic receiver type (or the static receiver type).
    pub recv: Option<RtType>,
    /// Dynamic argument types.
    pub args: Vec<RtType>,
}

/// The winning candidate of a multimethod dispatch, with the model-level
/// environment its body runs under.
#[derive(Debug)]
pub struct ModelTarget {
    /// Defining model.
    pub mid: ModelId,
    /// Method index within the model.
    pub mi: usize,
    /// Type environment the body runs under.
    pub tenv: TEnv,
    /// Model environment the body runs under.
    pub menv: MEnv,
}

/// How the dispatch receiver is given.
pub enum RecvKind<'a> {
    /// An instance operation: the *dynamic* type of the receiver value
    /// (`RtType::Null` for a null receiver, which never applies).
    Value(&'a RtType, /* receiver is null */ bool),
    /// A static operation: the receiver *type* (`T.zero()`), matched
    /// exactly.
    Static(&'a RtType),
}

/// Collects `(model id, method index, env)` candidates: the model's own
/// methods plus those inherited via `extends` (§5.3). Public so the VM
/// optimizer can enumerate the same candidate set when proving a
/// `CallModel` site devirtualizable at compile time.
pub fn model_candidates(
    prog: &CheckedProgram,
    id: ModelId,
    targs: &[RtType],
    margs: &[ModelValue],
    out: &mut Vec<(ModelId, usize, TEnv, MEnv)>,
    depth: usize,
) {
    if depth > 16 {
        return;
    }
    let def = prog.table.model(id);
    let mut tenv = TEnv::new();
    let mut menv = MEnv::new();
    for (tv, t) in def.tparams.iter().zip(targs) {
        tenv.insert(*tv, t.clone());
    }
    for (w, m) in def.wheres.iter().zip(margs) {
        menv.insert(w.mv, m.clone());
    }
    for (mi, _) in def.methods.iter().enumerate() {
        out.push((id, mi, tenv.clone(), menv.clone()));
    }
    for parent in &def.extends {
        if let ModelValue::Decl {
            id: pid,
            targs: pt,
            margs: pm,
        } = eval_model(prog, &tenv, &menv, parent)
        {
            model_candidates(prog, pid, &pt, &pm, out, depth + 1);
        }
    }
}

/// Selects the most specific applicable multimethod candidate (§5.1) for
/// an operation on a declared model. Returns `None` when no candidate
/// applies (the caller falls back to the receiver's own method).
///
/// The decision is a pure function of the model instance, the operation,
/// and the dynamic receiver/argument types, so engines can memoize it
/// under a [`ModelDispatchKey`].
#[allow(clippy::too_many_arguments)]
pub fn select_model_target(
    prog: &CheckedProgram,
    id: ModelId,
    targs: &[RtType],
    margs: &[ModelValue],
    name: Symbol,
    recv: Option<RecvKind<'_>>,
    arg_ts: &[RtType],
    args_null: &[bool],
) -> Option<Rc<ModelTarget>> {
    let is_static = !matches!(recv, Some(RecvKind::Value(..)));
    let mut cands = Vec::new();
    model_candidates(prog, id, targs, margs, &mut cands, 0);
    // Applicability: the dynamic receiver and argument values must be
    // instances of the declared (evaluated) types.
    let mut applicable: Vec<(usize, Vec<RtType>)> = Vec::new();
    for (ci, (mid, mi, tenv, menv)) in cands.iter().enumerate() {
        let m = &prog.table.model(*mid).methods[*mi];
        if m.name != name || m.is_static != is_static || m.params.len() != arg_ts.len() {
            continue;
        }
        let recv_t = eval_type(prog, tenv, menv, &m.receiver);
        let ok_recv = match &recv {
            Some(RecvKind::Value(vt, is_null)) => !is_null && rt_subtype(prog, vt, &recv_t),
            Some(RecvKind::Static(srt)) => &recv_t == *srt,
            None => false,
        };
        if !ok_recv {
            continue;
        }
        let param_ts: Vec<RtType> = m
            .params
            .iter()
            .map(|(_, t)| eval_type(prog, tenv, menv, t))
            .collect();
        let ok_args = arg_ts
            .iter()
            .zip(args_null)
            .zip(&param_ts)
            .all(|((vt, null), t)| {
                (!null && rt_subtype(prog, vt, t)) || matches!(t, RtType::Prim(_)) || *null
            });
        if !ok_args {
            continue;
        }
        let mut tuple = vec![recv_t];
        tuple.extend(param_ts);
        applicable.push((ci, tuple));
    }
    if applicable.is_empty() {
        return None;
    }
    // Most specific by pointwise runtime subtyping. Ties keep the
    // earlier candidate: own definitions precede inherited ones in
    // the candidate list, so a child model's definition shadows an
    // inherited definition with the same dispatch tuple (§5.3).
    let mut best = 0;
    for i in 1..applicable.len() {
        let fwd = applicable[i]
            .1
            .iter()
            .zip(&applicable[best].1)
            .all(|(a, b)| rt_subtype(prog, a, b));
        let bwd = applicable[best]
            .1
            .iter()
            .zip(&applicable[i].1)
            .all(|(a, b)| rt_subtype(prog, a, b));
        if fwd && !bwd {
            best = i;
        }
    }
    let (ci, _) = applicable[best];
    let (mid, mi, tenv, menv) = &cands[ci];
    Some(Rc::new(ModelTarget {
        mid: *mid,
        mi: *mi,
        tenv: tenv.clone(),
        menv: menv.clone(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use genus_check::check_source;

    #[test]
    fn reification_and_subtyping_roundtrip() {
        let prog = check_source(
            "class A { A() { } }
             class B extends A { B() { } }
             void main() { }",
        )
        .unwrap();
        let a = prog.table.lookup_class(Symbol::intern("A")).unwrap();
        let b = prog.table.lookup_class(Symbol::intern("B")).unwrap();
        let ta = RtType::Class {
            id: a,
            args: vec![],
            models: vec![],
        };
        let tb = RtType::Class {
            id: b,
            args: vec![],
            models: vec![],
        };
        assert!(rt_subtype(&prog, &tb, &ta));
        assert!(!rt_subtype(&prog, &ta, &tb));
        assert!(rt_subtype(&prog, &RtType::Null, &ta));
        assert!(!rt_subtype(
            &prog,
            &RtType::Null,
            &RtType::Prim(PrimTy::Int)
        ));
    }

    #[test]
    fn virtual_resolution_matches_uncached_walk() {
        let prog = check_source(
            "class A { A() { } int f() { return 1; } }
             class B extends A { B() { } }
             void main() { }",
        )
        .unwrap();
        let b = prog.table.lookup_class(Symbol::intern("B")).unwrap();
        let idx = ClassIndexes::default();
        let f = Symbol::intern("f");
        let t = resolve_virtual(&prog, &idx, b, &[], &[], f, 0).expect("resolves");
        let (cid, mi, _, _) = find_virtual(&prog, b, &[], &[], f, 0).expect("walks");
        assert_eq!((t.cid, t.mi), (cid, mi));
        assert_eq!(t.hops, vec![0]);
        assert!(t.fixed.is_some(), "monomorphic parent edge should freeze");
    }

    #[test]
    fn cast_value_numeric_and_failure() {
        let prog = check_source("void main() { }").unwrap();
        let heap = Heap::with_stress(false);
        let meter = Meter::unlimited();
        let (tenv, menv) = (TEnv::new(), MEnv::new());
        let v = cast_value(
            &prog,
            &heap,
            &meter,
            &tenv,
            &menv,
            Value::Int(65),
            &Type::Prim(PrimTy::Char),
        )
        .unwrap();
        assert!(matches!(v, Value::Char('A')));
        let e = cast_value(
            &prog,
            &heap,
            &meter,
            &tenv,
            &menv,
            Value::Bool(true),
            &Type::Prim(PrimTy::Int),
        )
        .unwrap_err();
        assert_eq!(e.kind, ErrorKind::ClassCast);
    }
}
