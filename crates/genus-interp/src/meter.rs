//! Resource metering — re-exported from [`genus_heap::meter`].
//!
//! The meter moved to the `genus-heap` crate alongside the heap whose
//! allocations it charges. This module keeps the historical
//! `genus_interp::meter::*` import paths working.

pub use genus_heap::meter::*;
