//! Incremental compilation benchmarks: cold one-shot checks vs. warm
//! session re-checks after a one-token edit, for a trivial stdlib
//! program and for the largest sample. Besides the criterion report,
//! writes a machine-readable summary to `BENCH_incr.json` at the
//! repository root (the vendored criterion shim has no JSON output).

use criterion::{criterion_group, criterion_main, Criterion};
use genus::{CompileSession, Compiler};

const TRIVIAL: &str = "int main() { return 1; }";
const REGISTRY: &str = include_str!("../../../samples/existential_registry.genus");

/// The `n`th one-token body variant of a workload. Every call with a new
/// `n` yields a source the session has never seen, so each warm
/// iteration genuinely re-parses and re-checks the edited unit instead
/// of restoring an old verdict from the LRU.
fn variant(base: &str, n: u64) -> String {
    if base == TRIVIAL {
        format!("int main() {{ return {n}; }}")
    } else {
        base.replacen("return", &format!("return /*w{n}*/"), 1)
    }
}

/// Minimum-of-N wall-clock for one closure, with warmup. Alternating
/// interleave is pointless here (cold and warm share no mutable state),
/// so a plain min keeps the code obvious.
fn min_ns<F: FnMut()>(mut f: F, samples: usize) -> f64 {
    for _ in 0..2 {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = std::time::Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

/// A cold check: a fresh compiler, stdlib and all, from source text.
fn cold_check(src: &str) {
    let report = Compiler::new()
        .with_stdlib()
        .source("main.genus", src)
        .check_report();
    assert!(!report.has_errors(), "bench program must check");
}

/// One warm re-check on an already-checked session: apply the next
/// one-token variant of the user unit and re-run the query pipeline.
fn warm_recheck(session: &mut CompileSession, n: &mut u64, base: &str) {
    *n += 1;
    session.update_source("main.genus", &variant(base, *n));
    assert!(!session.check().has_errors(), "bench program must check");
}

fn bench_incremental(c: &mut Criterion) {
    assert_ne!(
        REGISTRY,
        variant(REGISTRY, 1),
        "edit must change the source"
    );
    let workloads: [(&str, &str); 2] = [
        ("stdlib_trivial", TRIVIAL),
        ("existential_registry", REGISTRY),
    ];
    let mut rows = Vec::new();
    let mut g = c.benchmark_group("incremental");
    g.sample_size(10);
    for (name, base) in &workloads {
        g.bench_function(format!("{name}_cold"), |bch| bch.iter(|| cold_check(base)));
        let mut session = CompileSession::with_stdlib();
        session.update_source("main.genus", &variant(base, 0));
        assert!(!session.check().has_errors());
        let mut n = 0u64;
        g.bench_function(format!("{name}_warm"), |bch| {
            bch.iter(|| warm_recheck(&mut session, &mut n, base))
        });

        let cold_ns = min_ns(|| cold_check(base), 15);
        let mut session = CompileSession::with_stdlib();
        session.update_source("main.genus", &variant(base, 0));
        assert!(!session.check().has_errors());
        let before = session.stats();
        let mut n = 0u64;
        let warm_ns = min_ns(|| warm_recheck(&mut session, &mut n, base), 15);
        let after = session.stats();
        let checks = after.checks - before.checks;
        let reused = after.units_not_rechecked() - before.units_not_rechecked();
        let rechecked = after.units_rechecked - before.units_rechecked;
        let reuse_rate = reused as f64 / (reused + rechecked) as f64;
        let speedup = cold_ns / warm_ns;
        // The point of the session pipeline: a one-token edit must be
        // at least 5x cheaper than a from-scratch check.
        assert!(
            speedup >= 5.0,
            "warm re-check of `{name}` only {speedup:.1}x faster than cold"
        );
        assert_eq!(rechecked, checks, "exactly the edited unit re-checks");
        rows.push(format!(
            "    \"{name}\": {{\"cold_ns\": {cold_ns:.0}, \"warm_ns\": {warm_ns:.0}, \"warm_speedup\": {speedup:.3}, \"units_reused_per_recheck\": {}, \"units_rechecked_per_recheck\": {}, \"reuse_rate\": {reuse_rate:.3}}}",
            reused / checks,
            rechecked / checks
        ));
    }
    g.finish();
    let json = format!(
        "{{\n  \"bench\": \"incremental_recheck\",\n  \"min_of\": 15,\n  \"target_warm_speedup\": 5.0,\n  \"workloads\": {{\n{}\n  }}\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_incr.json");
    std::fs::write(path, &json).expect("write BENCH_incr.json");
    eprintln!("wrote {path}");
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_incremental
}
criterion_main!(benches);
