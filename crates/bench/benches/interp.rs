//! Interpreter dispatch benchmarks: monomorphic vs. megamorphic virtual
//! call sites and multimethod (model) dispatch, exercising the inline
//! caches and dispatch memos. Build with `--features no-cache` to A/B the
//! caching layer.
//!
//! The benchmark classes carry padding methods and inheritance chains so
//! dispatch cost looks like the stdlib's (`ArrayList` has dozens of
//! methods behind interfaces), not like a one-method toy class.

use criterion::{criterion_group, criterion_main, Criterion};
use genus::{CheckedProgram, Compiler, Interp, Vm};
use std::time::Instant;

fn padding(prefix: &str, n: usize) -> String {
    (0..n)
        .map(|i| format!("int {prefix}{i}() {{ return {i}; }}\n"))
        .collect()
}

/// One receiver class, one call site: the per-call-site inline cache
/// should hit on every iteration after the first. The target method sits
/// behind a padded subclass so the uncached path scans two classes.
fn monomorphic_src() -> String {
    format!(
        "class Shape {{
           Shape() {{ }}
           {pad_base}
           int area(int x) {{ return x + 1; }}
         }}
         class Square extends Shape {{
           Square() {{ }}
           {pad_sub}
         }}
         int main() {{
           Square s = new Square();
           int t = 0;
           for (int i = 0; i < 20000; i = i + 1) {{ t = t + s.area(i); }}
           return t;
         }}",
        pad_base = padding("pa", 10),
        pad_sub = padding("pb", 8),
    )
}

/// Four receiver classes rotating through one call site: the inline cache
/// keeps missing, so dispatch falls back to the per-class target memo.
/// The method lives two hops up a padded chain.
fn megamorphic_src() -> String {
    let subclasses: String = (1..=4)
        .map(|i| {
            format!(
                "class C{i} extends Mid {{
                   C{i}() {{ }}
                   {pad}
                 }}\n",
                pad = padding(&format!("c{i}m"), 6),
            )
        })
        .collect();
    format!(
        "class Base {{
           Base() {{ }}
           {pad_base}
           int f(int x) {{ return x; }}
         }}
         class Mid extends Base {{
           Mid() {{ }}
           {pad_mid}
         }}
         {subclasses}
         int main() {{
           Base[] xs = new Base[4];
           xs[0] = new C1(); xs[1] = new C2(); xs[2] = new C3(); xs[3] = new C4();
           int s = 0;
           for (int i = 0; i < 5000; i = i + 1) {{
             for (int j = 0; j < 4; j = j + 1) {{ s = s + xs[j].f(i); }}
           }}
           return s;
         }}",
        pad_base = padding("ba", 8),
        pad_mid = padding("mi", 8),
    )
}

/// A generic `use`-enabled model drives every comparison, so each
/// `compareTo` goes through multimethod dispatch (§5.1) with a non-empty
/// model environment — the case where the uncached path reclones
/// candidate environments on every call.
const MODEL_DISPATCH: &str = "
    class Box[T] {
      T item;
      Box(T item) { this.item = item; }
      T item() { return item; }
    }
    model BoxCmp[E] for Comparable[Box[E]] where Comparable[E] {
      int compareTo(Box[E] o) { return item().compareTo(o.item()); }
      boolean equals(Box[E] o) { return item().compareTo(o.item()) == 0; }
    }
    use BoxCmp;
    int count[T](List[T] xs, T pivot) where Comparable[T] {
      int n = 0;
      for (T x : xs) { if (x.compareTo(pivot) > 0) { n = n + 1; } }
      return n;
    }
    int main() {
      ArrayList[Box[int]] xs = new ArrayList[Box[int]]();
      for (int i = 0; i < 64; i = i + 1) { xs.add(new Box[int](i * 7 - 100)); }
      Box[int] pivot = new Box[int](50);
      int s = 0;
      for (int r = 0; r < 300; r = r + 1) {
        s = s + count(xs, pivot);
      }
      return s;
    }";

/// Allocation-heavy dispatch: every iteration allocates a fresh array
/// and a fresh receiver, calls through it, and drops both — megabytes of
/// churn with a tiny live set, the worst case for safe-point polling and
/// the best case for collection (everything but the checksum is garbage).
const HEAP_CHURN: &str = "
    class Node {
      int v;
      Node(int v) { this.v = v; }
      int get() { return this.v; }
    }
    int main() {
      int s = 0;
      for (int i = 0; i < 30000; i = i + 1) {
        int[] a = new int[32];
        a[0] = i;
        Node n = new Node(a[0]);
        s = s + n.get() - i + 1;
      }
      return s;
    }";

/// Toggles arena mode for heaps built after the call (each `Vm` builds
/// its own heap, so this takes effect per-run). The bench is
/// single-threaded, making the process-global env var safe to flip.
fn set_gc_off(off: bool) {
    if off {
        std::env::set_var("GENUS_GC_OFF", "1");
    } else {
        std::env::remove_var("GENUS_GC_OFF");
    }
}

fn compile(src: &str, stdlib: bool) -> CheckedProgram {
    let mut c = Compiler::new();
    if stdlib {
        c = c.with_stdlib();
    }
    c.source("bench.genus", src)
        .compile()
        .expect("bench program checks")
}

/// Runs once before timing and asserts the caches actually absorb the
/// dispatch traffic, so the bench numbers measure what they claim to.
fn assert_hit_rates(mono: &CheckedProgram, mega: &CheckedProgram, model: &CheckedProgram) {
    if !genus::caches_enabled() {
        return;
    }
    let mut interp = Interp::new(mono);
    interp.run_main().expect("monomorphic program runs");
    let s = interp.dispatch_stats();
    assert!(
        s.ic_hits >= 100 * (s.ic_misses + 1),
        "monomorphic site should be absorbed by the inline cache: {s:?}"
    );
    eprintln!("dispatch stats (monomorphic): {s:?}");

    let mut interp = Interp::new(mega);
    interp.run_main().expect("megamorphic program runs");
    let s = interp.dispatch_stats();
    assert!(
        s.virt_hits >= 100 * s.virt_misses,
        "megamorphic site should be absorbed by the per-class memo: {s:?}"
    );
    eprintln!("dispatch stats (megamorphic): {s:?}");

    let mut interp = Interp::new(model);
    interp.run_main().expect("model-dispatch program runs");
    let s = interp.dispatch_stats();
    assert!(
        s.model_hits >= 100 * s.model_misses,
        "model dispatch should be absorbed by the multimethod memo: {s:?}"
    );
    eprintln!("dispatch stats (model): {s:?}");
}

fn bench_dispatch(c: &mut Criterion) {
    let mono = compile(&monomorphic_src(), false);
    let mega = compile(&megamorphic_src(), false);
    let model = compile(MODEL_DISPATCH, true);
    assert_hit_rates(&mono, &mega, &model);
    let mut g = c.benchmark_group("dispatch");
    g.sample_size(10);
    for (name, prog) in [
        ("monomorphic", &mono),
        ("megamorphic", &mega),
        ("model_dispatch", &model),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut interp = Interp::new(prog);
                interp.run_main().expect("bench program runs")
            })
        });
    }
    g.finish();
}

/// Insertion sort through a `where Comparable[T]` model slot: every element
/// comparison is a constraint-method call, so the inner loop is dominated by
/// dictionary-passing dispatch — the workload the bytecode VM targets.
const INSERTION_SORT: &str = "
    void isort[T](T[] xs) where Comparable[T] {
      for (int i = 1; i < xs.length; i = i + 1) {
        T key = xs[i];
        int j = i - 1;
        while (j >= 0 && xs[j].compareTo(key) > 0) {
          xs[j + 1] = xs[j];
          j = j - 1;
        }
        xs[j + 1] = key;
      }
    }
    int main() {
      int n = 300;
      int s = 0;
      for (int r = 0; r < 5; r = r + 1) {
        int[] xs = new int[n];
        for (int i = 0; i < n; i = i + 1) { xs[i] = (i * 7919 + r) % 997; }
        isort(xs);
        s = s + xs[0] + xs[n - 1] * 2;
      }
      return s;
    }";

/// Insertion sort through a *user* constraint with an explicitly chosen
/// model: the inner loop is pure `Op::CallModel` traffic with a statically
/// known model tuple, which is exactly what the optimizer's heterogeneous
/// translation (`--opt-level=2`) rewrites into direct calls. Prelude-only,
/// so the numbers isolate dispatch from stdlib code.
const SPECIALIZED_DISPATCH: &str = "
    constraint Ord[T] { boolean T.before(T other); }
    model IntOrd for Ord[int] {
      boolean before(int other) { return this < other; }
    }
    void ssort[T](T[] xs) where Ord[T] {
      for (int i = 1; i < xs.length; i = i + 1) {
        T key = xs[i];
        int j = i - 1;
        while (j >= 0 && key.before(xs[j])) {
          xs[j + 1] = xs[j];
          j = j - 1;
        }
        xs[j + 1] = key;
      }
    }
    int main() {
      int n = 300;
      int s = 0;
      for (int r = 0; r < 5; r = r + 1) {
        int[] xs = new int[n];
        for (int i = 0; i < n; i = i + 1) { xs[i] = (i * 7919 + r) % 997; }
        ssort[int with IntOrd](xs);
        s = s + xs[0] + xs[n - 1] * 2;
      }
      return s;
    }";

fn run_ast(prog: &CheckedProgram) -> String {
    let mut interp = Interp::new(prog);
    let v = interp.run_main().expect("bench program runs on AST");
    interp.render(&v)
}

fn run_vm(prog: &CheckedProgram, code: &std::sync::Arc<genus::VmProgram>) -> String {
    let mut vm = Vm::with_code(prog, code.clone());
    let v = vm.run_main().expect("bench program runs on VM");
    vm.render(&v)
}

fn run_tier(prog: &CheckedProgram, tier: &genus::TierProgram) -> String {
    let mut vm = Vm::with_code(prog, tier.code().clone());
    let v = vm
        .run_main_tier(tier)
        .expect("bench program runs on Tier 2");
    vm.render(&v)
}

/// Minimum wall time in nanoseconds for each of two routines, sampled in
/// alternation so slow machine-load drift biases neither side. The
/// minimum is the noise-robust estimator: interference only adds time.
fn measure_pair(mut a: impl FnMut(), mut b: impl FnMut(), samples: usize) -> (f64, f64) {
    let one = |f: &mut dyn FnMut()| {
        let start = Instant::now();
        f();
        start.elapsed().as_nanos() as f64
    };
    for _ in 0..3 {
        one(&mut a);
        one(&mut b);
    }
    let (mut min_a, mut min_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..samples {
        min_a = min_a.min(one(&mut a));
        min_b = min_b.min(one(&mut b));
    }
    (min_a, min_b)
}

/// AST interpreter vs. bytecode VM on dispatch-heavy workloads. Besides the
/// criterion report, writes a machine-readable summary to `BENCH_vm.json`
/// at the repository root (the vendored criterion shim has no JSON output).
fn bench_vm(c: &mut Criterion) {
    let workloads = [
        ("model_dispatch", compile(MODEL_DISPATCH, true)),
        ("insertion_sort", compile(INSERTION_SORT, true)),
    ];
    let mut rows = Vec::new();
    let mut g = c.benchmark_group("vm");
    g.sample_size(10);
    for (name, prog) in &workloads {
        let code = Vm::new(prog).code().clone();
        // The engines must agree before we time them.
        assert_eq!(
            run_ast(prog),
            run_vm(prog, &code),
            "engine divergence on `{name}`"
        );
        g.bench_function(format!("{name}_ast"), |b| b.iter(|| run_ast(prog)));
        g.bench_function(format!("{name}_vm"), |b| b.iter(|| run_vm(prog, &code)));
        let (ast_ns, vm_ns) = measure_pair(
            || std::mem::drop(run_ast(prog)),
            || std::mem::drop(run_vm(prog, &code)),
            15,
        );
        rows.push(format!(
            "    \"{name}\": {{\"ast_ns\": {ast_ns:.0}, \"vm_ns\": {vm_ns:.0}, \"vm_speedup\": {:.3}}}",
            ast_ns / vm_ns
        ));
    }
    // The optimizer A/B: the same compiled program at opt-level 0
    // (homogeneous dictionary passing) vs opt-level 2 (heterogeneous
    // translation + cleanup), both on the VM.
    let opt_workloads = [
        ("specialized_dispatch", compile(SPECIALIZED_DISPATCH, false)),
        ("model_dispatch", compile(MODEL_DISPATCH, true)),
    ];
    let mut opt_rows = Vec::new();
    for (name, prog) in &opt_workloads {
        let code0 = std::sync::Arc::new(genus::compile_optimized(prog, 0));
        let code2 = std::sync::Arc::new(genus::compile_optimized(prog, 2));
        assert_eq!(
            run_vm(prog, &code0),
            run_vm(prog, &code2),
            "opt-level divergence on `{name}`"
        );
        g.bench_function(format!("{name}_vm_o0"), |b| b.iter(|| run_vm(prog, &code0)));
        g.bench_function(format!("{name}_vm_o2"), |b| b.iter(|| run_vm(prog, &code2)));
        let (o0_ns, o2_ns) = measure_pair(
            || std::mem::drop(run_vm(prog, &code0)),
            || std::mem::drop(run_vm(prog, &code2)),
            15,
        );
        let s = code2.opt_stats;
        opt_rows.push(format!(
            "    \"{name}\": {{\"vm_o0_ns\": {o0_ns:.0}, \"vm_o2_ns\": {o2_ns:.0}, \"o2_speedup\": {:.3}, \"funcs_specialized\": {}, \"calls_directed\": {}, \"call_model_devirted\": {}}}",
            o0_ns / o2_ns, s.funcs_specialized, s.calls_directed, s.call_model_devirted
        ));
    }
    // The tier A/B: the same O2 bytecode executed by the VM's
    // fetch/decode loop vs closure-compiled Tier 2 (pre-resolved
    // operands, no decode). Observable behaviour and fuel are identical
    // by construction; only the dispatch overhead differs.
    let tier_workloads = [
        ("specialized_dispatch", compile(SPECIALIZED_DISPATCH, false)),
        ("insertion_sort", compile(INSERTION_SORT, true)),
        ("model_dispatch", compile(MODEL_DISPATCH, true)),
    ];
    let mut tier_rows = Vec::new();
    for (name, prog) in &tier_workloads {
        let code2 = std::sync::Arc::new(genus::compile_optimized(prog, 2));
        let tier = genus::compile_tier(&code2);
        assert_eq!(
            run_vm(prog, &code2),
            run_tier(prog, &tier),
            "tier divergence on `{name}`"
        );
        g.bench_function(format!("{name}_tier"), |b| b.iter(|| run_tier(prog, &tier)));
        let (vm_ns, tier_ns) = measure_pair(
            || std::mem::drop(run_vm(prog, &code2)),
            || std::mem::drop(run_tier(prog, &tier)),
            15,
        );
        tier_rows.push(format!(
            "    \"{name}\": {{\"vm_o2_ns\": {vm_ns:.0}, \"tier_ns\": {tier_ns:.0}, \"tier_speedup\": {:.3}, \"funcs_tiered\": {}, \"blocks\": {}}}",
            vm_ns / tier_ns,
            tier.stats.funcs_tiered,
            tier.stats.blocks
        ));
    }
    // The GC A/B: the same allocation-heavy dispatch workload on the VM
    // with the collector on (threshold-doubling mark-sweep) vs off
    // (`GENUS_GC_OFF=1` arena mode). Byte accounting is charge-driven,
    // so `mem_used` is identical on both legs; what the A/B prices is
    // the collector itself — safe-point polls, root scans, sweeps —
    // against the arena's unbounded live set.
    let heap_prog = compile(HEAP_CHURN, false);
    let heap_code = std::sync::Arc::new(genus::compile_optimized(&heap_prog, 2));
    let churn_stats = |off: bool| {
        set_gc_off(off);
        let mut vm = Vm::with_code(&heap_prog, heap_code.clone());
        let v = vm.run_main().expect("heap churn runs on VM");
        let stats = (vm.render(&v), vm.resource_stats());
        set_gc_off(false);
        stats
    };
    let (on_value, on_stats) = churn_stats(false);
    let (off_value, off_stats) = churn_stats(true);
    assert_eq!(on_value, off_value, "GC must be semantically invisible");
    assert_eq!(
        on_stats.mem_used, off_stats.mem_used,
        "accounting is charge-driven"
    );
    assert!(on_stats.collections > 0, "churn workload never collected");
    g.bench_function("alloc_churn_gc_on", |b| {
        b.iter(|| std::mem::drop(churn_stats(false)));
    });
    g.bench_function("alloc_churn_gc_off", |b| {
        b.iter(|| std::mem::drop(churn_stats(true)));
    });
    let (gc_on_ns, gc_off_ns) = measure_pair(
        || std::mem::drop(churn_stats(false)),
        || std::mem::drop(churn_stats(true)),
        15,
    );
    let heap_rows = vec![format!(
        "    \"alloc_churn\": {{\"gc_on_ns\": {gc_on_ns:.0}, \"gc_off_ns\": {gc_off_ns:.0}, \"gc_overhead\": {:.3}, \"mem_used\": {}, \"collections\": {}, \"peak_live_gc_on\": {}, \"peak_live_gc_off\": {}}}",
        gc_on_ns / gc_off_ns,
        on_stats.mem_used,
        on_stats.collections,
        on_stats.peak_bytes,
        off_stats.peak_bytes
    )];
    g.finish();
    let json = format!(
        "{{\n  \"bench\": \"ast_vs_vm\",\n  \"caches_enabled\": {},\n  \"min_of\": 15,\n  \"workloads\": {{\n{}\n  }},\n  \"opt\": {{\n{}\n  }},\n  \"tier\": {{\n{}\n  }},\n  \"heap\": {{\n{}\n  }}\n}}\n",
        genus::caches_enabled(),
        rows.join(",\n"),
        opt_rows.join(",\n"),
        tier_rows.join(",\n"),
        heap_rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_vm.json");
    std::fs::write(path, &json).expect("write BENCH_vm.json");
    eprintln!("wrote {path}");
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_dispatch, bench_vm
}
criterion_main!(benches);
