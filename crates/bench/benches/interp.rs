//! Interpreter dispatch benchmarks: monomorphic vs. megamorphic virtual
//! call sites and multimethod (model) dispatch, exercising the inline
//! caches and dispatch memos. Build with `--features no-cache` to A/B the
//! caching layer.
//!
//! The benchmark classes carry padding methods and inheritance chains so
//! dispatch cost looks like the stdlib's (`ArrayList` has dozens of
//! methods behind interfaces), not like a one-method toy class.

use criterion::{criterion_group, criterion_main, Criterion};
use genus::{CheckedProgram, Compiler, Interp};

fn padding(prefix: &str, n: usize) -> String {
    (0..n).map(|i| format!("int {prefix}{i}() {{ return {i}; }}\n")).collect()
}

/// One receiver class, one call site: the per-call-site inline cache
/// should hit on every iteration after the first. The target method sits
/// behind a padded subclass so the uncached path scans two classes.
fn monomorphic_src() -> String {
    format!(
        "class Shape {{
           Shape() {{ }}
           {pad_base}
           int area(int x) {{ return x + 1; }}
         }}
         class Square extends Shape {{
           Square() {{ }}
           {pad_sub}
         }}
         int main() {{
           Square s = new Square();
           int t = 0;
           for (int i = 0; i < 20000; i = i + 1) {{ t = t + s.area(i); }}
           return t;
         }}",
        pad_base = padding("pa", 10),
        pad_sub = padding("pb", 8),
    )
}

/// Four receiver classes rotating through one call site: the inline cache
/// keeps missing, so dispatch falls back to the per-class target memo.
/// The method lives two hops up a padded chain.
fn megamorphic_src() -> String {
    let subclasses: String = (1..=4)
        .map(|i| {
            format!(
                "class C{i} extends Mid {{
                   C{i}() {{ }}
                   {pad}
                 }}\n",
                pad = padding(&format!("c{i}m"), 6),
            )
        })
        .collect();
    format!(
        "class Base {{
           Base() {{ }}
           {pad_base}
           int f(int x) {{ return x; }}
         }}
         class Mid extends Base {{
           Mid() {{ }}
           {pad_mid}
         }}
         {subclasses}
         int main() {{
           Base[] xs = new Base[4];
           xs[0] = new C1(); xs[1] = new C2(); xs[2] = new C3(); xs[3] = new C4();
           int s = 0;
           for (int i = 0; i < 5000; i = i + 1) {{
             for (int j = 0; j < 4; j = j + 1) {{ s = s + xs[j].f(i); }}
           }}
           return s;
         }}",
        pad_base = padding("ba", 8),
        pad_mid = padding("mi", 8),
    )
}

/// A generic `use`-enabled model drives every comparison, so each
/// `compareTo` goes through multimethod dispatch (§5.1) with a non-empty
/// model environment — the case where the uncached path reclones
/// candidate environments on every call.
const MODEL_DISPATCH: &str = "
    class Box[T] {
      T item;
      Box(T item) { this.item = item; }
      T item() { return item; }
    }
    model BoxCmp[E] for Comparable[Box[E]] where Comparable[E] {
      int compareTo(Box[E] o) { return item().compareTo(o.item()); }
      boolean equals(Box[E] o) { return item().compareTo(o.item()) == 0; }
    }
    use BoxCmp;
    int count[T](List[T] xs, T pivot) where Comparable[T] {
      int n = 0;
      for (T x : xs) { if (x.compareTo(pivot) > 0) { n = n + 1; } }
      return n;
    }
    int main() {
      ArrayList[Box[int]] xs = new ArrayList[Box[int]]();
      for (int i = 0; i < 64; i = i + 1) { xs.add(new Box[int](i * 7 - 100)); }
      Box[int] pivot = new Box[int](50);
      int s = 0;
      for (int r = 0; r < 300; r = r + 1) {
        s = s + count(xs, pivot);
      }
      return s;
    }";

fn compile(src: &str, stdlib: bool) -> CheckedProgram {
    let mut c = Compiler::new();
    if stdlib {
        c = c.with_stdlib();
    }
    c.source("bench.genus", src).compile().expect("bench program checks")
}

/// Runs once before timing and asserts the caches actually absorb the
/// dispatch traffic, so the bench numbers measure what they claim to.
fn assert_hit_rates(mono: &CheckedProgram, mega: &CheckedProgram, model: &CheckedProgram) {
    if !genus::caches_enabled() {
        return;
    }
    let mut interp = Interp::new(mono);
    interp.run_main().expect("monomorphic program runs");
    let s = interp.dispatch_stats();
    assert!(
        s.ic_hits >= 100 * (s.ic_misses + 1),
        "monomorphic site should be absorbed by the inline cache: {s:?}"
    );
    eprintln!("dispatch stats (monomorphic): {s:?}");

    let mut interp = Interp::new(mega);
    interp.run_main().expect("megamorphic program runs");
    let s = interp.dispatch_stats();
    assert!(
        s.virt_hits >= 100 * s.virt_misses,
        "megamorphic site should be absorbed by the per-class memo: {s:?}"
    );
    eprintln!("dispatch stats (megamorphic): {s:?}");

    let mut interp = Interp::new(model);
    interp.run_main().expect("model-dispatch program runs");
    let s = interp.dispatch_stats();
    assert!(
        s.model_hits >= 100 * s.model_misses,
        "model dispatch should be absorbed by the multimethod memo: {s:?}"
    );
    eprintln!("dispatch stats (model): {s:?}");
}

fn bench_dispatch(c: &mut Criterion) {
    let mono = compile(&monomorphic_src(), false);
    let mega = compile(&megamorphic_src(), false);
    let model = compile(MODEL_DISPATCH, true);
    assert_hit_rates(&mono, &mega, &model);
    let mut g = c.benchmark_group("dispatch");
    g.sample_size(10);
    for (name, prog) in
        [("monomorphic", &mono), ("megamorphic", &mega), ("model_dispatch", &model)]
    {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut interp = Interp::new(prog);
                interp.run_main().expect("bench program runs")
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_dispatch
}
criterion_main!(benches);
