//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **model indirection** — the per-compare cost of dispatching through a
//!   model object vs. direct comparison (why unspecialized Genus trails
//!   specialized code, §8.3);
//! * **boxing** — unboxed (`double`) vs boxed (`Double`) element storage at
//!   fixed genericity (why primitive type arguments pay off even without
//!   specialization);
//! * **reified fast path** — Figure 7's `addAll` with same-ordering
//!   detection, matching vs non-matching models, in the interpreter.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use genus::{CheckedProgram, Compiler, Interp};
use genus_translate::genus as tgenus;
use genus_translate::specialized;
use genus_translate::workload::random_doubles;
use std::rc::Rc;

const N: usize = 2000;

fn ablation_model_indirection(c: &mut Criterion) {
    let input = random_doubles(N, 1);
    let mut g = c.benchmark_group("ablation_model_indirection");
    g.bench_function("direct_compare", |b| {
        b.iter_batched(
            || input.clone(),
            |mut v| specialized::sort_slice(&mut v),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("model_dispatched_compare", |b| {
        b.iter_batched(
            || {
                let mut a = tgenus::ObjectModel::new_array(&tgenus::DoubleModel, N);
                for (i, v) in input.iter().enumerate() {
                    tgenus::ObjectModel::array_set(
                        &tgenus::DoubleModel,
                        &mut a,
                        i,
                        tgenus::GValue::D(*v),
                    );
                }
                a
            },
            |mut a| tgenus::sort_array_generic(&mut a, &tgenus::DoubleModel),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn ablation_boxing(c: &mut Criterion) {
    let input = random_doubles(N, 2);
    let dm: Rc<dyn tgenus::ComparableModel> = Rc::new(tgenus::DoubleModel);
    let bm: Rc<dyn tgenus::ComparableModel> = Rc::new(tgenus::BoxedDoubleModel);
    let mut g = c.benchmark_group("ablation_boxing");
    g.bench_function("unboxed_storage", |b| {
        b.iter_batched(
            || tgenus::GenusArrayList::from_values(dm.clone(), &input),
            |mut l| tgenus::sort_list_generic(&mut l),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("boxed_storage", |b| {
        b.iter_batched(
            || tgenus::GenusArrayList::from_values(bm.clone(), &input),
            |mut l| tgenus::sort_list_generic(&mut l),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn compile(src: &str) -> CheckedProgram {
    Compiler::new()
        .with_stdlib()
        .source("bench.genus", src)
        .compile()
        .expect("benchmark program compiles")
}

fn run_program(prog: &CheckedProgram) {
    let mut i = Interp::new(prog);
    i.run_main().expect("benchmark program runs");
    let _ = i.take_output();
}

fn ablation_reified_fast_path(c: &mut Criterion) {
    // Interpreter-level: TreeSet.addAll with matching vs non-matching
    // orderings (Figure 7). The element flow is identical; the measured
    // difference is the reified-model test plus the chosen path.
    let mk = |with_model: bool| {
        let decl = if with_model {
            " with ReverseCmp[int]"
        } else {
            ""
        };
        format!(
            "void main() {{
               TreeSet[int{decl}] a = new TreeSet[int{decl}]();
               for (int i = 0; i < 60; i = i + 1) {{ a.add(i * 7 % 61); }}
               TreeSet[int] b = new TreeSet[int]();
               b.addAll(a);
               println(b.fastPathAdds);
             }}"
        )
    };
    let prog_same = compile(&mk(false));
    let prog_diff = compile(&mk(true));
    let mut g = c.benchmark_group("ablation_reified_fast_path");
    g.sample_size(10);
    g.bench_function("same_ordering_fast_path", |b| {
        b.iter(|| run_program(&prog_same))
    });
    g.bench_function("different_ordering_slow_path", |b| {
        b.iter(|| run_program(&prog_diff))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = ablation_model_indirection, ablation_boxing, ablation_reified_fast_path
}
criterion_main!(benches);
