//! Load-generator benchmark for `genus-serve`: client-observed latency
//! (p50/p99) and throughput across worker-pool sizes, cache temperatures,
//! and engines — including `engine: "auto"` hotness promotion through
//! the tiers. Writes a machine-readable summary to `BENCH_serve.json` at
//! the repository root.
//!
//! Not a criterion harness: the interesting quantities are tail latency
//! under concurrent load and end-to-end throughput of the scheduler +
//! program cache + engines, which a single-threaded `b.iter` cannot
//! express. One client thread per in-flight request timestamps its own
//! submit→response round trip, so queueing delay counts — the number a
//! real caller would see.

use genus_serve::{EngineKind, Outcome, Request, Response, ServeConfig, Server};
use std::sync::Arc;
use std::time::Instant;

/// Requests per scenario: enough for a stable p99 at these run times
/// without making the cold-cache scenarios compile-bound for minutes.
const REQUESTS: usize = 64;

/// Distinct program shapes for the cold scenarios (each compiles once).
const PROGRAMS: usize = 16;

/// A small dispatch-heavy program, parameterized so distinct seeds are
/// distinct cache entries. Prelude-only: the cold scenarios measure the
/// service pipeline, not stdlib checking.
fn src(seed: usize) -> String {
    format!(
        "constraint Ord[T] {{ boolean T.before(T other); }}
         model IntOrd for Ord[int] {{
           boolean before(int other) {{ return this < other; }}
         }}
         int count[T](T[] xs, T p) where Ord[T] {{
           int n = 0;
           for (int i = 0; i < xs.length; i = i + 1) {{
             if (xs[i].before(p)) {{ n = n + 1; }}
           }}
           return n;
         }}
         int main() {{
           int[] xs = new int[256];
           for (int i = 0; i < 256; i = i + 1) {{ xs[i] = (i * 7919 + {seed}) % 997; }}
           int s = 0;
           for (int r = 0; r < 40; r = r + 1) {{ s = s + count[int with IntOrd](xs, 500); }}
           return s;
         }}"
    )
}

fn request(id: usize, seed: usize, engine: EngineKind) -> Request {
    let mut req = Request::new(format!("r{id}"), src(seed));
    req.engine = engine;
    req.stdlib = false;
    req.limits.fuel = Some(genus_serve::DEFAULT_FUEL);
    req
}

struct Measured {
    p50_us: f64,
    p99_us: f64,
    throughput_rps: f64,
    engines: Vec<&'static str>,
}

/// Fires `reqs` concurrently (one client thread each), returning the
/// client-observed latency distribution and aggregate throughput.
fn drive(server: &Arc<Server>, reqs: Vec<Request>) -> Measured {
    let n = reqs.len();
    let wall = Instant::now();
    let handles: Vec<_> = reqs
        .into_iter()
        .map(|req| {
            let server = Arc::clone(server);
            std::thread::spawn(move || {
                let start = Instant::now();
                let resp: Response = server.submit(req).recv().expect("response");
                assert!(
                    matches!(resp.outcome, Outcome::Ok(_)),
                    "bench request failed: {}",
                    resp.to_json_line()
                );
                (start.elapsed().as_secs_f64() * 1e6, resp.engine.name())
            })
        })
        .collect();
    let mut lat = Vec::with_capacity(n);
    let mut engines = Vec::with_capacity(n);
    for h in handles {
        let (us, engine) = h.join().expect("client thread");
        lat.push(us);
        engines.push(engine);
    }
    let elapsed = wall.elapsed().as_secs_f64();
    lat.sort_by(f64::total_cmp);
    Measured {
        p50_us: lat[n / 2],
        p99_us: lat[((n as f64 * 0.99) as usize).min(n - 1)],
        throughput_rps: n as f64 / elapsed,
        engines,
    }
}

/// Counts how each response resolved its engine (interesting for
/// `engine: "auto"`, where the mix shows the promotion ladder).
fn engine_mix(engines: &[&'static str]) -> String {
    let count = |k: &str| engines.iter().filter(|e| **e == k).count();
    format!(
        "{{\"ast\": {}, \"vm\": {}, \"jit\": {}}}",
        count("ast"),
        count("vm"),
        count("jit")
    )
}

fn row(key: &str, workers: usize, cache: &str, engine: &str, m: &Measured, extra: &str) -> String {
    format!(
        "    \"{key}\": {{\"workers\": {workers}, \"cache\": \"{cache}\", \"engine\": \"{engine}\", \
         \"p50_us\": {:.0}, \"p99_us\": {:.0}, \"throughput_rps\": {:.0}{extra}}}",
        m.p50_us, m.p99_us, m.throughput_rps
    )
}

fn main() {
    let mut rows = Vec::new();
    for workers in [1usize, 4, 16] {
        // Cold: a fresh server, 64 requests over 16 distinct programs —
        // compiles dominate, and racing requests on the same fresh
        // source exercise the one-compile-per-program guarantee.
        let server = Arc::new(Server::new(ServeConfig {
            workers,
            ..ServeConfig::default()
        }));
        let cold = drive(
            &server,
            (0..REQUESTS)
                .map(|i| request(i, i % PROGRAMS, EngineKind::Vm))
                .collect(),
        );
        assert_eq!(server.cache_stats().compiles as usize, PROGRAMS);
        rows.push(row(
            &format!("w{workers}_cold_vm"),
            workers,
            "cold",
            "vm",
            &cold,
            "",
        ));

        // Hot: the same sources again on the warmed cache — pure
        // execution + scheduling, zero compiles.
        let hot = drive(
            &server,
            (0..REQUESTS)
                .map(|i| request(REQUESTS + i, i % PROGRAMS, EngineKind::Vm))
                .collect(),
        );
        rows.push(row(
            &format!("w{workers}_hot_vm"),
            workers,
            "hot",
            "vm",
            &hot,
            "",
        ));

        // Hot + Tier 2: same warmed cache, explicit jit engine. The
        // first wave pays one tier compile per program; steady state is
        // closure-tree execution.
        let hot_jit = drive(
            &server,
            (0..REQUESTS)
                .map(|i| request(2 * REQUESTS + i, i % PROGRAMS, EngineKind::Jit))
                .collect(),
        );
        assert_eq!(server.cache_stats().tier_compiles as usize, PROGRAMS);
        rows.push(row(
            &format!("w{workers}_hot_jit"),
            workers,
            "hot",
            "jit",
            &hot_jit,
            "",
        ));
        server.shutdown_arc();

        // Promotion: a fresh server hammered with ONE source under
        // `engine: "auto"` — the entry climbs AST → VM → Tier 2 as its
        // invocation count crosses the thresholds, with exactly one
        // tier compile. The engine mix records the ladder.
        let server = Arc::new(Server::new(ServeConfig {
            workers,
            ..ServeConfig::default()
        }));
        let auto = drive(
            &server,
            (0..REQUESTS)
                .map(|i| request(i, 0, EngineKind::Auto))
                .collect(),
        );
        let stats = server.cache_stats();
        assert_eq!(stats.tier_compiles, 1, "exactly one promotion tier compile");
        rows.push(row(
            &format!("w{workers}_auto_promotion"),
            workers,
            "cold",
            "auto",
            &auto,
            &format!(
                ", \"tier_compiles\": {}, \"engine_mix\": {}",
                stats.tier_compiles,
                engine_mix(&auto.engines)
            ),
        ));
        server.shutdown_arc();
    }
    let json = format!(
        "{{\n  \"bench\": \"serve_load\",\n  \"requests_per_scenario\": {REQUESTS},\n  \"distinct_programs\": {PROGRAMS},\n  \"scenarios\": {{\n{}\n  }}\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    eprintln!("wrote {path}");
    print!("{json}");
}

/// `Server::shutdown` takes `self` by value; this helper lets the bench
/// drop an `Arc`'d server gracefully once all clients have joined.
trait ShutdownArc {
    fn shutdown_arc(self);
}

impl ShutdownArc for Arc<Server> {
    fn shutdown_arc(self) {
        if let Some(server) = Arc::into_inner(self) {
            server.shutdown();
        }
    }
}
