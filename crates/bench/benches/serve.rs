//! Load-generator benchmark for `genus-serve`: client-observed latency
//! (p50/p99) and throughput across worker-pool sizes, cache temperatures,
//! and engines — including `engine: "auto"` hotness promotion through
//! the tiers and the persistent-bytecode restart path. Writes a
//! machine-readable summary to `BENCH_serve.json` at the repository root.
//!
//! Not a criterion harness: the interesting quantities are tail latency
//! under concurrent load and end-to-end throughput of the scheduler +
//! program cache + engines, which a single-threaded `b.iter` cannot
//! express. The load generator is a **closed-loop client pool**: a fixed
//! number of client threads each keep exactly one request in flight,
//! drawing the next from a shared queue the moment the previous response
//! lands — so offered concurrency stays at the client count for the whole
//! run instead of collapsing as a spawn-per-request design drains.
//! Latencies are recorded in the same `genus_common::histogram::Histogram`
//! the server's `/metrics` surface uses, so client-side and server-side
//! p99 are computed by identical code.
//!
//! The scaling assertions are gated on `cores` (recorded in the output):
//! on a single-core host more workers cannot multiply throughput of
//! CPU-bound work, so the gate only demands no *regression* there, and
//! demands real speedup only when the silicon can deliver one.

use genus_common::histogram::Histogram;
use genus_serve::{EngineKind, Outcome, Request, Response, ServeConfig, Server};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Requests per scenario: enough for a stable p99 at these run times
/// without making the cold-cache scenarios compile-bound for minutes.
const REQUESTS: usize = 64;

/// Distinct program shapes for the cold scenarios (each compiles once).
const PROGRAMS: usize = 16;

/// Closed-loop clients per scenario: the offered concurrency. Constant
/// across worker counts so throughput differences are the scheduler's.
const CLIENTS: usize = 16;

/// A small dispatch-heavy program, parameterized so distinct seeds are
/// distinct cache entries. Prelude-only: the cold scenarios measure the
/// service pipeline, not stdlib checking.
fn src(seed: usize) -> String {
    format!(
        "constraint Ord[T] {{ boolean T.before(T other); }}
         model IntOrd for Ord[int] {{
           boolean before(int other) {{ return this < other; }}
         }}
         int count[T](T[] xs, T p) where Ord[T] {{
           int n = 0;
           for (int i = 0; i < xs.length; i = i + 1) {{
             if (xs[i].before(p)) {{ n = n + 1; }}
           }}
           return n;
         }}
         int main() {{
           int[] xs = new int[256];
           for (int i = 0; i < 256; i = i + 1) {{ xs[i] = (i * 7919 + {seed}) % 997; }}
           int s = 0;
           for (int r = 0; r < 40; r = r + 1) {{ s = s + count[int with IntOrd](xs, 500); }}
           return s;
         }}"
    )
}

fn request(id: usize, seed: usize, engine: EngineKind) -> Request {
    let mut req = Request::new(format!("r{id}"), src(seed));
    req.engine = engine;
    req.stdlib = false;
    req.limits.fuel = Some(genus_serve::DEFAULT_FUEL);
    req
}

struct Measured {
    p50_us: f64,
    p99_us: f64,
    throughput_rps: f64,
    engines: Vec<&'static str>,
}

/// Closed-loop load generation: `clients` threads each keep one request
/// in flight until the shared queue is dry, timestamping every
/// submit→response round trip (queueing delay counts — the number a real
/// caller would see). Concurrency stays pinned at `clients` for the
/// whole run.
fn drive(server: &Arc<Server>, reqs: Vec<Request>, clients: usize) -> Measured {
    let n = reqs.len();
    let hist = Arc::new(Histogram::new());
    let queue = Arc::new(Mutex::new(VecDeque::from(reqs)));
    let engines = Arc::new(Mutex::new(Vec::with_capacity(n)));
    let wall = Instant::now();
    let handles: Vec<_> = (0..clients.max(1))
        .map(|_| {
            let server = Arc::clone(server);
            let hist = Arc::clone(&hist);
            let queue = Arc::clone(&queue);
            let engines = Arc::clone(&engines);
            std::thread::spawn(move || loop {
                let Some(req) = queue.lock().unwrap().pop_front() else {
                    return;
                };
                let start = Instant::now();
                let resp: Response = server.submit(req).recv().expect("response");
                assert!(
                    matches!(resp.outcome, Outcome::Ok(_)),
                    "bench request failed: {}",
                    resp.to_json_line()
                );
                hist.record_us(start.elapsed().as_micros() as u64);
                engines.lock().unwrap().push(resp.engine.name());
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let elapsed = wall.elapsed().as_secs_f64();
    let snap = hist.snapshot();
    Measured {
        p50_us: snap.quantile_us(0.50) as f64,
        p99_us: snap.quantile_us(0.99) as f64,
        throughput_rps: n as f64 / elapsed,
        engines: Arc::try_unwrap(engines).unwrap().into_inner().unwrap(),
    }
}

/// Counts how each response resolved its engine (interesting for
/// `engine: "auto"`, where the mix shows the promotion ladder).
fn engine_mix(engines: &[&'static str]) -> String {
    let count = |k: &str| engines.iter().filter(|e| **e == k).count();
    format!(
        "{{\"ast\": {}, \"vm\": {}, \"jit\": {}}}",
        count("ast"),
        count("vm"),
        count("jit")
    )
}

fn row(key: &str, workers: usize, cache: &str, engine: &str, m: &Measured, extra: &str) -> String {
    format!(
        "    \"{key}\": {{\"workers\": {workers}, \"cache\": \"{cache}\", \"engine\": \"{engine}\", \
         \"p50_us\": {:.0}, \"p99_us\": {:.0}, \"throughput_rps\": {:.0}{extra}}}",
        m.p50_us, m.p99_us, m.throughput_rps
    )
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut rows = Vec::new();
    let mut hot_rps_w1 = None;
    let mut hot_rps_w4 = None;
    for workers in [1usize, 4, 16] {
        // Cold: a fresh server, 64 requests over 16 distinct programs —
        // compiles dominate, and racing requests on the same fresh
        // source exercise the one-compile-per-program guarantee.
        let server = Arc::new(Server::new(ServeConfig {
            workers,
            ..ServeConfig::default()
        }));
        let cold = drive(
            &server,
            (0..REQUESTS)
                .map(|i| request(i, i % PROGRAMS, EngineKind::Vm))
                .collect(),
            CLIENTS,
        );
        assert_eq!(server.cache_stats().compiles as usize, PROGRAMS);
        rows.push(row(
            &format!("w{workers}_cold_vm"),
            workers,
            "cold",
            "vm",
            &cold,
            "",
        ));

        // Hot: the same sources again on the warmed cache — pure
        // execution + scheduling, zero compiles.
        let hot = drive(
            &server,
            (0..REQUESTS)
                .map(|i| request(REQUESTS + i, i % PROGRAMS, EngineKind::Vm))
                .collect(),
            CLIENTS,
        );
        if workers == 1 {
            hot_rps_w1 = Some(hot.throughput_rps);
        } else if workers == 4 {
            hot_rps_w4 = Some(hot.throughput_rps);
        }
        rows.push(row(
            &format!("w{workers}_hot_vm"),
            workers,
            "hot",
            "vm",
            &hot,
            "",
        ));

        // Hot + Tier 2: same warmed cache, explicit jit engine. The
        // first wave pays one tier compile per program; steady state is
        // closure-tree execution.
        let hot_jit = drive(
            &server,
            (0..REQUESTS)
                .map(|i| request(2 * REQUESTS + i, i % PROGRAMS, EngineKind::Jit))
                .collect(),
            CLIENTS,
        );
        assert_eq!(server.cache_stats().tier_compiles as usize, PROGRAMS);
        rows.push(row(
            &format!("w{workers}_hot_jit"),
            workers,
            "hot",
            "jit",
            &hot_jit,
            "",
        ));
        server.shutdown_arc();

        // Promotion: a fresh server hammered with ONE source under
        // `engine: "auto"` — the entry climbs AST → VM → Tier 2 as its
        // invocation count crosses the thresholds, with exactly one
        // tier compile. The engine mix records the ladder.
        let server = Arc::new(Server::new(ServeConfig {
            workers,
            ..ServeConfig::default()
        }));
        let auto = drive(
            &server,
            (0..REQUESTS)
                .map(|i| request(i, 0, EngineKind::Auto))
                .collect(),
            CLIENTS,
        );
        let stats = server.cache_stats();
        assert_eq!(stats.tier_compiles, 1, "exactly one promotion tier compile");
        rows.push(row(
            &format!("w{workers}_auto_promotion"),
            workers,
            "cold",
            "auto",
            &auto,
            &format!(
                ", \"tier_compiles\": {}, \"engine_mix\": {}",
                stats.tier_compiles,
                engine_mix(&auto.engines)
            ),
        ));
        server.shutdown_arc();
    }
    // Core-gated scaling check on the hot-VM path (pure execution +
    // scheduling). With ≥4 cores, 4 workers must at least double 1
    // worker's throughput; on fewer cores CPU-bound work cannot scale,
    // so the gate only rejects a collapse (sharding overhead making
    // more workers *slower* than one).
    if let (Some(w1), Some(w4)) = (hot_rps_w1, hot_rps_w4) {
        if cores >= 4 {
            assert!(
                w4 >= 2.0 * w1,
                "hot-VM throughput failed to scale on {cores} cores: w1={w1:.0} rps, w4={w4:.0} rps"
            );
        } else {
            assert!(
                w4 >= 0.5 * w1,
                "hot-VM throughput collapsed under sharding on {cores} core(s): \
                 w1={w1:.0} rps, w4={w4:.0} rps"
            );
        }
    }
    let restart = restart_row();
    let soak = soak_row();
    let json = format!(
        "{{\n  \"bench\": \"serve_load\",\n  \"cores\": {cores},\n  \"requests_per_scenario\": {REQUESTS},\n  \"distinct_programs\": {PROGRAMS},\n  \"clients\": {CLIENTS},\n  \"scenarios\": {{\n{}\n  }},\n  \"restart_warm\": {restart},\n  \"soak\": {soak}\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    eprintln!("wrote {path}");
    print!("{json}");
}

/// Programs in the restart scenario: each is a distinct stdlib-checked
/// source, so a cold first request pays the full check + compile.
const RESTART_PROGRAMS: usize = 8;

/// First-request latency of each of `n` stdlib programs against a fresh
/// server configured by `config`, in microseconds. Sequential on
/// purpose: the quantity is per-request cold-start, not throughput.
fn first_request_us(config: &ServeConfig, offset: usize) -> (Vec<u64>, Arc<Server>) {
    let server = Arc::new(Server::new(config.clone()));
    let mut lat = Vec::with_capacity(RESTART_PROGRAMS);
    for i in 0..RESTART_PROGRAMS {
        let req = Request::new(
            format!("restart{}", offset + i),
            format!("int main() {{ return {}; }}", 100 + i),
        );
        let start = Instant::now();
        let resp = server.submit(req).recv().expect("response");
        assert!(
            matches!(resp.outcome, Outcome::Ok(_)),
            "restart request failed: {}",
            resp.to_json_line()
        );
        lat.push(start.elapsed().as_micros() as u64);
    }
    (lat, server)
}

/// The persistent-bytecode restart scenario: populate a `cache_dir`,
/// then boot a brand-new server over the same directory and compare its
/// first-request latency against a server that must compile from
/// scratch. The warm server's first answer comes off disk — no type
/// check, no compile — which is where the speedup lives (stdlib
/// checking dominates compile cost). Minima are compared so scheduler
/// jitter on a loaded host cannot mask the structural difference.
fn restart_row() -> String {
    let dir = std::env::temp_dir().join(format!("genus-bench-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Cold baseline: no cache dir, every first request compiles.
    let (cold_us, server) = first_request_us(&ServeConfig::default(), 0);
    server.shutdown_arc();

    // Populate: same programs through a cache-dir server, writing
    // artifacts; its own latencies are cold too (compile + store).
    let disk_config = ServeConfig {
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let (_, server) = first_request_us(&disk_config, RESTART_PROGRAMS);
    let writes = server.cache_stats().disk_writes;
    assert_eq!(
        writes as usize, RESTART_PROGRAMS,
        "populate phase persisted every program"
    );
    server.shutdown_arc();

    // Restart: a brand-new server over the populated directory answers
    // every first request from disk — zero compiles.
    let (warm_us, server) = first_request_us(&disk_config, 2 * RESTART_PROGRAMS);
    let stats = server.cache_stats();
    assert_eq!(stats.compiles, 0, "warm restart must not compile");
    assert_eq!(
        stats.disk_hits as usize, RESTART_PROGRAMS,
        "warm restart serves every program from disk"
    );
    server.shutdown_arc();
    let _ = std::fs::remove_dir_all(&dir);

    let min_cold = *cold_us.iter().min().expect("cold samples") as f64;
    let min_warm = *warm_us.iter().min().expect("warm samples") as f64;
    let speedup = min_cold / min_warm.max(1.0);
    assert!(
        speedup >= 5.0,
        "restart from populated cache-dir not fast enough: \
         cold {min_cold:.0}us vs warm {min_warm:.0}us ({speedup:.1}x, need 5x)"
    );
    format!(
        "{{\"programs\": {RESTART_PROGRAMS}, \"cold_first_request_us\": {min_cold:.0}, \
         \"warm_first_request_us\": {min_warm:.0}, \"speedup\": {speedup:.1}, \
         \"disk_hits\": {}}}",
        stats.disk_hits
    )
}

/// Requests in the GC soak scenario.
const SOAK_REQUESTS: usize = 1000;

/// An allocation-churn request: each run allocates a few megabytes of
/// short-lived arrays and objects, keeping only an int checksum live.
fn soak_src() -> String {
    "class Node {
       int v;
       Node(int v) { this.v = v; }
     }
     int main() {
       int s = 0;
       for (int i = 0; i < 5000; i = i + 1) {
         int[] a = new int[64];
         a[0] = i;
         Node n = new Node(i);
         s = s + a[0] - n.v + 1;
       }
       return s;
     }"
    .to_string()
}

/// Resident-set size in KiB from `/proc/self/statm` (Linux; `None`
/// elsewhere, which skips the flatness assertion but still reports the
/// per-request heap stats).
fn rss_kb() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(pages * 4096 / 1024)
}

/// The memory soak: 1000 allocation-churn requests through one server.
/// Every run gets a fresh per-execution heap that dies with its engine,
/// so process RSS must stay flat while the requests churn gigabytes in
/// aggregate — the response-level stats prove each run's collector did
/// the reclamation (collections > 0, live set back near zero) and the
/// RSS delta proves nothing leaks across requests.
fn soak_row() -> String {
    let server = Arc::new(Server::new(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    }));
    let rss_before = rss_kb();
    let wall = Instant::now();
    let mut max_live = 0u64;
    let mut min_collections = u64::MAX;
    let mut mem_used = 0u64;
    // Sequential waves keep peak concurrency at the worker count, so the
    // RSS measurement prices per-request cleanup, not queue depth.
    for wave in 0..(SOAK_REQUESTS / 50) {
        let reqs: Vec<Request> = (0..50)
            .map(|i| {
                let mut req = Request::new(format!("soak{}", wave * 50 + i), soak_src());
                req.stdlib = false;
                req.limits.fuel = Some(genus_serve::DEFAULT_FUEL);
                req
            })
            .collect();
        for resp in server.run_batch(reqs) {
            assert!(
                matches!(resp.outcome, Outcome::Ok(_)),
                "soak request failed: {}",
                resp.to_json_line()
            );
            assert!(resp.collections > 0, "soak run never collected");
            max_live = max_live.max(resp.live_bytes);
            min_collections = min_collections.min(resp.collections);
            mem_used = resp.mem_used;
        }
    }
    let elapsed = wall.elapsed().as_secs_f64();
    let rss_after = rss_kb();
    server.shutdown_arc();
    // Flatness: ~3 GiB churned in aggregate must not move RSS by more
    // than a small constant (allocator slack, cache growth).
    if let (Some(before), Some(after)) = (rss_before, rss_after) {
        assert!(
            after.saturating_sub(before) < 64 * 1024,
            "serve soak leaked: RSS {before} KiB -> {after} KiB"
        );
    }
    // Each run's live set came back to (near) zero: the checksum plus
    // the final iteration's garbage at most.
    assert!(
        max_live < mem_used / 100,
        "soak live set did not return to baseline: {max_live} of {mem_used}"
    );
    format!(
        "{{\"requests\": {SOAK_REQUESTS}, \"workers\": 4, \"throughput_rps\": {:.0}, \
         \"mem_used_per_request\": {mem_used}, \"min_collections\": {min_collections}, \
         \"max_live_bytes\": {max_live}, \"rss_before_kb\": {}, \"rss_after_kb\": {}}}",
        SOAK_REQUESTS as f64 / elapsed,
        rss_before.map_or(-1i64, |v| v as i64),
        rss_after.map_or(-1i64, |v| v as i64)
    )
}

/// `Server::shutdown` takes `self` by value; this helper lets the bench
/// drop an `Arc`'d server gracefully once all clients have joined.
trait ShutdownArc {
    fn shutdown_arc(self);
}

impl ShutdownArc for Arc<Server> {
    fn shutdown_arc(self) {
        if let Some(server) = Arc::into_inner(self) {
            server.shutdown();
        }
    }
}
