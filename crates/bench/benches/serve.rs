//! Load-generator benchmark for `genus-serve`: client-observed latency
//! (p50/p99) and throughput across worker-pool sizes, cache temperatures,
//! and engines — including `engine: "auto"` hotness promotion through
//! the tiers. Writes a machine-readable summary to `BENCH_serve.json` at
//! the repository root.
//!
//! Not a criterion harness: the interesting quantities are tail latency
//! under concurrent load and end-to-end throughput of the scheduler +
//! program cache + engines, which a single-threaded `b.iter` cannot
//! express. One client thread per in-flight request timestamps its own
//! submit→response round trip, so queueing delay counts — the number a
//! real caller would see.

use genus_serve::{EngineKind, Outcome, Request, Response, ServeConfig, Server};
use std::sync::Arc;
use std::time::Instant;

/// Requests per scenario: enough for a stable p99 at these run times
/// without making the cold-cache scenarios compile-bound for minutes.
const REQUESTS: usize = 64;

/// Distinct program shapes for the cold scenarios (each compiles once).
const PROGRAMS: usize = 16;

/// A small dispatch-heavy program, parameterized so distinct seeds are
/// distinct cache entries. Prelude-only: the cold scenarios measure the
/// service pipeline, not stdlib checking.
fn src(seed: usize) -> String {
    format!(
        "constraint Ord[T] {{ boolean T.before(T other); }}
         model IntOrd for Ord[int] {{
           boolean before(int other) {{ return this < other; }}
         }}
         int count[T](T[] xs, T p) where Ord[T] {{
           int n = 0;
           for (int i = 0; i < xs.length; i = i + 1) {{
             if (xs[i].before(p)) {{ n = n + 1; }}
           }}
           return n;
         }}
         int main() {{
           int[] xs = new int[256];
           for (int i = 0; i < 256; i = i + 1) {{ xs[i] = (i * 7919 + {seed}) % 997; }}
           int s = 0;
           for (int r = 0; r < 40; r = r + 1) {{ s = s + count[int with IntOrd](xs, 500); }}
           return s;
         }}"
    )
}

fn request(id: usize, seed: usize, engine: EngineKind) -> Request {
    let mut req = Request::new(format!("r{id}"), src(seed));
    req.engine = engine;
    req.stdlib = false;
    req.limits.fuel = Some(genus_serve::DEFAULT_FUEL);
    req
}

struct Measured {
    p50_us: f64,
    p99_us: f64,
    throughput_rps: f64,
    engines: Vec<&'static str>,
}

/// Fires `reqs` concurrently (one client thread each), returning the
/// client-observed latency distribution and aggregate throughput.
fn drive(server: &Arc<Server>, reqs: Vec<Request>) -> Measured {
    let n = reqs.len();
    let wall = Instant::now();
    let handles: Vec<_> = reqs
        .into_iter()
        .map(|req| {
            let server = Arc::clone(server);
            std::thread::spawn(move || {
                let start = Instant::now();
                let resp: Response = server.submit(req).recv().expect("response");
                assert!(
                    matches!(resp.outcome, Outcome::Ok(_)),
                    "bench request failed: {}",
                    resp.to_json_line()
                );
                (start.elapsed().as_secs_f64() * 1e6, resp.engine.name())
            })
        })
        .collect();
    let mut lat = Vec::with_capacity(n);
    let mut engines = Vec::with_capacity(n);
    for h in handles {
        let (us, engine) = h.join().expect("client thread");
        lat.push(us);
        engines.push(engine);
    }
    let elapsed = wall.elapsed().as_secs_f64();
    lat.sort_by(f64::total_cmp);
    Measured {
        p50_us: lat[n / 2],
        p99_us: lat[((n as f64 * 0.99) as usize).min(n - 1)],
        throughput_rps: n as f64 / elapsed,
        engines,
    }
}

/// Counts how each response resolved its engine (interesting for
/// `engine: "auto"`, where the mix shows the promotion ladder).
fn engine_mix(engines: &[&'static str]) -> String {
    let count = |k: &str| engines.iter().filter(|e| **e == k).count();
    format!(
        "{{\"ast\": {}, \"vm\": {}, \"jit\": {}}}",
        count("ast"),
        count("vm"),
        count("jit")
    )
}

fn row(key: &str, workers: usize, cache: &str, engine: &str, m: &Measured, extra: &str) -> String {
    format!(
        "    \"{key}\": {{\"workers\": {workers}, \"cache\": \"{cache}\", \"engine\": \"{engine}\", \
         \"p50_us\": {:.0}, \"p99_us\": {:.0}, \"throughput_rps\": {:.0}{extra}}}",
        m.p50_us, m.p99_us, m.throughput_rps
    )
}

fn main() {
    let mut rows = Vec::new();
    for workers in [1usize, 4, 16] {
        // Cold: a fresh server, 64 requests over 16 distinct programs —
        // compiles dominate, and racing requests on the same fresh
        // source exercise the one-compile-per-program guarantee.
        let server = Arc::new(Server::new(ServeConfig {
            workers,
            ..ServeConfig::default()
        }));
        let cold = drive(
            &server,
            (0..REQUESTS)
                .map(|i| request(i, i % PROGRAMS, EngineKind::Vm))
                .collect(),
        );
        assert_eq!(server.cache_stats().compiles as usize, PROGRAMS);
        rows.push(row(
            &format!("w{workers}_cold_vm"),
            workers,
            "cold",
            "vm",
            &cold,
            "",
        ));

        // Hot: the same sources again on the warmed cache — pure
        // execution + scheduling, zero compiles.
        let hot = drive(
            &server,
            (0..REQUESTS)
                .map(|i| request(REQUESTS + i, i % PROGRAMS, EngineKind::Vm))
                .collect(),
        );
        rows.push(row(
            &format!("w{workers}_hot_vm"),
            workers,
            "hot",
            "vm",
            &hot,
            "",
        ));

        // Hot + Tier 2: same warmed cache, explicit jit engine. The
        // first wave pays one tier compile per program; steady state is
        // closure-tree execution.
        let hot_jit = drive(
            &server,
            (0..REQUESTS)
                .map(|i| request(2 * REQUESTS + i, i % PROGRAMS, EngineKind::Jit))
                .collect(),
        );
        assert_eq!(server.cache_stats().tier_compiles as usize, PROGRAMS);
        rows.push(row(
            &format!("w{workers}_hot_jit"),
            workers,
            "hot",
            "jit",
            &hot_jit,
            "",
        ));
        server.shutdown_arc();

        // Promotion: a fresh server hammered with ONE source under
        // `engine: "auto"` — the entry climbs AST → VM → Tier 2 as its
        // invocation count crosses the thresholds, with exactly one
        // tier compile. The engine mix records the ladder.
        let server = Arc::new(Server::new(ServeConfig {
            workers,
            ..ServeConfig::default()
        }));
        let auto = drive(
            &server,
            (0..REQUESTS)
                .map(|i| request(i, 0, EngineKind::Auto))
                .collect(),
        );
        let stats = server.cache_stats();
        assert_eq!(stats.tier_compiles, 1, "exactly one promotion tier compile");
        rows.push(row(
            &format!("w{workers}_auto_promotion"),
            workers,
            "cold",
            "auto",
            &auto,
            &format!(
                ", \"tier_compiles\": {}, \"engine_mix\": {}",
                stats.tier_compiles,
                engine_mix(&auto.engines)
            ),
        ));
        server.shutdown_arc();
    }
    let soak = soak_row();
    let json = format!(
        "{{\n  \"bench\": \"serve_load\",\n  \"requests_per_scenario\": {REQUESTS},\n  \"distinct_programs\": {PROGRAMS},\n  \"scenarios\": {{\n{}\n  }},\n  \"soak\": {soak}\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    eprintln!("wrote {path}");
    print!("{json}");
}

/// Requests in the GC soak scenario.
const SOAK_REQUESTS: usize = 1000;

/// An allocation-churn request: each run allocates a few megabytes of
/// short-lived arrays and objects, keeping only an int checksum live.
fn soak_src() -> String {
    "class Node {
       int v;
       Node(int v) { this.v = v; }
     }
     int main() {
       int s = 0;
       for (int i = 0; i < 5000; i = i + 1) {
         int[] a = new int[64];
         a[0] = i;
         Node n = new Node(i);
         s = s + a[0] - n.v + 1;
       }
       return s;
     }"
    .to_string()
}

/// Resident-set size in KiB from `/proc/self/statm` (Linux; `None`
/// elsewhere, which skips the flatness assertion but still reports the
/// per-request heap stats).
fn rss_kb() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(pages * 4096 / 1024)
}

/// The memory soak: 1000 allocation-churn requests through one server.
/// Every run gets a fresh per-execution heap that dies with its engine,
/// so process RSS must stay flat while the requests churn gigabytes in
/// aggregate — the response-level stats prove each run's collector did
/// the reclamation (collections > 0, live set back near zero) and the
/// RSS delta proves nothing leaks across requests.
fn soak_row() -> String {
    let server = Arc::new(Server::new(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    }));
    let rss_before = rss_kb();
    let wall = Instant::now();
    let mut max_live = 0u64;
    let mut min_collections = u64::MAX;
    let mut mem_used = 0u64;
    // Sequential waves keep peak concurrency at the worker count, so the
    // RSS measurement prices per-request cleanup, not queue depth.
    for wave in 0..(SOAK_REQUESTS / 50) {
        let reqs: Vec<Request> = (0..50)
            .map(|i| {
                let mut req = Request::new(format!("soak{}", wave * 50 + i), soak_src());
                req.stdlib = false;
                req.limits.fuel = Some(genus_serve::DEFAULT_FUEL);
                req
            })
            .collect();
        for resp in server.run_batch(reqs) {
            assert!(
                matches!(resp.outcome, Outcome::Ok(_)),
                "soak request failed: {}",
                resp.to_json_line()
            );
            assert!(resp.collections > 0, "soak run never collected");
            max_live = max_live.max(resp.live_bytes);
            min_collections = min_collections.min(resp.collections);
            mem_used = resp.mem_used;
        }
    }
    let elapsed = wall.elapsed().as_secs_f64();
    let rss_after = rss_kb();
    server.shutdown_arc();
    // Flatness: ~3 GiB churned in aggregate must not move RSS by more
    // than a small constant (allocator slack, cache growth).
    if let (Some(before), Some(after)) = (rss_before, rss_after) {
        assert!(
            after.saturating_sub(before) < 64 * 1024,
            "serve soak leaked: RSS {before} KiB -> {after} KiB"
        );
    }
    // Each run's live set came back to (near) zero: the checksum plus
    // the final iteration's garbage at most.
    assert!(
        max_live < mem_used / 100,
        "soak live set did not return to baseline: {max_live} of {mem_used}"
    );
    format!(
        "{{\"requests\": {SOAK_REQUESTS}, \"workers\": 4, \"throughput_rps\": {:.0}, \
         \"mem_used_per_request\": {mem_used}, \"min_collections\": {min_collections}, \
         \"max_live_bytes\": {max_live}, \"rss_before_kb\": {}, \"rss_after_kb\": {}}}",
        SOAK_REQUESTS as f64 / elapsed,
        rss_before.map_or(-1i64, |v| v as i64),
        rss_after.map_or(-1i64, |v| v as i64)
    )
}

/// `Server::shutdown` takes `self` by value; this helper lets the bench
/// drop an `Arc`'d server gracefully once all clients have joined.
trait ShutdownArc {
    fn shutdown_arc(self);
}

impl ShutdownArc for Arc<Server> {
    fn shutdown_arc(self) {
        if let Some(server) = Arc::into_inner(self) {
            server.shutdown();
        }
    }
}
