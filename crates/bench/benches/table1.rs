//! Criterion benchmark regenerating the paper's Table 1 (§8.3): the same
//! insertion sort compiled three ways (Java erasure+boxing, Genus
//! homogeneous translation with model objects, Genus specialized), over the
//! twelve data-structure × genericity configurations.
//!
//! Absolute numbers differ from the paper's JVM measurements; the *shape*
//! (who wins, by roughly what factor) is the reproduced result. Run
//! `cargo run --release --example table1_report` for the paper-style table.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use genus_translate::workload::random_doubles;
use genus_translate::{genus, java, specialized};
use std::rc::Rc;

const N: usize = 2000;

fn bench_group(c: &mut Criterion) {
    let input = random_doubles(N, 0xC0FFEE);
    let dm: Rc<dyn genus::ComparableModel> = Rc::new(genus::DoubleModel);
    let bm: Rc<dyn genus::ComparableModel> = Rc::new(genus::BoxedDoubleModel);

    let mut g = c.benchmark_group("table1");

    // ---- Non-generic -------------------------------------------------
    g.bench_function("nongeneric/double[]/java+genus", |b| {
        b.iter_batched(
            || input.clone(),
            |mut v| java::sort_double_array(&mut v),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("nongeneric/Double[]/java+genus", |b| {
        b.iter_batched(
            || java::BoxedArray::from_values(&input),
            |mut v| java::sort_boxed_array(&mut v.data),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("nongeneric/ArrayList[double]/genus", |b| {
        b.iter_batched(
            || genus::GenusArrayList::from_values(dm.clone(), &input),
            |mut l| genus::sort_list_nongeneric(&mut l),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("nongeneric/ArrayList[Double]/java", |b| {
        b.iter_batched(
            || java::JArrayList::from_values(&input),
            |mut l| java::sort_arraylist(&mut l),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("nongeneric/ArrayList[Double]/genus", |b| {
        b.iter_batched(
            || genus::GenusArrayList::from_values(bm.clone(), &input),
            |mut l| genus::sort_list_nongeneric(&mut l),
            BatchSize::SmallInput,
        )
    });

    // ---- Generic: Comparable[T] ---------------------------------------
    g.bench_function("comparable/double[]/genus", |b| {
        b.iter_batched(
            || {
                let mut a = genus::ObjectModel::new_array(&genus::DoubleModel, N);
                for (i, v) in input.iter().enumerate() {
                    genus::ObjectModel::array_set(
                        &genus::DoubleModel,
                        &mut a,
                        i,
                        genus::GValue::D(*v),
                    );
                }
                a
            },
            |mut a| genus::sort_array_generic(&mut a, &genus::DoubleModel),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("comparable/Double[]/java", |b| {
        b.iter_batched(
            || java::BoxedArray::from_values(&input),
            |mut v| java::sort_generic_comparable(&mut v.data),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("comparable/ArrayList[double]/genus", |b| {
        b.iter_batched(
            || genus::GenusArrayList::from_values(dm.clone(), &input),
            |mut l| genus::sort_list_generic(&mut l),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("comparable/ArrayList[Double]/java", |b| {
        b.iter_batched(
            || java::JArrayList::from_values(&input),
            |mut l| java::sort_generic_comparable_list(&mut l),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("comparable/ArrayList[Double]/genus", |b| {
        b.iter_batched(
            || genus::GenusArrayList::from_values(bm.clone(), &input),
            |mut l| genus::sort_list_generic(&mut l),
            BatchSize::SmallInput,
        )
    });

    // ---- Generic: ArrayLike[A,T], Comparable[T] ------------------------
    g.bench_function("arraylike/ArrayList[double]/genus", |b| {
        b.iter_batched(
            || genus::GenusArrayList::from_values(dm.clone(), &input),
            |mut l| {
                genus::sort_arraylike_generic(
                    &mut l,
                    &genus::ArrayListAsArrayLike,
                    &genus::DoubleModel,
                )
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("arraylike/ArrayList[Double]/java", |b| {
        b.iter_batched(
            || java::JArrayList::from_values(&input),
            |mut l| java::sort_generic_arraylike(&mut l),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("arraylike/ArrayList[Double]/genus", |b| {
        b.iter_batched(
            || genus::GenusArrayList::from_values(bm.clone(), &input),
            |mut l| {
                genus::sort_arraylike_generic(
                    &mut l,
                    &genus::ArrayListAsArrayLike,
                    &genus::BoxedDoubleModel,
                )
            },
            BatchSize::SmallInput,
        )
    });

    // ---- Specialized (the bracketed column) and the C-style baseline ---
    g.bench_function("specialized/double[]", |b| {
        b.iter_batched(
            || input.clone(),
            |mut v| specialized::sort_slice(&mut v),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("specialized/ArrayList[double]", |b| {
        b.iter_batched(
            || specialized::SpecArrayList::from_values(input.clone()),
            |mut l| specialized::sort_list(&mut l),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("specialized/ArrayList[Double]", |b| {
        b.iter_batched(
            || {
                specialized::SpecArrayList::from_values(
                    input.iter().map(|v| Rc::new(*v)).collect::<Vec<_>>(),
                )
            },
            |mut l| specialized::sort_list(&mut l),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("baseline/double[]", |b| {
        b.iter_batched(
            || input.clone(),
            |mut v| specialized::sort_baseline(&mut v),
            BatchSize::SmallInput,
        )
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_group
}
criterion_main!(benches);
