//! Compiler benchmarks: front-end throughput and default model resolution
//! cost, including the recursive-resolution depth sweep that motivates the
//! termination restriction (§4.7, §9).

use criterion::{criterion_group, criterion_main, Criterion};
use genus::Compiler;

fn bench_check_stdlib(c: &mut Criterion) {
    let mut g = c.benchmark_group("compiler");
    g.sample_size(10);
    g.bench_function("check_stdlib", |b| {
        b.iter(|| {
            Compiler::new()
                .with_stdlib()
                .source("m.genus", "void main() { }")
                .compile()
                .expect("stdlib checks")
        })
    });
    // The incremental counterpart: a warm session re-checking after a
    // one-token body edit to the user unit. The stdlib's parses and
    // verdicts are reused, so the delta against `check_stdlib` is the
    // payoff of the content-hash-keyed pipeline.
    g.bench_function("session_warm_recheck_stdlib", |b| {
        let mut s = genus::CompileSession::with_stdlib();
        s.update_source("m.genus", "int main() { return 1; }");
        assert!(!s.check().has_errors());
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let src = if flip {
                "int main() { return 2; }"
            } else {
                "int main() { return 1; }"
            };
            s.update_source("m.genus", src);
            s.check()
        })
    });
    g.bench_function("parse_and_check_small", |b| {
        b.iter(|| {
            Compiler::new()
                .source(
                    "m.genus",
                    "constraint Ring[T] { static T T.zero(); T T.plus(T that); }
                     T sum[T](T[] xs) where Ring[T] {
                       T acc = T.zero();
                       for (T x : xs) { acc = acc.plus(x); }
                       return acc;
                     }
                     double main() {
                       double[] xs = new double[3];
                       xs[0] = 1.0; xs[1] = 2.0; xs[2] = 3.0;
                       return sum(xs);
                     }",
                )
                .compile()
                .expect("program checks")
        })
    });
    g.finish();
}

/// Builds a program whose default model resolution must recurse `depth`
/// times through a parameterized `use` declaration: cloning
/// `ArrayList[ArrayList[...[Pt]...]]`.
fn nested_clone_program(depth: usize) -> String {
    let mut ty = "Pt".to_string();
    for _ in 0..depth {
        ty = format!("ArrayList[{ty}]");
    }
    format!(
        "class Pt {{
           int x;
           Pt(int x) {{ this.x = x; }}
           Pt clone() {{ return new Pt(x); }}
         }}
         model ALDC[E] for Cloneable[ArrayList[E]] where Cloneable[E] {{
           ArrayList[E] clone() {{
             ArrayList[E] l = new ArrayList[E]();
             for (E e : this) {{ l.add(e.clone()); }}
             return l;
           }}
         }}
         use ALDC;
         void main() {{
           {ty} x = null;
           // The declaration below forces resolution of Cloneable[{ty}],
           // which recurses down to Cloneable[Pt].
           cloneIt(x);
         }}
         void cloneIt[T](T t) where Cloneable[T] {{ }}"
    )
}

fn bench_recursive_resolution(c: &mut Criterion) {
    let mut g = c.benchmark_group("resolution_depth");
    g.sample_size(10);
    for depth in [1usize, 4, 8, 16] {
        let src = nested_clone_program(depth);
        g.bench_function(format!("depth_{depth}"), |b| {
            b.iter(|| {
                Compiler::new()
                    .with_stdlib()
                    .source("m.genus", src.as_str())
                    .compile()
                    .expect("resolves")
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_check_stdlib, bench_recursive_resolution
}
criterion_main!(benches);
