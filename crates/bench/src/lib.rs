//! Benchmark support crate: see `benches/` for the Criterion harnesses that
//! regenerate the paper's Table 1 and the ablation studies.
