//! Workload generation for the sorting benchmark.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic pseudo-random doubles in `[0, 1)`.
pub fn random_doubles(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen::<f64>()).collect()
}

/// Checks that a slice is sorted ascending.
pub fn is_sorted(v: &[f64]) -> bool {
    v.windows(2).all(|w| w[0] <= w[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(random_doubles(16, 7), random_doubles(16, 7));
        assert_ne!(random_doubles(16, 7), random_doubles(16, 8));
    }

    #[test]
    fn sorted_check() {
        assert!(is_sorted(&[1.0, 2.0, 2.0, 3.0]));
        assert!(!is_sorted(&[2.0, 1.0]));
    }
}
