//! The Table 1 harness: every row of the paper's performance table,
//! regenerated over the three strategy implementations.

use crate::workload::random_doubles;
use crate::{genus, java, specialized};
use std::rc::Rc;
use std::time::Instant;

/// The genericity level of the sort (the three row groups of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Genericity {
    /// Non-generic sort written directly against the data structure.
    NonGeneric,
    /// Generic in the element: `sort[T](...) where Comparable[T]`.
    Comparable,
    /// Generic in the element *and* the container:
    /// `where ArrayLike[A,T], Comparable[T]`.
    ArrayLike,
}

impl Genericity {
    /// Display label matching the paper.
    pub fn label(&self) -> &'static str {
        match self {
            Genericity::NonGeneric => "Non-generic sort",
            Genericity::Comparable => "Generic sort: Comparable[T]",
            Genericity::ArrayLike => "Generic sort: ArrayLike[A,T], Comparable[T]",
        }
    }
}

/// The data structure being sorted (the four rows in each group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Structure {
    /// `double[]`.
    DoubleArray,
    /// `Double[]`.
    BoxedArray,
    /// `ArrayList[double]` (Genus only: Java has no primitive type args).
    ArrayListDouble,
    /// `ArrayList[Double]`.
    ArrayListBoxed,
}

impl Structure {
    /// Display label matching the paper.
    pub fn label(&self) -> &'static str {
        match self {
            Structure::DoubleArray => "double[]",
            Structure::BoxedArray => "Double[]",
            Structure::ArrayListDouble => "ArrayList[double]",
            Structure::ArrayListBoxed => "ArrayList[Double]",
        }
    }
}

/// One measured cell: seconds per strategy (`None` where the language
/// cannot express the configuration).
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Java translation time.
    pub java: Option<f64>,
    /// Genus homogeneous-translation time.
    pub genus: Option<f64>,
    /// Genus specialized time (the bracketed entries).
    pub specialized: Option<f64>,
}

/// One row of the table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row group.
    pub genericity: Genericity,
    /// Data structure.
    pub structure: Structure,
    /// Measurements.
    pub cell: Cell,
}

/// The whole regenerated table.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Elements sorted per measurement.
    pub n: usize,
    /// The C-like monomorphic baseline, for the caption.
    pub baseline: f64,
    /// All twelve rows, in paper order.
    pub rows: Vec<Row>,
}

fn time_med<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

/// Runs the full table with `n` elements and `reps` repetitions per cell
/// (the paper used 100k elements and 10 runs; insertion sort is O(n²)
/// uniformly across strategies, so ratios are size-invariant).
pub fn run_table1(n: usize, reps: usize) -> Table1 {
    let input = random_doubles(n, 0xC0FFEE);
    let dm: Rc<dyn genus::ComparableModel> = Rc::new(genus::DoubleModel);
    let bm: Rc<dyn genus::ComparableModel> = Rc::new(genus::BoxedDoubleModel);

    let mk_f64_arr = || {
        let mut a = genus::ObjectModel::new_array(&genus::DoubleModel, n);
        for (i, v) in input.iter().enumerate() {
            genus::ObjectModel::array_set(&genus::DoubleModel, &mut a, i, genus::GValue::D(*v));
        }
        a
    };
    let mk_ref_arr = || {
        let mut a = genus::ObjectModel::new_array(&genus::BoxedDoubleModel, n);
        for (i, v) in input.iter().enumerate() {
            genus::ObjectModel::array_set(
                &genus::BoxedDoubleModel,
                &mut a,
                i,
                genus::GValue::D(*v),
            );
        }
        a
    };

    let baseline = time_med(reps, || {
        let mut v = input.clone();
        specialized::sort_baseline(&mut v);
        std::hint::black_box(&v);
    });

    let mut rows = Vec::new();
    let mut push = |g: Genericity, s: Structure, cell: Cell| {
        rows.push(Row {
            genericity: g,
            structure: s,
            cell,
        });
    };

    // ---- Non-generic sorts -------------------------------------------
    push(
        Genericity::NonGeneric,
        Structure::DoubleArray,
        Cell {
            java: Some(time_med(reps, || {
                let mut v = input.clone();
                java::sort_double_array(&mut v);
                std::hint::black_box(&v);
            })),
            // Non-generic Genus code translates exactly like Java here.
            genus: Some(time_med(reps, || {
                let mut v = input.clone();
                java::sort_double_array(&mut v);
                std::hint::black_box(&v);
            })),
            specialized: Some(baseline),
        },
    );
    push(
        Genericity::NonGeneric,
        Structure::BoxedArray,
        Cell {
            java: Some(time_med(reps, || {
                let mut v = java::BoxedArray::from_values(&input);
                java::sort_boxed_array(&mut v.data);
                std::hint::black_box(&v);
            })),
            genus: Some(time_med(reps, || {
                let mut v = java::BoxedArray::from_values(&input);
                java::sort_boxed_array(&mut v.data);
                std::hint::black_box(&v);
            })),
            specialized: Some(time_med(reps, || {
                let mut v: Vec<Rc<f64>> = input.iter().map(|x| Rc::new(*x)).collect();
                specialized::sort_slice(&mut v);
                std::hint::black_box(&v);
            })),
        },
    );
    push(
        Genericity::NonGeneric,
        Structure::ArrayListDouble,
        Cell {
            java: None, // Java cannot say ArrayList<double>.
            genus: Some(time_med(reps, || {
                let mut l = genus::GenusArrayList::from_values(dm.clone(), &input);
                genus::sort_list_nongeneric(&mut l);
                std::hint::black_box(&l);
            })),
            specialized: Some(time_med(reps, || {
                let mut l = specialized::SpecArrayList::from_values(input.clone());
                specialized::sort_list(&mut l);
                std::hint::black_box(&l);
            })),
        },
    );
    push(
        Genericity::NonGeneric,
        Structure::ArrayListBoxed,
        Cell {
            java: Some(time_med(reps, || {
                let mut l = java::JArrayList::from_values(&input);
                java::sort_arraylist(&mut l);
                std::hint::black_box(&l);
            })),
            genus: Some(time_med(reps, || {
                let mut l = genus::GenusArrayList::from_values(bm.clone(), &input);
                genus::sort_list_nongeneric(&mut l);
                std::hint::black_box(&l);
            })),
            specialized: Some(time_med(reps, || {
                let v: Vec<Rc<f64>> = input.iter().map(|x| Rc::new(*x)).collect();
                let mut l = specialized::SpecArrayList::from_values(v);
                specialized::sort_list(&mut l);
                std::hint::black_box(&l);
            })),
        },
    );

    // ---- Generic: Comparable[T] --------------------------------------
    push(
        Genericity::Comparable,
        Structure::DoubleArray,
        Cell {
            java: None,
            genus: Some(time_med(reps, || {
                let mut a = mk_f64_arr();
                genus::sort_array_generic(&mut a, &genus::DoubleModel);
                std::hint::black_box(&a);
            })),
            specialized: Some(time_med(reps, || {
                let mut v = input.clone();
                specialized::sort_slice(&mut v);
                std::hint::black_box(&v);
            })),
        },
    );
    push(
        Genericity::Comparable,
        Structure::BoxedArray,
        Cell {
            java: Some(time_med(reps, || {
                let mut v = java::BoxedArray::from_values(&input);
                java::sort_generic_comparable(&mut v.data);
                std::hint::black_box(&v);
            })),
            genus: Some(time_med(reps, || {
                let mut a = mk_ref_arr();
                genus::sort_array_generic(&mut a, &genus::BoxedDoubleModel);
                std::hint::black_box(&a);
            })),
            specialized: Some(time_med(reps, || {
                let mut v: Vec<Rc<f64>> = input.iter().map(|x| Rc::new(*x)).collect();
                specialized::sort_slice(&mut v);
                std::hint::black_box(&v);
            })),
        },
    );
    push(
        Genericity::Comparable,
        Structure::ArrayListDouble,
        Cell {
            java: None,
            genus: Some(time_med(reps, || {
                let mut l = genus::GenusArrayList::from_values(dm.clone(), &input);
                genus::sort_list_generic(&mut l);
                std::hint::black_box(&l);
            })),
            specialized: Some(time_med(reps, || {
                let mut l = specialized::SpecArrayList::from_values(input.clone());
                specialized::sort_list(&mut l);
                std::hint::black_box(&l);
            })),
        },
    );
    push(
        Genericity::Comparable,
        Structure::ArrayListBoxed,
        Cell {
            java: Some(time_med(reps, || {
                let mut l = java::JArrayList::from_values(&input);
                java::sort_generic_comparable_list(&mut l);
                std::hint::black_box(&l);
            })),
            genus: Some(time_med(reps, || {
                let mut l = genus::GenusArrayList::from_values(bm.clone(), &input);
                genus::sort_list_generic(&mut l);
                std::hint::black_box(&l);
            })),
            specialized: Some(time_med(reps, || {
                let v: Vec<Rc<f64>> = input.iter().map(|x| Rc::new(*x)).collect();
                let mut l = specialized::SpecArrayList::from_values(v);
                specialized::sort_list(&mut l);
                std::hint::black_box(&l);
            })),
        },
    );

    // ---- Generic: ArrayLike[A,T], Comparable[T] -----------------------
    push(
        Genericity::ArrayLike,
        Structure::DoubleArray,
        Cell {
            java: None,
            genus: Some(time_med(reps, || {
                let mut a = mk_f64_arr();
                genus::sort_raw_arraylike_generic(&mut a, &genus::DoubleModel);
                std::hint::black_box(&a);
            })),
            specialized: Some(time_med(reps, || {
                let mut v = input.clone();
                specialized::sort_slice(&mut v);
                std::hint::black_box(&v);
            })),
        },
    );
    push(
        Genericity::ArrayLike,
        Structure::BoxedArray,
        Cell {
            java: Some(time_med(reps, || {
                let mut v = java::BoxedArray::from_values(&input);
                java::sort_generic_arraylike(&mut v);
                std::hint::black_box(&v);
            })),
            genus: Some(time_med(reps, || {
                let mut a = mk_ref_arr();
                genus::sort_raw_arraylike_generic(&mut a, &genus::BoxedDoubleModel);
                std::hint::black_box(&a);
            })),
            specialized: Some(time_med(reps, || {
                let mut v: Vec<Rc<f64>> = input.iter().map(|x| Rc::new(*x)).collect();
                specialized::sort_slice(&mut v);
                std::hint::black_box(&v);
            })),
        },
    );
    push(
        Genericity::ArrayLike,
        Structure::ArrayListDouble,
        Cell {
            java: None,
            genus: Some(time_med(reps, || {
                let mut l = genus::GenusArrayList::from_values(dm.clone(), &input);
                genus::sort_arraylike_generic(
                    &mut l,
                    &genus::ArrayListAsArrayLike,
                    &genus::DoubleModel,
                );
                std::hint::black_box(&l);
            })),
            specialized: Some(time_med(reps, || {
                let mut l = specialized::SpecArrayList::from_values(input.clone());
                specialized::sort_list(&mut l);
                std::hint::black_box(&l);
            })),
        },
    );
    push(
        Genericity::ArrayLike,
        Structure::ArrayListBoxed,
        Cell {
            java: Some(time_med(reps, || {
                let mut l = java::JArrayList::from_values(&input);
                java::sort_generic_arraylike(&mut l);
                std::hint::black_box(&l);
            })),
            genus: Some(time_med(reps, || {
                let mut l = genus::GenusArrayList::from_values(bm.clone(), &input);
                genus::sort_arraylike_generic(
                    &mut l,
                    &genus::ArrayListAsArrayLike,
                    &genus::BoxedDoubleModel,
                );
                std::hint::black_box(&l);
            })),
            specialized: Some(time_med(reps, || {
                let v: Vec<Rc<f64>> = input.iter().map(|x| Rc::new(*x)).collect();
                let mut l = specialized::SpecArrayList::from_values(v);
                specialized::sort_list(&mut l);
                std::hint::black_box(&l);
            })),
        },
    );

    Table1 { n, baseline, rows }
}

impl Table1 {
    /// Renders the table in the paper's layout (times in milliseconds,
    /// specialized entries bracketed).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Table 1: Java vs Genus insertion sort, n = {} (times in ms; [spec.] = specialized)\n",
            self.n
        ));
        out.push_str(&format!(
            "{:<44} {:>12} {:>20}\n",
            "data structure", "Java (ms)", "Genus (ms) [spec.]"
        ));
        let ms = |s: f64| s * 1e3;
        let mut last_group: Option<Genericity> = None;
        for row in &self.rows {
            if last_group != Some(row.genericity) {
                out.push_str(&format!("-- {}\n", row.genericity.label()));
                last_group = Some(row.genericity);
            }
            let java = match row.cell.java {
                Some(t) => format!("{:.2}", ms(t)),
                None => "—".to_string(),
            };
            let genus = match (row.cell.genus, row.cell.specialized) {
                (Some(g), Some(s)) => format!("{:.2} [{:.2}]", ms(g), ms(s)),
                (Some(g), None) => format!("{:.2}", ms(g)),
                _ => "—".to_string(),
            };
            out.push_str(&format!(
                "{:<44} {:>12} {:>20}\n",
                row.structure.label(),
                java,
                genus
            ));
        }
        out.push_str(&format!(
            "monomorphic baseline (paper's C entry): {:.2} ms\n",
            ms(self.baseline)
        ));
        out
    }

    /// Finds a row.
    pub fn cell(&self, g: Genericity, s: Structure) -> Option<&Cell> {
        self.rows
            .iter()
            .find(|r| r.genericity == g && r.structure == s)
            .map(|r| &r.cell)
    }

    /// Checks the qualitative *shape* claims of §8.3 against the measured
    /// data, returning a human-readable report and whether all hold:
    ///
    /// 1. specialization is never slower than the homogeneous translation;
    /// 2. unboxed (`double`) storage beats boxed (`Double`) storage within
    ///    Genus at each genericity level;
    /// 3. fully-generic (ArrayLike) Genus is slower than non-generic Genus
    ///    on the same structure (genericity has a cost without
    ///    specialization);
    /// 4. specialized Genus on `double[]` is within noise of the
    ///    monomorphic baseline.
    pub fn shape_report(&self) -> (String, bool) {
        let mut report = String::new();
        let mut ok = true;
        let mut check = |name: &str, cond: bool, detail: String| {
            report.push_str(&format!(
                "{} {name}: {detail}\n",
                if cond { "PASS" } else { "FAIL" }
            ));
            if !cond {
                ok = false;
            }
        };
        for row in &self.rows {
            if let (Some(g), Some(s)) = (row.cell.genus, row.cell.specialized) {
                check(
                    "specialization-helps",
                    s <= g * 1.15,
                    format!(
                        "{} / {}: genus {:.3}ms vs spec {:.3}ms",
                        row.genericity.label(),
                        row.structure.label(),
                        g * 1e3,
                        s * 1e3
                    ),
                );
            }
        }
        for g in [
            Genericity::NonGeneric,
            Genericity::Comparable,
            Genericity::ArrayLike,
        ] {
            let prim = self
                .cell(g, Structure::ArrayListDouble)
                .and_then(|c| c.genus);
            let boxed = self
                .cell(g, Structure::ArrayListBoxed)
                .and_then(|c| c.genus);
            if let (Some(p), Some(b)) = (prim, boxed) {
                check(
                    "unboxed-beats-boxed",
                    p <= b,
                    format!(
                        "{}: ArrayList[double] {:.3}ms vs ArrayList[Double] {:.3}ms",
                        g.label(),
                        p * 1e3,
                        b * 1e3
                    ),
                );
            }
        }
        let ng = self
            .cell(Genericity::NonGeneric, Structure::ArrayListDouble)
            .and_then(|c| c.genus);
        let al = self
            .cell(Genericity::ArrayLike, Structure::ArrayListDouble)
            .and_then(|c| c.genus);
        if let (Some(a), Some(b)) = (ng, al) {
            check(
                "genericity-costs",
                a <= b * 1.10,
                format!(
                    "ArrayList[double]: non-generic {:.3}ms vs fully generic {:.3}ms",
                    a * 1e3,
                    b * 1e3
                ),
            );
        }
        let spec_da = self
            .cell(Genericity::Comparable, Structure::DoubleArray)
            .and_then(|c| c.specialized);
        if let Some(s) = spec_da {
            check(
                "specialized-near-baseline",
                s <= self.baseline * 2.0,
                format!(
                    "spec double[] {:.3}ms vs baseline {:.3}ms",
                    s * 1e3,
                    self.baseline * 1e3
                ),
            );
        }
        (report, ok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_twelve_rows_and_renders() {
        let t = run_table1(400, 3);
        assert_eq!(t.rows.len(), 12);
        let rendered = t.render();
        assert!(rendered.contains("ArrayList[double]"));
        assert!(rendered.contains("—"));
        // Java column blank exactly where Java cannot express the cell.
        let blank = t
            .rows
            .iter()
            .filter(|r| r.cell.java.is_none())
            .map(|r| (r.genericity, r.structure))
            .collect::<Vec<_>>();
        assert!(blank.contains(&(Genericity::NonGeneric, Structure::ArrayListDouble)));
        assert!(blank.contains(&(Genericity::Comparable, Structure::DoubleArray)));
    }

    #[test]
    fn shape_mostly_holds_even_at_small_n() {
        // At tiny n the timings are noisy; this only smoke-tests that the
        // report machinery works, not that every claim holds.
        let t = run_table1(300, 3);
        let (report, _ok) = t.shape_report();
        assert!(report.contains("unboxed-beats-boxed"));
    }
}
