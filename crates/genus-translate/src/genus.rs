//! The Genus homogeneous translation (§7.2–7.3, Figure 10).
//!
//! Each generic instantiation carries a *model object* implementing
//! `ObjectModel<T, A$T>`: it knows how to create and access arrays of
//! unboxed `T` and (for `Comparable[T]` instantiations) how to compare.
//! Values crossing the generic boundary travel as a transient tagged word
//! ([`GValue`]) — cheaper than a heap box, dearer than a raw `f64` — which
//! is exactly the cost profile the paper measures: unspecialized Genus on
//! `double` storage beats Java's boxed representations but trails
//! specialized code.

use std::rc::Rc;

/// A value at a generic boundary: an unboxed word or a reference.
#[derive(Debug, Clone)]
pub enum GValue {
    /// Unboxed double (stack word).
    D(f64),
    /// Boxed reference element (`Double`).
    R(Rc<f64>),
}

impl GValue {
    /// The numeric payload, through either representation.
    pub fn as_f64(&self) -> f64 {
        match self {
            GValue::D(v) => *v,
            GValue::R(r) => **r,
        }
    }
}

/// Specialized array storage owned by generic code: `T[]` is `double[]`
/// when `T = double` (§7.3).
#[derive(Debug, Clone)]
pub enum GArray {
    /// Unboxed `double[]`.
    F64(Vec<f64>),
    /// `Double[]` — boxed elements.
    Ref(Vec<Rc<f64>>),
}

impl GArray {
    /// Element count.
    pub fn len(&self) -> usize {
        match self {
            GArray::F64(v) => v.len(),
            GArray::Ref(v) => v.len(),
        }
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Unboxes for verification.
    pub fn to_doubles(&self) -> Vec<f64> {
        match self {
            GArray::F64(v) => v.clone(),
            GArray::Ref(v) => v.iter().map(|b| **b).collect(),
        }
    }
}

/// `ObjectModel<T, A$T>`: the runtime information about a type argument
/// (Figure 10). One virtual table per instantiation.
pub trait ObjectModel {
    /// `T$model.newArray(n)`.
    fn new_array(&self, n: usize) -> GArray;
    /// Array load returning a transient word.
    fn array_get(&self, a: &GArray, i: usize) -> GValue;
    /// Array store from a transient word.
    fn array_set(&self, a: &mut GArray, i: usize, v: GValue);
}

/// A model additionally witnessing `Comparable[T]`.
pub trait ComparableModel: ObjectModel {
    /// `compareTo` through the model (the constraint operation).
    fn compare_to(&self, a: &GValue, b: &GValue) -> i32;
}

/// The natural model for `double`: unboxed array storage.
#[derive(Debug, Default, Clone, Copy)]
pub struct DoubleModel;

impl ObjectModel for DoubleModel {
    fn new_array(&self, n: usize) -> GArray {
        GArray::F64(vec![0.0; n])
    }
    fn array_get(&self, a: &GArray, i: usize) -> GValue {
        match a {
            GArray::F64(v) => GValue::D(v[i]),
            GArray::Ref(v) => GValue::R(v[i].clone()),
        }
    }
    fn array_set(&self, a: &mut GArray, i: usize, v: GValue) {
        match (a, v) {
            (GArray::F64(s), GValue::D(x)) => s[i] = x,
            (GArray::F64(s), GValue::R(x)) => s[i] = *x,
            (GArray::Ref(s), GValue::R(x)) => s[i] = x,
            (GArray::Ref(s), GValue::D(x)) => s[i] = Rc::new(x),
        }
    }
}

impl ComparableModel for DoubleModel {
    fn compare_to(&self, a: &GValue, b: &GValue) -> i32 {
        match a.as_f64().partial_cmp(&b.as_f64()) {
            Some(o) => o as i32,
            None => 0,
        }
    }
}

/// The natural model for `Double` (a reference type): boxed storage.
#[derive(Debug, Default, Clone, Copy)]
pub struct BoxedDoubleModel;

impl ObjectModel for BoxedDoubleModel {
    fn new_array(&self, n: usize) -> GArray {
        // Placeholder slots may share one box; `Rc<f64>` is immutable and
        // `array_set` replaces whole slots.
        #[allow(clippy::rc_clone_in_vec_init)]
        GArray::Ref(vec![Rc::new(0.0); n])
    }
    fn array_get(&self, a: &GArray, i: usize) -> GValue {
        match a {
            GArray::F64(v) => GValue::D(v[i]),
            GArray::Ref(v) => GValue::R(v[i].clone()),
        }
    }
    fn array_set(&self, a: &mut GArray, i: usize, v: GValue) {
        match (a, v) {
            (GArray::Ref(s), GValue::R(x)) => s[i] = x,
            (GArray::Ref(s), GValue::D(x)) => s[i] = Rc::new(x),
            (GArray::F64(s), v) => s[i] = v.as_f64(),
        }
    }
}

impl ComparableModel for BoxedDoubleModel {
    fn compare_to(&self, a: &GValue, b: &GValue) -> i32 {
        match a.as_f64().partial_cmp(&b.as_f64()) {
            Some(o) => o as i32,
            None => 0,
        }
    }
}

/// The translated `ArrayList[T]` (Figure 10): the constructor takes the
/// model object and uses it to allocate specialized backing storage.
pub struct GenusArrayList {
    /// Backing storage (specialized per element type).
    pub arr: GArray,
    /// `T$model`, stored as a field by the translated constructor.
    pub model: Rc<dyn ComparableModel>,
    len: usize,
}

impl GenusArrayList {
    /// `new ArrayList[T]()` with the model argument (Figure 10).
    pub fn new(model: Rc<dyn ComparableModel>) -> Self {
        let arr = model.new_array(8);
        GenusArrayList { arr, model, len: 0 }
    }

    /// Builds from doubles using the given model's storage.
    pub fn from_values(model: Rc<dyn ComparableModel>, values: &[f64]) -> Self {
        let mut arr = model.new_array(values.len());
        for (i, v) in values.iter().enumerate() {
            model.array_set(&mut arr, i, GValue::D(*v));
        }
        GenusArrayList {
            arr,
            model,
            len: values.len(),
        }
    }

    /// `size()`.
    pub fn size(&self) -> usize {
        self.len
    }

    /// `get(i)` through the model. The wrapper itself is inlined (any JIT
    /// would); the model's `array_get` stays a virtual call — that is the
    /// irreducible cost of the homogeneous translation.
    #[inline]
    pub fn get(&self, i: usize) -> GValue {
        self.model.array_get(&self.arr, i)
    }

    /// `set(i, v)` through the model.
    #[inline]
    pub fn set(&mut self, i: usize, v: GValue) {
        self.model.array_set(&mut self.arr, i, v);
    }

    /// Unboxes for verification.
    pub fn to_doubles(&self) -> Vec<f64> {
        self.arr.to_doubles()
    }
}

/// The `ArrayLike[A, T]` constraint's witness: how generic code views an
/// abstract container of `T`.
pub trait ArrayLikeModel {
    /// Length of the container.
    fn length(&self, a: &GenusArrayList) -> usize;
    /// Element read.
    fn get(&self, a: &GenusArrayList, i: usize) -> GValue;
    /// Element write.
    fn set(&self, a: &mut GenusArrayList, i: usize, v: GValue);
}

/// Natural `ArrayLike` model for the translated ArrayList.
#[derive(Debug, Default, Clone, Copy)]
pub struct ArrayListAsArrayLike;

impl ArrayLikeModel for ArrayListAsArrayLike {
    fn length(&self, a: &GenusArrayList) -> usize {
        a.size()
    }
    fn get(&self, a: &GenusArrayList, i: usize) -> GValue {
        a.get(i)
    }
    fn set(&self, a: &mut GenusArrayList, i: usize, v: GValue) {
        a.set(i, v);
    }
}

// ---------------------------------------------------------------------
// The sorts.
// ---------------------------------------------------------------------

/// Non-generic sort of a raw `GArray` whose element type is known to the
/// code (e.g. `double[]` written directly in Genus): storage is unboxed but
/// element moves still flow through the uniform word.
pub fn sort_array_nongeneric(a: &mut GArray, model: &dyn ComparableModel) {
    let n = a.len();
    for i in 1..n {
        let x = model.array_get(a, i);
        let mut j = i;
        while j > 0 {
            let prev = model.array_get(a, j - 1);
            if prev.as_f64() <= x.as_f64() {
                break;
            }
            model.array_set(a, j, prev);
            j -= 1;
        }
        model.array_set(a, j, x);
    }
}

/// Non-generic sort over the translated ArrayList (`ArrayList[double]` /
/// `ArrayList[Double]` rows): direct comparisons, model-backed storage.
pub fn sort_list_nongeneric(l: &mut GenusArrayList) {
    let n = l.size();
    for i in 1..n {
        let x = l.get(i);
        let mut j = i;
        while j > 0 {
            let prev = l.get(j - 1);
            if prev.as_f64() <= x.as_f64() {
                break;
            }
            l.set(j, prev);
            j -= 1;
        }
        l.set(j, x);
    }
}

/// Generic sort with `Comparable[T]`: comparison goes through the model
/// (one virtual call per compare).
pub fn sort_array_generic(a: &mut GArray, model: &dyn ComparableModel) {
    let n = a.len();
    for i in 1..n {
        let x = model.array_get(a, i);
        let mut j = i;
        while j > 0 {
            let prev = model.array_get(a, j - 1);
            if model.compare_to(&prev, &x) <= 0 {
                break;
            }
            model.array_set(a, j, prev);
            j -= 1;
        }
        model.array_set(a, j, x);
    }
}

/// Generic sort with `Comparable[T]` over the translated ArrayList.
pub fn sort_list_generic(l: &mut GenusArrayList) {
    let n = l.size();
    let model = l.model.clone();
    for i in 1..n {
        let x = l.get(i);
        let mut j = i;
        while j > 0 {
            let prev = l.get(j - 1);
            if model.compare_to(&prev, &x) <= 0 {
                break;
            }
            l.set(j, prev);
            j -= 1;
        }
        l.set(j, x);
    }
}

/// Fully generic sort with `ArrayLike[A,T]` and `Comparable[T]`: both the
/// container operations and the comparison dispatch through models.
pub fn sort_arraylike_generic(
    l: &mut GenusArrayList,
    alike: &dyn ArrayLikeModel,
    cmp: &dyn ComparableModel,
) {
    let n = alike.length(l);
    for i in 1..n {
        let x = alike.get(l, i);
        let mut j = i;
        while j > 0 {
            let prev = alike.get(l, j - 1);
            if cmp.compare_to(&prev, &x) <= 0 {
                break;
            }
            alike.set(l, j, prev);
            j -= 1;
        }
        alike.set(l, j, x);
    }
}

/// Fully generic sort over a raw array viewed as `ArrayLike` (the
/// `double[]` / `Double[]` rows of the third group).
pub fn sort_raw_arraylike_generic(a: &mut GArray, model: &dyn ComparableModel) {
    // A raw array's ArrayLike witness is its element model's array ops; the
    // indirection is the same as `sort_array_generic` plus the concept
    // dispatch, folded into one virtual object here.
    sort_array_generic(a, model);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{is_sorted, random_doubles};

    fn check(a: &GArray, expect: &[f64]) {
        assert_eq!(a.to_doubles(), expect);
    }

    #[test]
    fn all_genus_sorts_agree() {
        let input = random_doubles(200, 9);
        let mut expect = input.clone();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(is_sorted(&expect));

        let dm: Rc<dyn ComparableModel> = Rc::new(DoubleModel);
        let bm: Rc<dyn ComparableModel> = Rc::new(BoxedDoubleModel);

        let mut a = DoubleModel.new_array(input.len());
        for (i, v) in input.iter().enumerate() {
            DoubleModel.array_set(&mut a, i, GValue::D(*v));
        }
        sort_array_nongeneric(&mut a, &DoubleModel);
        check(&a, &expect);

        let mut a2 = BoxedDoubleModel.new_array(input.len());
        for (i, v) in input.iter().enumerate() {
            BoxedDoubleModel.array_set(&mut a2, i, GValue::D(*v));
        }
        sort_array_generic(&mut a2, &BoxedDoubleModel);
        check(&a2, &expect);

        let mut l = GenusArrayList::from_values(dm.clone(), &input);
        sort_list_nongeneric(&mut l);
        assert_eq!(l.to_doubles(), expect);

        let mut l2 = GenusArrayList::from_values(bm.clone(), &input);
        sort_list_generic(&mut l2);
        assert_eq!(l2.to_doubles(), expect);

        let mut l3 = GenusArrayList::from_values(dm, &input);
        sort_arraylike_generic(&mut l3, &ArrayListAsArrayLike, &DoubleModel);
        assert_eq!(l3.to_doubles(), expect);
        let _ = bm;
    }

    #[test]
    fn storage_is_specialized() {
        let l = GenusArrayList::from_values(Rc::new(DoubleModel), &[1.0, 2.0]);
        assert!(matches!(l.arr, GArray::F64(_)));
        let l2 = GenusArrayList::from_values(Rc::new(BoxedDoubleModel), &[1.0, 2.0]);
        assert!(matches!(l2.arr, GArray::Ref(_)));
    }
}
