//! Executable models of the code-generation strategies compared in the
//! paper's performance evaluation (§7, §8.3, Table 1).
//!
//! The paper's Table 1 compares *compilation strategies*, not algorithms:
//! the same insertion sort is generated three ways —
//!
//! * **Java translation** ([`java`]): erasure with uniform boxing. Every
//!   element is a heap reference; generic code sees `Object` and calls
//!   `compareTo` through an interface; `Double[]` stores boxed values.
//! * **Genus homogeneous translation** ([`genus`]): the model object
//!   (`ObjectModel<T, A$T>`, Figure 10) travels with the instantiation and
//!   provides *unboxed* primitive array storage (§7.3). Values crossing
//!   generic boundaries use a transient tagged word, not a heap box.
//! * **Genus specialized** ([`specialized`]): instantiations are compiled
//!   to monomorphic code (the bracketed entries of Table 1), plus the
//!   C-baseline sort.
//!
//! [`table1`] drives all three over the paper's twelve data-structure ×
//! genericity configurations and reports the same rows.

pub mod genus;
pub mod java;
pub mod specialized;
pub mod table1;
pub mod workload;

pub use table1::{run_table1, Cell, Genericity, Row, Structure, Table1};
