//! The Java 5 translation strategy: erasure with uniform boxing.
//!
//! Generic code sees elements as opaque heap references and invokes
//! `compareTo` through an interface (a virtual call). `double[]` is the
//! only unboxed representation Java offers; `Double[]` and
//! `ArrayList<Double>` store one heap allocation per element. Java cannot
//! instantiate generics at primitive types at all, which is why several
//! Table 1 cells are blank in the Java column.

use std::rc::Rc;

/// A boxed `Double` — one heap object per element, as on the JVM.
pub type Boxed = Rc<f64>;

/// The erased `Comparable` interface: dispatching `compareTo` is a virtual
/// call on the receiver.
pub trait JComparable {
    /// Java's `int compareTo(T other)` after erasure.
    fn compare_to(&self, other: &Boxed) -> i32;
}

impl JComparable for f64 {
    fn compare_to(&self, other: &Boxed) -> i32 {
        match self.partial_cmp(other.as_ref()) {
            Some(o) => o as i32,
            None => 0,
        }
    }
}

/// Erased `ArrayList<Double>`.
#[derive(Debug, Default, Clone)]
pub struct JArrayList {
    data: Vec<Boxed>,
}

impl JArrayList {
    /// Creates a list from boxed elements.
    pub fn from_values(values: &[f64]) -> Self {
        JArrayList {
            data: values.iter().map(|v| Rc::new(*v)).collect(),
        }
    }

    /// `size()`.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// `get(i)` — a virtual call returning a boxed element.
    #[inline(never)]
    pub fn get(&self, i: usize) -> Boxed {
        self.data[i].clone()
    }

    /// `set(i, v)`.
    #[inline(never)]
    pub fn set(&mut self, i: usize, v: Boxed) {
        self.data[i] = v;
    }

    /// Copies out to plain doubles (for verification).
    pub fn to_doubles(&self) -> Vec<f64> {
        self.data.iter().map(|b| **b).collect()
    }
}

/// The erased `ArrayLike<A, T>` concept as a Java interface: generic code
/// manipulates the container through virtual calls.
pub trait JArrayLike {
    /// Element count.
    fn length(&self) -> usize;
    /// Boxed element read.
    fn aget(&self, i: usize) -> Boxed;
    /// Boxed element write.
    fn aset(&mut self, i: usize, v: Boxed);
}

impl JArrayLike for JArrayList {
    fn length(&self) -> usize {
        self.size()
    }
    fn aget(&self, i: usize) -> Boxed {
        self.get(i)
    }
    fn aset(&mut self, i: usize, v: Boxed) {
        self.set(i, v);
    }
}

/// `Double[]` viewed through `ArrayLike`.
#[derive(Debug, Default, Clone)]
pub struct BoxedArray {
    /// The boxed elements.
    pub data: Vec<Boxed>,
}

impl BoxedArray {
    /// Boxes a slice of doubles.
    pub fn from_values(values: &[f64]) -> Self {
        BoxedArray {
            data: values.iter().map(|v| Rc::new(*v)).collect(),
        }
    }

    /// Unboxes for verification.
    pub fn to_doubles(&self) -> Vec<f64> {
        self.data.iter().map(|b| **b).collect()
    }
}

impl JArrayLike for BoxedArray {
    fn length(&self) -> usize {
        self.data.len()
    }
    fn aget(&self, i: usize) -> Boxed {
        self.data[i].clone()
    }
    fn aset(&mut self, i: usize, v: Boxed) {
        self.data[i] = v;
    }
}

// ---------------------------------------------------------------------
// The sorts. The algorithm is identical in every strategy; only the
// genericity level differs (Table 1 row groups).
// ---------------------------------------------------------------------

/// Non-generic sort over `double[]` — the only unboxed case Java has.
pub fn sort_double_array(v: &mut [f64]) {
    for i in 1..v.len() {
        let x = v[i];
        let mut j = i;
        while j > 0 && v[j - 1] > x {
            v[j] = v[j - 1];
            j -= 1;
        }
        v[j] = x;
    }
}

/// Non-generic sort over `Double[]`: boxed loads/stores, unboxed compares.
pub fn sort_boxed_array(v: &mut [Boxed]) {
    for i in 1..v.len() {
        let x = v[i].clone();
        let mut j = i;
        while j > 0 && *v[j - 1] > *x {
            v[j] = v[j - 1].clone();
            j -= 1;
        }
        v[j] = x;
    }
}

/// Non-generic sort over `ArrayList<Double>`: virtual `get`/`set`, boxed
/// elements.
pub fn sort_arraylist(l: &mut JArrayList) {
    let n = l.size();
    for i in 1..n {
        let x = l.get(i);
        let mut j = i;
        while j > 0 && *l.get(j - 1) > *x {
            let moved = l.get(j - 1);
            l.set(j, moved);
            j -= 1;
        }
        l.set(j, x);
    }
}

/// Generic sort with a `Comparable<T>` bound: elements are erased
/// references, comparison is a virtual interface call.
pub fn sort_generic_comparable(v: &mut [Boxed]) {
    for i in 1..v.len() {
        let x = v[i].clone();
        let mut j = i;
        while j > 0 && JComparable::compare_to(&*v[j - 1], &x) > 0 {
            v[j] = v[j - 1].clone();
            j -= 1;
        }
        v[j] = x;
    }
}

/// Generic sort with `Comparable<T>` over `ArrayList<T>`: erased container
/// methods plus interface-dispatch comparison.
pub fn sort_generic_comparable_list(l: &mut JArrayList) {
    let n = l.size();
    for i in 1..n {
        let x = l.get(i);
        let mut j = i;
        while j > 0 {
            let prev = l.get(j - 1);
            if JComparable::compare_to(&*prev, &x) <= 0 {
                break;
            }
            l.set(j, prev);
            j -= 1;
        }
        l.set(j, x);
    }
}

/// Fully generic sort: both the container (`ArrayLike[A,T]`) and the
/// element (`Comparable[T]`) are abstract; everything is a virtual call on
/// boxed values.
pub fn sort_generic_arraylike(a: &mut dyn JArrayLike) {
    let n = a.length();
    for i in 1..n {
        let x = a.aget(i);
        let mut j = i;
        while j > 0 {
            let prev = a.aget(j - 1);
            if JComparable::compare_to(&*prev, &x) <= 0 {
                break;
            }
            a.aset(j, prev);
            j -= 1;
        }
        a.aset(j, x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{is_sorted, random_doubles};

    #[test]
    fn all_java_sorts_agree() {
        let input = random_doubles(200, 42);
        let mut plain = input.clone();
        sort_double_array(&mut plain);
        assert!(is_sorted(&plain));

        let mut boxed = BoxedArray::from_values(&input);
        sort_boxed_array(&mut boxed.data);
        assert_eq!(boxed.to_doubles(), plain);

        let mut l = JArrayList::from_values(&input);
        sort_arraylist(&mut l);
        assert_eq!(l.to_doubles(), plain);

        let mut g = BoxedArray::from_values(&input);
        sort_generic_comparable(&mut g.data);
        assert_eq!(g.to_doubles(), plain);

        let mut gl = JArrayList::from_values(&input);
        sort_generic_comparable_list(&mut gl);
        assert_eq!(gl.to_doubles(), plain);

        let mut al = JArrayList::from_values(&input);
        sort_generic_arraylike(&mut al);
        assert_eq!(al.to_doubles(), plain);

        let mut ba = BoxedArray::from_values(&input);
        sort_generic_arraylike(&mut ba);
        assert_eq!(ba.to_doubles(), plain);
    }
}
