//! The specialization strategy (the bracketed Table 1 entries): each
//! instantiation is compiled to monomorphic code. "The design of Genus
//! makes it straightforward to implement particular instantiations with
//! specialized code" (§7.3) — in Rust, monomorphization gives exactly this.

use std::rc::Rc;

/// The monomorphic baseline (the paper's C number): insertion sort on a raw
/// `double[]`.
pub fn sort_baseline(v: &mut [f64]) {
    for i in 1..v.len() {
        let x = v[i];
        let mut j = i;
        while j > 0 && v[j - 1] > x {
            v[j] = v[j - 1];
            j -= 1;
        }
        v[j] = x;
    }
}

/// Element trait for the specialized generic sort; monomorphized away.
pub trait Elem: Clone {
    /// Total-order comparison.
    fn cmp_elem(&self, other: &Self) -> i32;
    /// Numeric payload for verification.
    fn payload(&self) -> f64;
}

impl Elem for f64 {
    #[inline]
    fn cmp_elem(&self, other: &Self) -> i32 {
        match self.partial_cmp(other) {
            Some(o) => o as i32,
            None => 0,
        }
    }
    fn payload(&self) -> f64 {
        *self
    }
}

impl Elem for Rc<f64> {
    #[inline]
    fn cmp_elem(&self, other: &Self) -> i32 {
        match (**self).partial_cmp(&**other) {
            Some(o) => o as i32,
            None => 0,
        }
    }
    fn payload(&self) -> f64 {
        **self
    }
}

/// Specialized `ArrayList[T]`: inline, unboxed storage for `T = double`.
#[derive(Debug, Clone, Default)]
pub struct SpecArrayList<T> {
    data: Vec<T>,
}

impl<T: Elem> SpecArrayList<T> {
    /// Builds from elements.
    pub fn from_values(values: Vec<T>) -> Self {
        SpecArrayList { data: values }
    }

    /// `size()`.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// `get(i)` — inlined after specialization.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        self.data[i].clone()
    }

    /// `set(i, v)`.
    #[inline]
    pub fn set(&mut self, i: usize, v: T) {
        self.data[i] = v;
    }

    /// Payloads for verification.
    pub fn to_doubles(&self) -> Vec<f64> {
        self.data.iter().map(Elem::payload).collect()
    }
}

/// Specialized generic sort over a slice — monomorphized per element type.
pub fn sort_slice<T: Elem>(v: &mut [T]) {
    for i in 1..v.len() {
        let x = v[i].clone();
        let mut j = i;
        while j > 0 && v[j - 1].cmp_elem(&x) > 0 {
            v[j] = v[j - 1].clone();
            j -= 1;
        }
        v[j] = x;
    }
}

/// Specialized generic sort over the specialized ArrayList.
pub fn sort_list<T: Elem>(l: &mut SpecArrayList<T>) {
    let n = l.size();
    for i in 1..n {
        let x = l.get(i);
        let mut j = i;
        while j > 0 {
            let prev = l.get(j - 1);
            if prev.cmp_elem(&x) <= 0 {
                break;
            }
            l.set(j, prev);
            j -= 1;
        }
        l.set(j, x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{is_sorted, random_doubles};

    #[test]
    fn specialized_sorts_agree() {
        let input = random_doubles(200, 3);
        let mut expect = input.clone();
        sort_baseline(&mut expect);
        assert!(is_sorted(&expect));

        let mut s = input.clone();
        sort_slice(&mut s);
        assert_eq!(s, expect);

        let mut b: Vec<Rc<f64>> = input.iter().map(|v| Rc::new(*v)).collect();
        sort_slice(&mut b);
        assert_eq!(b.iter().map(|x| **x).collect::<Vec<_>>(), expect);

        let mut l = SpecArrayList::from_values(input.clone());
        sort_list(&mut l);
        assert_eq!(l.to_doubles(), expect);

        let mut lb =
            SpecArrayList::from_values(input.iter().map(|v| Rc::new(*v)).collect::<Vec<_>>());
        sort_list(&mut lb);
        assert_eq!(lb.to_doubles(), expect);
    }
}
