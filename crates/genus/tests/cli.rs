//! End-to-end tests for the `genus` CLI binary: tiered exit codes,
//! `--error-format` selection, warnings on successful runs, and the
//! machine-readable JSON mode round-tripping through a JSON parser.

use genus::json;
use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_genus"))
}

/// Writes `src` under the target tmp dir and returns its path.
fn source_file(name: &str, src: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("create tmpdir");
    let path = dir.join(name);
    std::fs::write(&path, src).expect("write source");
    path
}

fn run_cli(args: &[&str], file: &PathBuf) -> Output {
    bin()
        .args(args)
        .arg(file)
        .output()
        .expect("spawn genus binary")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).expect("utf-8 stderr")
}

#[test]
fn success_exits_zero() {
    let f = source_file("ok.genus", "int main() { return 21 * 2; }");
    let out = run_cli(&["run"], &f);
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
    assert_eq!(String::from_utf8_lossy(&out.stdout), "=> 42\n");
}

#[test]
fn compile_errors_exit_one() {
    let f = source_file("bad.genus", "int main() { return undefined_var; }");
    let out = run_cli(&["run"], &f);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr_of(&out);
    // Human format is the CLI default: snippet with carets.
    assert!(err.contains("error[E0502]"), "{err}");
    assert!(err.contains("^^^"), "{err}");
}

#[test]
fn runtime_traps_exit_three() {
    let f = source_file(
        "trap.genus",
        "int main() { int[] a = new int[2]; return a[5]; }",
    );
    let out = run_cli(&["run"], &f);
    assert_eq!(out.status.code(), Some(3));
    assert!(
        stderr_of(&out).contains("error[R0003]"),
        "{}",
        stderr_of(&out)
    );
}

#[test]
fn usage_and_io_errors_exit_two() {
    let out = bin().output().expect("spawn");
    assert_eq!(out.status.code(), Some(2), "no arguments is a usage error");
    let out = bin()
        .args(["run", "/nonexistent/missing.genus"])
        .output()
        .expect("spawn");
    assert_eq!(
        out.status.code(),
        Some(2),
        "unreadable file is an I/O error"
    );
    let f = source_file("ok2.genus", "int main() { return 0; }");
    let out = run_cli(&["run", "--bogus-flag"], &f);
    assert_eq!(
        out.status.code(),
        Some(2),
        "unknown option is a usage error"
    );
}

#[test]
fn warnings_print_on_success_and_deny_warnings_fails() {
    let f = source_file("warn.genus", "int main() { return 1; int x = 2; }");
    let out = run_cli(&["run", "--error-format=short"], &f);
    assert_eq!(
        out.status.code(),
        Some(0),
        "warnings alone must not fail the run"
    );
    let err = stderr_of(&out);
    assert!(err.contains("warning[W0001]"), "{err}");
    assert_eq!(String::from_utf8_lossy(&out.stdout), "=> 1\n");

    let out = run_cli(&["run", "--deny-warnings"], &f);
    assert_eq!(
        out.status.code(),
        Some(1),
        "--deny-warnings promotes warnings"
    );
}

/// `--error-format=json` emits one JSON object per line, and each line
/// round-trips through a JSON parser with the documented fields intact.
#[test]
fn json_diagnostics_round_trip() {
    let f = source_file("bad_json.genus", "int main() { return undefined_var; }");
    let out = run_cli(&["run", "--error-format=json"], &f);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr_of(&out);
    let mut saw_e0502 = false;
    for line in err.lines() {
        let v = json::parse(line).unwrap_or_else(|e| panic!("bad JSON `{line}`: {e}"));
        let code = v
            .get("code")
            .and_then(json::Json::as_str)
            .expect("code field");
        assert!(code.starts_with('E'), "{code}");
        assert_eq!(
            v.get("severity").and_then(json::Json::as_str),
            Some("error")
        );
        assert!(v.get("message").and_then(json::Json::as_str).is_some());
        let spans = v
            .get("spans")
            .and_then(json::Json::as_arr)
            .expect("spans field");
        let primary = &spans[0];
        assert!(primary.get("file").and_then(json::Json::as_str).is_some());
        assert!(primary.get("line").and_then(json::Json::as_num).is_some());
        assert!(primary.get("col").and_then(json::Json::as_num).is_some());
        saw_e0502 |= code == "E0502";
    }
    assert!(saw_e0502, "expected E0502 among: {err}");
}

/// A runtime trap under `--error-format=json` is machine-readable too.
#[test]
fn json_trap_round_trip() {
    let f = source_file("trap_json.genus", "int main() { int z = 0; return 1 / z; }");
    let out = run_cli(&["run", "--error-format=json"], &f);
    assert_eq!(out.status.code(), Some(3));
    let err = stderr_of(&out);
    let line = err.lines().next().expect("one diagnostic line");
    let v = json::parse(line).unwrap_or_else(|e| panic!("bad JSON `{line}`: {e}"));
    assert_eq!(v.get("code").and_then(json::Json::as_str), Some("R0004"));
    assert_eq!(
        v.get("severity").and_then(json::Json::as_str),
        Some("error")
    );
}

/// `genus run --fuel=N` traps `R0009` with exit tier 3 on both engines.
#[test]
fn run_fuel_flag_traps_r0009() {
    let f = source_file(
        "spin.genus",
        "int main() { int i = 0; while (true) { i = i + 1; } return i; }",
    );
    for engine in ["--engine=ast", "--engine=vm"] {
        let out = run_cli(&["run", engine, "--fuel=20000", "--error-format=short"], &f);
        assert_eq!(out.status.code(), Some(3), "{engine}");
        let err = stderr_of(&out);
        assert!(err.contains("R0009"), "{engine}: {err}");
    }
}

/// `genus run --memory=N` traps `R0010` with exit tier 3.
#[test]
fn run_memory_flag_traps_r0010() {
    let f = source_file(
        "alloc.genus",
        "int main() { int i = 0; while (true) { int[] a = new int[512]; i = i + 1; } return i; }",
    );
    let out = run_cli(&["run", "--memory=50000", "--error-format=short"], &f);
    assert_eq!(out.status.code(), Some(3));
    assert!(stderr_of(&out).contains("R0010"), "{}", stderr_of(&out));
}

/// `genus serve` end to end: JSON-lines in, ordered JSON-lines out, with
/// the default fuel budget stopping a looping request.
#[test]
fn serve_session_over_stdin() {
    use std::io::Write;
    let mut child = bin()
        .args(["serve", "--workers=2", "--fuel=50000"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn genus serve");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(
            concat!(
                r#"{"id": "a", "source": "int main() { println(\"hi\"); return 7; }"}"#,
                "\n",
                r#"{"id": "b", "source": "int main() { while (true) {} return 0; }"}"#,
                "\n",
            )
            .as_bytes(),
        )
        .expect("write requests");
    let out = child.wait_with_output().expect("serve exits at EOF");
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "{stdout}");
    let first = json::parse(lines[0]).expect("response JSON");
    assert_eq!(first.get("id").and_then(json::Json::as_str), Some("a"));
    assert_eq!(
        first.get("outcome").and_then(json::Json::as_str),
        Some("ok")
    );
    assert_eq!(first.get("value").and_then(json::Json::as_str), Some("7"));
    let second = json::parse(lines[1]).expect("response JSON");
    assert_eq!(second.get("id").and_then(json::Json::as_str), Some("b"));
    assert_eq!(
        second.get("code").and_then(json::Json::as_str),
        Some("R0009")
    );
}

/// `genus serve --cache-dir` end to end: the first process compiles and
/// persists bytecode; a restarted process answers the same request from
/// disk; corrupting every artifact on disk degrades to a clean recompile
/// (same answer, no crash) that heals the files. `--metrics-on-start`
/// prints a parseable metrics JSON line at boot.
#[test]
fn serve_cache_dir_persists_restarts_warm_and_survives_corruption() {
    use std::io::Write;
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("serve_cache_dir");
    let _ = std::fs::remove_dir_all(&dir);
    let cache_flag = format!("--cache-dir={}", dir.display());
    let request = concat!(
        r#"{"id": "p", "source": "int main() { int s = 0; for (int i = 0; i < 20; i = i + 1) { s = s + i; } return s; }"}"#,
        "\n",
    );
    let serve_once = || {
        let mut child = bin()
            .args(["serve", "--workers=2", &cache_flag, "--metrics-on-start"])
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .expect("spawn genus serve");
        child
            .stdin
            .take()
            .expect("stdin")
            .write_all(request.as_bytes())
            .expect("write request");
        child.wait_with_output().expect("serve exits at EOF")
    };
    let assert_answer = |out: &Output| {
        assert_eq!(out.status.code(), Some(0), "{}", stderr_of(out));
        let stdout = String::from_utf8(out.stdout.clone()).unwrap();
        let resp = json::parse(stdout.lines().next().expect("one response")).unwrap();
        assert_eq!(resp.get("value").and_then(json::Json::as_str), Some("190"));
        // The boot metrics line is valid JSON with the full schema.
        let err = stderr_of(out);
        let boot = err.lines().next().expect("metrics line");
        let m = json::parse(boot).expect("boot metrics parse");
        assert!(
            m.get("cache").is_some() && m.get("latency").is_some(),
            "{boot}"
        );
        err
    };
    // Cold: compiles, writes artifacts.
    let err = assert_answer(&serve_once());
    assert!(err.contains(" 0 disk hit(s)"), "{err}");
    let artifacts: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("cache dir exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "gbc"))
        .collect();
    assert!(!artifacts.is_empty(), "compiles were persisted");
    // Warm restart: the request (and the stdlib prewarm) are served
    // from disk.
    let err = assert_answer(&serve_once());
    assert!(!err.contains(" 0 disk hit(s)"), "{err}");
    // Corrupt every artifact: still the right answer, zero disk hits.
    for p in &artifacts {
        let bytes = std::fs::read(p).unwrap();
        std::fs::write(p, &bytes[..bytes.len() / 3]).unwrap();
    }
    let err = assert_answer(&serve_once());
    assert!(err.contains(" 0 disk hit(s)"), "{err}");
    // ... and the recompile healed the files for the next restart.
    let err = assert_answer(&serve_once());
    assert!(!err.contains(" 0 disk hit(s)"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `genus batch <dir>`: one stats line per file, sorted, with the trap
/// tier in the exit code when a file exhausts its budget.
#[test]
fn batch_runs_a_directory() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("batch_cli");
    std::fs::create_dir_all(&dir).expect("create batch dir");
    std::fs::write(dir.join("a_ok.genus"), "int main() { return 1; }").unwrap();
    std::fs::write(
        dir.join("b_spin.genus"),
        "int main() { while (true) {} return 0; }",
    )
    .unwrap();
    let out = bin()
        .args(["batch", "--fuel=50000"])
        .arg(&dir)
        .output()
        .expect("spawn genus batch");
    assert_eq!(out.status.code(), Some(3), "{}", stderr_of(&out));
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "{stdout}");
    assert!(
        lines[0].contains("a_ok.genus") && lines[0].contains("ok value=1"),
        "{stdout}"
    );
    assert!(
        lines[1].contains("b_spin.genus") && lines[1].contains("trap R0009"),
        "{stdout}"
    );
}

/// The sessionful protocol end to end: update → check → run through one
/// `genus serve` pipe, with reuse counters on the wire.
#[test]
fn serve_incremental_session_pipeline() {
    use std::io::Write;
    let mut child = bin()
        .args(["serve", "--workers=2"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn genus serve");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(
            concat!(
                r#"{"id": "u1", "session": "dev", "action": "update", "source": "int main() { return 40 + 2; }"}"#,
                "\n",
                r#"{"id": "c1", "session": "dev", "action": "check"}"#,
                "\n",
                r#"{"id": "r1", "session": "dev", "action": "run", "engine": "vm"}"#,
                "\n",
            )
            .as_bytes(),
        )
        .expect("write requests");
    let out = child.wait_with_output().expect("serve exits at EOF");
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "{stdout}");
    let update = json::parse(lines[0]).expect("update response");
    assert_eq!(update.get("id").and_then(json::Json::as_str), Some("u1"));
    assert_eq!(
        update.get("value").and_then(json::Json::as_str),
        Some("updated")
    );
    let check = json::parse(lines[1]).expect("check response");
    assert_eq!(
        check.get("value").and_then(json::Json::as_str),
        Some("checked")
    );
    assert!(
        check
            .get("rechecked")
            .and_then(json::Json::as_num)
            .is_some(),
        "{stdout}"
    );
    let run = json::parse(lines[2]).expect("run response");
    assert_eq!(run.get("value").and_then(json::Json::as_str), Some("42"));
    // Nothing changed between the check and the run: the run's check
    // reused every unit verdict — the incremental evidence on the wire.
    let reused = run
        .get("reused")
        .and_then(json::Json::as_num)
        .expect("reused counter");
    assert!(reused > 0.0, "{stdout}");
    assert_eq!(run.get("rechecked").and_then(json::Json::as_num), Some(0.0));
}

/// `genus check --watch` runs one iteration and exits cleanly at stdin
/// EOF, printing the per-iteration reuse statistics line.
#[test]
fn check_watch_single_iteration() {
    let f = source_file("watch_ok.genus", "int main() { return 5; }");
    let out = bin()
        .args(["check", "--watch"])
        .arg(&f)
        .stdin(std::process::Stdio::null())
        .output()
        .expect("spawn genus check --watch");
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(err.contains("watch: ok"), "{err}");
    assert!(err.contains("re-checked"), "{err}");
    // Errors surface in the exit code at EOF, like plain `genus check`.
    let f = source_file("watch_bad.genus", "int main() { return nope; }");
    let out = bin()
        .args(["check", "--watch", "--error-format=short"])
        .arg(&f)
        .stdin(std::process::Stdio::null())
        .output()
        .expect("spawn genus check --watch");
    assert_eq!(out.status.code(), Some(1), "{}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(err.contains("watch: errors"), "{err}");
    assert!(err.contains("E0502"), "{err}");
}

/// A live watch loop re-checks when the file changes and reuses the
/// stdlib's verdicts across iterations.
#[test]
fn check_watch_recheck_on_change() {
    let f = source_file("watch_live.genus", "int main() { return 1; }");
    let mut child = bin()
        .args(["check", "--watch"])
        .arg(&f)
        .stdin(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn genus check --watch");
    // Let the first iteration land, then make a body-only edit with a
    // bumped mtime.
    std::thread::sleep(std::time::Duration::from_millis(400));
    std::fs::write(&f, "int main() { return 2; }").expect("rewrite source");
    std::thread::sleep(std::time::Duration::from_millis(600));
    // Closing stdin ends the loop.
    drop(child.stdin.take());
    let out = child.wait_with_output().expect("watch exits at EOF");
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
    let err = stderr_of(&out);
    let watch_lines: Vec<&str> = err.lines().filter(|l| l.starts_with("watch:")).collect();
    assert!(watch_lines.len() >= 2, "{err}");
    // The second iteration reused the prelude and stdlib verdicts.
    assert!(
        watch_lines[1..].iter().any(|l| l.contains("5 reused")),
        "{err}"
    );
}
