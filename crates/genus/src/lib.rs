//! Facade for the Genus language implementation: a one-stop compile-and-run
//! pipeline over `genus-syntax`, `genus-check`, `genus-interp`, and the
//! `genus-stdlib` sources.
//!
//! # Examples
//!
//! ```
//! use genus::Compiler;
//!
//! let result = Compiler::new()
//!     .source("demo.genus", "int main() { return 21 * 2; }")
//!     .run()
//!     .unwrap();
//! assert_eq!(result.rendered_value, "42");
//! ```

pub use genus_check::{check_program, hir, CheckedProgram};
pub use genus_common::{Diagnostics, SourceMap};
pub use genus_interp::{DispatchStats, ErrorKind, Interp, RuntimeError, Value};
pub use genus_types::{caches_enabled, set_caches_enabled, CacheStats};

/// Outcome of running a program through [`Compiler::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// `main`'s return value, rendered.
    pub rendered_value: String,
    /// Everything printed by the program.
    pub output: String,
}

/// A builder-style compiler front end.
///
/// Sources are checked together with the built-in prelude and (optionally)
/// the standard library ported from the Java Collections Framework and the
/// FindBugs-style graph library (§8.1, §8.2 of the paper).
#[derive(Debug, Default)]
pub struct Compiler {
    sources: Vec<(String, String)>,
    stdlib: bool,
}

impl Compiler {
    /// Creates an empty compiler.
    pub fn new() -> Self {
        Compiler::default()
    }

    /// Adds a named source file.
    pub fn source(mut self, name: impl Into<String>, src: impl Into<String>) -> Self {
        self.sources.push((name.into(), src.into()));
        self
    }

    /// Includes the Genus standard library (collections + graph).
    pub fn with_stdlib(mut self) -> Self {
        self.stdlib = true;
        self
    }

    /// Type-checks everything and returns the checked program.
    ///
    /// # Errors
    ///
    /// Returns rendered diagnostics on any parse or type error.
    pub fn compile(&self) -> Result<CheckedProgram, String> {
        let mut pairs: Vec<(&str, &str)> = Vec::new();
        if self.stdlib {
            for (name, src) in genus_stdlib::sources() {
                pairs.push((name, src));
            }
        }
        for (name, src) in &self.sources {
            pairs.push((name.as_str(), src.as_str()));
        }
        genus_check::check_sources(&pairs)
    }

    /// Compiles and runs `main()`, returning its value and captured output.
    ///
    /// The program runs on a dedicated thread with a large stack so that
    /// the interpreter's recursion guard — not the native stack — is the
    /// binding limit.
    ///
    /// # Errors
    ///
    /// Returns rendered diagnostics on compile errors, or the runtime error
    /// message.
    pub fn run(&self) -> Result<RunResult, String> {
        let prog = self.compile()?;
        // The program (with its warmed-up query caches) moves onto the
        // interpreter thread; caches use interior mutability and are not
        // shareable across threads, only sendable.
        std::thread::Builder::new()
            .name("genus-interp".to_string())
            .stack_size(256 << 20)
            .spawn(move || {
                let mut interp = Interp::new(&prog);
                let v = interp.run_main().map_err(|e| e.to_string())?;
                Ok(RunResult {
                    rendered_value: format!("{v}"),
                    output: interp.take_output(),
                })
            })
            .expect("spawn interpreter thread")
            .join()
            .expect("interpreter thread panicked")
    }
}

/// Compiles and runs a single source with the standard library available.
///
/// # Errors
///
/// Propagates compile diagnostics or runtime errors as strings.
pub fn run_with_stdlib(src: &str) -> Result<RunResult, String> {
    Compiler::new().with_stdlib().source("main.genus", src).run()
}

/// Compiles and runs a single source with only the prelude.
///
/// # Errors
///
/// Propagates compile diagnostics or runtime errors as strings.
pub fn run_simple(src: &str) -> Result<RunResult, String> {
    Compiler::new().source("main.genus", src).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_runs() {
        let r = run_simple("int main() { println(\"x\"); return 7; }").unwrap();
        assert_eq!(r.rendered_value, "7");
        assert_eq!(r.output, "x\n");
    }

    #[test]
    fn compile_errors_are_reported() {
        let e = run_simple("int main() { return undefinedVariable; }").unwrap_err();
        assert!(e.contains("unknown variable"), "{e}");
    }

    #[test]
    fn stdlib_is_available() {
        let r = run_with_stdlib(
            "int main() {
               ArrayList[int] l = new ArrayList[int]();
               l.add(4); l.add(2);
               return l.get(0) * 10 + l.get(1);
             }",
        )
        .unwrap();
        assert_eq!(r.rendered_value, "42");
    }
}
