//! Facade for the Genus language implementation: a one-stop compile-and-run
//! pipeline over `genus-syntax`, `genus-check`, the two execution engines
//! (`genus-interp`, `genus-vm`), and the `genus-stdlib` sources.
//!
//! # Examples
//!
//! ```
//! use genus::{Compiler, Engine};
//!
//! let result = Compiler::new()
//!     .source("demo.genus", "int main() { return 21 * 2; }")
//!     .run()
//!     .unwrap();
//! assert_eq!(result.rendered_value, "42");
//!
//! // Same program through the bytecode VM:
//! let result = Compiler::new()
//!     .engine(Engine::Vm)
//!     .source("demo.genus", "int main() { return 21 * 2; }")
//!     .run()
//!     .unwrap();
//! assert_eq!(result.rendered_value, "42");
//! ```

pub mod session;

pub use genus_check::{
    check_program, hir, CheckReport, CheckedProgram, SessionReport, SessionStats,
};
pub use genus_common::{
    codes, json, Diagnostic, Diagnostics, ErrorFormat, Severity, SourceMap, Span,
};
pub use genus_interp::{
    DispatchStats, ErrorKind, Interp, Limits, Meter, ResourceStats, RuntimeError, Value,
};
pub use genus_types::{caches_enabled, set_caches_enabled, CacheStats};
pub use genus_vm::{
    compile_optimized, compile_program, compile_tier, OptStats, TierProgram, TierStats, Vm,
    VmProgram,
};
pub use session::CompileSession;

/// Which execution engine runs the program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Engine {
    /// The tree-walking interpreter over HIR. Recurses on the host
    /// stack, so the facade runs it on a dedicated big-stack thread.
    #[default]
    Ast,
    /// The bytecode register VM (`genus-vm`). Keeps Genus frames in an
    /// explicit stack, so it runs on the calling thread.
    Vm,
    /// Tier 2: the optimized bytecode translated once more into nested
    /// Rust closures with pre-resolved operands (`genus-vm`'s `tier`
    /// module) — no fetch/decode loop at run time. Observable behaviour,
    /// including fuel accounting, is identical to [`Engine::Vm`] over
    /// the same bytecode.
    Jit,
}

impl Engine {
    /// Parses an engine name as used by `genus run --engine=<name>`.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Engine> {
        match name {
            "ast" | "interp" => Some(Engine::Ast),
            "vm" | "bytecode" => Some(Engine::Vm),
            "jit" | "tier" => Some(Engine::Jit),
            _ => None,
        }
    }

    /// The canonical CLI name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Engine::Ast => "ast",
            Engine::Vm => "vm",
            Engine::Jit => "jit",
        }
    }
}

/// Outcome of running a program through [`Compiler::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// `main`'s return value, rendered.
    pub rendered_value: String,
    /// Everything printed by the program.
    pub output: String,
}

/// Full outcome of [`Compiler::execute`]: unlike [`Compiler::run`], the
/// captured output and statistics are available even when `main` traps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Execution {
    /// `main`'s rendered return value, or the structured runtime trap
    /// (stable `R0xxx` code + message + optional span).
    pub outcome: Result<String, RuntimeError>,
    /// Everything printed before completion (or before the trap).
    pub output: String,
    /// The engine's dispatch-cache counters for this run.
    pub dispatch_stats: DispatchStats,
    /// The type-level query-cache counters (subtype/prereq/conforms/
    /// resolve), accumulated over checking and execution.
    pub cache_stats: CacheStats,
    /// Bytecode-optimizer counters (specialization, folding, …). `None`
    /// on the AST engine, which has no bytecode to optimize.
    pub opt_stats: Option<OptStats>,
    /// Resources consumed by this run: fuel steps, exact allocated
    /// bytes (see [`Limits`]), plus the heap's live/peak byte counters
    /// and the number of collections. Counted even when no limit is set.
    pub resource_stats: ResourceStats,
    /// Tier-compilation counters. `Some` only on [`Engine::Jit`] — the
    /// anti-vacuity signal for differential tests (a parity claim means
    /// nothing if no function was actually tiered).
    pub tier_stats: Option<TierStats>,
}

/// A builder-style compiler front end.
///
/// Sources are checked together with the built-in prelude and (optionally)
/// the standard library ported from the Java Collections Framework and the
/// FindBugs-style graph library (§8.1, §8.2 of the paper).
#[derive(Debug, Clone)]
pub struct Compiler {
    sources: Vec<(String, String)>,
    stdlib: bool,
    engine: Engine,
    format: ErrorFormat,
    opt_level: u8,
    limits: Limits,
}

impl Default for Compiler {
    fn default() -> Self {
        Compiler {
            sources: Vec::new(),
            stdlib: false,
            engine: Engine::default(),
            format: ErrorFormat::default(),
            opt_level: 2,
            limits: Limits::default(),
        }
    }
}

impl Compiler {
    /// Creates an empty compiler.
    pub fn new() -> Self {
        Compiler::default()
    }

    /// Adds a named source file.
    pub fn source(mut self, name: impl Into<String>, src: impl Into<String>) -> Self {
        self.sources.push((name.into(), src.into()));
        self
    }

    /// Includes the Genus standard library (collections + graph).
    pub fn with_stdlib(mut self) -> Self {
        self.stdlib = true;
        self
    }

    /// Selects the execution engine (default: [`Engine::Ast`]).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the VM's bytecode optimization level (default: 2).
    /// `0` disables the optimizer, `1` runs cleanup and type reification,
    /// `2` adds heterogeneous-translation specialization. Ignored by the
    /// AST engine. Observable behaviour is identical at every level —
    /// only speed and the [`Execution::opt_stats`] counters differ.
    pub fn opt_level(mut self, level: u8) -> Self {
        self.opt_level = level.min(2);
        self
    }

    /// Selects how rendered diagnostics are formatted (default:
    /// [`ErrorFormat::Short`], the classic one-line mode).
    pub fn error_format(mut self, format: ErrorFormat) -> Self {
        self.format = format;
        self
    }

    /// Caps the run at `fuel` execution steps (statements/expressions on
    /// the AST engine, opcodes on the VM). Exhaustion traps with the
    /// stable code `R0009`. Unlimited by default.
    pub fn fuel(mut self, fuel: u64) -> Self {
        self.limits.fuel = Some(fuel);
        self
    }

    /// Caps the run at `bytes` cumulative allocated heap bytes (charged
    /// at object, array, string, and existential-package allocation
    /// sites with exact per-object sizes — see `genus-heap`). Exceeding
    /// the cap traps with the stable code `R0010`. Unlimited by default.
    pub fn memory_limit(mut self, bytes: u64) -> Self {
        self.limits.memory = Some(bytes);
        self
    }

    /// Imposes a wall-clock deadline on the run, measured from when the
    /// engine starts. Missing it traps with `R0009` (deadlines are a
    /// form of fuel). Unlimited by default.
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.limits.deadline_ms = Some(ms);
        self
    }

    /// Installs a full [`Limits`] bundle at once (serve requests).
    pub fn limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// Type-checks everything and returns the structured [`CheckReport`]:
    /// every diagnostic (errors and warnings) with its stable code and
    /// spans, plus the checked program when there were no errors.
    ///
    /// One-shot checks are a cold pass of the incremental session
    /// machinery, seeded with the process-wide stdlib parse memo, so
    /// repeated `check_report` calls re-parse only the user sources.
    pub fn check_report(&self) -> CheckReport {
        let mut session = if self.stdlib {
            CompileSession::with_stdlib()
        } else {
            CompileSession::new()
        };
        for (name, src) in &self.sources {
            session.update_source(name, src);
        }
        session.into_report()
    }

    /// Type-checks everything and returns the checked program.
    ///
    /// # Errors
    ///
    /// Returns diagnostics rendered in the selected
    /// [`error_format`](Compiler::error_format) on any parse or type error.
    pub fn compile(&self) -> Result<CheckedProgram, String> {
        let mut report = self.check_report();
        if report.has_errors() {
            return Err(match self.format {
                ErrorFormat::Short => report.render_errors_short(),
                _ => report.render(self.format),
            });
        }
        Ok(report.program.take().expect("no errors implies a program"))
    }

    /// Compiles and runs `main()` on the selected engine, returning the
    /// full [`Execution`] — outcome, captured output, and statistics —
    /// whether or not the program trapped.
    ///
    /// # Errors
    ///
    /// Returns rendered diagnostics on compile errors. Runtime errors
    /// are reported inside [`Execution::outcome`], not here.
    pub fn execute(&self) -> Result<Execution, String> {
        let prog = self.compile()?;
        Ok(self.execute_checked(prog))
    }

    /// Runs an already-checked program on the selected engine. Useful when
    /// the caller obtained the program via [`Compiler::check_report`] (to
    /// render warnings first) and wants to reuse it.
    pub fn execute_checked(&self, prog: CheckedProgram) -> Execution {
        match self.engine {
            Engine::Ast => execute_ast(prog, self.limits).0,
            Engine::Vm => {
                let code = std::sync::Arc::new(compile_optimized(&prog, self.opt_level));
                execute_vm_shared(&prog, &code, self.limits)
            }
            Engine::Jit => {
                let code = std::sync::Arc::new(compile_optimized(&prog, self.opt_level));
                let tier = compile_tier(&code);
                execute_tier_shared(&prog, &tier, self.limits)
            }
        }
    }

    /// Compiles and runs `main()`, returning its value and captured output.
    ///
    /// # Errors
    ///
    /// Returns rendered diagnostics on compile errors, or the runtime
    /// error message. Output printed before a trap is appended to the
    /// error so it is never silently dropped.
    pub fn run(&self) -> Result<RunResult, String> {
        let ex = self.execute()?;
        finish(ex)
    }

    /// Compiles once, runs `main()` on **all three** engines (AST
    /// interpreter, bytecode VM, closure-compiled Tier 2), and checks
    /// that they agree. Successful runs must agree on the rendered value
    /// and captured output; traps must agree on the **structured** error
    /// — stable `R0xxx` code and span — rather than the exact message
    /// string, so an engine can reword a message without breaking
    /// parity. The VM and Tier 2 run the *same* bytecode, so their fuel
    /// accounting must additionally be **identical**, step for step —
    /// the by-construction guarantee behind R0009/R0010 parity.
    ///
    /// # Errors
    ///
    /// Returns compile diagnostics, the (structurally identical) runtime
    /// error, or a divergence report prefixed with `engine divergence` if
    /// the engines disagree — the backstop assertion of the differential
    /// test suite.
    pub fn run_differential(&self) -> Result<RunResult, String> {
        let prog = self.compile()?;
        let (ast, prog) = execute_ast(prog, self.limits);
        let code = std::sync::Arc::new(compile_optimized(&prog, self.opt_level));
        let vm = execute_vm_shared(&prog, &code, self.limits);
        let tier = compile_tier(&code);
        let jit = execute_tier_shared(&prog, &tier, self.limits);
        let pair_agrees = |a: &Execution, b: &Execution| {
            let outcomes = match (&a.outcome, &b.outcome) {
                (Ok(x), Ok(y)) => x == y,
                // Structured parity: code + span, not message text.
                (Err(x), Err(y)) => x.code() == y.code() && x.span == y.span,
                _ => false,
            };
            outcomes && a.output == b.output
        };
        if !pair_agrees(&ast, &vm) || !pair_agrees(&vm, &jit) {
            return Err(format!(
                "engine divergence:\n  ast outcome: {:?}\n  vm  outcome: {:?}\n  jit outcome: {:?}\n  ast output: {:?}\n  vm  output: {:?}\n  jit output: {:?}",
                ast.outcome, vm.outcome, jit.outcome, ast.output, vm.output, jit.output
            ));
        }
        // Same bytecode ⇒ same step sequence: exact fuel agreement.
        if vm.resource_stats.fuel_used != jit.resource_stats.fuel_used {
            return Err(format!(
                "engine divergence: fuel accounting differs (vm {} vs jit {})",
                vm.resource_stats.fuel_used, jit.resource_stats.fuel_used
            ));
        }
        finish(vm)
    }
}

/// Runs on the tree-walking interpreter. The program (with its warmed-up
/// query caches) moves onto a dedicated thread, and the big stack keeps
/// the interpreter's recursion guard, not the native stack, the binding
/// limit. The program is handed back so callers can reuse the
/// compilation (differential runs).
fn execute_ast(prog: CheckedProgram, limits: Limits) -> (Execution, CheckedProgram) {
    std::thread::Builder::new()
        .name("genus-interp".to_string())
        .stack_size(INTERP_STACK_SIZE)
        .spawn(move || {
            let ex = execute_ast_shared(&prog, limits);
            (ex, prog)
        })
        .expect("spawn interpreter thread")
        .join()
        .expect("interpreter thread panicked")
}

/// How much native stack the AST interpreter needs: each Genus frame
/// costs tens of KiB of host stack in debug builds, so the facade (and
/// the serve worker pool) runs it under a 256 MiB stack.
pub const INTERP_STACK_SIZE: usize = 256 << 20;

/// Runs `main()` on the tree-walking interpreter against a **shared**
/// checked program (the caller is responsible for providing enough
/// native stack — see [`INTERP_STACK_SIZE`]; the facade's big-stack
/// thread or a serve worker both qualify). Cache counters in the result
/// are the delta accumulated during this run, so concurrent runs over
/// one cached program report per-request numbers.
pub fn execute_ast_shared(prog: &CheckedProgram, limits: Limits) -> Execution {
    let cache_base = prog.table.cache.stats();
    let mut interp = Interp::new(prog);
    interp.set_limits(limits);
    let outcome = interp.run_main().map(|v| interp.render(&v));
    Execution {
        outcome,
        resource_stats: interp.resource_stats(),
        output: interp.take_output(),
        dispatch_stats: interp.dispatch_stats(),
        cache_stats: prog.table.cache.stats().since(&cache_base),
        opt_stats: None,
        tier_stats: None,
    }
}

/// Runs `main()` on the bytecode VM over a **shared** compiled program.
/// The VM's dispatch loop keeps the host stack flat, so no dedicated
/// thread is needed; `code` is `Send + Sync` and may be served to many
/// workers at once. Cache counters in the result are the delta
/// accumulated during this run.
pub fn execute_vm_shared(
    prog: &CheckedProgram,
    code: &std::sync::Arc<VmProgram>,
    limits: Limits,
) -> Execution {
    let cache_base = prog.table.cache.stats();
    let opt_stats = Some(code.opt_stats);
    let mut vm = Vm::with_code(prog, std::sync::Arc::clone(code));
    vm.set_limits(limits);
    let outcome = vm.run_main().map(|v| vm.render(&v));
    Execution {
        outcome,
        resource_stats: vm.resource_stats(),
        output: vm.take_output(),
        dispatch_stats: vm.dispatch_stats(),
        cache_stats: prog.table.cache.stats().since(&cache_base),
        opt_stats,
        tier_stats: None,
    }
}

/// Runs `main()` on the closure-compiled Tier 2 over a **shared**
/// [`TierProgram`]. Like the VM, the tier keeps Genus frames in an
/// explicit stack (host stack stays flat) and the compiled closures are
/// `Send + Sync`, so one tier program may be served to many workers at
/// once. Cache counters in the result are the delta accumulated during
/// this run.
pub fn execute_tier_shared(prog: &CheckedProgram, tier: &TierProgram, limits: Limits) -> Execution {
    let cache_base = prog.table.cache.stats();
    let opt_stats = Some(tier.code().opt_stats);
    let mut vm = Vm::with_code(prog, std::sync::Arc::clone(tier.code()));
    vm.set_limits(limits);
    let outcome = vm.run_main_tier(tier).map(|v| vm.render(&v));
    Execution {
        outcome,
        resource_stats: vm.resource_stats(),
        output: vm.take_output(),
        dispatch_stats: vm.dispatch_stats(),
        cache_stats: prog.table.cache.stats().since(&cache_base),
        opt_stats,
        tier_stats: Some(tier.stats),
    }
}

/// Collapses an [`Execution`] into [`Compiler::run`]'s result shape,
/// attaching the stable code and pre-trap output to the error message.
fn finish(ex: Execution) -> Result<RunResult, String> {
    match ex.outcome {
        Ok(rendered_value) => Ok(RunResult {
            rendered_value,
            output: ex.output,
        }),
        Err(e) => {
            let msg = format!("error[{}]: {e}", e.code());
            if ex.output.is_empty() {
                Err(msg)
            } else {
                Err(format!(
                    "{msg}\n--- output before the error ---\n{}",
                    ex.output
                ))
            }
        }
    }
}

/// Compiles and runs a single source with the standard library available.
///
/// # Errors
///
/// Propagates compile diagnostics or runtime errors as strings.
pub fn run_with_stdlib(src: &str) -> Result<RunResult, String> {
    Compiler::new()
        .with_stdlib()
        .source("main.genus", src)
        .run()
}

/// Compiles and runs a single source with only the prelude.
///
/// # Errors
///
/// Propagates compile diagnostics or runtime errors as strings.
pub fn run_simple(src: &str) -> Result<RunResult, String> {
    Compiler::new().source("main.genus", src).run()
}

/// [`run_with_stdlib`], but on both engines with a divergence check.
///
/// # Errors
///
/// Propagates compile diagnostics, runtime errors, or a divergence
/// report as strings.
pub fn run_differential_with_stdlib(src: &str) -> Result<RunResult, String> {
    Compiler::new()
        .with_stdlib()
        .source("main.genus", src)
        .run_differential()
}

/// [`run_simple`], but on both engines with a divergence check.
///
/// # Errors
///
/// Propagates compile diagnostics, runtime errors, or a divergence
/// report as strings.
pub fn run_differential_simple(src: &str) -> Result<RunResult, String> {
    Compiler::new().source("main.genus", src).run_differential()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_runs() {
        let r = run_simple("int main() { println(\"x\"); return 7; }").unwrap();
        assert_eq!(r.rendered_value, "7");
        assert_eq!(r.output, "x\n");
    }

    #[test]
    fn compile_errors_are_reported() {
        let e = run_simple("int main() { return undefinedVariable; }").unwrap_err();
        assert!(e.contains("unknown variable"), "{e}");
    }

    #[test]
    fn stdlib_is_available() {
        let r = run_with_stdlib(
            "int main() {
               ArrayList[int] l = new ArrayList[int]();
               l.add(4); l.add(2);
               return l.get(0) * 10 + l.get(1);
             }",
        )
        .unwrap();
        assert_eq!(r.rendered_value, "42");
    }

    #[test]
    fn vm_engine_runs() {
        let r = Compiler::new()
            .engine(Engine::Vm)
            .source("m.genus", "int main() { println(\"y\"); return 8; }")
            .run()
            .unwrap();
        assert_eq!(r.rendered_value, "8");
        assert_eq!(r.output, "y\n");
    }

    #[test]
    fn output_survives_runtime_errors() {
        for engine in [Engine::Ast, Engine::Vm, Engine::Jit] {
            let ex = Compiler::new()
                .engine(engine)
                .source(
                    "m.genus",
                    "int main() { println(\"before\"); int[] a = new int[1]; return a[3]; }",
                )
                .execute()
                .unwrap();
            assert!(ex.outcome.is_err(), "{engine:?} should trap");
            assert_eq!(ex.output, "before\n", "{engine:?} dropped pre-trap output");
            // And run() carries it inside the error message.
            let e = Compiler::new()
                .engine(engine)
                .source(
                    "m.genus",
                    "int main() { println(\"before\"); int[] a = new int[1]; return a[3]; }",
                )
                .run()
                .unwrap_err();
            assert!(e.contains("before"), "{engine:?}: {e}");
        }
    }

    #[test]
    fn differential_agreement_and_divergence_reporting() {
        let r = run_differential_simple(
            "int main() { int s = 0; for (int i = 0; i < 5; i = i + 1) { s += i; } return s; }",
        )
        .unwrap();
        assert_eq!(r.rendered_value, "10");
        // Identical runtime errors pass through differential runs.
        let e = run_differential_simple("int main() { return 1 % 0; }").unwrap_err();
        assert!(e.contains("% by zero"), "{e}");
        assert!(!e.contains("divergence"), "{e}");
    }

    #[test]
    fn engine_names_round_trip() {
        assert_eq!(Engine::from_name("vm"), Some(Engine::Vm));
        assert_eq!(Engine::from_name("ast"), Some(Engine::Ast));
        assert_eq!(Engine::from_name("jit"), Some(Engine::Jit));
        assert_eq!(Engine::from_name("tier"), Some(Engine::Jit));
        assert_eq!(Engine::from_name("llvm"), None);
        assert_eq!(Engine::Vm.name(), "vm");
        assert_eq!(Engine::Jit.name(), "jit");
    }

    #[test]
    fn jit_engine_runs_and_reports_tier_stats() {
        let ex = Compiler::new()
            .engine(Engine::Jit)
            .source("m.genus", "int main() { println(\"z\"); return 9; }")
            .execute()
            .unwrap();
        assert_eq!(ex.outcome.as_deref(), Ok("9"));
        assert_eq!(ex.output, "z\n");
        let stats = ex.tier_stats.expect("jit engine reports tier stats");
        assert!(stats.funcs_tiered >= 1, "{stats:?}");
    }
}
