//! The `genus` command-line driver: check, run, serve, and batch-run
//! Genus source files.
//!
//! ```console
//! $ genus run program.genus            # compile + execute main()
//! $ genus check program.genus ...      # type-check only
//! $ genus run --no-stdlib tiny.genus   # prelude only
//! $ genus run --engine=vm program.genus  # bytecode VM instead of the AST
//! $ genus run --error-format=json p.genus  # one JSON object per diagnostic
//! $ genus run --stats program.genus    # print cache/dispatch statistics
//! $ genus run --fuel=100000 p.genus    # trap R0009 past the step budget
//! $ genus serve --workers=4            # JSON-lines service on stdin/stdout
//! $ genus serve --listen=127.0.0.1:7878  # ... or over TCP
//! $ genus batch samples/               # run every .genus file in a dir
//! $ genus fuzz --seconds=20 --seed=1   # differential fuzz the engines
//! $ genus fuzz --replay fuzz/crashes/crash-1.genus  # re-run a repro
//! ```
//!
//! Exit codes are tiered so scripts and CI can distinguish failure modes:
//! `0` success, `1` compile errors (or warnings under `--deny-warnings`),
//! `2` usage or I/O errors, `3` runtime trap.

use genus::{CheckReport, Engine, ErrorFormat, Limits};
use genus_serve::{EngineKind, Outcome, Request, ServeConfig, Server, DEFAULT_FUEL};
use std::process::ExitCode;

/// Exit tier for compile errors (and denied warnings).
const EXIT_COMPILE: u8 = 1;
/// Exit tier for usage and I/O errors.
const EXIT_USAGE: u8 = 2;
/// Exit tier for a runtime trap.
const EXIT_TRAP: u8 = 3;

fn usage() -> ! {
    eprintln!(
        "usage: genus <run|check> [options] <file.genus> [more files...]\n\
         \x20      genus serve [options]\n\
         \x20      genus batch [options] <dir>\n\
         \x20      genus fuzz [options] [--replay <file.genus> ...]\n\
         \n\
         run     compile the files (with the standard library unless\n\
         \x20        --no-stdlib is given) and execute main()\n\
         check   type-check only and report diagnostics; with --watch,\n\
         \x20        keep an incremental session open and re-check the\n\
         \x20        files whenever they change on disk (end with EOF on\n\
         \x20        stdin or Ctrl-C)\n\
         serve   JSON-lines execution service: one request object per\n\
         \x20        line on stdin (or a TCP connection with --listen),\n\
         \x20        one response line each, in request order\n\
         batch   run every .genus file in <dir> through the service and\n\
         \x20        print a per-request stats line\n\
         fuzz    coverage-guided differential fuzzing: generate/mutate\n\
         \x20        well-typed programs and cross-check the AST\n\
         \x20        interpreter, VM (O0/O2), Tier 2, GC-stress, bytecode\n\
         \x20        round-trip, and incremental re-checks against each\n\
         \x20        other; with --replay, re-run saved repros instead\n\
         \n\
         options:\n\
         \x20 --no-stdlib        compile with only the built-in prelude\n\
         \x20 --engine=<ast|vm|jit>\n\
         \x20                    execution engine: the tree-walking\n\
         \x20                    interpreter (default), the bytecode VM,\n\
         \x20                    or the closure-compiled Tier 2 (jit)\n\
         \x20 --opt-level=<0|1|2>\n\
         \x20                    VM bytecode optimization: 0 none, 1 cleanup\n\
         \x20                    passes, 2 (default) adds specialization\n\
         \x20                    (heterogeneous translation); same observable\n\
         \x20                    behaviour at every level\n\
         \x20 --error-format=<human|short|json>\n\
         \x20                    diagnostic rendering: full snippets with\n\
         \x20                    carets (default), one line per diagnostic,\n\
         \x20                    or one JSON object per diagnostic\n\
         \x20 --deny-warnings    treat warnings as errors (exit 1)\n\
         \x20 --watch            check: poll the files' mtimes and\n\
         \x20                    incrementally re-check on every change,\n\
         \x20                    printing per-iteration reuse statistics\n\
         \x20 --stats            after running, print dispatch-cache,\n\
         \x20                    type-query-cache, resource, and (VM)\n\
         \x20                    bytecode-optimizer statistics to stderr\n\
         \x20 --fuel=<n>         trap R0009 after n interpreter steps\n\
         \x20                    (serve/batch default: {DEFAULT_FUEL})\n\
         \x20 --memory=<n>       trap R0010 past n allocated heap bytes\n\
         \x20 --deadline-ms=<n>  trap R0009 past a wall-clock deadline\n\
         \x20                    (serve: enforced by the scheduler, queue\n\
         \x20                    time included)\n\
         \x20 --workers=<n>      serve/batch worker threads (default 4)\n\
         \x20 --listen=<addr>    serve over TCP on addr instead of stdio\n\
         \x20 --tier-threshold=<n>\n\
         \x20                    serve/batch: `engine: \"auto\"` requests\n\
         \x20                    promote a cached program to Tier 2 after\n\
         \x20                    n invocations (default 8)\n\
         \x20 --cache-dir=<path> serve/batch: persist compiled bytecode as\n\
         \x20                    versioned artifacts in <path>; a restarted\n\
         \x20                    server answers known programs from disk\n\
         \x20                    without recompiling (also prewarms the\n\
         \x20                    stdlib at boot)\n\
         \x20 --cache-cap=<n>    serve/batch: bound the in-memory program\n\
         \x20                    cache to n entries, evicting least-recently\n\
         \x20                    used (default 1024)\n\
         \x20 --metrics-on-start serve: print one metrics JSON line to\n\
         \x20                    stderr at boot (the same object a\n\
         \x20                    {{\"action\":\"metrics\"}} request returns)\n\
         \x20 --seed=<n>         fuzz: master PRNG seed (default 1); a\n\
         \x20                    fixed seed + corpus gives identical runs\n\
         \x20 --cases=<n>        fuzz: deterministic case budget (default\n\
         \x20                    400)\n\
         \x20 --seconds=<n>      fuzz: wall-clock cap checked between\n\
         \x20                    cases (a safety net, not a work driver)\n\
         \x20 --corpus=<dir>     fuzz: persist novelty-bearing inputs to\n\
         \x20                    <dir> and reload them next run\n\
         \x20 --crash-dir=<dir>  fuzz: write minimized divergence repros\n\
         \x20                    to <dir> (default fuzz/crashes)\n\
         \x20 --replay           fuzz: run the given .genus files through\n\
         \x20                    the oracle suite once each, no fuzzing\n\
         \n\
         exit codes: 0 success, 1 compile errors, 2 usage/IO, 3 runtime trap\n\
         \x20           (fuzz: 3 also means a divergence was found)"
    );
    std::process::exit(i32::from(EXIT_USAGE));
}

fn print_stats(ex: &genus::Execution) {
    let d = &ex.dispatch_stats;
    let c = &ex.cache_stats;
    eprintln!("--- dispatch stats ---");
    eprintln!(
        "inline cache:   {} hits / {} misses",
        d.ic_hits, d.ic_misses
    );
    eprintln!(
        "virtual memo:   {} hits / {} misses",
        d.virt_hits, d.virt_misses
    );
    eprintln!(
        "model dispatch: {} hits / {} misses",
        d.model_hits, d.model_misses
    );
    eprintln!("--- type-query cache stats ---");
    eprintln!(
        "subtype:  {} hits / {} misses",
        c.subtype_hits, c.subtype_misses
    );
    eprintln!(
        "prereq:   {} hits / {} misses",
        c.prereq_hits, c.prereq_misses
    );
    eprintln!(
        "conforms: {} hits / {} misses",
        c.conforms_hits, c.conforms_misses
    );
    eprintln!(
        "resolve:  {} hits / {} misses",
        c.resolve_hits, c.resolve_misses
    );
    eprintln!("total:    {} hits / {} misses", c.hits(), c.misses());
    eprintln!("--- resource stats ---");
    eprintln!("fuel used:    {} steps", ex.resource_stats.fuel_used);
    eprintln!("allocated:    {} bytes", ex.resource_stats.mem_used);
    eprintln!("live at end:  {} bytes", ex.resource_stats.live_bytes);
    eprintln!("peak live:    {} bytes", ex.resource_stats.peak_bytes);
    eprintln!("collections:  {}", ex.resource_stats.collections);
    if let Some(o) = &ex.opt_stats {
        eprintln!("--- bytecode optimizer stats (opt-level {}) ---", o.level);
        eprintln!("functions specialized:   {}", o.funcs_specialized);
        eprintln!("calls made direct:       {}", o.calls_directed);
        eprintln!("model calls devirted:    {}", o.call_model_devirted);
        eprintln!("budget fallbacks:        {}", o.budget_fallbacks);
        eprintln!("dynamic fallbacks:       {}", o.dynamic_fallbacks);
        eprintln!("constants folded:        {}", o.consts_folded);
        eprintln!("branches folded:         {}", o.branches_folded);
        eprintln!("moves coalesced:         {}", o.moves_coalesced);
        eprintln!("instructions eliminated: {}", o.ops_eliminated);
        eprintln!("types pre-reified:       {}", o.types_reified);
    }
    if let Some(t) = &ex.tier_stats {
        eprintln!("--- tier-2 compile stats ---");
        eprintln!("functions tiered:        {}", t.funcs_tiered);
        eprintln!("basic blocks compiled:   {}", t.blocks);
    }
}

/// Prints the report's warnings to stderr in the chosen format.
fn print_warnings(report: &CheckReport, format: ErrorFormat) {
    let sep = if format == ErrorFormat::Human {
        "\n\n"
    } else {
        "\n"
    };
    let rendered: Vec<String> = report
        .warnings()
        .map(|d| d.render_with(&report.sm, format))
        .collect();
    if !rendered.is_empty() {
        eprintln!("{}", rendered.join(sep));
    }
}

/// Parses a `--flag=<u64>` value, exiting with a usage error on garbage.
fn parse_u64(flag: &str, value: &str) -> u64 {
    match value.parse::<u64>() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("error: bad value `{value}` for --{flag} (expected an integer)");
            std::process::exit(i32::from(EXIT_USAGE));
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else { usage() };
    let mut stdlib = true;
    let mut watch = false;
    let mut stats = false;
    let mut deny_warnings = false;
    let mut engine = Engine::Ast;
    let mut opt_level: u8 = 2;
    let mut format = ErrorFormat::Human;
    let mut limits = Limits::default();
    let mut workers: usize = 4;
    let mut tier_threshold: u64 = ServeConfig::default().tier_threshold;
    let mut listen: Option<String> = None;
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut cache_capacity: usize = ServeConfig::default().cache_capacity;
    let mut metrics_on_start = false;
    let mut fuzz_seed: u64 = 1;
    let mut fuzz_cases: u64 = 400;
    let mut fuzz_seconds: Option<u64> = None;
    let mut fuzz_corpus: Option<std::path::PathBuf> = None;
    let mut fuzz_crash_dir: Option<std::path::PathBuf> = None;
    let mut fuzz_replay = false;
    let mut files: Vec<String> = Vec::new();
    for a in args {
        if a == "--no-stdlib" {
            stdlib = false;
        } else if a == "--watch" {
            watch = true;
        } else if a == "--stats" {
            stats = true;
        } else if a == "--deny-warnings" {
            deny_warnings = true;
        } else if let Some(name) = a.strip_prefix("--engine=") {
            let Some(e) = Engine::from_name(name) else {
                eprintln!("error: unknown engine `{name}` (expected `ast`, `vm`, or `jit`)");
                return ExitCode::from(EXIT_USAGE);
            };
            engine = e;
        } else if let Some(level) = a.strip_prefix("--opt-level=") {
            match level.parse::<u8>() {
                Ok(l) if l <= 2 => opt_level = l,
                _ => {
                    eprintln!("error: unknown opt level `{level}` (expected 0, 1, or 2)");
                    return ExitCode::from(EXIT_USAGE);
                }
            }
        } else if let Some(name) = a.strip_prefix("--error-format=") {
            let Some(f) = ErrorFormat::from_name(name) else {
                eprintln!(
                    "error: unknown error format `{name}` (expected `human`, `short`, or `json`)"
                );
                return ExitCode::from(EXIT_USAGE);
            };
            format = f;
        } else if let Some(v) = a.strip_prefix("--fuel=") {
            limits.fuel = Some(parse_u64("fuel", v));
        } else if let Some(v) = a.strip_prefix("--memory=") {
            limits.memory = Some(parse_u64("memory", v));
        } else if let Some(v) = a.strip_prefix("--deadline-ms=") {
            limits.deadline_ms = Some(parse_u64("deadline-ms", v));
        } else if let Some(v) = a.strip_prefix("--workers=") {
            workers = (parse_u64("workers", v) as usize).max(1);
        } else if let Some(v) = a.strip_prefix("--tier-threshold=") {
            tier_threshold = parse_u64("tier-threshold", v);
        } else if let Some(addr) = a.strip_prefix("--listen=") {
            listen = Some(addr.to_string());
        } else if let Some(dir) = a.strip_prefix("--cache-dir=") {
            cache_dir = Some(std::path::PathBuf::from(dir));
        } else if let Some(v) = a.strip_prefix("--cache-cap=") {
            cache_capacity = (parse_u64("cache-cap", v) as usize).max(1);
        } else if a == "--metrics-on-start" {
            metrics_on_start = true;
        } else if let Some(v) = a.strip_prefix("--seed=") {
            fuzz_seed = parse_u64("seed", v);
        } else if let Some(v) = a.strip_prefix("--cases=") {
            fuzz_cases = parse_u64("cases", v);
        } else if let Some(v) = a.strip_prefix("--seconds=") {
            fuzz_seconds = Some(parse_u64("seconds", v));
        } else if let Some(dir) = a.strip_prefix("--corpus=") {
            fuzz_corpus = Some(std::path::PathBuf::from(dir));
        } else if let Some(dir) = a.strip_prefix("--crash-dir=") {
            fuzz_crash_dir = Some(std::path::PathBuf::from(dir));
        } else if a == "--replay" {
            fuzz_replay = true;
        } else if a == "--help" || a == "-h" {
            usage();
        } else if a.starts_with('-') {
            eprintln!("error: unknown option `{a}`");
            return ExitCode::from(EXIT_USAGE);
        } else {
            files.push(a);
        }
    }

    if cmd == "fuzz" {
        return cmd_fuzz(
            fuzz_seed,
            fuzz_cases,
            fuzz_seconds,
            fuzz_corpus,
            fuzz_crash_dir,
            fuzz_replay,
            limits.fuel,
            &files,
        );
    }

    // The service subcommands apply a default fuel budget so a looping
    // request traps R0009 instead of pinning a worker forever.
    if cmd == "serve" || cmd == "batch" {
        if limits.fuel.is_none() {
            limits.fuel = Some(DEFAULT_FUEL);
        }
        let config = ServeConfig {
            workers,
            default_limits: limits,
            tier_threshold,
            // Warming the stdlib at boot only pays off when its artifact
            // can persist; without a cache dir the first request warms it
            // just as well.
            prewarm_stdlib: cache_dir.is_some(),
            cache_dir,
            cache_capacity,
            ..ServeConfig::default()
        };
        return match cmd.as_str() {
            "serve" => cmd_serve(&config, listen.as_deref(), metrics_on_start, &files),
            _ => cmd_batch(&config, engine, opt_level, stdlib, &files),
        };
    }
    if files.is_empty() {
        usage();
    }
    if watch {
        if cmd != "check" {
            eprintln!("error: --watch is only valid with `genus check`");
            return ExitCode::from(EXIT_USAGE);
        }
        return cmd_watch(&files, stdlib, format);
    }
    let mut compiler = genus::Compiler::new()
        .engine(engine)
        .opt_level(opt_level)
        .error_format(format)
        .limits(limits);
    if stdlib {
        compiler = compiler.with_stdlib();
    }
    for f in &files {
        match std::fs::read_to_string(f) {
            Ok(src) => compiler = compiler.source(f.clone(), src),
            Err(e) => {
                eprintln!("error: cannot read `{f}`: {e}");
                return ExitCode::from(EXIT_USAGE);
            }
        }
    }

    // Type-check once up front so warnings can be surfaced (with their
    // stable codes) even on successful runs.
    let mut report = compiler.check_report();
    if report.has_errors() {
        eprintln!("{}", report.render(format));
        return ExitCode::from(EXIT_COMPILE);
    }
    print_warnings(&report, format);
    if deny_warnings && report.warnings().next().is_some() {
        eprintln!("error: warnings denied by --deny-warnings");
        return ExitCode::from(EXIT_COMPILE);
    }
    let prog = report.program.take().expect("no errors implies a program");

    match cmd.as_str() {
        "check" => {
            println!(
                "ok: {} classes, {} constraints, {} models, {} top-level methods",
                prog.table.classes.len(),
                prog.table.constraints.len(),
                prog.table.models.len(),
                prog.table.globals.len()
            );
            ExitCode::SUCCESS
        }
        "run" => {
            let ex = compiler.execute_checked(prog);
            // Output printed before a trap is still shown.
            print!("{}", ex.output);
            let code = match &ex.outcome {
                Ok(v) => {
                    if v != "void" {
                        println!("=> {v}");
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    // Render the trap like a diagnostic, format-aware, so
                    // `--error-format=json` stays machine-readable end to end.
                    eprintln!("{}", e.to_diagnostic().render_with(&report.sm, format));
                    ExitCode::from(EXIT_TRAP)
                }
            };
            if stats {
                print_stats(&ex);
            }
            code
        }
        _ => usage(),
    }
}

/// `genus fuzz`: run the coverage-guided differential fuzzer, or (with
/// `--replay`) re-run saved `.genus` repros through the oracle suite.
/// Divergences exit with the runtime-trap tier (3): they are the fuzz
/// analogue of a program misbehaving at runtime.
#[allow(clippy::too_many_arguments)]
fn cmd_fuzz(
    seed: u64,
    cases: u64,
    seconds: Option<u64>,
    corpus: Option<std::path::PathBuf>,
    crash_dir: Option<std::path::PathBuf>,
    replay: bool,
    fuel: Option<u64>,
    files: &[String],
) -> ExitCode {
    use genus_fuzz::Verdict;
    if replay {
        if files.is_empty() {
            eprintln!("error: `genus fuzz --replay` needs at least one .genus file");
            return ExitCode::from(EXIT_USAGE);
        }
        // Replays get a generous budget: repros should finish, and a
        // fuel skip would silently mask a once-diverging case.
        let fuel = fuel.unwrap_or(10_000_000);
        let mut tier: u8 = 0;
        for f in files {
            let src = match std::fs::read_to_string(f) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot read `{f}`: {e}");
                    return ExitCode::from(EXIT_USAGE);
                }
            };
            match genus_fuzz::replay(&src, fuel) {
                Verdict::Pass => println!("{f}: pass"),
                Verdict::ResourceSkip => println!("{f}: fuel-skip"),
                Verdict::CompileReject(codes) => println!("{f}: compile-reject [{codes}]"),
                Verdict::Divergence(d) => {
                    println!("{f}: DIVERGENCE [{}] {}", d.oracle, d.detail);
                    tier = tier.max(EXIT_TRAP);
                }
            }
        }
        return ExitCode::from(tier);
    }
    if !files.is_empty() {
        eprintln!("error: `genus fuzz` takes no file arguments (use --replay to run repros)");
        return ExitCode::from(EXIT_USAGE);
    }
    let config = genus_fuzz::FuzzConfig {
        seed,
        cases,
        seconds,
        corpus_dir: corpus,
        crash_dir: Some(crash_dir.unwrap_or_else(|| std::path::PathBuf::from("fuzz/crashes"))),
        fuel: fuel.unwrap_or(100_000),
        ..genus_fuzz::FuzzConfig::default()
    };
    let report = match genus_fuzz::fuzz(config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: fuzz I/O failed: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    println!("{}", report.summary());
    for crash in &report.crashes {
        match &crash.path {
            Some(p) => println!(
                "divergence [{}] {} -> {}",
                crash.oracle,
                crash.detail,
                p.display()
            ),
            None => println!("divergence [{}] {}", crash.oracle, crash.detail),
        }
    }
    if report.crashes.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_TRAP)
    }
}

/// `genus check --watch`: keep one incremental [`genus::CompileSession`]
/// open and re-check the files whenever their mtimes change (150 ms
/// polling — no OS file-watcher dependency). Each iteration prints the
/// diagnostics plus a `watch:` line with the session's per-iteration
/// reuse counters. The loop ends at EOF on stdin (which makes it
/// testable: `: | genus check --watch f.genus` runs exactly one
/// iteration) with exit code 0/1 reflecting the **last** check.
fn cmd_watch(files: &[String], stdlib: bool, format: ErrorFormat) -> ExitCode {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    let stop = Arc::new(AtomicBool::new(false));
    {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            use std::io::Read;
            let mut sink = Vec::new();
            let _ = std::io::stdin().lock().read_to_end(&mut sink);
            stop.store(true, Ordering::Relaxed);
        });
    }
    let mut session = if stdlib {
        genus::CompileSession::with_stdlib()
    } else {
        genus::CompileSession::new()
    };
    let mut mtimes: Vec<Option<std::time::SystemTime>> = vec![None; files.len()];
    let mut first = true;
    let mut last_errors = false;
    loop {
        let mut changed = false;
        for (i, f) in files.iter().enumerate() {
            let mtime = std::fs::metadata(f).and_then(|m| m.modified()).ok();
            if first || mtime != mtimes[i] {
                mtimes[i] = mtime;
                match std::fs::read_to_string(f) {
                    Ok(src) => {
                        session.update_source(f, &src);
                        changed = true;
                    }
                    Err(e) => {
                        eprintln!("error: cannot read `{f}`: {e}");
                        if first {
                            return ExitCode::from(EXIT_USAGE);
                        }
                    }
                }
            }
        }
        if changed {
            let start = std::time::Instant::now();
            let before = session.stats();
            let report = session.check();
            let after = session.stats();
            last_errors = report.has_errors();
            let rendered = session.render_diags(format);
            if !rendered.is_empty() {
                eprintln!("{rendered}");
            }
            eprintln!(
                "watch: {} — {} unit(s), {} reused, {} re-checked, {} parsed, {}ms",
                if last_errors { "errors" } else { "ok" },
                after.units,
                after.units_not_rechecked() - before.units_not_rechecked(),
                after.units_rechecked - before.units_rechecked,
                after.parse_new - before.parse_new,
                start.elapsed().as_millis(),
            );
        }
        first = false;
        if stop.load(Ordering::Relaxed) {
            return if last_errors {
                ExitCode::from(EXIT_COMPILE)
            } else {
                ExitCode::SUCCESS
            };
        }
        std::thread::sleep(std::time::Duration::from_millis(150));
    }
}

/// `genus serve`: drive JSON-lines sessions over stdin/stdout, or over
/// TCP with `--listen`. Requests choose their own engine/opt level; the
/// CLI flags set the default resource budgets.
fn cmd_serve(
    config: &ServeConfig,
    listen: Option<&str>,
    metrics_on_start: bool,
    files: &[String],
) -> ExitCode {
    if !files.is_empty() {
        eprintln!("error: `genus serve` takes no file arguments (requests arrive as JSON lines)");
        return ExitCode::from(EXIT_USAGE);
    }
    let server = Server::new(config.clone());
    if metrics_on_start {
        eprintln!("{}", server.metrics_json());
    }
    match listen {
        Some(addr) => {
            let listener = match std::net::TcpListener::bind(addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("error: cannot listen on `{addr}`: {e}");
                    return ExitCode::from(EXIT_USAGE);
                }
            };
            if let Ok(local) = listener.local_addr() {
                eprintln!(
                    "genus-serve: listening on {local} ({} workers)",
                    config.workers
                );
            }
            match server.serve_tcp(&listener) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: accept failed: {e}");
                    ExitCode::from(EXIT_USAGE)
                }
            }
        }
        None => {
            let stdin = std::io::stdin().lock();
            let mut stdout = std::io::stdout().lock();
            let result = server.run_session(stdin, &mut stdout);
            let stats = server.cache_stats();
            server.shutdown();
            match result {
                Ok(handled) => {
                    eprintln!(
                        "genus-serve: {handled} request(s), {} compile(s), {} cache hit(s), {} disk hit(s), {} tier compile(s)",
                        stats.compiles, stats.hits, stats.disk_hits, stats.tier_compiles
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: session I/O failed: {e}");
                    ExitCode::from(EXIT_USAGE)
                }
            }
        }
    }
}

/// `genus batch <dir>`: run every `.genus` file in a directory through
/// the service (sorted by name, so output order is deterministic) and
/// print one stats line per request. The default fuel budget means a
/// sample that loops forever fails its run instead of hanging the batch.
fn cmd_batch(
    config: &ServeConfig,
    engine: Engine,
    opt_level: u8,
    stdlib: bool,
    files: &[String],
) -> ExitCode {
    let [dir] = files else {
        eprintln!("error: `genus batch` takes exactly one directory argument");
        return ExitCode::from(EXIT_USAGE);
    };
    let entries = match std::fs::read_dir(dir) {
        Ok(iter) => iter,
        Err(e) => {
            eprintln!("error: cannot read `{dir}`: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let mut paths: Vec<std::path::PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "genus"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        eprintln!("error: no .genus files in `{dir}`");
        return ExitCode::from(EXIT_USAGE);
    }
    let mut requests = Vec::new();
    for path in &paths {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read `{}`: {e}", path.display());
                return ExitCode::from(EXIT_USAGE);
            }
        };
        let mut req = Request::new(path.display().to_string(), source);
        req.engine = match engine {
            Engine::Ast => EngineKind::Ast,
            Engine::Vm => EngineKind::Vm,
            Engine::Jit => EngineKind::Jit,
        };
        req.opt_level = opt_level;
        req.stdlib = stdlib;
        req.limits = config.default_limits;
        requests.push(req);
    }
    let server = Server::new(config.clone());
    let responses = server.run_batch(requests);
    let stats = server.cache_stats();
    server.shutdown();
    let mut tier: u8 = 0;
    for resp in &responses {
        let cache = if resp.cache_hit { "hit" } else { "miss" };
        match &resp.outcome {
            Outcome::Ok(value) => {
                println!(
                    "{}: ok value={value} fuel={} mem={} gcs={} cache={cache} ms={}",
                    resp.id, resp.fuel_used, resp.mem_used, resp.collections, resp.ms
                );
            }
            Outcome::Trap { code, message } => {
                println!(
                    "{}: trap {code} ({message}) fuel={} mem={} gcs={} cache={cache} ms={}",
                    resp.id, resp.fuel_used, resp.mem_used, resp.collections, resp.ms
                );
                tier = tier.max(EXIT_TRAP);
            }
            Outcome::Error(message) => {
                let first = message.lines().next().unwrap_or("compile error");
                println!("{}: error {first} cache={cache} ms={}", resp.id, resp.ms);
                tier = tier.max(EXIT_COMPILE);
            }
        }
    }
    eprintln!(
        "genus-batch: {} request(s), {} compile(s), {} cache hit(s), {} tier compile(s)",
        responses.len(),
        stats.compiles,
        stats.hits,
        stats.tier_compiles
    );
    ExitCode::from(tier)
}
