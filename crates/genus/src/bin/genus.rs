//! The `genus` command-line driver: check and run Genus source files.
//!
//! ```console
//! $ genus run program.genus            # compile + execute main()
//! $ genus check program.genus ...      # type-check only
//! $ genus run --no-stdlib tiny.genus   # prelude only
//! $ genus run --engine=vm program.genus  # bytecode VM instead of the AST
//! $ genus run --error-format=json p.genus  # one JSON object per diagnostic
//! $ genus run --stats program.genus    # print cache/dispatch statistics
//! ```
//!
//! Exit codes are tiered so scripts and CI can distinguish failure modes:
//! `0` success, `1` compile errors (or warnings under `--deny-warnings`),
//! `2` usage or I/O errors, `3` runtime trap.

use genus::{CheckReport, Engine, ErrorFormat};
use std::process::ExitCode;

/// Exit tier for compile errors (and denied warnings).
const EXIT_COMPILE: u8 = 1;
/// Exit tier for usage and I/O errors.
const EXIT_USAGE: u8 = 2;
/// Exit tier for a runtime trap.
const EXIT_TRAP: u8 = 3;

fn usage() -> ! {
    eprintln!(
        "usage: genus <run|check> [options] <file.genus> [more files...]\n\
         \n\
         run     compile the files (with the standard library unless\n\
         \x20        --no-stdlib is given) and execute main()\n\
         check   type-check only and report diagnostics\n\
         \n\
         options:\n\
         \x20 --no-stdlib        compile with only the built-in prelude\n\
         \x20 --engine=<ast|vm>  execution engine: the tree-walking\n\
         \x20                    interpreter (default) or the bytecode VM\n\
         \x20 --opt-level=<0|1|2>\n\
         \x20                    VM bytecode optimization: 0 none, 1 cleanup\n\
         \x20                    passes, 2 (default) adds specialization\n\
         \x20                    (heterogeneous translation); same observable\n\
         \x20                    behaviour at every level\n\
         \x20 --error-format=<human|short|json>\n\
         \x20                    diagnostic rendering: full snippets with\n\
         \x20                    carets (default), one line per diagnostic,\n\
         \x20                    or one JSON object per diagnostic\n\
         \x20 --deny-warnings    treat warnings as errors (exit 1)\n\
         \x20 --stats            after running, print dispatch-cache,\n\
         \x20                    type-query-cache, and (VM) bytecode-\n\
         \x20                    optimizer statistics to stderr\n\
         \n\
         exit codes: 0 success, 1 compile errors, 2 usage/IO, 3 runtime trap"
    );
    std::process::exit(i32::from(EXIT_USAGE));
}

fn print_stats(ex: &genus::Execution) {
    let d = &ex.dispatch_stats;
    let c = &ex.cache_stats;
    eprintln!("--- dispatch stats ---");
    eprintln!(
        "inline cache:   {} hits / {} misses",
        d.ic_hits, d.ic_misses
    );
    eprintln!(
        "virtual memo:   {} hits / {} misses",
        d.virt_hits, d.virt_misses
    );
    eprintln!(
        "model dispatch: {} hits / {} misses",
        d.model_hits, d.model_misses
    );
    eprintln!("--- type-query cache stats ---");
    eprintln!(
        "subtype:  {} hits / {} misses",
        c.subtype_hits, c.subtype_misses
    );
    eprintln!(
        "prereq:   {} hits / {} misses",
        c.prereq_hits, c.prereq_misses
    );
    eprintln!(
        "conforms: {} hits / {} misses",
        c.conforms_hits, c.conforms_misses
    );
    eprintln!(
        "resolve:  {} hits / {} misses",
        c.resolve_hits, c.resolve_misses
    );
    eprintln!("total:    {} hits / {} misses", c.hits(), c.misses());
    if let Some(o) = &ex.opt_stats {
        eprintln!("--- bytecode optimizer stats (opt-level {}) ---", o.level);
        eprintln!("functions specialized:   {}", o.funcs_specialized);
        eprintln!("calls made direct:       {}", o.calls_directed);
        eprintln!("model calls devirted:    {}", o.call_model_devirted);
        eprintln!("budget fallbacks:        {}", o.budget_fallbacks);
        eprintln!("dynamic fallbacks:       {}", o.dynamic_fallbacks);
        eprintln!("constants folded:        {}", o.consts_folded);
        eprintln!("branches folded:         {}", o.branches_folded);
        eprintln!("moves coalesced:         {}", o.moves_coalesced);
        eprintln!("instructions eliminated: {}", o.ops_eliminated);
        eprintln!("types pre-reified:       {}", o.types_reified);
    }
}

/// Prints the report's warnings to stderr in the chosen format.
fn print_warnings(report: &CheckReport, format: ErrorFormat) {
    let sep = if format == ErrorFormat::Human {
        "\n\n"
    } else {
        "\n"
    };
    let rendered: Vec<String> = report
        .warnings()
        .map(|d| d.render_with(&report.sm, format))
        .collect();
    if !rendered.is_empty() {
        eprintln!("{}", rendered.join(sep));
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else { usage() };
    let mut stdlib = true;
    let mut stats = false;
    let mut deny_warnings = false;
    let mut engine = Engine::Ast;
    let mut opt_level: u8 = 2;
    let mut format = ErrorFormat::Human;
    let mut files: Vec<String> = Vec::new();
    for a in args {
        if a == "--no-stdlib" {
            stdlib = false;
        } else if a == "--stats" {
            stats = true;
        } else if a == "--deny-warnings" {
            deny_warnings = true;
        } else if let Some(name) = a.strip_prefix("--engine=") {
            let Some(e) = Engine::from_name(name) else {
                eprintln!("error: unknown engine `{name}` (expected `ast` or `vm`)");
                return ExitCode::from(EXIT_USAGE);
            };
            engine = e;
        } else if let Some(level) = a.strip_prefix("--opt-level=") {
            match level.parse::<u8>() {
                Ok(l) if l <= 2 => opt_level = l,
                _ => {
                    eprintln!("error: unknown opt level `{level}` (expected 0, 1, or 2)");
                    return ExitCode::from(EXIT_USAGE);
                }
            }
        } else if let Some(name) = a.strip_prefix("--error-format=") {
            let Some(f) = ErrorFormat::from_name(name) else {
                eprintln!(
                    "error: unknown error format `{name}` (expected `human`, `short`, or `json`)"
                );
                return ExitCode::from(EXIT_USAGE);
            };
            format = f;
        } else if a == "--help" || a == "-h" {
            usage();
        } else if a.starts_with('-') {
            eprintln!("error: unknown option `{a}`");
            return ExitCode::from(EXIT_USAGE);
        } else {
            files.push(a);
        }
    }
    if files.is_empty() {
        usage();
    }
    let mut compiler = genus::Compiler::new()
        .engine(engine)
        .opt_level(opt_level)
        .error_format(format);
    if stdlib {
        compiler = compiler.with_stdlib();
    }
    for f in &files {
        match std::fs::read_to_string(f) {
            Ok(src) => compiler = compiler.source(f.clone(), src),
            Err(e) => {
                eprintln!("error: cannot read `{f}`: {e}");
                return ExitCode::from(EXIT_USAGE);
            }
        }
    }

    // Type-check once up front so warnings can be surfaced (with their
    // stable codes) even on successful runs.
    let mut report = compiler.check_report();
    if report.has_errors() {
        eprintln!("{}", report.render(format));
        return ExitCode::from(EXIT_COMPILE);
    }
    print_warnings(&report, format);
    if deny_warnings && report.warnings().next().is_some() {
        eprintln!("error: warnings denied by --deny-warnings");
        return ExitCode::from(EXIT_COMPILE);
    }
    let prog = report.program.take().expect("no errors implies a program");

    match cmd.as_str() {
        "check" => {
            println!(
                "ok: {} classes, {} constraints, {} models, {} top-level methods",
                prog.table.classes.len(),
                prog.table.constraints.len(),
                prog.table.models.len(),
                prog.table.globals.len()
            );
            ExitCode::SUCCESS
        }
        "run" => {
            let ex = compiler.execute_checked(prog);
            // Output printed before a trap is still shown.
            print!("{}", ex.output);
            let code = match &ex.outcome {
                Ok(v) => {
                    if v != "void" {
                        println!("=> {v}");
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    // Render the trap like a diagnostic, format-aware, so
                    // `--error-format=json` stays machine-readable end to end.
                    eprintln!("{}", e.to_diagnostic().render_with(&report.sm, format));
                    ExitCode::from(EXIT_TRAP)
                }
            };
            if stats {
                print_stats(&ex);
            }
            code
        }
        _ => usage(),
    }
}
