//! The `genus` command-line driver: check and run Genus source files.
//!
//! ```console
//! $ genus run program.genus            # compile + execute main()
//! $ genus check program.genus ...      # type-check only
//! $ genus run --no-stdlib tiny.genus   # prelude only
//! ```

use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: genus <run|check> [--no-stdlib] <file.genus> [more files...]\n\
         \n\
         run     compile the files (with the standard library unless\n\
         \x20        --no-stdlib is given) and execute main()\n\
         check   type-check only and report diagnostics"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else { usage() };
    let mut stdlib = true;
    let mut files: Vec<String> = Vec::new();
    for a in args {
        if a == "--no-stdlib" {
            stdlib = false;
        } else if a == "--help" || a == "-h" {
            usage();
        } else {
            files.push(a);
        }
    }
    if files.is_empty() {
        usage();
    }
    let mut compiler = genus::Compiler::new();
    if stdlib {
        compiler = compiler.with_stdlib();
    }
    for f in &files {
        match std::fs::read_to_string(f) {
            Ok(src) => compiler = compiler.source(f.clone(), src),
            Err(e) => {
                eprintln!("error: cannot read `{f}`: {e}");
                return ExitCode::from(2);
            }
        }
    }
    match cmd.as_str() {
        "check" => match compiler.compile() {
            Ok(prog) => {
                println!(
                    "ok: {} classes, {} constraints, {} models, {} top-level methods",
                    prog.table.classes.len(),
                    prog.table.constraints.len(),
                    prog.table.models.len(),
                    prog.table.globals.len()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        "run" => match compiler.run() {
            Ok(result) => {
                print!("{}", result.output);
                if result.rendered_value != "void" {
                    println!("=> {}", result.rendered_value);
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        _ => usage(),
    }
}
