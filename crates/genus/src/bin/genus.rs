//! The `genus` command-line driver: check and run Genus source files.
//!
//! ```console
//! $ genus run program.genus            # compile + execute main()
//! $ genus check program.genus ...      # type-check only
//! $ genus run --no-stdlib tiny.genus   # prelude only
//! $ genus run --engine=vm program.genus  # bytecode VM instead of the AST
//! $ genus run --stats program.genus    # print cache/dispatch statistics
//! ```

use genus::Engine;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: genus <run|check> [options] <file.genus> [more files...]\n\
         \n\
         run     compile the files (with the standard library unless\n\
         \x20        --no-stdlib is given) and execute main()\n\
         check   type-check only and report diagnostics\n\
         \n\
         options:\n\
         \x20 --no-stdlib        compile with only the built-in prelude\n\
         \x20 --engine=<ast|vm>  execution engine: the tree-walking\n\
         \x20                    interpreter (default) or the bytecode VM\n\
         \x20 --stats            after running, print dispatch-cache and\n\
         \x20                    type-query-cache statistics to stderr"
    );
    std::process::exit(2);
}

fn print_stats(ex: &genus::Execution) {
    let d = &ex.dispatch_stats;
    let c = &ex.cache_stats;
    eprintln!("--- dispatch stats ---");
    eprintln!("inline cache:   {} hits / {} misses", d.ic_hits, d.ic_misses);
    eprintln!("virtual memo:   {} hits / {} misses", d.virt_hits, d.virt_misses);
    eprintln!("model dispatch: {} hits / {} misses", d.model_hits, d.model_misses);
    eprintln!("--- type-query cache stats ---");
    eprintln!("subtype:  {} hits / {} misses", c.subtype_hits, c.subtype_misses);
    eprintln!("prereq:   {} hits / {} misses", c.prereq_hits, c.prereq_misses);
    eprintln!("conforms: {} hits / {} misses", c.conforms_hits, c.conforms_misses);
    eprintln!("resolve:  {} hits / {} misses", c.resolve_hits, c.resolve_misses);
    eprintln!("total:    {} hits / {} misses", c.hits(), c.misses());
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else { usage() };
    let mut stdlib = true;
    let mut stats = false;
    let mut engine = Engine::Ast;
    let mut files: Vec<String> = Vec::new();
    for a in args {
        if a == "--no-stdlib" {
            stdlib = false;
        } else if a == "--stats" {
            stats = true;
        } else if let Some(name) = a.strip_prefix("--engine=") {
            let Some(e) = Engine::from_name(name) else {
                eprintln!("error: unknown engine `{name}` (expected `ast` or `vm`)");
                return ExitCode::from(2);
            };
            engine = e;
        } else if a == "--help" || a == "-h" {
            usage();
        } else {
            files.push(a);
        }
    }
    if files.is_empty() {
        usage();
    }
    let mut compiler = genus::Compiler::new().engine(engine);
    if stdlib {
        compiler = compiler.with_stdlib();
    }
    for f in &files {
        match std::fs::read_to_string(f) {
            Ok(src) => compiler = compiler.source(f.clone(), src),
            Err(e) => {
                eprintln!("error: cannot read `{f}`: {e}");
                return ExitCode::from(2);
            }
        }
    }
    match cmd.as_str() {
        "check" => match compiler.compile() {
            Ok(prog) => {
                println!(
                    "ok: {} classes, {} constraints, {} models, {} top-level methods",
                    prog.table.classes.len(),
                    prog.table.constraints.len(),
                    prog.table.models.len(),
                    prog.table.globals.len()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        "run" => match compiler.execute() {
            Ok(ex) => {
                // Output printed before a trap is still shown.
                print!("{}", ex.output);
                let code = match &ex.outcome {
                    Ok(v) => {
                        if v != "void" {
                            println!("=> {v}");
                        }
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        ExitCode::FAILURE
                    }
                };
                if stats {
                    print_stats(&ex);
                }
                code
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        _ => usage(),
    }
}
