//! Facade-level incremental compile sessions.
//!
//! A [`CompileSession`] wraps the demand-driven [`genus_check::Session`]
//! with the two pieces the checker crate cannot provide itself:
//!
//! 1. **Stdlib seeding.** The standard library's units are registered as
//!    always-visible modules and their parse trees come from a
//!    process-wide memo ([`stdlib_parses`]) — parsed once per process, at
//!    the exact file ids every seeded session assigns them, so the
//!    memoized spans are valid everywhere. This is what makes repeated
//!    `Compiler::check_report` calls stop re-parsing four stdlib files
//!    per call.
//! 2. **Engine caching.** Compiled bytecode (and Tier-2 closures) are
//!    cached per session, keyed by the session's *generation* counter —
//!    a number that changes whenever a re-check may have changed the
//!    checked program. Re-running an unchanged program skips bytecode
//!    compilation entirely; editing a body invalidates exactly once.
//!
//! ```
//! use genus::CompileSession;
//!
//! let mut s = CompileSession::with_stdlib();
//! s.update_source("main.genus", "int main() { return 41; }");
//! assert!(!s.check().has_errors());
//! s.update_source("main.genus", "int main() { return 42; }");
//! let report = s.check();
//! assert!(!report.has_errors());
//! // The stdlib and prelude were not re-checked for a main-only edit.
//! assert!(report.stats.units_not_rechecked() >= 5);
//! ```

use crate::{
    execute_ast_shared, execute_tier_shared, execute_vm_shared, finish, Engine, Execution,
    RunResult, INTERP_STACK_SIZE,
};
use genus_check::{CheckReport, CheckedProgram, Session, SessionReport, SessionStats};
use genus_common::{Diagnostic, ErrorFormat, Severity, SourceMap};
use genus_interp::Limits;
use genus_syntax::memo::{parse_unit, ParsedUnit};
use genus_vm::{compile_optimized, compile_tier, TierProgram, VmProgram};
use std::sync::{Arc, OnceLock};

/// The stdlib's parse trees, memoized process-wide.
///
/// Parsed against a scratch [`SourceMap`] that mirrors the layout of every
/// stdlib-seeded session — prelude at file 0, stdlib units at 1..=N in
/// [`genus_stdlib::sources`] order — so the spans inside the memoized trees
/// are valid in any session that registers the stdlib first.
fn stdlib_parses() -> &'static [(&'static str, Arc<ParsedUnit>)] {
    static PARSES: OnceLock<Vec<(&'static str, Arc<ParsedUnit>)>> = OnceLock::new();
    PARSES.get_or_init(|| {
        let mut sm = SourceMap::new();
        sm.add_file(
            genus_check::prelude::PRELUDE_NAME,
            genus_check::prelude::PRELUDE,
        );
        genus_stdlib::sources()
            .iter()
            .map(|(name, src)| {
                let file = sm.add_file(*name, *src);
                (*name, Arc::new(parse_unit(&sm, file, name)))
            })
            .collect()
    })
}

/// A long-lived, editable compilation pipeline: named units go in via
/// [`update_source`](CompileSession::update_source), diagnostics and
/// runnable programs come out of [`check`](CompileSession::check) and
/// [`execute`](CompileSession::execute), and everything in between —
/// parse trees, the semantic prefix, per-unit verdicts, compiled
/// bytecode — is memoized by content hashes so an edit re-derives only
/// what the edit could have changed.
pub struct CompileSession {
    inner: Session,
    opt_level: u8,
    /// Compiled bytecode for the current program, keyed by the session
    /// generation it was compiled from.
    vm_code: Option<(u64, Arc<VmProgram>)>,
    /// Tier-2 closure program, keyed the same way.
    tier_code: Option<(u64, Arc<TierProgram>)>,
}

impl Default for CompileSession {
    fn default() -> Self {
        CompileSession::new()
    }
}

impl CompileSession {
    /// A session containing only the built-in prelude.
    pub fn new() -> Self {
        CompileSession {
            inner: Session::new(),
            opt_level: 2,
            vm_code: None,
            tier_code: None,
        }
    }

    /// A session pre-loaded with the standard library as always-visible
    /// modules, their parses seeded from the process-wide memo.
    pub fn with_stdlib() -> Self {
        let mut s = CompileSession::new();
        for (name, src) in genus_stdlib::sources() {
            s.inner.add_unit(name, src, &[], true);
        }
        for (name, parsed) in stdlib_parses() {
            s.inner.seed_parse(name, parsed.clone());
        }
        s
    }

    /// Selects the bytecode optimization level for [`execute`]
    /// (default 2; see [`crate::Compiler::opt_level`]).
    pub fn opt_level(&mut self, level: u8) {
        let level = level.min(2);
        if level != self.opt_level {
            self.opt_level = level;
            self.vm_code = None;
            self.tier_code = None;
        }
    }

    /// Adds or replaces the source text of the unit named `name`.
    pub fn update_source(&mut self, name: &str, src: &str) {
        self.inner.update_source(name, src);
    }

    /// Re-derives diagnostics for the current sources, reusing memoized
    /// parses and verdicts where content hashes allow.
    pub fn check(&mut self) -> SessionReport {
        self.inner.check()
    }

    /// Cumulative reuse statistics over the session's lifetime.
    pub fn stats(&self) -> SessionStats {
        self.inner.stats()
    }

    /// Changes whenever a check may have changed the runnable program.
    pub fn generation(&self) -> u64 {
        self.inner.generation()
    }

    /// The session's source map, for rendering diagnostics.
    pub fn sm(&self) -> &SourceMap {
        self.inner.sm()
    }

    /// The diagnostics of the last check, in normalized order.
    pub fn last_diags(&self) -> &[Diagnostic] {
        self.inner.last_diags()
    }

    /// The checked program of the last check, when it had no errors.
    pub fn program(&self) -> Option<&CheckedProgram> {
        self.inner.program()
    }

    /// Collapses the session into a one-shot [`CheckReport`], checking
    /// first if no check has run yet.
    pub fn into_report(self) -> CheckReport {
        self.inner.into_report()
    }

    /// Renders the last check's diagnostics (errors and warnings alike)
    /// in `format`, joined the way [`CheckReport::render`] joins them.
    pub fn render_diags(&self, format: ErrorFormat) -> String {
        let sm = self.inner.sm();
        let sep = if format == ErrorFormat::Human {
            "\n\n"
        } else {
            "\n"
        };
        self.inner
            .last_diags()
            .iter()
            .map(|d| d.render_with(sm, format))
            .collect::<Vec<_>>()
            .join(sep)
    }

    /// Renders only the last check's errors in the classic one-line mode —
    /// the same shape [`crate::Compiler::run`] puts in its `Err`.
    pub fn render_errors_short(&self) -> String {
        let sm = self.inner.sm();
        self.inner
            .last_diags()
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| d.render(sm))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Checks, then runs `main()` on `engine`, reusing compiled bytecode
    /// when nothing changed since the last run.
    ///
    /// # Errors
    ///
    /// Returns the diagnostics (rendered in the classic short format) when
    /// the current sources do not check.
    pub fn execute(&mut self, engine: Engine, limits: Limits) -> Result<Execution, String> {
        let report = self.inner.check();
        if report.has_errors() {
            return Err(self.render_errors_short());
        }
        let generation = self.inner.generation();
        let opt_level = self.opt_level;
        let prog = self
            .inner
            .program()
            .expect("no errors implies a checked program");
        Ok(match engine {
            Engine::Ast => std::thread::scope(|scope| {
                std::thread::Builder::new()
                    .name("genus-interp".to_string())
                    .stack_size(INTERP_STACK_SIZE)
                    .spawn_scoped(scope, || execute_ast_shared(prog, limits))
                    .expect("spawn interpreter thread")
                    .join()
                    .expect("interpreter thread panicked")
            }),
            Engine::Vm => {
                let code = cached_code(&mut self.vm_code, generation, prog, opt_level);
                execute_vm_shared(prog, &code, limits)
            }
            Engine::Jit => {
                let code = cached_code(&mut self.vm_code, generation, prog, opt_level);
                let tier = match &self.tier_code {
                    Some((g, tier)) if *g == generation => tier.clone(),
                    _ => {
                        let tier = Arc::new(compile_tier(&code));
                        self.tier_code = Some((generation, tier.clone()));
                        tier
                    }
                };
                execute_tier_shared(prog, &tier, limits)
            }
        })
    }

    /// [`execute`](CompileSession::execute) collapsed to the value/output
    /// pair, like [`crate::Compiler::run`].
    ///
    /// # Errors
    ///
    /// Returns rendered diagnostics or the runtime error message.
    pub fn run(&mut self, engine: Engine, limits: Limits) -> Result<RunResult, String> {
        finish(self.execute(engine, limits)?)
    }
}

/// Returns the cached bytecode when `generation` still matches, compiling
/// (and re-keying the slot) otherwise.
fn cached_code(
    slot: &mut Option<(u64, Arc<VmProgram>)>,
    generation: u64,
    prog: &CheckedProgram,
    opt_level: u8,
) -> Arc<VmProgram> {
    if let Some((g, code)) = slot {
        if *g == generation {
            return code.clone();
        }
    }
    let code = Arc::new(compile_optimized(prog, opt_level));
    *slot = Some((generation, code.clone()));
    code
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stdlib_seeding_skips_reparsing() {
        let mut s = CompileSession::with_stdlib();
        s.update_source("main.genus", "int main() { return 1; }");
        s.check();
        let stats = s.stats();
        // Only the user unit was a parse-cache miss: prelude and stdlib
        // came from process-wide memos.
        assert_eq!(stats.parse_new, 1, "{stats:?}");
    }

    #[test]
    fn body_edit_reuses_compiled_stdlib_verdicts() {
        let mut s = CompileSession::with_stdlib();
        s.update_source(
            "main.genus",
            "int main() { ArrayList[int] l = new ArrayList[int](); l.add(40); return l.get(0); }",
        );
        let r1 = s.run(Engine::Vm, Limits::default()).unwrap();
        assert_eq!(r1.rendered_value, "40");
        s.update_source(
            "main.genus",
            "int main() { ArrayList[int] l = new ArrayList[int](); l.add(42); return l.get(0); }",
        );
        let r2 = s.run(Engine::Vm, Limits::default()).unwrap();
        assert_eq!(r2.rendered_value, "42");
        let stats = s.stats();
        assert!(stats.units_not_rechecked() > 0, "{stats:?}");
    }

    #[test]
    fn unchanged_rerun_reuses_bytecode() {
        let mut s = CompileSession::new();
        s.update_source("m.genus", "int main() { return 6 * 7; }");
        s.run(Engine::Vm, Limits::default()).unwrap();
        let gen1 = s.generation();
        let code1 = s.vm_code.as_ref().map(|(_, c)| Arc::as_ptr(c));
        s.run(Engine::Vm, Limits::default()).unwrap();
        assert_eq!(s.generation(), gen1, "no-op re-check must not bump");
        let code2 = s.vm_code.as_ref().map(|(_, c)| Arc::as_ptr(c));
        assert_eq!(code1, code2, "bytecode must be reused across reruns");
        // An edit invalidates the cached bytecode.
        s.update_source("m.genus", "int main() { return 6 * 8; }");
        let r = s.run(Engine::Vm, Limits::default()).unwrap();
        assert_eq!(r.rendered_value, "48");
        assert_ne!(s.generation(), gen1);
    }

    #[test]
    fn all_engines_agree_in_session() {
        for engine in [Engine::Ast, Engine::Vm, Engine::Jit] {
            let mut s = CompileSession::with_stdlib();
            s.update_source(
                "main.genus",
                "int main() { ArrayList[int] l = new ArrayList[int](); l.add(7); return l.get(0) * 6; }",
            );
            let r = s.run(engine, Limits::default()).unwrap();
            assert_eq!(r.rendered_value, "42", "{engine:?}");
        }
    }

    #[test]
    fn session_errors_render_like_one_shot() {
        let mut s = CompileSession::new();
        s.update_source("main.genus", "int main() { return nope; }");
        let err = s.run(Engine::Ast, Limits::default()).unwrap_err();
        let one_shot = crate::run_simple("int main() { return nope; }").unwrap_err();
        assert_eq!(err, one_shot);
    }
}
