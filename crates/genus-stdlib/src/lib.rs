//! The Genus-source standard library: the core Java Collections Framework
//! port (§8.1) and the FindBugs-style graph library port (§8.2), plus the
//! matched Java-idiom corpora used by the evaluation metrics.
//!
//! # Examples
//!
//! ```
//! let names: Vec<&str> = genus_stdlib::sources().iter().map(|(n, _)| *n).collect();
//! assert!(names.contains(&"collections.genus"));
//! assert!(names.contains(&"graph.genus"));
//! ```

/// The core collections framework in Genus (List/ArrayList/LinkedList,
/// Set/HashSet/TreeSet, Map/HashMap/TreeMap, model-parameterized ordering
/// views).
pub const COLLECTIONS: &str = include_str!("../genus/collections.genus");

/// The graph library in Genus (GraphLike/Weighted/OrdRing constraints,
/// DualGraph model, DFIterator, SSSP, SCC) — Figures 3, 4, and 6.
pub const GRAPH: &str = include_str!("../genus/graph.genus");

/// Additional collection types (PriorityQueue, Stack, Queue) and generic
/// list algorithms (`sortList`, `binarySearch`, ...).
pub const UTILS: &str = include_str!("../genus/utils.genus");

/// The shapes hierarchy with the multimethod `ShapeIntersect` model and its
/// enrichment — Figure 8.
pub const SHAPES: &str = include_str!("../genus/shapes.genus");

/// Java-idiom corpus: the F-bounded graph library in the FindBugs style
/// (Figure 1), used by the §8.2 annotation-burden metric.
pub const JAVA_GRAPH: &str = include_str!("../java/graph.java");

/// Java-idiom corpus: Concept-pattern collections (Figure 2) with their
/// specification comments mentioning `ClassCastException`, used by the §8.1
/// safety metric.
pub const JAVA_COLLECTIONS: &str = include_str!("../java/collections.java");

/// All Genus standard-library sources, in load order.
pub fn sources() -> &'static [(&'static str, &'static str)] {
    &[
        ("collections.genus", COLLECTIONS),
        ("utils.genus", UTILS),
        ("graph.genus", GRAPH),
        ("shapes.genus", SHAPES),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn sources_are_nonempty() {
        for (name, src) in super::sources() {
            assert!(!src.trim().is_empty(), "{name} is empty");
        }
        assert!(!super::JAVA_GRAPH.trim().is_empty());
        assert!(!super::JAVA_COLLECTIONS.trim().is_empty());
    }
}
