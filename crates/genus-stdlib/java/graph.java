// Java-idiom corpus: the FindBugs graph library skeleton with mutually
// F-bounded vertex/edge parameters (paper Figure 1). This file is *data*
// for the section 8.2 annotation-burden metric; it is not compiled.

interface GraphVertex<ActualVertexType extends GraphVertex<ActualVertexType, ActualEdgeType>,
                      ActualEdgeType extends GraphEdge<ActualVertexType, ActualEdgeType>> {
    Iterable<ActualEdgeType> outgoingEdges();
    Iterable<ActualEdgeType> incomingEdges();
}

interface GraphEdge<ActualVertexType extends GraphVertex<ActualVertexType, ActualEdgeType>,
                    ActualEdgeType extends GraphEdge<ActualVertexType, ActualEdgeType>> {
    ActualVertexType source();
    ActualVertexType sink();
}

interface Graph<EdgeType extends GraphEdge<VertexType, EdgeType>,
                VertexType extends GraphVertex<VertexType, EdgeType>> {
    Iterable<VertexType> vertices();
    Iterable<EdgeType> edges();
    VertexType addVertex();
    EdgeType addEdge(VertexType from, VertexType to);
}

abstract class AbstractVertex<EdgeType extends AbstractEdge<EdgeType, ActualVertexType>,
                              ActualVertexType extends AbstractVertex<EdgeType, ActualVertexType>>
        implements GraphVertex<ActualVertexType, EdgeType> {
    Iterable<EdgeType> outs;
    Iterable<EdgeType> ins;
}

abstract class AbstractEdge<ActualEdgeType extends AbstractEdge<ActualEdgeType, VertexType>,
                            VertexType extends AbstractVertex<ActualEdgeType, VertexType>>
        implements GraphEdge<VertexType, ActualEdgeType> {
    VertexType from;
    VertexType to;
}

abstract class AbstractGraph<EdgeType extends AbstractEdge<EdgeType, VertexType>,
                             VertexType extends AbstractVertex<EdgeType, VertexType>>
        implements Graph<EdgeType, VertexType> {
    Iterable<VertexType> vertexList;
    Iterable<EdgeType> edgeList;
}

interface WeightedEdge<ActualVertexType extends GraphVertex<ActualVertexType, ActualEdgeType>,
                       ActualEdgeType extends GraphEdge<ActualVertexType, ActualEdgeType>>
        extends GraphEdge<ActualVertexType, ActualEdgeType> {
    double weight();
}

class DepthFirstSearch<GraphType extends Graph<EdgeType, VertexType>,
                       EdgeType extends GraphEdge<VertexType, EdgeType>,
                       VertexType extends GraphVertex<VertexType, EdgeType>> {
    GraphType graph;
}

class ShortestPath<GraphType extends Graph<EdgeType, VertexType>,
                   EdgeType extends WeightedEdge<VertexType, EdgeType>,
                   VertexType extends GraphVertex<VertexType, EdgeType>> {
    GraphType graph;
}

class StronglyConnectedComponents<GraphType extends Graph<EdgeType, VertexType>,
                                  EdgeType extends GraphEdge<VertexType, EdgeType>,
                                  VertexType extends GraphVertex<VertexType, EdgeType>> {
    DepthFirstSearch<GraphType, EdgeType, VertexType> forward;
    DepthFirstSearch<GraphType, EdgeType, VertexType> backward;
}

class TransposedGraph<GraphType extends Graph<EdgeType, VertexType>,
                      EdgeType extends GraphEdge<VertexType, EdgeType>,
                      VertexType extends GraphVertex<VertexType, EdgeType>>
        implements Graph<EdgeType, VertexType> {
    GraphType underlying;
}

// Concrete instantiations — even these must restate the mutual F-bounds.
class SimpleVertex extends AbstractVertex<SimpleEdge, SimpleVertex> {
    int id;
}

class SimpleEdge extends AbstractEdge<SimpleEdge, SimpleVertex>
        implements WeightedEdge<SimpleVertex, SimpleEdge> {
    double w;
}

class SimpleGraph extends AbstractGraph<SimpleEdge, SimpleVertex> {
}

class VertexIterator<VertexType extends GraphVertex<VertexType, EdgeType>,
                     EdgeType extends GraphEdge<VertexType, EdgeType>>
        implements Iterator<VertexType> {
    VertexType nextVertex;
}
