// Java-idiom corpus: Concept-pattern collections in the style of the Java
// Collections Framework (paper Figure 2), with specification comments
// matching the JCF javadoc. This file is *data* for the section 8.1 safety
// metric — the `ClassCastException` mentions below mirror the TreeSet /
// TreeMap specifications the paper counts (35 occurrences) — and for the
// descending-view line-count comparison. It is not compiled.

interface Comparator<T> {
    int compare(T o1, T o2);
}

class TreeSet<E> implements SortedSet<E> {
    /** Constructs a set ordered by the natural ordering of its elements.
     *  All elements inserted must implement Comparable; add throws
     *  ClassCastException otherwise. */
    TreeSet() {}

    /** Constructs a set ordered by the given comparator. There is no static
     *  check that two TreeSets use the same ordering. */
    TreeSet(Comparator<? super E> comparator) {}

    /** @throws ClassCastException if the specified object cannot be compared
     *  with the elements currently in this set */
    boolean add(E e) { return false; }

    /** @throws ClassCastException if the elements of the specified
     *  collection cannot be compared with the elements of this set */
    boolean addAll(Collection<? extends E> c) { return false; }

    /** @throws ClassCastException if the specified object cannot be compared
     *  with the elements currently in the set */
    boolean contains(Object o) { return false; }

    /** @throws ClassCastException if the specified object cannot be compared
     *  with the elements currently in this set */
    boolean remove(Object o) { return false; }

    /** @throws ClassCastException if fromElement or toElement cannot be
     *  compared with the elements in this set */
    SortedSet<E> subSet(E fromElement, E toElement) { return null; }

    /** @throws ClassCastException if toElement is not compatible with this
     *  set's comparator */
    SortedSet<E> headSet(E toElement) { return null; }

    /** @throws ClassCastException if fromElement is not compatible with this
     *  set's comparator */
    SortedSet<E> tailSet(E fromElement) { return null; }

    /** @throws ClassCastException if the specified element cannot be
     *  compared with the elements currently in the set */
    E ceiling(E e) { return null; }

    /** @throws ClassCastException if the specified element cannot be
     *  compared with the elements currently in the set */
    E floor(E e) { return null; }

    /** @throws ClassCastException if the specified element cannot be
     *  compared with the elements currently in the set */
    E higher(E e) { return null; }

    /** @throws ClassCastException if the specified element cannot be
     *  compared with the elements currently in the set */
    E lower(E e) { return null; }

    /** @throws ClassCastException if elements cannot be compared with one
     *  another using this set's ordering */
    E first() { return null; }

    /** @throws ClassCastException if elements cannot be compared with one
     *  another using this set's ordering */
    E last() { return null; }

    /** @throws ClassCastException if elements cannot be compared with one
     *  another using this set's ordering */
    E pollFirst() { return null; }

    /** @throws ClassCastException if elements cannot be compared with one
     *  another using this set's ordering */
    E pollLast() { return null; }

    /** @throws ClassCastException if the collection's elements cannot be
     *  compared using this set's ordering */
    boolean retainAll(Collection<?> c) { return false; }
}

class TreeMap<K, V> implements NavigableMap<K, V> {
    /** Constructs a map ordered by the natural ordering of its keys. All
     *  keys inserted must implement Comparable; put throws
     *  ClassCastException otherwise. */
    TreeMap() {}

    /** Constructs a map ordered by the given comparator. */
    TreeMap(Comparator<? super K> comparator) {}

    /** @throws ClassCastException if the specified key cannot be compared
     *  with the keys currently in the map */
    V put(K key, V value) { return null; }

    /** @throws ClassCastException if the specified key cannot be compared
     *  with the keys currently in the map */
    V get(Object key) { return null; }

    /** @throws ClassCastException if the specified key cannot be compared
     *  with the keys currently in the map */
    boolean containsKey(Object key) { return false; }

    /** @throws ClassCastException if the specified key cannot be compared
     *  with the keys currently in the map */
    V remove(Object key) { return null; }

    /** @throws ClassCastException if the keys in m cannot be compared with
     *  the keys currently in the map */
    void putAll(Map<? extends K, ? extends V> m) {}

    /** @throws ClassCastException if the specified key cannot be compared
     *  with the keys currently in the map */
    Map.Entry<K, V> ceilingEntry(K key) { return null; }

    /** @throws ClassCastException if the specified key cannot be compared
     *  with the keys currently in the map */
    K ceilingKey(K key) { return null; }

    /** @throws ClassCastException if the specified key cannot be compared
     *  with the keys currently in the map */
    Map.Entry<K, V> floorEntry(K key) { return null; }

    /** @throws ClassCastException if the specified key cannot be compared
     *  with the keys currently in the map */
    K floorKey(K key) { return null; }

    /** @throws ClassCastException if the specified key cannot be compared
     *  with the keys currently in the map */
    Map.Entry<K, V> higherEntry(K key) { return null; }

    /** @throws ClassCastException if the specified key cannot be compared
     *  with the keys currently in the map */
    K higherKey(K key) { return null; }

    /** @throws ClassCastException if the specified key cannot be compared
     *  with the keys currently in the map */
    Map.Entry<K, V> lowerEntry(K key) { return null; }

    /** @throws ClassCastException if the specified key cannot be compared
     *  with the keys currently in the map */
    K lowerKey(K key) { return null; }

    /** @throws ClassCastException if fromKey or toKey cannot be compared
     *  with the keys currently in the map */
    NavigableMap<K, V> subMap(K fromKey, K toKey) { return null; }

    /** @throws ClassCastException if toKey is not compatible with this
     *  map's comparator */
    NavigableMap<K, V> headMap(K toKey) { return null; }

    /** @throws ClassCastException if fromKey is not compatible with this
     *  map's comparator */
    NavigableMap<K, V> tailMap(K fromKey) { return null; }
}

// ---------------------------------------------------------------------
// The descending views: in JCF these are dedicated classes inside TreeMap.
// The Genus port replaces every line between the BEGIN/END markers with the
// ReverseCmp model and one descendingMap() method (section 8.1: 160 lines
// eliminated).
// ---------------------------------------------------------------------
// BEGIN DESCENDING VIEWS
class DescendingSubMap<K, V> extends NavigableSubMap<K, V> {
    DescendingSubMap(TreeMap<K, V> m) { super(m); }
    Comparator<? super K> reverseComparator;
    public Comparator<? super K> comparator() { return reverseComparator; }
    NavigableMap<K, V> descendingMapView;
    public K firstKey() { return m.lastKey(); }
    public K lastKey() { return m.firstKey(); }
    public Map.Entry<K, V> firstEntry() { return m.lastEntry(); }
    public Map.Entry<K, V> lastEntry() { return m.firstEntry(); }
    public Map.Entry<K, V> pollFirstEntry() { return m.pollLastEntry(); }
    public Map.Entry<K, V> pollLastEntry() { return m.pollFirstEntry(); }
    public K ceilingKey(K key) { return m.floorKey(key); }
    public K floorKey(K key) { return m.ceilingKey(key); }
    public K higherKey(K key) { return m.lowerKey(key); }
    public K lowerKey(K key) { return m.higherKey(key); }
    public Map.Entry<K, V> ceilingEntry(K key) { return m.floorEntry(key); }
    public Map.Entry<K, V> floorEntry(K key) { return m.ceilingEntry(key); }
    public Map.Entry<K, V> higherEntry(K key) { return m.lowerEntry(key); }
    public Map.Entry<K, V> lowerEntry(K key) { return m.higherEntry(key); }
    public NavigableMap<K, V> subMap(K fromKey, K toKey) { return m.subMap(toKey, fromKey); }
    public NavigableMap<K, V> headMap(K toKey) { return m.tailMap(toKey); }
    public NavigableMap<K, V> tailMap(K fromKey) { return m.headMap(fromKey); }
    public Iterator<K> keyIterator() { return new DescendingKeyIterator<K, V>(m); }
    public Iterator<K> descendingKeyIterator() { return m.keyIterator(); }
}

class DescendingKeySet<E> extends AbstractSet<E> implements NavigableSet<E> {
    DescendingKeySet(NavigableMap<E, Object> m) { this.m = m; }
    NavigableMap<E, Object> m;
    public int size() { return m.size(); }
    public boolean isEmpty() { return m.isEmpty(); }
    public boolean contains(Object o) { return m.containsKey(o); }
    public boolean remove(Object o) { return m.remove(o) != null; }
    public void clear() { m.clear(); }
    public E first() { return m.lastKey(); }
    public E last() { return m.firstKey(); }
    public E ceiling(E e) { return m.floorKey(e); }
    public E floor(E e) { return m.ceilingKey(e); }
    public E higher(E e) { return m.lowerKey(e); }
    public E lower(E e) { return m.higherKey(e); }
    public E pollFirst() { Map.Entry<E, Object> e = m.pollLastEntry(); return e == null ? null : e.getKey(); }
    public E pollLast() { Map.Entry<E, Object> e = m.pollFirstEntry(); return e == null ? null : e.getKey(); }
    public Iterator<E> iterator() { return m.descendingKeyIterator(); }
    public Iterator<E> descendingIterator() { return m.keyIterator(); }
    public NavigableSet<E> descendingSet() { return new AscendingKeySet<E>(m); }
    public NavigableSet<E> subSet(E from, E to) { return new DescendingKeySet<E>(m.subMap(to, from)); }
    public NavigableSet<E> headSet(E to) { return new DescendingKeySet<E>(m.tailMap(to)); }
    public NavigableSet<E> tailSet(E from) { return new DescendingKeySet<E>(m.headMap(from)); }
}

class DescendingKeyIterator<K, V> implements Iterator<K> {
    DescendingKeyIterator(TreeMap<K, V> m) { this.m = m; next = m.getLastEntry(); }
    TreeMap<K, V> m;
    TreeMap.Entry<K, V> next;
    TreeMap.Entry<K, V> lastReturned;
    public boolean hasNext() { return next != null; }
    public K next() {
        TreeMap.Entry<K, V> e = next;
        if (e == null) { throw new NoSuchElementException(); }
        next = m.predecessor(e);
        lastReturned = e;
        return e.key;
    }
    public void remove() {
        if (lastReturned == null) { throw new IllegalStateException(); }
        m.deleteEntry(lastReturned);
        lastReturned = null;
    }
}

class DescendingEntryIterator<K, V> implements Iterator<Map.Entry<K, V>> {
    DescendingEntryIterator(TreeMap<K, V> m) { this.m = m; next = m.getLastEntry(); }
    TreeMap<K, V> m;
    TreeMap.Entry<K, V> next;
    TreeMap.Entry<K, V> lastReturned;
    public boolean hasNext() { return next != null; }
    public Map.Entry<K, V> next() {
        TreeMap.Entry<K, V> e = next;
        if (e == null) { throw new NoSuchElementException(); }
        next = m.predecessor(e);
        lastReturned = e;
        return e;
    }
    public void remove() {
        if (lastReturned == null) { throw new IllegalStateException(); }
        m.deleteEntry(lastReturned);
        lastReturned = null;
    }
}

class DescendingEntrySet<K, V> extends AbstractSet<Map.Entry<K, V>> {
    DescendingEntrySet(TreeMap<K, V> m) { this.m = m; }
    TreeMap<K, V> m;
    public int size() { return m.size(); }
    public void clear() { m.clear(); }
    public Iterator<Map.Entry<K, V>> iterator() { return new DescendingEntryIterator<K, V>(m); }
    public boolean contains(Object o) {
        if (!(o instanceof Map.Entry)) { return false; }
        Map.Entry<K, V> entry = (Map.Entry<K, V>) o;
        V value = m.get(entry.getKey());
        return value != null && value.equals(entry.getValue());
    }
    public boolean remove(Object o) {
        if (!(o instanceof Map.Entry)) { return false; }
        Map.Entry<K, V> entry = (Map.Entry<K, V>) o;
        V value = m.get(entry.getKey());
        if (value != null && value.equals(entry.getValue())) {
            m.remove(entry.getKey());
            return true;
        }
        return false;
    }
}

class DescendingValuesCollection<K, V> extends AbstractCollection<V> {
    DescendingValuesCollection(TreeMap<K, V> m) { this.m = m; }
    TreeMap<K, V> m;
    public int size() { return m.size(); }
    public boolean isEmpty() { return m.isEmpty(); }
    public void clear() { m.clear(); }
    public boolean contains(Object o) { return m.containsValue(o); }
    public Iterator<V> iterator() { return new DescendingValueIterator<K, V>(m); }
    public boolean remove(Object o) {
        for (TreeMap.Entry<K, V> e = m.getLastEntry(); e != null; e = m.predecessor(e)) {
            if (e.getValue().equals(o)) {
                m.deleteEntry(e);
                return true;
            }
        }
        return false;
    }
}

class DescendingValueIterator<K, V> implements Iterator<V> {
    DescendingValueIterator(TreeMap<K, V> m) { this.m = m; next = m.getLastEntry(); }
    TreeMap<K, V> m;
    TreeMap.Entry<K, V> next;
    TreeMap.Entry<K, V> lastReturned;
    public boolean hasNext() { return next != null; }
    public V next() {
        TreeMap.Entry<K, V> e = next;
        if (e == null) { throw new NoSuchElementException(); }
        next = m.predecessor(e);
        lastReturned = e;
        return e.value;
    }
    public void remove() {
        if (lastReturned == null) { throw new IllegalStateException(); }
        m.deleteEntry(lastReturned);
        lastReturned = null;
    }
}

class DescendingMapView<K, V> implements NavigableMap<K, V> {
    DescendingMapView(TreeMap<K, V> m) { this.m = m; }
    TreeMap<K, V> m;
    public int size() { return m.size(); }
    public boolean isEmpty() { return m.isEmpty(); }
    public void clear() { m.clear(); }
    public boolean containsKey(Object key) { return m.containsKey(key); }
    public boolean containsValue(Object value) { return m.containsValue(value); }
    public V get(Object key) { return m.get(key); }
    public V put(K key, V value) { return m.put(key, value); }
    public V remove(Object key) { return m.remove(key); }
    public K firstKey() { return m.lastKey(); }
    public K lastKey() { return m.firstKey(); }
    public Map.Entry<K, V> firstEntry() { return m.lastEntry(); }
    public Map.Entry<K, V> lastEntry() { return m.firstEntry(); }
    public Map.Entry<K, V> pollFirstEntry() { return m.pollLastEntry(); }
    public Map.Entry<K, V> pollLastEntry() { return m.pollFirstEntry(); }
    public NavigableMap<K, V> descendingMap() { return m; }
    public NavigableSet<K> navigableKeySet() { return new DescendingKeySet<K>(m); }
    public NavigableSet<K> descendingKeySet() { return m.navigableKeySet(); }
    public Collection<V> values() { return new DescendingValuesCollection<K, V>(m); }
    public Set<Map.Entry<K, V>> entrySet() { return new DescendingEntrySet<K, V>(m); }
    public Iterator<K> keyIterator() { return new DescendingKeyIterator<K, V>(m); }
    public Iterator<K> descendingKeyIterator() { return m.keyIterator(); }
}
// END DESCENDING VIEWS
