//! Semantic types, models, and constraint instantiations.

use crate::table::{ClassId, ConstraintId, ModelId, Table};

/// A universally or existentially quantified type variable, allocated in a
/// [`Table`]. Fresh variables are also created by capture conversion (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TvId(pub u32);

/// A model variable: the witness bound by a `where` clause
/// (`where Comparable[T] c`), by an existential, or by capture conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MvId(pub u32);

pub use genus_syntax::ast::PrimTy;

/// A semantic type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// Primitive type (usable as a type argument, §3.1).
    Prim(PrimTy),
    /// Instantiated class or interface. `models` witness the class's
    /// intrinsic `where` constraints, in declaration order — they are part
    /// of the type (§4.5).
    Class {
        /// The class or interface.
        id: ClassId,
        /// Type arguments, one per class type parameter.
        args: Vec<Type>,
        /// Witnesses for the class's `where` constraints.
        models: Vec<Model>,
    },
    /// A type variable.
    Var(TvId),
    /// `T[]`.
    Array(Box<Type>),
    /// The type of `null`, subtype of every reference type.
    Null,
    /// A packed existential: `[some X.. where K[X..] m..] body` (§6.1).
    Existential {
        /// Bound type variables.
        params: Vec<TvId>,
        /// Optional upper (subtype) bounds, one per parameter — inline so
        /// that substitution reaches them (desugared `? extends T`
        /// wildcards carry the enclosing declaration's type variables).
        bounds: Vec<Option<Type>>,
        /// Bound constraint witnesses.
        wheres: Vec<WhereReq>,
        /// Quantified body.
        body: Box<Type>,
    },
    /// A unification variable used during inference; never appears in
    /// checked programs.
    Infer(u32),
}

impl Type {
    /// `void`, usable only as a return type.
    pub fn void() -> Type {
        Type::Prim(PrimTy::Void)
    }

    /// Whether this is `void`.
    pub fn is_void(&self) -> bool {
        matches!(self, Type::Prim(PrimTy::Void))
    }

    /// Whether this is a primitive (non-void) type.
    pub fn is_primitive(&self) -> bool {
        matches!(self, Type::Prim(p) if *p != PrimTy::Void)
    }

    /// Whether the type is a reference type (can hold `null`).
    pub fn is_reference(&self) -> bool {
        matches!(
            self,
            Type::Class { .. } | Type::Array(_) | Type::Null | Type::Existential { .. }
        )
    }

    /// Whether any [`Type::Infer`] or [`Model::Infer`] occurs in this type.
    pub fn has_infer(&self) -> bool {
        match self {
            Type::Prim(_) | Type::Var(_) | Type::Null => false,
            Type::Infer(_) => true,
            Type::Array(e) => e.has_infer(),
            Type::Class { args, models, .. } => {
                args.iter().any(Type::has_infer) || models.iter().any(Model::has_infer)
            }
            Type::Existential {
                bounds,
                wheres,
                body,
                ..
            } => {
                body.has_infer()
                    || wheres
                        .iter()
                        .any(|w| w.inst.args.iter().any(Type::has_infer))
                    || bounds.iter().flatten().any(Type::has_infer)
            }
        }
    }

    /// Collects the free type variables of the type into `out`.
    pub fn free_tvs(&self, out: &mut Vec<TvId>) {
        match self {
            Type::Prim(_) | Type::Null | Type::Infer(_) => {}
            Type::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Type::Array(e) => e.free_tvs(out),
            Type::Class { args, models, .. } => {
                for a in args {
                    a.free_tvs(out);
                }
                for m in models {
                    m.free_tvs(out);
                }
            }
            Type::Existential {
                params,
                bounds,
                wheres,
                body,
            } => {
                let mut inner = Vec::new();
                body.free_tvs(&mut inner);
                for w in wheres {
                    for a in &w.inst.args {
                        a.free_tvs(&mut inner);
                    }
                }
                for b in bounds.iter().flatten() {
                    b.free_tvs(&mut inner);
                }
                for v in inner {
                    if !params.contains(&v) && !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
        }
    }

    /// Renders the type against a table (resolving names).
    pub fn display<'a>(&'a self, table: &'a Table) -> crate::display::TypeDisplay<'a> {
        crate::display::TypeDisplay { ty: self, table }
    }
}

/// A constraint applied to argument types, e.g. `GraphLike[V, E]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConstraintInst {
    /// The constraint.
    pub id: ConstraintId,
    /// Argument types.
    pub args: Vec<Type>,
}

impl ConstraintInst {
    /// Renders against a table.
    pub fn display<'a>(&'a self, table: &'a Table) -> crate::display::ConstraintDisplay<'a> {
        crate::display::ConstraintDisplay { inst: self, table }
    }
}

/// A `where`-clause requirement as recorded in declarations: the constraint
/// plus the model variable that names its witness inside the scope.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WhereReq {
    /// Required constraint.
    pub inst: ConstraintInst,
    /// The witness variable bound for the scope.
    pub mv: MvId,
    /// Whether the programmer named it explicitly (`where Eq[T] e`).
    pub named: bool,
}

/// A model: evidence that types satisfy a constraint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Model {
    /// An instance of a declared model, with type and model arguments for
    /// its generic signature (parameterized models, Figure 5).
    Decl {
        /// The model declaration.
        id: ModelId,
        /// Type arguments.
        type_args: Vec<Type>,
        /// Witnesses for the model's own `where` constraints.
        model_args: Vec<Model>,
    },
    /// The natural model: the types structurally conform to the constraint
    /// (§3.3). Identified by the constraint instantiation it witnesses.
    Natural {
        /// The witnessed constraint instantiation.
        inst: ConstraintInst,
    },
    /// A model variable bound by a `where` clause or existential.
    Var(MvId),
    /// A unification variable for model inference; never appears in checked
    /// programs.
    Infer(u32),
}

impl Model {
    /// Whether any inference variable occurs in the model.
    pub fn has_infer(&self) -> bool {
        match self {
            Model::Var(_) => false,
            Model::Infer(_) => true,
            Model::Natural { inst } => inst.args.iter().any(Type::has_infer),
            Model::Decl {
                type_args,
                model_args,
                ..
            } => type_args.iter().any(Type::has_infer) || model_args.iter().any(Model::has_infer),
        }
    }

    /// Collects free type variables.
    pub fn free_tvs(&self, out: &mut Vec<TvId>) {
        match self {
            Model::Var(_) | Model::Infer(_) => {}
            Model::Natural { inst } => {
                for a in &inst.args {
                    a.free_tvs(out);
                }
            }
            Model::Decl {
                type_args,
                model_args,
                ..
            } => {
                for a in type_args {
                    a.free_tvs(out);
                }
                for m in model_args {
                    m.free_tvs(out);
                }
            }
        }
    }

    /// Collects free model variables.
    pub fn free_mvs(&self, out: &mut Vec<MvId>) {
        match self {
            Model::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Model::Infer(_) | Model::Natural { .. } => {}
            Model::Decl { model_args, .. } => {
                for m in model_args {
                    m.free_mvs(out);
                }
            }
        }
    }

    /// Renders against a table.
    pub fn display<'a>(&'a self, table: &'a Table) -> crate::display::ModelDisplay<'a> {
        crate::display::ModelDisplay { model: self, table }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(Type::Prim(PrimTy::Int).is_primitive());
        assert!(!Type::Prim(PrimTy::Void).is_primitive());
        assert!(Type::Prim(PrimTy::Void).is_void());
        assert!(Type::Null.is_reference());
        assert!(Type::Array(Box::new(Type::Prim(PrimTy::Int))).is_reference());
        assert!(!Type::Var(TvId(0)).is_reference());
    }

    #[test]
    fn infer_detection() {
        let t = Type::Array(Box::new(Type::Infer(3)));
        assert!(t.has_infer());
        let c = Type::Class {
            id: ClassId(0),
            args: vec![Type::Prim(PrimTy::Int)],
            models: vec![Model::Infer(0)],
        };
        assert!(c.has_infer());
    }

    #[test]
    fn free_tvs_skip_bound() {
        let ex = Type::Existential {
            params: vec![TvId(1)],
            bounds: vec![None],
            wheres: vec![],
            body: Box::new(Type::Class {
                id: ClassId(0),
                args: vec![Type::Var(TvId(1)), Type::Var(TvId(2))],
                models: vec![],
            }),
        };
        let mut out = Vec::new();
        ex.free_tvs(&mut out);
        assert_eq!(out, vec![TvId(2)]);
    }
}
