//! Nominal subtyping over semantic types.
//!
//! Genus subtyping is deliberately simple (§6.1 separates subtyping from
//! coercion): generic classes are invariant in both their type arguments and
//! their models — `Set[String with CIEq]` is unrelated to `Set[String]` —
//! and existential packing is a coercion, not a subtyping step.

use crate::subst::Subst;
use crate::table::Table;
use crate::ty::{Model, TvId, Type};
use genus_common::Symbol;

/// Whether `sub` is a subtype of `sup`.
pub fn is_subtype(table: &Table, sub: &Type, sup: &Type) -> bool {
    if type_eq(table, sub, sup) {
        return true;
    }
    // null <: every reference type.
    if matches!(sub, Type::Null) && sup.is_reference() {
        return true;
    }
    // Every reference type (and type variables, which range over any type
    // but are only subtypes of Object when used as references) <: Object.
    if let Some(obj) = object_class(table) {
        if let Type::Class { id, args, .. } = sup {
            if *id == obj && args.is_empty() && sub.is_reference() {
                return true;
            }
        }
    }
    // Only the hierarchy-walking cases below are worth memoizing; the
    // fast paths above already handled everything else.
    if !matches!(sub, Type::Class { .. } | Type::Var(_)) {
        return false;
    }
    if let Some(r) = table.cache.subtype_get(sub, sup) {
        return r;
    }
    let r = subtype_walk(table, sub, sup);
    table.cache.subtype_put(sub, sup, r);
    r
}

/// The uncached hierarchy walk backing [`is_subtype`]. Recursive calls
/// re-enter the cached entry point, so every level along the walk is
/// memoized independently.
fn subtype_walk(table: &Table, sub: &Type, sup: &Type) -> bool {
    match (sub, sup) {
        // A type variable is a subtype of its declared upper bound's
        // supertypes.
        (Type::Var(v), _) => match table.tv_bound(*v) {
            Some(b) => is_subtype(table, b, sup),
            None => false,
        },
        (Type::Class { id, args, models }, _) => {
            let def = table.class(*id);
            let subst = Subst::from_pairs(&def.params, args)
                .with_models(&def.wheres.iter().map(|w| w.mv).collect::<Vec<_>>(), models);
            if let Some(ext) = &def.extends {
                if is_subtype(table, &subst.apply(ext), sup) {
                    return true;
                }
            }
            for i in &def.implements {
                if is_subtype(table, &subst.apply(i), sup) {
                    return true;
                }
            }
            false
        }
        _ => false,
    }
}

/// Structural equality of types, with alpha-equivalence for existentials.
pub fn type_eq(table: &Table, a: &Type, b: &Type) -> bool {
    alpha_eq(table, a, b, &mut Vec::new())
}

fn alpha_eq(table: &Table, a: &Type, b: &Type, map: &mut Vec<(TvId, TvId)>) -> bool {
    match (a, b) {
        (Type::Prim(x), Type::Prim(y)) => x == y,
        (Type::Null, Type::Null) => true,
        (Type::Infer(x), Type::Infer(y)) => x == y,
        (Type::Var(x), Type::Var(y)) => {
            for (l, r) in map.iter().rev() {
                if l == x || r == y {
                    return l == x && r == y;
                }
            }
            x == y
        }
        (Type::Array(x), Type::Array(y)) => alpha_eq(table, x, y, map),
        (
            Type::Class {
                id: i1,
                args: a1,
                models: m1,
            },
            Type::Class {
                id: i2,
                args: a2,
                models: m2,
            },
        ) => {
            i1 == i2
                && a1.len() == a2.len()
                && m1.len() == m2.len()
                && a1.iter().zip(a2).all(|(x, y)| alpha_eq(table, x, y, map))
                && m1
                    .iter()
                    .zip(m2)
                    .all(|(x, y)| model_alpha_eq(table, x, y, map))
        }
        (
            Type::Existential {
                params: p1,
                bounds: bo1,
                wheres: w1,
                body: b1,
            },
            Type::Existential {
                params: p2,
                bounds: bo2,
                wheres: w2,
                body: b2,
            },
        ) => {
            if p1.len() != p2.len() || w1.len() != w2.len() || bo1.len() != bo2.len() {
                return false;
            }
            let depth = map.len();
            for (x, y) in p1.iter().zip(p2) {
                map.push((*x, *y));
            }
            let bounds_ok = bo1.iter().zip(bo2).all(|(x, y)| match (x, y) {
                (None, None) => true,
                (Some(bx), Some(by)) => {
                    let mut m2 = map.clone();
                    alpha_eq(table, bx, by, &mut m2)
                }
                _ => false,
            });
            let ok = bounds_ok
                && w1.iter().zip(w2).all(|(x, y)| {
                    x.inst.id == y.inst.id
                        && x.inst.args.len() == y.inst.args.len()
                        && x.inst
                            .args
                            .iter()
                            .zip(&y.inst.args)
                            .all(|(u, v)| alpha_eq(table, u, v, map))
                })
                && alpha_eq(table, b1, b2, map);
            map.truncate(depth);
            ok
        }
        _ => false,
    }
}

fn model_alpha_eq(table: &Table, a: &Model, b: &Model, map: &mut Vec<(TvId, TvId)>) -> bool {
    match (a, b) {
        (Model::Var(x), Model::Var(y)) => x == y,
        (Model::Infer(x), Model::Infer(y)) => x == y,
        (Model::Natural { inst: i1 }, Model::Natural { inst: i2 }) => {
            i1.id == i2.id
                && i1.args.len() == i2.args.len()
                && i1
                    .args
                    .iter()
                    .zip(&i2.args)
                    .all(|(x, y)| alpha_eq(table, x, y, map))
        }
        (
            Model::Decl {
                id: d1,
                type_args: t1,
                model_args: m1,
            },
            Model::Decl {
                id: d2,
                type_args: t2,
                model_args: m2,
            },
        ) => {
            d1 == d2
                && t1.len() == t2.len()
                && m1.len() == m2.len()
                && t1.iter().zip(t2).all(|(x, y)| alpha_eq(table, x, y, map))
                && m1
                    .iter()
                    .zip(m2)
                    .all(|(x, y)| model_alpha_eq(table, x, y, map))
        }
        _ => false,
    }
}

/// Structural equality of models.
pub fn model_eq(table: &Table, a: &Model, b: &Model) -> bool {
    model_alpha_eq(table, a, b, &mut Vec::new())
}

fn object_class(table: &Table) -> Option<crate::table::ClassId> {
    table.lookup_class(Symbol::intern("Object"))
}

/// Finds the instantiation of `sub` (a class type) viewed at ancestor class
/// `target`, if any: e.g. `ArrayList[String]` viewed at `List` is
/// `List[String]`. Used by call-site inference to lift argument types to
/// parameter classes before unification.
pub fn supertype_at(table: &Table, sub: &Type, target: crate::table::ClassId) -> Option<Type> {
    match sub {
        Type::Class { id, args, models } => {
            if *id == target {
                return Some(sub.clone());
            }
            let def = table.class(*id);
            let subst = Subst::from_pairs(&def.params, args)
                .with_models(&def.wheres.iter().map(|w| w.mv).collect::<Vec<_>>(), models);
            if let Some(ext) = &def.extends {
                if let Some(t) = supertype_at(table, &subst.apply(ext), target) {
                    return Some(t);
                }
            }
            for i in &def.implements {
                if let Some(t) = supertype_at(table, &subst.apply(i), target) {
                    return Some(t);
                }
            }
            None
        }
        Type::Var(v) => table
            .tv_bound(*v)
            .and_then(|b| supertype_at(table, b, target)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{ClassDef, Table};
    use crate::ty::PrimTy;
    use genus_common::{Span, Symbol};

    fn simple_class(tb: &mut Table, name: &str, extends: Option<Type>) -> crate::table::ClassId {
        tb.add_class(ClassDef {
            name: Symbol::intern(name),
            is_interface: false,
            is_abstract: false,
            params: vec![],
            wheres: vec![],
            extends,
            implements: vec![],
            fields: vec![],
            ctors: vec![],
            methods: vec![],
            span: Span::dummy(),
        })
    }

    #[test]
    fn nominal_chain() {
        let mut tb = Table::new();
        let obj = simple_class(&mut tb, "Object", None);
        let obj_ty = Type::Class {
            id: obj,
            args: vec![],
            models: vec![],
        };
        let shape = simple_class(&mut tb, "Shape", Some(obj_ty.clone()));
        let shape_ty = Type::Class {
            id: shape,
            args: vec![],
            models: vec![],
        };
        let circle = simple_class(&mut tb, "Circle", Some(shape_ty.clone()));
        let circle_ty = Type::Class {
            id: circle,
            args: vec![],
            models: vec![],
        };

        assert!(is_subtype(&tb, &circle_ty, &shape_ty));
        assert!(is_subtype(&tb, &circle_ty, &obj_ty));
        assert!(!is_subtype(&tb, &shape_ty, &circle_ty));
        assert!(is_subtype(&tb, &Type::Null, &circle_ty));
        assert!(!is_subtype(&tb, &Type::Prim(PrimTy::Int), &obj_ty));
    }

    #[test]
    fn generics_are_invariant() {
        let mut tb = Table::new();
        let _obj = simple_class(&mut tb, "Object", None);
        let t = tb.fresh_tv(Symbol::intern("T"));
        let list = tb.add_class(ClassDef {
            name: Symbol::intern("List"),
            is_interface: true,
            is_abstract: false,
            params: vec![t],
            wheres: vec![],
            extends: None,
            implements: vec![],
            fields: vec![],
            ctors: vec![],
            methods: vec![],
            span: Span::dummy(),
        });
        let li = Type::Class {
            id: list,
            args: vec![Type::Prim(PrimTy::Int)],
            models: vec![],
        };
        let ld = Type::Class {
            id: list,
            args: vec![Type::Prim(PrimTy::Double)],
            models: vec![],
        };
        assert!(is_subtype(&tb, &li, &li));
        assert!(!is_subtype(&tb, &li, &ld));
    }

    #[test]
    fn existential_alpha_equivalence() {
        let mut tb = Table::new();
        let u = tb.fresh_tv(Symbol::intern("U"));
        let v = tb.fresh_tv(Symbol::intern("V"));
        let ex1 = Type::Existential {
            params: vec![u],
            bounds: vec![None],
            wheres: vec![],
            body: Box::new(Type::Var(u)),
        };
        let ex2 = Type::Existential {
            params: vec![v],
            bounds: vec![None],
            wheres: vec![],
            body: Box::new(Type::Var(v)),
        };
        assert!(type_eq(&tb, &ex1, &ex2));
        assert!(is_subtype(&tb, &ex1, &ex2));
    }

    #[test]
    fn supertype_at_walks_hierarchy() {
        let mut tb = Table::new();
        let obj = simple_class(&mut tb, "Object", None);
        let obj_ty = Type::Class {
            id: obj,
            args: vec![],
            models: vec![],
        };
        let e = tb.fresh_tv(Symbol::intern("E"));
        let list = tb.add_class(ClassDef {
            name: Symbol::intern("List"),
            is_interface: true,
            is_abstract: false,
            params: vec![e],
            wheres: vec![],
            extends: None,
            implements: vec![],
            fields: vec![],
            ctors: vec![],
            methods: vec![],
            span: Span::dummy(),
        });
        let e2 = tb.fresh_tv(Symbol::intern("E"));
        let list_of_e2 = Type::Class {
            id: list,
            args: vec![Type::Var(e2)],
            models: vec![],
        };
        let alist = tb.add_class(ClassDef {
            name: Symbol::intern("ArrayList"),
            is_interface: false,
            is_abstract: false,
            params: vec![e2],
            wheres: vec![],
            extends: Some(obj_ty),
            implements: vec![list_of_e2],
            fields: vec![],
            ctors: vec![],
            methods: vec![],
            span: Span::dummy(),
        });
        let al_int = Type::Class {
            id: alist,
            args: vec![Type::Prim(PrimTy::Int)],
            models: vec![],
        };
        let sup = supertype_at(&tb, &al_int, list).expect("should reach List");
        assert_eq!(
            sup,
            Type::Class {
                id: list,
                args: vec![Type::Prim(PrimTy::Int)],
                models: vec![]
            }
        );
        assert!(is_subtype(
            &tb,
            &al_int,
            &Type::Class {
                id: list,
                args: vec![Type::Prim(PrimTy::Int)],
                models: vec![]
            }
        ));
    }
}
