//! Semantic representation of Genus programs: types, constraints, models,
//! the declaration table, substitution, unification, subtyping, and variance
//! inference.
//!
//! The key semantic notions of the paper live here:
//!
//! * [`Type`] — includes *model-dependent types*: a class type carries the
//!   models witnessing its intrinsic `where`-clause constraints, so
//!   `Set[String with CIEq]` and `Set[String]` are different types (§4.5).
//! * [`Model`] — a witness for a constraint instantiation: a declared model
//!   (possibly applied to type/model arguments), a *natural model* derived
//!   from structural conformance (§3.3), or a model variable bound by a
//!   `where` clause or an existential.
//! * [`Table`] — the collected program: classes/interfaces, constraints,
//!   models, `use` declarations, and free-standing generic methods.
//! * [`variance`] — per-parameter variance inference for constraints, used
//!   by constraint entailment (§5.2).
//!
//! # Examples
//!
//! ```
//! use genus_types::{Table, Type, PrimTy};
//!
//! let table = Table::new();
//! let t = Type::Prim(PrimTy::Int);
//! assert_eq!(t.display(&table).to_string(), "int");
//! ```

pub mod cache;
pub mod display;
pub mod serial;
pub mod subst;
pub mod subtype;
pub mod table;
pub mod ty;
pub mod unify;
pub mod variance;

pub use cache::{caches_enabled, set_caches_enabled, CacheStats, QueryCache};
pub use genus_syntax::ast::PrimTy;
pub use subst::Subst;
pub use subtype::is_subtype;
pub use table::{
    ClassDef, ClassId, ConstraintDef, ConstraintId, ConstraintOp, CtorDef, FieldDef, MethodDef,
    ModelDef, ModelId, ModelMethod, Table, UseDef,
};
pub use ty::{ConstraintInst, Model, MvId, TvId, Type, WhereReq};
pub use variance::{compute_variances, Variance};
