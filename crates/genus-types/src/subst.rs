//! Substitution of type and model variables.

use crate::ty::{ConstraintInst, Model, MvId, TvId, Type, WhereReq};
use std::collections::HashMap;

/// A simultaneous substitution: type variables to types and model variables
/// to models. Also used to solve inference variables during unification.
#[derive(Debug, Clone, Default)]
pub struct Subst {
    /// Type-variable bindings.
    pub tys: HashMap<TvId, Type>,
    /// Model-variable bindings.
    pub models: HashMap<MvId, Model>,
    /// Inference-variable solutions (types).
    pub infer_tys: HashMap<u32, Type>,
    /// Inference-variable solutions (models).
    pub infer_models: HashMap<u32, Model>,
}

impl Subst {
    /// The empty substitution.
    pub fn new() -> Self {
        Subst::default()
    }

    /// Builds a substitution mapping `params[i] -> args[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_pairs(params: &[TvId], args: &[Type]) -> Self {
        assert_eq!(params.len(), args.len(), "arity mismatch in substitution");
        let mut s = Subst::new();
        for (p, a) in params.iter().zip(args) {
            s.tys.insert(*p, a.clone());
        }
        s
    }

    /// Adds model-variable bindings `mvs[i] -> ms[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn with_models(mut self, mvs: &[MvId], ms: &[Model]) -> Self {
        assert_eq!(mvs.len(), ms.len(), "model arity mismatch in substitution");
        for (v, m) in mvs.iter().zip(ms) {
            self.models.insert(*v, m.clone());
        }
        self
    }

    /// Whether the substitution binds nothing.
    pub fn is_empty(&self) -> bool {
        self.tys.is_empty()
            && self.models.is_empty()
            && self.infer_tys.is_empty()
            && self.infer_models.is_empty()
    }

    /// Applies the substitution to a type.
    pub fn apply(&self, t: &Type) -> Type {
        match t {
            Type::Prim(_) | Type::Null => t.clone(),
            Type::Var(v) => match self.tys.get(v) {
                Some(new) => new.clone(),
                None => t.clone(),
            },
            Type::Infer(i) => match self.infer_tys.get(i) {
                // Solutions may themselves contain inference variables that
                // were solved later; re-apply until stable.
                Some(new) => self.apply(new),
                None => t.clone(),
            },
            Type::Array(e) => Type::Array(Box::new(self.apply(e))),
            Type::Class { id, args, models } => Type::Class {
                id: *id,
                args: args.iter().map(|a| self.apply(a)).collect(),
                models: models.iter().map(|m| self.apply_model(m)).collect(),
            },
            Type::Existential {
                params,
                bounds,
                wheres,
                body,
            } => {
                // Bound variables are globally unique, so capture cannot
                // occur; simply avoid substituting the binders themselves.
                let mut inner = self.clone();
                for p in params {
                    inner.tys.remove(p);
                }
                for w in wheres {
                    inner.models.remove(&w.mv);
                }
                Type::Existential {
                    params: params.clone(),
                    bounds: bounds
                        .iter()
                        .map(|b| b.as_ref().map(|t| inner.apply(t)))
                        .collect(),
                    wheres: wheres.iter().map(|w| inner.apply_where(w)).collect(),
                    body: Box::new(inner.apply(body)),
                }
            }
        }
    }

    /// Applies the substitution to a model.
    pub fn apply_model(&self, m: &Model) -> Model {
        match m {
            Model::Var(v) => match self.models.get(v) {
                Some(new) => new.clone(),
                None => m.clone(),
            },
            Model::Infer(i) => match self.infer_models.get(i) {
                Some(new) => self.apply_model(new),
                None => m.clone(),
            },
            Model::Natural { inst } => Model::Natural {
                inst: self.apply_inst(inst),
            },
            Model::Decl {
                id,
                type_args,
                model_args,
            } => Model::Decl {
                id: *id,
                type_args: type_args.iter().map(|a| self.apply(a)).collect(),
                model_args: model_args.iter().map(|x| self.apply_model(x)).collect(),
            },
        }
    }

    /// Applies the substitution to a constraint instantiation.
    pub fn apply_inst(&self, inst: &ConstraintInst) -> ConstraintInst {
        ConstraintInst {
            id: inst.id,
            args: inst.args.iter().map(|a| self.apply(a)).collect(),
        }
    }

    /// Applies the substitution to a where-requirement.
    pub fn apply_where(&self, w: &WhereReq) -> WhereReq {
        WhereReq {
            inst: self.apply_inst(&w.inst),
            mv: w.mv,
            named: w.named,
        }
    }

    /// Composes: the result applies `self` first, then `other`.
    pub fn then(&self, other: &Subst) -> Subst {
        let mut out = Subst::new();
        for (v, t) in &self.tys {
            out.tys.insert(*v, other.apply(t));
        }
        for (v, m) in &self.models {
            out.models.insert(*v, other.apply_model(m));
        }
        for (i, t) in &self.infer_tys {
            out.infer_tys.insert(*i, other.apply(t));
        }
        for (i, m) in &self.infer_models {
            out.infer_models.insert(*i, other.apply_model(m));
        }
        for (v, t) in &other.tys {
            out.tys.entry(*v).or_insert_with(|| t.clone());
        }
        for (v, m) in &other.models {
            out.models.entry(*v).or_insert_with(|| m.clone());
        }
        for (i, t) in &other.infer_tys {
            out.infer_tys.entry(*i).or_insert_with(|| t.clone());
        }
        for (i, m) in &other.infer_models {
            out.infer_models.entry(*i).or_insert_with(|| m.clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::ClassId;
    use crate::ty::PrimTy;

    fn tv(n: u32) -> TvId {
        TvId(n)
    }

    #[test]
    fn substitutes_vars() {
        let s = Subst::from_pairs(&[tv(0)], &[Type::Prim(PrimTy::Int)]);
        assert_eq!(s.apply(&Type::Var(tv(0))), Type::Prim(PrimTy::Int));
        assert_eq!(s.apply(&Type::Var(tv(1))), Type::Var(tv(1)));
        assert_eq!(
            s.apply(&Type::Array(Box::new(Type::Var(tv(0))))),
            Type::Array(Box::new(Type::Prim(PrimTy::Int)))
        );
    }

    #[test]
    fn substitutes_inside_class_and_models() {
        let s = Subst::from_pairs(&[tv(0)], &[Type::Prim(PrimTy::Double)]);
        let c = Type::Class {
            id: ClassId(3),
            args: vec![Type::Var(tv(0))],
            models: vec![Model::Natural {
                inst: ConstraintInst {
                    id: crate::table::ConstraintId(0),
                    args: vec![Type::Var(tv(0))],
                },
            }],
        };
        match s.apply(&c) {
            Type::Class { args, models, .. } => {
                assert_eq!(args[0], Type::Prim(PrimTy::Double));
                match &models[0] {
                    Model::Natural { inst } => assert_eq!(inst.args[0], Type::Prim(PrimTy::Double)),
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn existential_binders_shadow() {
        let s = Subst::from_pairs(&[tv(0)], &[Type::Prim(PrimTy::Int)]);
        let ex = Type::Existential {
            params: vec![tv(0)],
            bounds: vec![None],
            wheres: vec![],
            body: Box::new(Type::Var(tv(0))),
        };
        // The bound tv(0) must not be substituted.
        assert_eq!(s.apply(&ex), ex);
    }

    #[test]
    fn infer_solutions_chase() {
        let mut s = Subst::new();
        s.infer_tys.insert(0, Type::Infer(1));
        s.infer_tys.insert(1, Type::Prim(PrimTy::Int));
        assert_eq!(s.apply(&Type::Infer(0)), Type::Prim(PrimTy::Int));
    }

    #[test]
    fn composition_applies_in_order() {
        let s1 = Subst::from_pairs(&[tv(0)], &[Type::Var(tv(1))]);
        let s2 = Subst::from_pairs(&[tv(1)], &[Type::Prim(PrimTy::Int)]);
        let c = s1.then(&s2);
        assert_eq!(c.apply(&Type::Var(tv(0))), Type::Prim(PrimTy::Int));
        assert_eq!(c.apply(&Type::Var(tv(1))), Type::Prim(PrimTy::Int));
    }
}
