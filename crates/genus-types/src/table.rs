//! The declaration table: the collected semantic view of a Genus program.

use crate::ty::{ConstraintInst, Model, MvId, TvId, Type, WhereReq};
use genus_common::{Span, Symbol};
use genus_syntax::ast;
use std::collections::HashMap;

/// Identifies a class or interface in a [`Table`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub u32);

/// Identifies a constraint in a [`Table`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConstraintId(pub u32);

/// Identifies a declared model in a [`Table`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModelId(pub u32);

/// A collected class or interface.
#[derive(Debug, Clone)]
pub struct ClassDef {
    /// Declared name.
    pub name: Symbol,
    /// `true` for interfaces.
    pub is_interface: bool,
    /// `true` for abstract classes.
    pub is_abstract: bool,
    /// Type parameters.
    pub params: Vec<TvId>,
    /// Intrinsic `where` constraints — their witnesses are part of every
    /// instantiated type of this class (§4.5).
    pub wheres: Vec<WhereReq>,
    /// Superclass (`Object` for classes that do not declare one), `None`
    /// only for `Object` itself and for interfaces.
    pub extends: Option<Type>,
    /// Implemented (classes) or extended (interfaces) interfaces.
    pub implements: Vec<Type>,
    /// Fields.
    pub fields: Vec<FieldDef>,
    /// Constructors.
    pub ctors: Vec<CtorDef>,
    /// Methods.
    pub methods: Vec<MethodDef>,
    /// Declaration site.
    pub span: Span,
}

/// A collected field.
#[derive(Debug, Clone)]
pub struct FieldDef {
    /// Field name.
    pub name: Symbol,
    /// Field type (over the class's type parameters).
    pub ty: Type,
    /// Whether static.
    pub is_static: bool,
    /// Optional initializer (checked lazily with the class context).
    pub init: Option<ast::Expr>,
    /// Declaration site.
    pub span: Span,
}

/// A collected constructor.
#[derive(Debug, Clone)]
pub struct CtorDef {
    /// Parameter names and types.
    pub params: Vec<(Symbol, Type)>,
    /// Body (checked in a later phase).
    pub body: ast::Block,
    /// Declaration site.
    pub span: Span,
}

/// A collected method signature (class methods, interface methods, and
/// free-standing top-level methods).
#[derive(Debug, Clone)]
pub struct MethodDef {
    /// Method name.
    pub name: Symbol,
    /// Whether static.
    pub is_static: bool,
    /// Whether abstract (no body).
    pub is_abstract: bool,
    /// Whether implemented natively by the runtime.
    pub is_native: bool,
    /// Method-level type parameters.
    pub tparams: Vec<TvId>,
    /// Method-level `where` constraints (model genericity, §3.2).
    pub wheres: Vec<WhereReq>,
    /// Parameter names and types.
    pub params: Vec<(Symbol, Type)>,
    /// Return type.
    pub ret: Type,
    /// Body, if any (checked in a later phase).
    pub body: Option<ast::Block>,
    /// Declaration site.
    pub span: Span,
}

/// A collected constraint (a predicate over its parameters, §3.1).
#[derive(Debug, Clone)]
pub struct ConstraintDef {
    /// Constraint name.
    pub name: Symbol,
    /// Predicate parameters.
    pub params: Vec<TvId>,
    /// Prerequisite constraints (`extends`).
    pub prereqs: Vec<ConstraintInst>,
    /// Required operations.
    pub ops: Vec<ConstraintOp>,
    /// Per-parameter variance, filled in by [`crate::variance`].
    pub variance: Vec<crate::variance::Variance>,
    /// Declaration site.
    pub span: Span,
}

/// One operation required by a constraint.
#[derive(Debug, Clone)]
pub struct ConstraintOp {
    /// Operation name.
    pub name: Symbol,
    /// Whether `static` (invoked on the type: `T.zero()`).
    pub is_static: bool,
    /// Which constraint parameter is the receiver.
    pub receiver: TvId,
    /// Parameter names and types (over the constraint's parameters).
    pub params: Vec<(Symbol, Type)>,
    /// Return type.
    pub ret: Type,
    /// Declaration site.
    pub span: Span,
}

/// A collected model declaration.
#[derive(Debug, Clone)]
pub struct ModelDef {
    /// Model name.
    pub name: Symbol,
    /// Type parameters (parameterized models, Figure 5).
    pub tparams: Vec<TvId>,
    /// The model's own `where` constraints.
    pub wheres: Vec<WhereReq>,
    /// The constraint instantiation this model witnesses.
    pub for_inst: ConstraintInst,
    /// Inherited models (§5.3) — resolved model expressions.
    pub extends: Vec<Model>,
    /// Method definitions, including enrichments (marked).
    pub methods: Vec<ModelMethod>,
    /// Declaration site.
    pub span: Span,
}

/// A method definition in a model or enrichment. Receiver and parameter
/// types may be proper subtypes of the constrained types — models are
/// multimethods (§5.1).
#[derive(Debug, Clone)]
pub struct ModelMethod {
    /// Operation name.
    pub name: Symbol,
    /// Whether it implements a static constraint operation.
    pub is_static: bool,
    /// Receiver type.
    pub receiver: Type,
    /// Parameter names and types.
    pub params: Vec<(Symbol, Type)>,
    /// Return type.
    pub ret: Type,
    /// Body.
    pub body: ast::Block,
    /// Whether added by an `enrich` declaration.
    pub from_enrich: bool,
    /// Declaration site.
    pub span: Span,
}

/// A `use` declaration, possibly parameterized (§4.4, §4.7).
#[derive(Debug, Clone)]
pub struct UseDef {
    /// Type parameters of the parameterized form.
    pub tparams: Vec<TvId>,
    /// Subgoal constraints (`use [E where Cloneable[E] c] ...`).
    pub wheres: Vec<WhereReq>,
    /// The enabled model.
    pub model: Model,
    /// The constraint it is enabled for.
    pub for_inst: ConstraintInst,
    /// Declaration site.
    pub span: Span,
}

/// The collected program.
#[derive(Debug, Default)]
pub struct Table {
    /// All classes and interfaces.
    pub classes: Vec<ClassDef>,
    /// All constraints.
    pub constraints: Vec<ConstraintDef>,
    /// All declared models.
    pub models: Vec<ModelDef>,
    /// All `use` declarations.
    pub uses: Vec<UseDef>,
    /// Free-standing top-level methods.
    pub globals: Vec<MethodDef>,

    /// Name lookup for classes/interfaces.
    pub class_by_name: HashMap<Symbol, ClassId>,
    /// Name lookup for constraints.
    pub constraint_by_name: HashMap<Symbol, ConstraintId>,
    /// Name lookup for models.
    pub model_by_name: HashMap<Symbol, ModelId>,

    tv_names: Vec<Symbol>,
    tv_bounds: Vec<Option<Type>>,
    mv_names: Vec<Symbol>,

    /// Memo tables for table-pure queries (subtyping, prerequisite
    /// closures, conformance, resolution). Mutating methods that could
    /// invalidate existing keys clear it; see [`crate::cache`].
    pub cache: crate::cache::QueryCache,
}

impl Table {
    /// Creates an empty table.
    pub fn new() -> Self {
        Table::default()
    }

    /// Allocates a fresh type variable with a display name.
    pub fn fresh_tv(&mut self, name: Symbol) -> TvId {
        let id = TvId(self.tv_names.len() as u32);
        self.tv_names.push(name);
        self.tv_bounds.push(None);
        id
    }

    /// Allocates a fresh type variable with an upper bound (used by
    /// desugared `? extends T` wildcards).
    pub fn fresh_tv_bounded(&mut self, name: Symbol, bound: Option<Type>) -> TvId {
        let id = self.fresh_tv(name);
        self.tv_bounds[id.0 as usize] = bound;
        id
    }

    /// Allocates a fresh model variable with a display name.
    pub fn fresh_mv(&mut self, name: Symbol) -> MvId {
        let id = MvId(self.mv_names.len() as u32);
        self.mv_names.push(name);
        id
    }

    /// Display name of a type variable.
    pub fn tv_name(&self, tv: TvId) -> Symbol {
        self.tv_names[tv.0 as usize]
    }

    /// Upper bound of a type variable, if any.
    pub fn tv_bound(&self, tv: TvId) -> Option<&Type> {
        self.tv_bounds[tv.0 as usize].as_ref()
    }

    /// Sets the upper bound of a type variable.
    pub fn set_tv_bound(&mut self, tv: TvId, bound: Option<Type>) {
        self.tv_bounds[tv.0 as usize] = bound;
    }

    /// Display name of a model variable.
    pub fn mv_name(&self, mv: MvId) -> Symbol {
        self.mv_names[mv.0 as usize]
    }

    /// Number of allocated type variables.
    pub fn tv_count(&self) -> usize {
        self.tv_names.len()
    }

    /// Number of allocated model variables.
    pub fn mv_count(&self) -> usize {
        self.mv_names.len()
    }

    /// Looks up a class by id.
    pub fn class(&self, id: ClassId) -> &ClassDef {
        &self.classes[id.0 as usize]
    }

    /// Looks up a constraint by id.
    pub fn constraint(&self, id: ConstraintId) -> &ConstraintDef {
        &self.constraints[id.0 as usize]
    }

    /// Looks up a model by id.
    pub fn model(&self, id: ModelId) -> &ModelDef {
        &self.models[id.0 as usize]
    }

    /// Registers a class and indexes its name. Returns its id.
    pub fn add_class(&mut self, def: ClassDef) -> ClassId {
        self.cache.clear();
        let id = ClassId(self.classes.len() as u32);
        self.class_by_name.insert(def.name, id);
        self.classes.push(def);
        id
    }

    /// Registers a constraint and indexes its name. Returns its id.
    pub fn add_constraint(&mut self, def: ConstraintDef) -> ConstraintId {
        self.cache.clear();
        let id = ConstraintId(self.constraints.len() as u32);
        self.constraint_by_name.insert(def.name, id);
        self.constraints.push(def);
        id
    }

    /// Registers a model and indexes its name. Returns its id.
    pub fn add_model(&mut self, def: ModelDef) -> ModelId {
        self.cache.clear();
        let id = ModelId(self.models.len() as u32);
        self.model_by_name.insert(def.name, id);
        self.models.push(def);
        id
    }

    /// Finds a class by name.
    pub fn lookup_class(&self, name: Symbol) -> Option<ClassId> {
        self.class_by_name.get(&name).copied()
    }

    /// Finds a constraint by name.
    pub fn lookup_constraint(&self, name: Symbol) -> Option<ConstraintId> {
        self.constraint_by_name.get(&name).copied()
    }

    /// Finds a model by name.
    pub fn lookup_model(&self, name: Symbol) -> Option<ModelId> {
        self.model_by_name.get(&name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_vars_are_distinct() {
        let mut t = Table::new();
        let a = t.fresh_tv(Symbol::intern("T"));
        let b = t.fresh_tv(Symbol::intern("U"));
        assert_ne!(a, b);
        assert_eq!(t.tv_name(a).as_str(), "T");
        assert_eq!(t.tv_name(b).as_str(), "U");
        let m = t.fresh_mv(Symbol::intern("c"));
        assert_eq!(t.mv_name(m).as_str(), "c");
    }

    #[test]
    fn bounded_tv() {
        let mut t = Table::new();
        let a = t.fresh_tv_bounded(Symbol::intern("U"), Some(Type::Null));
        assert_eq!(t.tv_bound(a), Some(&Type::Null));
    }
}
