//! Variance inference for constraint parameters (§5.2).
//!
//! "Variance is inferred automatically by the compiler, with bivariance
//! downgraded to contravariance." A model for `Eq[Shape]` can witness
//! `Eq[Circle]` because `Eq`'s parameter occurs only in input
//! (contravariant) positions.

use crate::table::Table;
use crate::ty::{Model, TvId, Type};

/// Variance of one constraint parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variance {
    /// Parameter does not occur (downgraded to contravariant for entailment,
    /// per the paper, but recorded faithfully).
    Bivariant,
    /// Occurs only in output positions: a model for `K[S]` witnesses `K[T]`
    /// when `S <: T`.
    Covariant,
    /// Occurs only in input positions: a model for `K[S]` witnesses `K[T]`
    /// when `T <: S`.
    Contravariant,
    /// Occurs in both (or under invariant positions): only exact matches.
    Invariant,
}

impl Variance {
    /// Least upper bound in the lattice `Bi < {Co, Contra} < In`.
    pub fn join(self, other: Variance) -> Variance {
        use Variance::*;
        match (self, other) {
            (Bivariant, v) | (v, Bivariant) => v,
            (Covariant, Covariant) => Covariant,
            (Contravariant, Contravariant) => Contravariant,
            _ => Invariant,
        }
    }

    /// The variance used for entailment: bivariance downgrades to
    /// contravariance (§5.2).
    pub fn for_entailment(self) -> Variance {
        match self {
            Variance::Bivariant => Variance::Contravariant,
            v => v,
        }
    }
}

/// Computes the variance vectors of all constraints in the table by fixpoint
/// iteration (constraints may reference each other through prerequisites).
pub fn compute_variances(table: &Table) -> Vec<Vec<Variance>> {
    let n = table.constraints.len();
    let mut result: Vec<Vec<Variance>> = (0..n)
        .map(|i| vec![Variance::Bivariant; table.constraints[i].params.len()])
        .collect();
    loop {
        let mut changed = false;
        for (ci, def) in table.constraints.iter().enumerate() {
            for (pi, &param) in def.params.iter().enumerate() {
                let mut v = Variance::Bivariant;
                for op in &def.ops {
                    // Instance-operation receivers are value inputs.
                    if !op.is_static && op.receiver == param {
                        v = v.join(Variance::Contravariant);
                    }
                    for (_, pty) in &op.params {
                        v = v.join(occurrence(param, pty, Variance::Contravariant));
                    }
                    v = v.join(occurrence(param, &op.ret, Variance::Covariant));
                }
                for pre in &def.prereqs {
                    let pre_vars = &result[pre.id.0 as usize];
                    for (ai, arg) in pre.args.iter().enumerate() {
                        let pv = pre_vars.get(ai).copied().unwrap_or(Variance::Invariant);
                        match arg {
                            Type::Var(x) if *x == param => {
                                v = v.join(pv);
                            }
                            _ => {
                                if occurs_anywhere(param, arg) {
                                    v = v.join(Variance::Invariant);
                                }
                            }
                        }
                    }
                }
                if result[ci][pi] != v {
                    // The lattice is finite and `join` is monotone, so this
                    // terminates.
                    result[ci][pi] = result[ci][pi].join(v);
                    changed = true;
                }
            }
        }
        if !changed {
            return result;
        }
    }
}

/// Variance contribution of occurrences of `param` in `ty` at position
/// `pos`. Occurrences nested inside generic arguments or arrays are
/// invariant (generics are invariant in Genus).
fn occurrence(param: TvId, ty: &Type, pos: Variance) -> Variance {
    match ty {
        Type::Var(v) if *v == param => pos,
        Type::Var(_) | Type::Prim(_) | Type::Null | Type::Infer(_) => Variance::Bivariant,
        Type::Array(e) => {
            if occurs_anywhere(param, e) {
                Variance::Invariant
            } else {
                Variance::Bivariant
            }
        }
        Type::Class { args, models, .. } => {
            let in_args = args.iter().any(|a| occurs_anywhere(param, a));
            let in_models = models.iter().any(|m| occurs_in_model(param, m));
            if in_args || in_models {
                Variance::Invariant
            } else {
                Variance::Bivariant
            }
        }
        Type::Existential { wheres, body, .. } => {
            let inside = occurs_anywhere(param, body)
                || wheres
                    .iter()
                    .any(|w| w.inst.args.iter().any(|a| occurs_anywhere(param, a)));
            if inside {
                Variance::Invariant
            } else {
                Variance::Bivariant
            }
        }
    }
}

fn occurs_anywhere(param: TvId, ty: &Type) -> bool {
    let mut tvs = Vec::new();
    ty.free_tvs(&mut tvs);
    tvs.contains(&param)
}

fn occurs_in_model(param: TvId, m: &Model) -> bool {
    let mut tvs = Vec::new();
    m.free_tvs(&mut tvs);
    tvs.contains(&param)
}

/// Applies computed variances back into the table.
pub fn store_variances(table: &mut Table) {
    let vs = compute_variances(table);
    for (i, v) in vs.into_iter().enumerate() {
        table.constraints[i].variance = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{ConstraintDef, ConstraintOp, Table};
    use crate::ty::{ConstraintInst, PrimTy};
    use genus_common::{Span, Symbol};

    fn op(
        name: &str,
        is_static: bool,
        receiver: TvId,
        params: Vec<Type>,
        ret: Type,
    ) -> ConstraintOp {
        ConstraintOp {
            name: Symbol::intern(name),
            is_static,
            receiver,
            params: params
                .into_iter()
                .enumerate()
                .map(|(i, t)| (Symbol::intern(&format!("p{i}")), t))
                .collect(),
            ret,
            span: Span::dummy(),
        }
    }

    #[test]
    fn eq_is_contravariant() {
        let mut tb = Table::new();
        let t = tb.fresh_tv(Symbol::intern("T"));
        tb.add_constraint(ConstraintDef {
            name: Symbol::intern("Eq"),
            params: vec![t],
            prereqs: vec![],
            ops: vec![op(
                "equals",
                false,
                t,
                vec![Type::Var(t)],
                Type::Prim(PrimTy::Boolean),
            )],
            variance: vec![],
            span: Span::dummy(),
        });
        let v = compute_variances(&tb);
        assert_eq!(v[0], vec![Variance::Contravariant]);
    }

    #[test]
    fn comparable_inherits_contra_via_prereq() {
        let mut tb = Table::new();
        let t = tb.fresh_tv(Symbol::intern("T"));
        let eq = tb.add_constraint(ConstraintDef {
            name: Symbol::intern("Eq"),
            params: vec![t],
            prereqs: vec![],
            ops: vec![op(
                "equals",
                false,
                t,
                vec![Type::Var(t)],
                Type::Prim(PrimTy::Boolean),
            )],
            variance: vec![],
            span: Span::dummy(),
        });
        let u = tb.fresh_tv(Symbol::intern("T"));
        tb.add_constraint(ConstraintDef {
            name: Symbol::intern("Comparable"),
            params: vec![u],
            prereqs: vec![ConstraintInst {
                id: eq,
                args: vec![Type::Var(u)],
            }],
            ops: vec![op(
                "compareTo",
                false,
                u,
                vec![Type::Var(u)],
                Type::Prim(PrimTy::Int),
            )],
            variance: vec![],
            span: Span::dummy(),
        });
        let v = compute_variances(&tb);
        assert_eq!(v[1], vec![Variance::Contravariant]);
    }

    #[test]
    fn ordring_is_invariant() {
        let mut tb = Table::new();
        let t = tb.fresh_tv(Symbol::intern("T"));
        tb.add_constraint(ConstraintDef {
            name: Symbol::intern("OrdRing"),
            params: vec![t],
            prereqs: vec![],
            ops: vec![
                op("zero", true, t, vec![], Type::Var(t)),
                op("plus", false, t, vec![Type::Var(t)], Type::Var(t)),
            ],
            variance: vec![],
            span: Span::dummy(),
        });
        let v = compute_variances(&tb);
        assert_eq!(v[0], vec![Variance::Invariant]);
    }

    #[test]
    fn unused_param_is_bivariant_then_downgraded() {
        let mut tb = Table::new();
        let t = tb.fresh_tv(Symbol::intern("T"));
        tb.add_constraint(ConstraintDef {
            name: Symbol::intern("Marker"),
            params: vec![t],
            prereqs: vec![],
            ops: vec![],
            variance: vec![],
            span: Span::dummy(),
        });
        let v = compute_variances(&tb);
        assert_eq!(v[0], vec![Variance::Bivariant]);
        assert_eq!(v[0][0].for_entailment(), Variance::Contravariant);
    }

    #[test]
    fn covariant_output_only() {
        let mut tb = Table::new();
        let t = tb.fresh_tv(Symbol::intern("T"));
        let r = tb.fresh_tv(Symbol::intern("R"));
        tb.add_constraint(ConstraintDef {
            name: Symbol::intern("Producer"),
            params: vec![t, r],
            prereqs: vec![],
            ops: vec![op("produce", false, t, vec![], Type::Var(r))],
            variance: vec![],
            span: Span::dummy(),
        });
        let v = compute_variances(&tb);
        assert_eq!(v[0], vec![Variance::Contravariant, Variance::Covariant]);
    }

    #[test]
    fn nested_occurrence_is_invariant() {
        let mut tb = Table::new();
        let t = tb.fresh_tv(Symbol::intern("T"));
        tb.add_constraint(ConstraintDef {
            name: Symbol::intern("ArrayLike"),
            params: vec![t],
            prereqs: vec![],
            ops: vec![op(
                "toArray",
                false,
                t,
                vec![],
                Type::Array(Box::new(Type::Var(t))),
            )],
            variance: vec![],
            span: Span::dummy(),
        });
        let v = compute_variances(&tb);
        assert_eq!(v[0], vec![Variance::Invariant]);
    }
}
