//! Query caches hung off [`Table`](crate::table::Table).
//!
//! The checker's hot queries — subtype tests, constraint prerequisite
//! closures, structural-conformance checks, and default model resolution
//! — are pure functions of the declaration table (plus, for resolution,
//! the set of in-scope `use` declarations). `QueryCache` memoizes them
//! behind interior mutability so read-only query code (`&Table`) can
//! populate the caches.
//!
//! Invalidation: callers that mutate the table in ways existing keys
//! could observe (registering declarations, rewriting signatures in
//! place) must call [`QueryCache::clear`]. Allocating *fresh* type/model
//! variables is safe without clearing — previously cached keys cannot
//! mention ids that did not exist yet. After the checker's
//! signature-completion pass the table is never mutated again, so the
//! caches live untouched for the rest of checking and interpretation.
//!
//! The `no-cache` cargo feature (or [`set_caches_enabled`] at runtime)
//! turns every cache into a pass-through so benches can A/B the caching
//! layer and tests can compare cached against uncached results.

use crate::ty::{ConstraintInst, Type};
use genus_common::FastMap;
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

thread_local! {
    /// Per-thread switch. Defaults to enabled unless the `no-cache`
    /// feature is active; flips at runtime via [`set_caches_enabled`].
    /// Thread-local so parallel tests toggling it cannot interfere.
    static CACHES_DISABLED: Cell<bool> = const { Cell::new(cfg!(feature = "no-cache")) };
}

/// Whether the query caches are active on the current thread.
pub fn caches_enabled() -> bool {
    !CACHES_DISABLED.with(Cell::get)
}

/// Enables or disables all query caches on the current thread (A/B
/// benching and differential tests). Disabling does not drop
/// already-stored entries; it only bypasses them.
pub fn set_caches_enabled(on: bool) {
    CACHES_DISABLED.with(|c| c.set(!on));
}

/// Hit/miss counters for every cache, snapshot via [`QueryCache::stats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    pub subtype_hits: u64,
    pub subtype_misses: u64,
    pub prereq_hits: u64,
    pub prereq_misses: u64,
    pub conforms_hits: u64,
    pub conforms_misses: u64,
    pub resolve_hits: u64,
    pub resolve_misses: u64,
}

impl CacheStats {
    /// Total hits across all caches.
    pub fn hits(&self) -> u64 {
        self.subtype_hits + self.prereq_hits + self.conforms_hits + self.resolve_hits
    }

    /// Total misses across all caches.
    pub fn misses(&self) -> u64 {
        self.subtype_misses + self.prereq_misses + self.conforms_misses + self.resolve_misses
    }
}

fn hash_pair(sub: &Type, sup: &Type) -> u64 {
    let mut h = DefaultHasher::new();
    sub.hash(&mut h);
    sup.hash(&mut h);
    h.finish()
}

/// One hash bucket of structurally keyed subtype verdicts.
type SubtypeBucket = Vec<(Type, Type, bool)>;

/// Memo tables for table-pure queries. See the module docs for the
/// soundness/invalidation story.
#[derive(Default)]
pub struct QueryCache {
    /// `(sub, sup) → bool`, bucketed by hash so lookups need no key
    /// clone (collisions resolved by structural comparison).
    subtype: RefCell<FastMap<u64, SubtypeBucket>>,
    /// Constraint prerequisite closures (computed by the checker).
    prereq: RefCell<FastMap<ConstraintInst, Arc<Vec<ConstraintInst>>>>,
    /// Structural conformance (`natural::conforms`) results.
    conforms: RefCell<FastMap<ConstraintInst, bool>>,
    /// Opaque slot for the checker's resolution memo: the value type
    /// involves checker-crate types, so it is stored type-erased here
    /// and downcast by `genus-check`. `Send` so a checked program (and
    /// its table) can move onto the interpreter thread.
    resolve_slot: RefCell<Option<Box<dyn Any + Send>>>,

    subtype_hits: Cell<u64>,
    subtype_misses: Cell<u64>,
    prereq_hits: Cell<u64>,
    prereq_misses: Cell<u64>,
    conforms_hits: Cell<u64>,
    conforms_misses: Cell<u64>,
    resolve_hits: Cell<u64>,
    resolve_misses: Cell<u64>,
}

impl std::fmt::Debug for QueryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryCache")
            .field(
                "subtype_entries",
                &self.subtype.borrow().values().map(Vec::len).sum::<usize>(),
            )
            .field("prereq_entries", &self.prereq.borrow().len())
            .field("conforms_entries", &self.conforms.borrow().len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl QueryCache {
    /// Drops every entry (including the checker's resolution memo).
    /// Counters survive so benches can observe lifetime totals.
    pub fn clear(&self) {
        self.subtype.borrow_mut().clear();
        self.prereq.borrow_mut().clear();
        self.conforms.borrow_mut().clear();
        *self.resolve_slot.borrow_mut() = None;
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            subtype_hits: self.subtype_hits.get(),
            subtype_misses: self.subtype_misses.get(),
            prereq_hits: self.prereq_hits.get(),
            prereq_misses: self.prereq_misses.get(),
            conforms_hits: self.conforms_hits.get(),
            conforms_misses: self.conforms_misses.get(),
            resolve_hits: self.resolve_hits.get(),
            resolve_misses: self.resolve_misses.get(),
        }
    }

    /// Cached subtype verdict, if present.
    pub fn subtype_get(&self, sub: &Type, sup: &Type) -> Option<bool> {
        if !caches_enabled() {
            return None;
        }
        let key = hash_pair(sub, sup);
        let map = self.subtype.borrow();
        let found = map
            .get(&key)
            .and_then(|bucket| bucket.iter().find(|(s, p, _)| s == sub && p == sup))
            .map(|&(_, _, r)| r);
        match found {
            Some(r) => {
                self.subtype_hits.set(self.subtype_hits.get() + 1);
                Some(r)
            }
            None => {
                self.subtype_misses.set(self.subtype_misses.get() + 1);
                None
            }
        }
    }

    /// Stores a subtype verdict.
    pub fn subtype_put(&self, sub: &Type, sup: &Type, result: bool) {
        if !caches_enabled() {
            return;
        }
        let key = hash_pair(sub, sup);
        self.subtype
            .borrow_mut()
            .entry(key)
            .or_default()
            .push((sub.clone(), sup.clone(), result));
    }

    /// Cached prerequisite closure for a constraint instantiation.
    pub fn prereq_get(&self, inst: &ConstraintInst) -> Option<Arc<Vec<ConstraintInst>>> {
        if !caches_enabled() {
            return None;
        }
        match self.prereq.borrow().get(inst) {
            Some(rc) => {
                self.prereq_hits.set(self.prereq_hits.get() + 1);
                Some(Arc::clone(rc))
            }
            None => {
                self.prereq_misses.set(self.prereq_misses.get() + 1);
                None
            }
        }
    }

    /// Stores a prerequisite closure.
    pub fn prereq_put(&self, inst: &ConstraintInst, closure: Arc<Vec<ConstraintInst>>) {
        if !caches_enabled() {
            return;
        }
        self.prereq.borrow_mut().insert(inst.clone(), closure);
    }

    /// Cached structural-conformance verdict.
    pub fn conforms_get(&self, inst: &ConstraintInst) -> Option<bool> {
        if !caches_enabled() {
            return None;
        }
        match self.conforms.borrow().get(inst).copied() {
            Some(r) => {
                self.conforms_hits.set(self.conforms_hits.get() + 1);
                Some(r)
            }
            None => {
                self.conforms_misses.set(self.conforms_misses.get() + 1);
                None
            }
        }
    }

    /// Stores a structural-conformance verdict.
    pub fn conforms_put(&self, inst: &ConstraintInst, result: bool) {
        if !caches_enabled() {
            return;
        }
        self.conforms.borrow_mut().insert(inst.clone(), result);
    }

    /// Grants scoped access to the type-erased resolution-memo slot.
    /// The closure must not re-enter `with_resolve_slot`.
    pub fn with_resolve_slot<R>(&self, f: impl FnOnce(&mut Option<Box<dyn Any + Send>>) -> R) -> R {
        f(&mut self.resolve_slot.borrow_mut())
    }

    /// Bumps the resolution-memo hit counter (owned by `genus-check`).
    pub fn note_resolve_hit(&self) {
        self.resolve_hits.set(self.resolve_hits.get() + 1);
    }

    /// Bumps the resolution-memo miss counter.
    pub fn note_resolve_miss(&self) {
        self.resolve_misses.set(self.resolve_misses.get() + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::PrimTy;

    fn int() -> Type {
        Type::Prim(PrimTy::Int)
    }

    fn long() -> Type {
        Type::Prim(PrimTy::Long)
    }

    #[test]
    fn subtype_roundtrip_and_stats() {
        // These tests exercise cache mechanics directly, so force the
        // caches on even when built with `--features no-cache`.
        set_caches_enabled(true);
        let c = QueryCache::default();
        assert_eq!(c.subtype_get(&int(), &long()), None);
        c.subtype_put(&int(), &long(), true);
        assert_eq!(c.subtype_get(&int(), &long()), Some(true));
        assert_eq!(c.subtype_get(&long(), &int()), None);
        let s = c.stats();
        assert_eq!(s.subtype_hits, 1);
        assert_eq!(s.subtype_misses, 2);
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        // These tests exercise cache mechanics directly, so force the
        // caches on even when built with `--features no-cache`.
        set_caches_enabled(true);
        let c = QueryCache::default();
        c.subtype_put(&int(), &int(), true);
        assert_eq!(c.subtype_get(&int(), &int()), Some(true));
        c.clear();
        assert_eq!(c.subtype_get(&int(), &int()), None);
        assert_eq!(c.stats().subtype_hits, 1);
    }

    #[test]
    fn disabling_bypasses_lookups() {
        // These tests exercise cache mechanics directly, so force the
        // caches on even when built with `--features no-cache`.
        set_caches_enabled(true);
        let c = QueryCache::default();
        c.subtype_put(&int(), &int(), true);
        set_caches_enabled(false);
        assert_eq!(c.subtype_get(&int(), &int()), None);
        set_caches_enabled(true);
        assert_eq!(c.subtype_get(&int(), &int()), Some(true));
    }

    #[test]
    fn resolve_slot_stores_any() {
        let c = QueryCache::default();
        c.with_resolve_slot(|slot| *slot = Some(Box::new(41u32)));
        let v = c.with_resolve_slot(|slot| {
            let m = slot.as_mut().unwrap().downcast_mut::<u32>().unwrap();
            *m += 1;
            *m
        });
        assert_eq!(v, 42);
    }
}
