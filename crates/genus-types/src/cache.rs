//! Query caches hung off [`Table`](crate::table::Table).
//!
//! The checker's hot queries — subtype tests, constraint prerequisite
//! closures, structural-conformance checks, and default model resolution
//! — are pure functions of the declaration table (plus, for resolution,
//! the set of in-scope `use` declarations). `QueryCache` memoizes them
//! behind interior mutability so read-only query code (`&Table`) can
//! populate the caches.
//!
//! Invalidation: callers that mutate the table in ways existing keys
//! could observe (registering declarations, rewriting signatures in
//! place) must call [`QueryCache::clear`]. Allocating *fresh* type/model
//! variables is safe without clearing — previously cached keys cannot
//! mention ids that did not exist yet. After the checker's
//! signature-completion pass the table is never mutated again, so the
//! caches live untouched for the rest of checking and interpretation.
//!
//! The `no-cache` cargo feature (or [`set_caches_enabled`] at runtime)
//! turns every cache into a pass-through so benches can A/B the caching
//! layer and tests can compare cached against uncached results.

use crate::ty::{ConstraintInst, Type};
use genus_common::FastMap;
use std::any::Any;
use std::cell::Cell;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

thread_local! {
    /// Per-thread switch. Defaults to enabled unless the `no-cache`
    /// feature is active; flips at runtime via [`set_caches_enabled`].
    /// Thread-local so parallel tests toggling it cannot interfere.
    static CACHES_DISABLED: Cell<bool> = const { Cell::new(cfg!(feature = "no-cache")) };
}

/// Whether the query caches are active on the current thread.
pub fn caches_enabled() -> bool {
    !CACHES_DISABLED.with(Cell::get)
}

/// Enables or disables all query caches on the current thread (A/B
/// benching and differential tests). Disabling does not drop
/// already-stored entries; it only bypasses them.
pub fn set_caches_enabled(on: bool) {
    CACHES_DISABLED.with(|c| c.set(!on));
}

/// Hit/miss counters for every cache, snapshot via [`QueryCache::stats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    pub subtype_hits: u64,
    pub subtype_misses: u64,
    pub prereq_hits: u64,
    pub prereq_misses: u64,
    pub conforms_hits: u64,
    pub conforms_misses: u64,
    pub resolve_hits: u64,
    pub resolve_misses: u64,
}

impl CacheStats {
    /// Total hits across all caches.
    pub fn hits(&self) -> u64 {
        self.subtype_hits + self.prereq_hits + self.conforms_hits + self.resolve_hits
    }

    /// Total misses across all caches.
    pub fn misses(&self) -> u64 {
        self.subtype_misses + self.prereq_misses + self.conforms_misses + self.resolve_misses
    }

    /// The delta accumulated since an earlier snapshot `base`: per-run
    /// numbers for `--stats` and serve responses without zeroing shared
    /// counters out from under concurrent runs.
    #[must_use]
    pub fn since(&self, base: &CacheStats) -> CacheStats {
        CacheStats {
            subtype_hits: self.subtype_hits.saturating_sub(base.subtype_hits),
            subtype_misses: self.subtype_misses.saturating_sub(base.subtype_misses),
            prereq_hits: self.prereq_hits.saturating_sub(base.prereq_hits),
            prereq_misses: self.prereq_misses.saturating_sub(base.prereq_misses),
            conforms_hits: self.conforms_hits.saturating_sub(base.conforms_hits),
            conforms_misses: self.conforms_misses.saturating_sub(base.conforms_misses),
            resolve_hits: self.resolve_hits.saturating_sub(base.resolve_hits),
            resolve_misses: self.resolve_misses.saturating_sub(base.resolve_misses),
        }
    }
}

fn hash_pair(sub: &Type, sup: &Type) -> u64 {
    let mut h = DefaultHasher::new();
    sub.hash(&mut h);
    sup.hash(&mut h);
    h.finish()
}

/// One hash bucket of structurally keyed subtype verdicts.
type SubtypeBucket = Vec<(Type, Type, bool)>;

/// Memo tables for table-pure queries. See the module docs for the
/// soundness/invalidation story.
#[derive(Default)]
pub struct QueryCache {
    /// `(sub, sup) → bool`, bucketed by hash so lookups need no key
    /// clone (collisions resolved by structural comparison).
    subtype: Mutex<FastMap<u64, SubtypeBucket>>,
    /// Constraint prerequisite closures (computed by the checker).
    prereq: Mutex<FastMap<ConstraintInst, Arc<Vec<ConstraintInst>>>>,
    /// Structural conformance (`natural::conforms`) results.
    conforms: Mutex<FastMap<ConstraintInst, bool>>,
    /// Opaque slot for the checker's resolution memo: the value type
    /// involves checker-crate types, so it is stored type-erased here
    /// and downcast by `genus-check`. `Send` so a checked program (and
    /// its table) can move onto the interpreter thread; the `Mutex`
    /// additionally makes the whole cache `Sync` so one checked program
    /// can serve concurrent runs (the serve worker pool).
    resolve_slot: Mutex<Option<Box<dyn Any + Send>>>,

    subtype_hits: AtomicU64,
    subtype_misses: AtomicU64,
    prereq_hits: AtomicU64,
    prereq_misses: AtomicU64,
    conforms_hits: AtomicU64,
    conforms_misses: AtomicU64,
    resolve_hits: AtomicU64,
    resolve_misses: AtomicU64,
}

/// Compile-time proof that a checked program's table can be shared across
/// serve workers.
const _: fn() = || {
    fn assert_sync<T: Sync + Send>() {}
    assert_sync::<QueryCache>();
};

impl std::fmt::Debug for QueryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryCache")
            .field(
                "subtype_entries",
                &self
                    .subtype
                    .lock()
                    .unwrap()
                    .values()
                    .map(Vec::len)
                    .sum::<usize>(),
            )
            .field("prereq_entries", &self.prereq.lock().unwrap().len())
            .field("conforms_entries", &self.conforms.lock().unwrap().len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl QueryCache {
    /// Drops every entry (including the checker's resolution memo).
    /// Counters survive so benches can observe lifetime totals.
    pub fn clear(&self) {
        self.subtype.lock().unwrap().clear();
        self.prereq.lock().unwrap().clear();
        self.conforms.lock().unwrap().clear();
        *self.resolve_slot.lock().unwrap() = None;
    }

    /// Zeroes every hit/miss counter, leaving cached entries in place.
    /// Used by per-request stats reporting (`--stats`, serve responses):
    /// snapshot-before/`since` gives a delta, `reset_counters` gives a
    /// hard zero when one runner owns the program exclusively.
    pub fn reset_counters(&self) {
        self.subtype_hits.store(0, Ordering::Relaxed);
        self.subtype_misses.store(0, Ordering::Relaxed);
        self.prereq_hits.store(0, Ordering::Relaxed);
        self.prereq_misses.store(0, Ordering::Relaxed);
        self.conforms_hits.store(0, Ordering::Relaxed);
        self.conforms_misses.store(0, Ordering::Relaxed);
        self.resolve_hits.store(0, Ordering::Relaxed);
        self.resolve_misses.store(0, Ordering::Relaxed);
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            subtype_hits: self.subtype_hits.load(Ordering::Relaxed),
            subtype_misses: self.subtype_misses.load(Ordering::Relaxed),
            prereq_hits: self.prereq_hits.load(Ordering::Relaxed),
            prereq_misses: self.prereq_misses.load(Ordering::Relaxed),
            conforms_hits: self.conforms_hits.load(Ordering::Relaxed),
            conforms_misses: self.conforms_misses.load(Ordering::Relaxed),
            resolve_hits: self.resolve_hits.load(Ordering::Relaxed),
            resolve_misses: self.resolve_misses.load(Ordering::Relaxed),
        }
    }

    /// Cached subtype verdict, if present.
    pub fn subtype_get(&self, sub: &Type, sup: &Type) -> Option<bool> {
        if !caches_enabled() {
            return None;
        }
        let key = hash_pair(sub, sup);
        let map = self.subtype.lock().unwrap();
        let found = map
            .get(&key)
            .and_then(|bucket| bucket.iter().find(|(s, p, _)| s == sub && p == sup))
            .map(|&(_, _, r)| r);
        match found {
            Some(r) => {
                self.subtype_hits.fetch_add(1, Ordering::Relaxed);
                Some(r)
            }
            None => {
                self.subtype_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a subtype verdict.
    pub fn subtype_put(&self, sub: &Type, sup: &Type, result: bool) {
        if !caches_enabled() {
            return;
        }
        let key = hash_pair(sub, sup);
        self.subtype.lock().unwrap().entry(key).or_default().push((
            sub.clone(),
            sup.clone(),
            result,
        ));
    }

    /// Cached prerequisite closure for a constraint instantiation.
    pub fn prereq_get(&self, inst: &ConstraintInst) -> Option<Arc<Vec<ConstraintInst>>> {
        if !caches_enabled() {
            return None;
        }
        match self.prereq.lock().unwrap().get(inst) {
            Some(rc) => {
                self.prereq_hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(rc))
            }
            None => {
                self.prereq_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a prerequisite closure.
    pub fn prereq_put(&self, inst: &ConstraintInst, closure: Arc<Vec<ConstraintInst>>) {
        if !caches_enabled() {
            return;
        }
        self.prereq.lock().unwrap().insert(inst.clone(), closure);
    }

    /// Cached structural-conformance verdict.
    pub fn conforms_get(&self, inst: &ConstraintInst) -> Option<bool> {
        if !caches_enabled() {
            return None;
        }
        match self.conforms.lock().unwrap().get(inst).copied() {
            Some(r) => {
                self.conforms_hits.fetch_add(1, Ordering::Relaxed);
                Some(r)
            }
            None => {
                self.conforms_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a structural-conformance verdict.
    pub fn conforms_put(&self, inst: &ConstraintInst, result: bool) {
        if !caches_enabled() {
            return;
        }
        self.conforms.lock().unwrap().insert(inst.clone(), result);
    }

    /// Grants scoped access to the type-erased resolution-memo slot.
    /// The closure must not re-enter `with_resolve_slot` (the slot is
    /// held locked for the duration of the call).
    pub fn with_resolve_slot<R>(&self, f: impl FnOnce(&mut Option<Box<dyn Any + Send>>) -> R) -> R {
        f(&mut self.resolve_slot.lock().unwrap())
    }

    /// Bumps the resolution-memo hit counter (owned by `genus-check`).
    pub fn note_resolve_hit(&self) {
        self.resolve_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Bumps the resolution-memo miss counter.
    pub fn note_resolve_miss(&self) {
        self.resolve_misses.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::PrimTy;

    fn int() -> Type {
        Type::Prim(PrimTy::Int)
    }

    fn long() -> Type {
        Type::Prim(PrimTy::Long)
    }

    #[test]
    fn subtype_roundtrip_and_stats() {
        // These tests exercise cache mechanics directly, so force the
        // caches on even when built with `--features no-cache`.
        set_caches_enabled(true);
        let c = QueryCache::default();
        assert_eq!(c.subtype_get(&int(), &long()), None);
        c.subtype_put(&int(), &long(), true);
        assert_eq!(c.subtype_get(&int(), &long()), Some(true));
        assert_eq!(c.subtype_get(&long(), &int()), None);
        let s = c.stats();
        assert_eq!(s.subtype_hits, 1);
        assert_eq!(s.subtype_misses, 2);
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        // These tests exercise cache mechanics directly, so force the
        // caches on even when built with `--features no-cache`.
        set_caches_enabled(true);
        let c = QueryCache::default();
        c.subtype_put(&int(), &int(), true);
        assert_eq!(c.subtype_get(&int(), &int()), Some(true));
        c.clear();
        assert_eq!(c.subtype_get(&int(), &int()), None);
        assert_eq!(c.stats().subtype_hits, 1);
    }

    #[test]
    fn disabling_bypasses_lookups() {
        // These tests exercise cache mechanics directly, so force the
        // caches on even when built with `--features no-cache`.
        set_caches_enabled(true);
        let c = QueryCache::default();
        c.subtype_put(&int(), &int(), true);
        set_caches_enabled(false);
        assert_eq!(c.subtype_get(&int(), &int()), None);
        set_caches_enabled(true);
        assert_eq!(c.subtype_get(&int(), &int()), Some(true));
    }

    #[test]
    fn per_run_counter_deltas_and_reset() {
        set_caches_enabled(true);
        let c = QueryCache::default();
        c.subtype_put(&int(), &int(), true);
        assert_eq!(c.subtype_get(&int(), &int()), Some(true));
        let base = c.stats();
        assert_eq!(c.subtype_get(&int(), &int()), Some(true));
        assert_eq!(c.subtype_get(&int(), &long()), None);
        let delta = c.stats().since(&base);
        assert_eq!(delta.subtype_hits, 1);
        assert_eq!(delta.subtype_misses, 1);
        // Reset zeroes counters but keeps entries cached.
        c.reset_counters();
        assert_eq!(c.stats(), CacheStats::default());
        assert_eq!(c.subtype_get(&int(), &int()), Some(true));
        assert_eq!(c.stats().subtype_hits, 1);
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        set_caches_enabled(true);
        let c = std::sync::Arc::new(QueryCache::default());
        c.subtype_put(&int(), &long(), true);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    set_caches_enabled(true);
                    assert_eq!(c.subtype_get(&int(), &long()), Some(true));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.stats().subtype_hits, 4);
    }

    #[test]
    fn resolve_slot_stores_any() {
        let c = QueryCache::default();
        c.with_resolve_slot(|slot| *slot = Some(Box::new(41u32)));
        let v = c.with_resolve_slot(|slot| {
            let m = slot.as_mut().unwrap().downcast_mut::<u32>().unwrap();
            *m += 1;
            *m
        });
        assert_eq!(v, 42);
    }
}
