//! Binary serialization of the declaration [`Table`] — the signature-level
//! half of a persisted compiled program.
//!
//! The persisted image is **bodies-blanked**: every `ast::Block` body and
//! field initializer expression is replaced by an empty block (presence is
//! preserved — runtime dispatch distinguishes bodied from abstract
//! methods, so `Some(body)` round-trips as `Some(empty)`). Everything the
//! engines consult at runtime — names, signatures, type/model structure,
//! the class hierarchy, constraint operations, model multimethod
//! signatures, variance — survives exactly; everything only the *checker*
//! reads (the bodies it already lowered to bytecode) is dropped. A table
//! restored from disk therefore backs VM/Tier-2 execution of its
//! companion bytecode, but cannot re-run checking or the AST engine.
//!
//! Symbols are persisted as their text and re-interned on load, so
//! artifacts are valid across processes. The query cache restarts empty.
//! See `docs` ("Serving at scale") for the full byte layout.

use crate::table::{
    ClassDef, ConstraintDef, ConstraintOp, CtorDef, FieldDef, MethodDef, ModelDef, ModelMethod,
    Table, UseDef,
};
use crate::ty::{ConstraintInst, Model, MvId, TvId, Type, WhereReq};
use crate::variance::Variance;
use crate::{ClassId, ConstraintId, ModelId, PrimTy};
use genus_common::bytes::{ByteReader, ByteWriter, ReadResult};
use genus_common::{FileId, Span, Symbol};
use genus_syntax::ast;

fn write_span(w: &mut ByteWriter, s: Span) {
    w.u32(s.file.0);
    w.u32(s.lo);
    w.u32(s.hi);
}

fn read_span(r: &mut ByteReader) -> ReadResult<Span> {
    let file = FileId(r.u32()?);
    let (lo, hi) = (r.u32()?, r.u32()?);
    Ok(Span { file, lo, hi })
}

fn write_symbol(w: &mut ByteWriter, s: Symbol) {
    w.str(s.as_str());
}

fn read_symbol(r: &mut ByteReader) -> ReadResult<Symbol> {
    Ok(Symbol::intern(&r.str()?))
}

/// Writes a [`PrimTy`] as a one-byte tag.
pub fn write_prim(w: &mut ByteWriter, p: PrimTy) {
    w.u8(prim_code(p));
}

/// Reads a [`PrimTy`].
pub fn read_prim(r: &mut ByteReader) -> ReadResult<PrimTy> {
    prim_from(r.u8()?)
}

/// Writes a [`Symbol`] as its text (re-interned on read).
pub fn write_sym(w: &mut ByteWriter, s: Symbol) {
    write_symbol(w, s);
}

/// Reads a [`Symbol`], interning it in this process.
pub fn read_sym(r: &mut ByteReader) -> ReadResult<Symbol> {
    read_symbol(r)
}

/// Writes a [`Span`] (three `u32`s).
pub fn write_span_raw(w: &mut ByteWriter, s: Span) {
    write_span(w, s);
}

/// Reads a [`Span`].
pub fn read_span_raw(r: &mut ByteReader) -> ReadResult<Span> {
    read_span(r)
}

fn prim_code(p: PrimTy) -> u8 {
    match p {
        PrimTy::Int => 0,
        PrimTy::Long => 1,
        PrimTy::Double => 2,
        PrimTy::Boolean => 3,
        PrimTy::Char => 4,
        PrimTy::Void => 5,
    }
}

fn prim_from(code: u8) -> ReadResult<PrimTy> {
    Ok(match code {
        0 => PrimTy::Int,
        1 => PrimTy::Long,
        2 => PrimTy::Double,
        3 => PrimTy::Boolean,
        4 => PrimTy::Char,
        5 => PrimTy::Void,
        b => return Err(format!("invalid primitive tag {b}")),
    })
}

/// Writes a [`Type`] (recursive, tag-prefixed).
pub fn write_type(w: &mut ByteWriter, t: &Type) {
    match t {
        Type::Prim(p) => {
            w.u8(0);
            w.u8(prim_code(*p));
        }
        Type::Class { id, args, models } => {
            w.u8(1);
            w.u32(id.0);
            w.seq(args.len());
            for a in args {
                write_type(w, a);
            }
            w.seq(models.len());
            for m in models {
                write_model(w, m);
            }
        }
        Type::Var(v) => {
            w.u8(2);
            w.u32(v.0);
        }
        Type::Array(e) => {
            w.u8(3);
            write_type(w, e);
        }
        Type::Null => w.u8(4),
        Type::Existential {
            params,
            bounds,
            wheres,
            body,
        } => {
            w.u8(5);
            w.seq(params.len());
            for p in params {
                w.u32(p.0);
            }
            w.seq(bounds.len());
            for b in bounds {
                match b {
                    Some(t) => {
                        w.bool(true);
                        write_type(w, t);
                    }
                    None => w.bool(false),
                }
            }
            w.seq(wheres.len());
            for wr in wheres {
                write_where(w, wr);
            }
            write_type(w, body);
        }
        // Inference variables never appear in checked programs; a table
        // containing one is a bug worth catching before it hits disk.
        Type::Infer(_) => unreachable!("cannot persist an inference variable"),
    }
}

/// Reads a [`Type`].
pub fn read_type(r: &mut ByteReader) -> ReadResult<Type> {
    Ok(match r.u8()? {
        0 => Type::Prim(prim_from(r.u8()?)?),
        1 => {
            let id = ClassId(r.u32()?);
            let n = r.seq()?;
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                args.push(read_type(r)?);
            }
            let n = r.seq()?;
            let mut models = Vec::with_capacity(n);
            for _ in 0..n {
                models.push(read_model(r)?);
            }
            Type::Class { id, args, models }
        }
        2 => Type::Var(TvId(r.u32()?)),
        3 => Type::Array(Box::new(read_type(r)?)),
        4 => Type::Null,
        5 => {
            let n = r.seq()?;
            let mut params = Vec::with_capacity(n);
            for _ in 0..n {
                params.push(TvId(r.u32()?));
            }
            let n = r.seq()?;
            let mut bounds = Vec::with_capacity(n);
            for _ in 0..n {
                bounds.push(if r.bool()? { Some(read_type(r)?) } else { None });
            }
            let n = r.seq()?;
            let mut wheres = Vec::with_capacity(n);
            for _ in 0..n {
                wheres.push(read_where(r)?);
            }
            Type::Existential {
                params,
                bounds,
                wheres,
                body: Box::new(read_type(r)?),
            }
        }
        b => return Err(format!("invalid type tag {b}")),
    })
}

/// Writes a [`Model`] (recursive, tag-prefixed).
pub fn write_model(w: &mut ByteWriter, m: &Model) {
    match m {
        Model::Decl {
            id,
            type_args,
            model_args,
        } => {
            w.u8(0);
            w.u32(id.0);
            w.seq(type_args.len());
            for t in type_args {
                write_type(w, t);
            }
            w.seq(model_args.len());
            for a in model_args {
                write_model(w, a);
            }
        }
        Model::Natural { inst } => {
            w.u8(1);
            write_inst(w, inst);
        }
        Model::Var(v) => {
            w.u8(2);
            w.u32(v.0);
        }
        Model::Infer(_) => unreachable!("cannot persist a model inference variable"),
    }
}

/// Reads a [`Model`].
pub fn read_model(r: &mut ByteReader) -> ReadResult<Model> {
    Ok(match r.u8()? {
        0 => {
            let id = ModelId(r.u32()?);
            let n = r.seq()?;
            let mut type_args = Vec::with_capacity(n);
            for _ in 0..n {
                type_args.push(read_type(r)?);
            }
            let n = r.seq()?;
            let mut model_args = Vec::with_capacity(n);
            for _ in 0..n {
                model_args.push(read_model(r)?);
            }
            Model::Decl {
                id,
                type_args,
                model_args,
            }
        }
        1 => Model::Natural {
            inst: read_inst(r)?,
        },
        2 => Model::Var(MvId(r.u32()?)),
        b => return Err(format!("invalid model tag {b}")),
    })
}

fn write_inst(w: &mut ByteWriter, i: &ConstraintInst) {
    w.u32(i.id.0);
    w.seq(i.args.len());
    for a in &i.args {
        write_type(w, a);
    }
}

fn read_inst(r: &mut ByteReader) -> ReadResult<ConstraintInst> {
    let id = ConstraintId(r.u32()?);
    let n = r.seq()?;
    let mut args = Vec::with_capacity(n);
    for _ in 0..n {
        args.push(read_type(r)?);
    }
    Ok(ConstraintInst { id, args })
}

fn write_where(w: &mut ByteWriter, wr: &WhereReq) {
    write_inst(w, &wr.inst);
    w.u32(wr.mv.0);
    w.bool(wr.named);
}

fn read_where(r: &mut ByteReader) -> ReadResult<WhereReq> {
    Ok(WhereReq {
        inst: read_inst(r)?,
        mv: MvId(r.u32()?),
        named: r.bool()?,
    })
}

fn write_opt_type(w: &mut ByteWriter, t: Option<&Type>) {
    match t {
        Some(t) => {
            w.bool(true);
            write_type(w, t);
        }
        None => w.bool(false),
    }
}

fn read_opt_type(r: &mut ByteReader) -> ReadResult<Option<Type>> {
    Ok(if r.bool()? { Some(read_type(r)?) } else { None })
}

fn write_params(w: &mut ByteWriter, params: &[(Symbol, Type)]) {
    w.seq(params.len());
    for (name, ty) in params {
        write_symbol(w, *name);
        write_type(w, ty);
    }
}

fn read_params(r: &mut ByteReader) -> ReadResult<Vec<(Symbol, Type)>> {
    let n = r.seq()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push((read_symbol(r)?, read_type(r)?));
    }
    Ok(out)
}

fn write_tvs(w: &mut ByteWriter, tvs: &[TvId]) {
    w.seq(tvs.len());
    for t in tvs {
        w.u32(t.0);
    }
}

fn read_tvs(r: &mut ByteReader) -> ReadResult<Vec<TvId>> {
    let n = r.seq()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(TvId(r.u32()?));
    }
    Ok(out)
}

fn write_wheres(w: &mut ByteWriter, wheres: &[WhereReq]) {
    w.seq(wheres.len());
    for wr in wheres {
        write_where(w, wr);
    }
}

fn read_wheres(r: &mut ByteReader) -> ReadResult<Vec<WhereReq>> {
    let n = r.seq()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read_where(r)?);
    }
    Ok(out)
}

/// The blanked stand-in for a persisted body.
fn empty_block() -> ast::Block {
    ast::Block {
        stmts: Vec::new(),
        span: Span::dummy(),
    }
}

fn write_method(w: &mut ByteWriter, m: &MethodDef) {
    write_symbol(w, m.name);
    w.bool(m.is_static);
    w.bool(m.is_abstract);
    w.bool(m.is_native);
    write_tvs(w, &m.tparams);
    write_wheres(w, &m.wheres);
    write_params(w, &m.params);
    write_type(w, &m.ret);
    // Presence only: runtime dispatch treats `body.is_some() || is_native`
    // as concrete, so bodiedness must survive even though the text does not.
    w.bool(m.body.is_some());
    write_span(w, m.span);
}

fn read_method(r: &mut ByteReader) -> ReadResult<MethodDef> {
    Ok(MethodDef {
        name: read_symbol(r)?,
        is_static: r.bool()?,
        is_abstract: r.bool()?,
        is_native: r.bool()?,
        tparams: read_tvs(r)?,
        wheres: read_wheres(r)?,
        params: read_params(r)?,
        ret: read_type(r)?,
        body: if r.bool()? { Some(empty_block()) } else { None },
        span: read_span(r)?,
    })
}

fn write_class(w: &mut ByteWriter, c: &ClassDef) {
    write_symbol(w, c.name);
    w.bool(c.is_interface);
    w.bool(c.is_abstract);
    write_tvs(w, &c.params);
    write_wheres(w, &c.wheres);
    write_opt_type(w, c.extends.as_ref());
    w.seq(c.implements.len());
    for t in &c.implements {
        write_type(w, t);
    }
    w.seq(c.fields.len());
    for f in &c.fields {
        write_symbol(w, f.name);
        write_type(w, &f.ty);
        w.bool(f.is_static);
        write_span(w, f.span);
    }
    w.seq(c.ctors.len());
    for ct in &c.ctors {
        write_params(w, &ct.params);
        write_span(w, ct.span);
    }
    w.seq(c.methods.len());
    for m in &c.methods {
        write_method(w, m);
    }
    write_span(w, c.span);
}

fn read_class(r: &mut ByteReader) -> ReadResult<ClassDef> {
    let name = read_symbol(r)?;
    let is_interface = r.bool()?;
    let is_abstract = r.bool()?;
    let params = read_tvs(r)?;
    let wheres = read_wheres(r)?;
    let extends = read_opt_type(r)?;
    let n = r.seq()?;
    let mut implements = Vec::with_capacity(n);
    for _ in 0..n {
        implements.push(read_type(r)?);
    }
    let n = r.seq()?;
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        fields.push(FieldDef {
            name: read_symbol(r)?,
            ty: read_type(r)?,
            is_static: r.bool()?,
            // Initializers were compiled into the bytecode's field-init
            // functions; the table copy is checker-only.
            init: None,
            span: read_span(r)?,
        });
    }
    let n = r.seq()?;
    let mut ctors = Vec::with_capacity(n);
    for _ in 0..n {
        ctors.push(CtorDef {
            params: read_params(r)?,
            body: empty_block(),
            span: read_span(r)?,
        });
    }
    let n = r.seq()?;
    let mut methods = Vec::with_capacity(n);
    for _ in 0..n {
        methods.push(read_method(r)?);
    }
    Ok(ClassDef {
        name,
        is_interface,
        is_abstract,
        params,
        wheres,
        extends,
        implements,
        fields,
        ctors,
        methods,
        span: read_span(r)?,
    })
}

fn variance_code(v: Variance) -> u8 {
    match v {
        Variance::Bivariant => 0,
        Variance::Covariant => 1,
        Variance::Contravariant => 2,
        Variance::Invariant => 3,
    }
}

fn variance_from(code: u8) -> ReadResult<Variance> {
    Ok(match code {
        0 => Variance::Bivariant,
        1 => Variance::Covariant,
        2 => Variance::Contravariant,
        3 => Variance::Invariant,
        b => return Err(format!("invalid variance tag {b}")),
    })
}

fn write_constraint(w: &mut ByteWriter, c: &ConstraintDef) {
    write_symbol(w, c.name);
    write_tvs(w, &c.params);
    w.seq(c.prereqs.len());
    for p in &c.prereqs {
        write_inst(w, p);
    }
    w.seq(c.ops.len());
    for op in &c.ops {
        write_symbol(w, op.name);
        w.bool(op.is_static);
        w.u32(op.receiver.0);
        write_params(w, &op.params);
        write_type(w, &op.ret);
        write_span(w, op.span);
    }
    w.seq(c.variance.len());
    for v in &c.variance {
        w.u8(variance_code(*v));
    }
    write_span(w, c.span);
}

fn read_constraint(r: &mut ByteReader) -> ReadResult<ConstraintDef> {
    let name = read_symbol(r)?;
    let params = read_tvs(r)?;
    let n = r.seq()?;
    let mut prereqs = Vec::with_capacity(n);
    for _ in 0..n {
        prereqs.push(read_inst(r)?);
    }
    let n = r.seq()?;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        ops.push(ConstraintOp {
            name: read_symbol(r)?,
            is_static: r.bool()?,
            receiver: TvId(r.u32()?),
            params: read_params(r)?,
            ret: read_type(r)?,
            span: read_span(r)?,
        });
    }
    let n = r.seq()?;
    let mut variance = Vec::with_capacity(n);
    for _ in 0..n {
        variance.push(variance_from(r.u8()?)?);
    }
    Ok(ConstraintDef {
        name,
        params,
        prereqs,
        ops,
        variance,
        span: read_span(r)?,
    })
}

fn write_model_def(w: &mut ByteWriter, m: &ModelDef) {
    write_symbol(w, m.name);
    write_tvs(w, &m.tparams);
    write_wheres(w, &m.wheres);
    write_inst(w, &m.for_inst);
    w.seq(m.extends.len());
    for e in &m.extends {
        write_model(w, e);
    }
    w.seq(m.methods.len());
    for mm in &m.methods {
        write_symbol(w, mm.name);
        w.bool(mm.is_static);
        write_type(w, &mm.receiver);
        write_params(w, &mm.params);
        write_type(w, &mm.ret);
        w.bool(mm.from_enrich);
        write_span(w, mm.span);
    }
    write_span(w, m.span);
}

fn read_model_def(r: &mut ByteReader) -> ReadResult<ModelDef> {
    let name = read_symbol(r)?;
    let tparams = read_tvs(r)?;
    let wheres = read_wheres(r)?;
    let for_inst = read_inst(r)?;
    let n = r.seq()?;
    let mut extends = Vec::with_capacity(n);
    for _ in 0..n {
        extends.push(read_model(r)?);
    }
    let n = r.seq()?;
    let mut methods = Vec::with_capacity(n);
    for _ in 0..n {
        methods.push(ModelMethod {
            name: read_symbol(r)?,
            is_static: r.bool()?,
            receiver: read_type(r)?,
            params: read_params(r)?,
            ret: read_type(r)?,
            body: empty_block(),
            from_enrich: r.bool()?,
            span: read_span(r)?,
        });
    }
    Ok(ModelDef {
        name,
        tparams,
        wheres,
        for_inst,
        extends,
        methods,
        span: read_span(r)?,
    })
}

fn write_use(w: &mut ByteWriter, u: &UseDef) {
    write_tvs(w, &u.tparams);
    write_wheres(w, &u.wheres);
    write_model(w, &u.model);
    write_inst(w, &u.for_inst);
    write_span(w, u.span);
}

fn read_use(r: &mut ByteReader) -> ReadResult<UseDef> {
    Ok(UseDef {
        tparams: read_tvs(r)?,
        wheres: read_wheres(r)?,
        model: read_model(r)?,
        for_inst: read_inst(r)?,
        span: read_span(r)?,
    })
}

/// Serializes `table` (bodies blanked) into `w`.
pub fn write_table(w: &mut ByteWriter, table: &Table) {
    w.seq(table.classes.len());
    for c in &table.classes {
        write_class(w, c);
    }
    w.seq(table.constraints.len());
    for c in &table.constraints {
        write_constraint(w, c);
    }
    w.seq(table.models.len());
    for m in &table.models {
        write_model_def(w, m);
    }
    w.seq(table.uses.len());
    for u in &table.uses {
        write_use(w, u);
    }
    w.seq(table.globals.len());
    for g in &table.globals {
        write_method(w, g);
    }
    w.seq(table.tv_count());
    for i in 0..table.tv_count() {
        let tv = TvId(i as u32);
        write_symbol(w, table.tv_name(tv));
        write_opt_type(w, table.tv_bound(tv));
    }
    w.seq(table.mv_count());
    for i in 0..table.mv_count() {
        write_symbol(w, table.mv_name(MvId(i as u32)));
    }
}

/// Restores a [`Table`] serialized by [`write_table`]. Name-lookup maps
/// are rebuilt from the defs; the query cache starts empty.
pub fn read_table(r: &mut ByteReader) -> ReadResult<Table> {
    let mut table = Table::new();
    let n = r.seq()?;
    let mut classes = Vec::with_capacity(n);
    for _ in 0..n {
        classes.push(read_class(r)?);
    }
    let n = r.seq()?;
    let mut constraints = Vec::with_capacity(n);
    for _ in 0..n {
        constraints.push(read_constraint(r)?);
    }
    let n = r.seq()?;
    let mut models = Vec::with_capacity(n);
    for _ in 0..n {
        models.push(read_model_def(r)?);
    }
    let n = r.seq()?;
    let mut uses = Vec::with_capacity(n);
    for _ in 0..n {
        uses.push(read_use(r)?);
    }
    let n = r.seq()?;
    let mut globals = Vec::with_capacity(n);
    for _ in 0..n {
        globals.push(read_method(r)?);
    }
    // `add_*` rebuilds the name maps exactly as collection did (later
    // declarations shadow earlier ones in the map, matching collect).
    for c in classes {
        table.add_class(c);
    }
    for c in constraints {
        table.add_constraint(c);
    }
    for m in models {
        table.add_model(m);
    }
    table.uses = uses;
    table.globals = globals;
    let n = r.seq()?;
    for _ in 0..n {
        let name = read_symbol(r)?;
        let bound = read_opt_type(r)?;
        table.fresh_tv_bounded(name, bound);
    }
    let n = r.seq()?;
    for _ in 0..n {
        let name = read_symbol(r)?;
        table.fresh_mv(name);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int() -> Type {
        Type::Prim(PrimTy::Int)
    }

    #[test]
    fn types_and_models_round_trip() {
        let t = Type::Existential {
            params: vec![TvId(3)],
            bounds: vec![Some(Type::Array(Box::new(int())))],
            wheres: vec![WhereReq {
                inst: ConstraintInst {
                    id: ConstraintId(1),
                    args: vec![Type::Var(TvId(3))],
                },
                mv: MvId(2),
                named: true,
            }],
            body: Box::new(Type::Class {
                id: ClassId(4),
                args: vec![Type::Null],
                models: vec![Model::Natural {
                    inst: ConstraintInst {
                        id: ConstraintId(0),
                        args: vec![int()],
                    },
                }],
            }),
        };
        let mut w = ByteWriter::new();
        write_type(&mut w, &t);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(read_type(&mut r).unwrap(), t);
        assert_eq!(r.remaining(), 0);

        let m = Model::Decl {
            id: ModelId(7),
            type_args: vec![int()],
            model_args: vec![Model::Var(MvId(1))],
        };
        let mut w = ByteWriter::new();
        write_model(&mut w, &m);
        let bytes = w.into_bytes();
        assert_eq!(read_model(&mut ByteReader::new(&bytes)).unwrap(), m);
    }

    #[test]
    fn table_round_trips_with_blanked_bodies() {
        let mut t = Table::new();
        let tv = t.fresh_tv(Symbol::intern("T"));
        t.fresh_mv(Symbol::intern("ord"));
        t.add_class(ClassDef {
            name: Symbol::intern("Box"),
            is_interface: false,
            is_abstract: false,
            params: vec![tv],
            wheres: vec![],
            extends: None,
            implements: vec![],
            fields: vec![FieldDef {
                name: Symbol::intern("v"),
                ty: Type::Var(tv),
                is_static: false,
                init: None,
                span: Span::dummy(),
            }],
            ctors: vec![],
            methods: vec![MethodDef {
                name: Symbol::intern("get"),
                is_static: false,
                is_abstract: false,
                is_native: false,
                tparams: vec![],
                wheres: vec![],
                params: vec![],
                ret: Type::Var(tv),
                body: Some(ast::Block {
                    stmts: Vec::new(),
                    span: Span::dummy(),
                }),
                span: Span::dummy(),
            }],
            span: Span::dummy(),
        });
        let mut w = ByteWriter::new();
        write_table(&mut w, &t);
        let bytes = w.into_bytes();
        let back = read_table(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back.classes.len(), 1);
        let c = back.class(ClassId(0));
        assert_eq!(c.name.as_str(), "Box");
        assert_eq!(c.fields[0].name.as_str(), "v");
        assert!(
            c.methods[0].body.is_some(),
            "bodiedness survives (dispatch concreteness)"
        );
        assert_eq!(back.lookup_class(Symbol::intern("Box")), Some(ClassId(0)));
        assert_eq!(back.tv_count(), 1);
        assert_eq!(back.tv_name(TvId(0)).as_str(), "T");
        assert_eq!(back.mv_name(MvId(0)).as_str(), "ord");
    }

    #[test]
    fn truncated_table_is_an_error() {
        let mut w = ByteWriter::new();
        write_table(&mut w, &Table::new());
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            // Any prefix must fail cleanly, never panic.
            let _ = read_table(&mut ByteReader::new(&bytes[..cut]));
        }
    }
}
