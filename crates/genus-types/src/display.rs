//! Human-readable rendering of semantic types against a [`Table`].

use crate::table::Table;
use crate::ty::{ConstraintInst, Model, Type};
use std::fmt;

/// Displays a [`Type`] with names resolved through a table.
pub struct TypeDisplay<'a> {
    /// The type to render.
    pub ty: &'a Type,
    /// Name source.
    pub table: &'a Table,
}

/// Displays a [`Model`] with names resolved through a table.
pub struct ModelDisplay<'a> {
    /// The model to render.
    pub model: &'a Model,
    /// Name source.
    pub table: &'a Table,
}

/// Displays a [`ConstraintInst`] with names resolved through a table.
pub struct ConstraintDisplay<'a> {
    /// The instantiation to render.
    pub inst: &'a ConstraintInst,
    /// Name source.
    pub table: &'a Table,
}

impl fmt::Display for TypeDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_type(f, self.ty, self.table)
    }
}

impl fmt::Display for ModelDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_model(f, self.model, self.table)
    }
}

impl fmt::Display for ConstraintDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_inst(f, self.inst, self.table)
    }
}

fn write_type(f: &mut fmt::Formatter<'_>, t: &Type, tb: &Table) -> fmt::Result {
    match t {
        Type::Prim(p) => write!(f, "{}", p.name()),
        Type::Null => write!(f, "null"),
        Type::Var(v) => write!(f, "{}", tb.tv_name(*v)),
        Type::Infer(i) => write!(f, "?{i}"),
        Type::Array(e) => {
            write_type(f, e, tb)?;
            write!(f, "[]")
        }
        Type::Class { id, args, models } => {
            write!(f, "{}", tb.class(*id).name)?;
            if !args.is_empty() || !models.is_empty() {
                write!(f, "[")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write_type(f, a, tb)?;
                }
                // Natural models that merely restate the defaults are still
                // printed, so error messages show the full dependent type.
                if !models.is_empty() {
                    write!(f, " with ")?;
                    for (i, m) in models.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write_model(f, m, tb)?;
                    }
                }
                write!(f, "]")?;
            }
            Ok(())
        }
        Type::Existential {
            params,
            bounds,
            wheres,
            body,
        } => {
            write!(f, "[some ")?;
            for (i, p) in params.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", tb.tv_name(*p))?;
                if let Some(Some(b)) = bounds.get(i) {
                    write!(f, " extends ")?;
                    write_type(f, b, tb)?;
                }
            }
            if !wheres.is_empty() {
                write!(f, " where ")?;
                for (i, w) in wheres.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write_inst(f, &w.inst, tb)?;
                    write!(f, " {}", tb.mv_name(w.mv))?;
                }
            }
            write!(f, "]")?;
            write_type(f, body, tb)
        }
    }
}

fn write_model(f: &mut fmt::Formatter<'_>, m: &Model, tb: &Table) -> fmt::Result {
    match m {
        Model::Var(v) => write!(f, "{}", tb.mv_name(*v)),
        Model::Infer(i) => write!(f, "?m{i}"),
        Model::Natural { inst } => {
            write!(f, "natural(")?;
            write_inst(f, inst, tb)?;
            write!(f, ")")
        }
        Model::Decl {
            id,
            type_args,
            model_args,
        } => {
            write!(f, "{}", tb.model(*id).name)?;
            if !type_args.is_empty() || !model_args.is_empty() {
                write!(f, "[")?;
                for (i, a) in type_args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write_type(f, a, tb)?;
                }
                if !model_args.is_empty() {
                    write!(f, " with ")?;
                    for (i, x) in model_args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write_model(f, x, tb)?;
                    }
                }
                write!(f, "]")?;
            }
            Ok(())
        }
    }
}

fn write_inst(f: &mut fmt::Formatter<'_>, inst: &ConstraintInst, tb: &Table) -> fmt::Result {
    write!(f, "{}", tb.constraint(inst.id).name)?;
    if !inst.args.is_empty() {
        write!(f, "[")?;
        for (i, a) in inst.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write_type(f, a, tb)?;
        }
        write!(f, "]")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{ConstraintDef, Table};
    use crate::ty::PrimTy;
    use genus_common::{Span, Symbol};

    #[test]
    fn renders_prims_and_arrays() {
        let tb = Table::new();
        let t = Type::Array(Box::new(Type::Prim(PrimTy::Double)));
        assert_eq!(t.display(&tb).to_string(), "double[]");
    }

    #[test]
    fn renders_vars_and_insts() {
        let mut tb = Table::new();
        let tv = tb.fresh_tv(Symbol::intern("T"));
        let cid = tb.add_constraint(ConstraintDef {
            name: Symbol::intern("Eq"),
            params: vec![tv],
            prereqs: vec![],
            ops: vec![],
            variance: vec![],
            span: Span::dummy(),
        });
        let inst = ConstraintInst {
            id: cid,
            args: vec![Type::Var(tv)],
        };
        assert_eq!(inst.display(&tb).to_string(), "Eq[T]");
        let m = Model::Natural { inst };
        assert_eq!(m.display(&tb).to_string(), "natural(Eq[T])");
    }
}
