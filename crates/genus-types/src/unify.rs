//! First-order unification over types and models.
//!
//! Used by generic-method inference (§4.7): type parameters and *intrinsic*
//! constraint witnesses are solved by unification; *extrinsic* witnesses are
//! then resolved by default model resolution in `genus-check`.

use crate::subst::Subst;
use crate::table::Table;
use crate::ty::{Model, Type};

/// Error type for failed unification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnifyError;

impl std::fmt::Display for UnifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "types do not unify")
    }
}

impl std::error::Error for UnifyError {}

/// Unifies `a` and `b`, extending `subst` with solutions for
/// [`Type::Infer`] / [`Model::Infer`] variables.
///
/// # Errors
///
/// Returns [`UnifyError`] if the types clash or the occurs check fails.
pub fn unify(table: &Table, a: &Type, b: &Type, subst: &mut Subst) -> Result<(), UnifyError> {
    let a = subst.apply(a);
    let b = subst.apply(b);
    match (&a, &b) {
        (Type::Infer(i), _) => bind_ty(*i, &b, subst),
        (_, Type::Infer(i)) => bind_ty(*i, &a, subst),
        (Type::Prim(x), Type::Prim(y)) if x == y => Ok(()),
        (Type::Null, Type::Null) => Ok(()),
        (Type::Var(x), Type::Var(y)) if x == y => Ok(()),
        (Type::Array(x), Type::Array(y)) => unify(table, x, y, subst),
        (
            Type::Class {
                id: i1,
                args: a1,
                models: m1,
            },
            Type::Class {
                id: i2,
                args: a2,
                models: m2,
            },
        ) if i1 == i2 && a1.len() == a2.len() && m1.len() == m2.len() => {
            for (x, y) in a1.iter().zip(a2) {
                unify(table, x, y, subst)?;
            }
            for (x, y) in m1.iter().zip(m2) {
                unify_model(table, x, y, subst)?;
            }
            Ok(())
        }
        (Type::Existential { .. }, Type::Existential { .. }) => {
            // Existentials unify only when alpha-equal (no inference inside
            // binders — capture conversion opens them before inference).
            if crate::subtype::type_eq(table, &a, &b) {
                Ok(())
            } else {
                Err(UnifyError)
            }
        }
        _ => Err(UnifyError),
    }
}

/// Unifies two models, extending `subst`.
///
/// # Errors
///
/// Returns [`UnifyError`] if the models clash.
pub fn unify_model(
    table: &Table,
    a: &Model,
    b: &Model,
    subst: &mut Subst,
) -> Result<(), UnifyError> {
    let a = subst.apply_model(a);
    let b = subst.apply_model(b);
    match (&a, &b) {
        (Model::Infer(i), _) => bind_model(*i, &b, subst),
        (_, Model::Infer(i)) => bind_model(*i, &a, subst),
        (Model::Var(x), Model::Var(y)) if x == y => Ok(()),
        (Model::Natural { inst: i1 }, Model::Natural { inst: i2 })
            if i1.id == i2.id && i1.args.len() == i2.args.len() =>
        {
            for (x, y) in i1.args.iter().zip(&i2.args) {
                unify(table, x, y, subst)?;
            }
            Ok(())
        }
        (
            Model::Decl {
                id: d1,
                type_args: t1,
                model_args: m1,
            },
            Model::Decl {
                id: d2,
                type_args: t2,
                model_args: m2,
            },
        ) if d1 == d2 && t1.len() == t2.len() && m1.len() == m2.len() => {
            for (x, y) in t1.iter().zip(t2) {
                unify(table, x, y, subst)?;
            }
            for (x, y) in m1.iter().zip(m2) {
                unify_model(table, x, y, subst)?;
            }
            Ok(())
        }
        _ => Err(UnifyError),
    }
}

fn bind_ty(i: u32, t: &Type, subst: &mut Subst) -> Result<(), UnifyError> {
    if let Type::Infer(j) = t {
        if *j == i {
            return Ok(());
        }
    }
    if occurs_ty(i, t) {
        return Err(UnifyError);
    }
    subst.infer_tys.insert(i, t.clone());
    Ok(())
}

fn bind_model(i: u32, m: &Model, subst: &mut Subst) -> Result<(), UnifyError> {
    if let Model::Infer(j) = m {
        if *j == i {
            return Ok(());
        }
    }
    if occurs_model(i, m) {
        return Err(UnifyError);
    }
    subst.infer_models.insert(i, m.clone());
    Ok(())
}

fn occurs_ty(i: u32, t: &Type) -> bool {
    match t {
        Type::Infer(j) => *j == i,
        Type::Prim(_) | Type::Null | Type::Var(_) => false,
        Type::Array(e) => occurs_ty(i, e),
        Type::Class { args, models, .. } => {
            args.iter().any(|a| occurs_ty(i, a)) || models.iter().any(|m| occurs_in_model_ty(i, m))
        }
        Type::Existential { wheres, body, .. } => {
            occurs_ty(i, body)
                || wheres
                    .iter()
                    .any(|w| w.inst.args.iter().any(|a| occurs_ty(i, a)))
        }
    }
}

fn occurs_in_model_ty(i: u32, m: &Model) -> bool {
    match m {
        Model::Infer(_) | Model::Var(_) => false,
        Model::Natural { inst } => inst.args.iter().any(|a| occurs_ty(i, a)),
        Model::Decl {
            type_args,
            model_args,
            ..
        } => {
            type_args.iter().any(|a| occurs_ty(i, a))
                || model_args.iter().any(|x| occurs_in_model_ty(i, x))
        }
    }
}

fn occurs_model(i: u32, m: &Model) -> bool {
    match m {
        Model::Infer(j) => *j == i,
        Model::Var(_) | Model::Natural { .. } => false,
        Model::Decl { model_args, .. } => model_args.iter().any(|x| occurs_model(i, x)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{ClassDef, Table};
    use crate::ty::{ConstraintInst, PrimTy};
    use genus_common::{Span, Symbol};

    fn list_class(tb: &mut Table) -> crate::table::ClassId {
        let t = tb.fresh_tv(Symbol::intern("T"));
        tb.add_class(ClassDef {
            name: Symbol::intern("List"),
            is_interface: true,
            is_abstract: false,
            params: vec![t],
            wheres: vec![],
            extends: None,
            implements: vec![],
            fields: vec![],
            ctors: vec![],
            methods: vec![],
            span: Span::dummy(),
        })
    }

    #[test]
    fn solves_simple() {
        let mut tb = Table::new();
        let list = list_class(&mut tb);
        let mut s = Subst::new();
        let a = Type::Class {
            id: list,
            args: vec![Type::Infer(0)],
            models: vec![],
        };
        let b = Type::Class {
            id: list,
            args: vec![Type::Prim(PrimTy::Int)],
            models: vec![],
        };
        unify(&tb, &a, &b, &mut s).unwrap();
        assert_eq!(s.apply(&Type::Infer(0)), Type::Prim(PrimTy::Int));
    }

    #[test]
    fn occurs_check() {
        let mut tb = Table::new();
        let list = list_class(&mut tb);
        let mut s = Subst::new();
        let a = Type::Infer(0);
        let b = Type::Class {
            id: list,
            args: vec![Type::Infer(0)],
            models: vec![],
        };
        assert!(unify(&tb, &a, &b, &mut s).is_err());
    }

    #[test]
    fn clash_fails() {
        let tb = Table::new();
        let mut s = Subst::new();
        assert!(unify(
            &tb,
            &Type::Prim(PrimTy::Int),
            &Type::Prim(PrimTy::Double),
            &mut s
        )
        .is_err());
    }

    #[test]
    fn model_inference() {
        let mut tb = Table::new();
        let t = tb.fresh_tv(Symbol::intern("T"));
        let eq = tb.add_constraint(crate::table::ConstraintDef {
            name: Symbol::intern("Eq"),
            params: vec![t],
            prereqs: vec![],
            ops: vec![],
            variance: vec![],
            span: Span::dummy(),
        });
        let mut s = Subst::new();
        let a = Model::Infer(0);
        let b = Model::Natural {
            inst: ConstraintInst {
                id: eq,
                args: vec![Type::Prim(PrimTy::Int)],
            },
        };
        unify_model(&tb, &a, &b, &mut s).unwrap();
        assert_eq!(s.apply_model(&Model::Infer(0)), b);
    }

    #[test]
    fn transitive_solutions() {
        let tb = Table::new();
        let mut s = Subst::new();
        unify(&tb, &Type::Infer(0), &Type::Infer(1), &mut s).unwrap();
        unify(&tb, &Type::Infer(1), &Type::Prim(PrimTy::Int), &mut s).unwrap();
        assert_eq!(s.apply(&Type::Infer(0)), Type::Prim(PrimTy::Int));
    }
}
