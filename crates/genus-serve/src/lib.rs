//! genus-serve: a concurrent execution service for Genus programs.
//!
//! Converts the batch compiler into a long-running server: JSON-lines
//! requests (over stdin/stdout or a TCP listener) are compiled **once
//! per distinct source** into a content-hash-keyed shared [`cache`],
//! dispatched to a fixed worker [`pool`], and executed under per-request
//! resource governance — a fuel budget and heap cap threaded through
//! both engines' dispatch loops (trap codes `R0009` / `R0010`) plus a
//! scheduler-enforced wall-clock deadline.
//!
//! What makes the cache sound is the paper's central design point:
//! Genus resolves models per instantiation, modularly, so a checked
//! program is self-contained — nothing about one request's
//! instantiations can invalidate another's, and the same compiled
//! program (checked AST + `Arc`'d bytecode) can serve any number of
//! concurrent requests.
//!
//! # Examples
//!
//! ```
//! use genus_serve::{Request, ServeConfig, Server};
//!
//! let server = Server::new(ServeConfig { workers: 2, ..ServeConfig::default() });
//! let mut req = Request::new("r1", "int main() { return 40 + 2; }");
//! req.limits.fuel = Some(10_000);
//! let resp = &server.run_batch(vec![req])[0];
//! assert_eq!(resp.to_json_line().contains("\"outcome\":\"ok\""), true);
//! server.shutdown();
//! ```

pub mod cache;
pub mod metrics;
pub mod persist;
pub mod pool;
pub mod proto;
pub mod server;
pub mod session;

pub use cache::{CachedProgram, ProgramCache, ProgramCacheStats};
pub use metrics::ServerMetrics;
pub use persist::{DiskCache, FORMAT_VERSION};
pub use pool::WorkerPool;
pub use proto::{Action, EngineKind, Outcome, Request, Response, SessionReuse};
pub use server::{ServeConfig, Server, DEFAULT_FUEL};
pub use session::SessionRegistry;
