//! Persistent on-disk bytecode: versioned, serde-free artifacts that let
//! a restarted server answer its first request for a known program from
//! disk, skipping the type check entirely (the dominant compile cost).
//!
//! # Artifact layout
//!
//! | bytes | field |
//! |---|---|
//! | 4 | magic `"GNBC"` |
//! | 4 | format version (`u32` LE) — bumped on ANY codec change |
//! | 8 | stdlib fingerprint (`u64` LE) of the stdlib this server ships |
//! | 1 | whether the stdlib was compiled in |
//! | 1 | optimization level |
//! | 4+n | full request source (length-prefixed UTF-8) |
//! | … | bodies-blanked declaration table (`genus_types::serial`) |
//! | … | compiled bytecode (`genus_vm::serialize`) |
//! | 8 | FNV-1a checksum (`u64` LE) of every preceding byte |
//!
//! # Trust model
//!
//! A cache file is advisory, never authoritative: every load re-verifies
//! the magic, format version, stdlib fingerprint, checksum, and — the
//! collision guard — the **full source text** against the request before
//! the artifact is believed. Any mismatch, truncation, or decode error is
//! a miss (recompile and overwrite), never a panic and never a wrong
//! program. Files are written to a temp name and renamed into place, so
//! a crash mid-write cannot leave a truncated artifact under a live key.
//!
//! The file name keys `(content fingerprint, stdlib flag, opt level,
//! format version)`; the stdlib fingerprint lives inside (it shifts with
//! the toolchain, not with the request). Loaded entries carry a
//! **bodies-blanked** table — everything the VM and Tier 2 engines
//! consult at runtime, but no HIR — so the AST engine falls back to a
//! lazy full compile (see `CachedProgram::ast_prog`).

use genus_check::CheckedProgram;
use genus_common::bytes::{ByteReader, ByteWriter};
use genus_common::FnvHasher;
use genus_syntax::fingerprint::{combine_fps, content_fp};
use genus_vm::VmProgram;
use std::collections::HashMap;
use std::hash::Hasher;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// Bump on ANY change to the artifact layout **or** to the table/bytecode
/// codecs underneath it (`genus_types::serial`, `genus_vm::serialize`):
/// old files then miss cleanly by name instead of failing checksum reads.
pub const FORMAT_VERSION: u32 = 1;

const MAGIC: &[u8; 4] = b"GNBC";

/// Fingerprint of the stdlib sources compiled into this binary. Part of
/// every artifact: a server with a different stdlib must not trust
/// bytecode whose stdlib-derived tables differ.
pub fn stdlib_fp() -> u64 {
    static FP: OnceLock<u64> = OnceLock::new();
    *FP.get_or_init(|| {
        combine_fps(
            genus_stdlib::sources()
                .iter()
                .map(|(name, src)| content_fp(name, src)),
        )
    })
}

/// A directory of bytecode artifacts.
#[derive(Debug, Clone)]
pub struct DiskCache {
    dir: PathBuf,
}

impl DiskCache {
    /// Opens (creating if needed) the artifact directory.
    ///
    /// # Errors
    ///
    /// Propagates the `create_dir_all` failure.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<DiskCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(DiskCache { dir })
    }

    /// The artifact directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file an artifact for this key lives under.
    pub fn path_for(&self, source: &str, stdlib: bool, opt_level: u8) -> PathBuf {
        let fp = content_fp("request.genus", source);
        self.dir.join(format!(
            "p{fp:016x}-s{}o{opt_level}-v{FORMAT_VERSION}.gbc",
            u8::from(stdlib)
        ))
    }

    /// Loads and fully verifies the artifact for a key. `None` on any
    /// mismatch or decode failure — the caller recompiles (and
    /// overwrites).
    pub fn load(
        &self,
        source: &str,
        stdlib: bool,
        opt_level: u8,
    ) -> Option<(CheckedProgram, VmProgram)> {
        let bytes = std::fs::read(self.path_for(source, stdlib, opt_level)).ok()?;
        decode(&bytes, source, stdlib, opt_level).ok()
    }

    /// Writes the artifact for a key (temp file + rename, so readers
    /// never observe a partial file). Returns whether the write landed;
    /// failures are swallowed — the disk tier is best-effort.
    pub fn store(
        &self,
        source: &str,
        stdlib: bool,
        opt_level: u8,
        prog: &CheckedProgram,
        code: &VmProgram,
    ) -> bool {
        let bytes = encode(source, stdlib, opt_level, prog, code);
        let path = self.path_for(source, stdlib, opt_level);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        if std::fs::write(&tmp, &bytes).is_err() {
            return false;
        }
        if std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return false;
        }
        true
    }
}

fn checksum(bytes: &[u8]) -> u64 {
    let mut h = FnvHasher::default();
    h.write(bytes);
    h.finish()
}

/// Serializes one artifact.
pub fn encode(
    source: &str,
    stdlib: bool,
    opt_level: u8,
    prog: &CheckedProgram,
    code: &VmProgram,
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.raw(MAGIC);
    w.u32(FORMAT_VERSION);
    w.u64(stdlib_fp());
    w.bool(stdlib);
    w.u8(opt_level);
    w.str(source);
    genus_types::serial::write_table(&mut w, &prog.table);
    genus_vm::write_program(&mut w, code);
    let mut bytes = w.into_bytes();
    let sum = checksum(&bytes);
    bytes.extend_from_slice(&sum.to_le_bytes());
    bytes
}

/// Deserializes and verifies one artifact against the requesting key.
///
/// # Errors
///
/// A human-readable reason the artifact was rejected; callers treat every
/// error as a cache miss.
pub fn decode(
    bytes: &[u8],
    source: &str,
    stdlib: bool,
    opt_level: u8,
) -> Result<(CheckedProgram, VmProgram), String> {
    // Checksum first: nothing else is parsed from a corrupt file.
    if bytes.len() < 8 {
        return Err("artifact shorter than its checksum".to_string());
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
    if checksum(payload) != stored {
        return Err("artifact checksum mismatch".to_string());
    }
    let mut r = ByteReader::new(payload);
    let mut magic = [0u8; 4];
    for b in &mut magic {
        *b = r.u8()?;
    }
    if &magic != MAGIC {
        return Err("not a genus bytecode artifact".to_string());
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(format!(
            "artifact format v{version}, this server reads v{FORMAT_VERSION}"
        ));
    }
    let fp = r.u64()?;
    if fp != stdlib_fp() {
        return Err("artifact was compiled against a different stdlib".to_string());
    }
    if r.bool()? != stdlib {
        return Err("artifact stdlib flag mismatch".to_string());
    }
    if r.u8()? != opt_level {
        return Err("artifact opt level mismatch".to_string());
    }
    // The collision guard: the full source decides, never the file name.
    if r.str()? != source {
        return Err("artifact source text differs from the request".to_string());
    }
    let table = genus_types::serial::read_table(&mut r)?;
    let prog = CheckedProgram {
        table,
        method_bodies: HashMap::new(),
        ctor_bodies: HashMap::new(),
        global_bodies: HashMap::new(),
        model_bodies: HashMap::new(),
        field_inits: HashMap::new(),
        static_inits: Vec::new(),
    };
    let code = genus_vm::read_program(&mut r, &prog)?;
    if r.remaining() != 0 {
        return Err(format!("{} trailing bytes in artifact", r.remaining()));
    }
    Ok((prog, code))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "int main() { int s = 0;
        for (int i = 0; i < 9; i = i + 1) { s = s + i; }
        return s; }";

    fn compiled(src: &str) -> (CheckedProgram, VmProgram) {
        let mut report = genus_check::check_sources_report(&[("request.genus", src)]);
        let prog = report.program.take().expect("compiles");
        let code = genus_vm::compile_optimized(&prog, 2);
        (prog, code)
    }

    #[test]
    fn encode_decode_round_trip_runs() {
        let (prog, code) = compiled(SRC);
        let bytes = encode(SRC, false, 2, &prog, &code);
        let (rprog, rcode) = decode(&bytes, SRC, false, 2).expect("verifies");
        let mut vm = genus_vm::Vm::with_code(&rprog, std::sync::Arc::new(rcode));
        let v = vm.run_main().expect("runs from the blanked table");
        assert_eq!(vm.render(&v), "36");
    }

    #[test]
    fn every_key_field_is_verified() {
        let (prog, code) = compiled(SRC);
        let bytes = encode(SRC, false, 2, &prog, &code);
        assert!(decode(&bytes, SRC, false, 2).is_ok());
        assert!(decode(&bytes, "int main() { return 1; }", false, 2).is_err());
        assert!(decode(&bytes, SRC, true, 2).is_err());
        assert!(decode(&bytes, SRC, false, 0).is_err());
    }

    #[test]
    fn truncation_and_corruption_are_rejected_not_panics() {
        let (prog, code) = compiled(SRC);
        let bytes = encode(SRC, false, 2, &prog, &code);
        // Every prefix fails cleanly.
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut], SRC, false, 2).is_err(), "cut {cut}");
        }
        // Any single flipped bit fails the checksum (or a later check).
        for i in (0..bytes.len()).step_by(97) {
            let mut c = bytes.clone();
            c[i] ^= 0x40;
            assert!(decode(&c, SRC, false, 2).is_err(), "flip at {i}");
        }
    }

    #[test]
    fn version_bump_is_a_clean_miss() {
        let (prog, code) = compiled(SRC);
        let mut bytes = encode(SRC, false, 2, &prog, &code);
        // Patch the version field and re-checksum: the version check (not
        // the checksum) must reject it, proving old-format files fail by
        // policy even when intact.
        bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        let n = bytes.len();
        let sum = checksum(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        let err = decode(&bytes, SRC, false, 2).unwrap_err();
        assert!(err.contains("format"), "{err}");
    }

    #[test]
    fn stdlib_fingerprint_mismatch_is_a_clean_miss() {
        let (prog, code) = compiled(SRC);
        let mut bytes = encode(SRC, false, 2, &prog, &code);
        bytes[8..16].copy_from_slice(&0xDEAD_BEEFu64.to_le_bytes());
        let n = bytes.len();
        let sum = checksum(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        let err = decode(&bytes, SRC, false, 2).unwrap_err();
        assert!(err.contains("stdlib"), "{err}");
    }

    #[test]
    fn disk_cache_store_then_load() {
        let dir = std::env::temp_dir().join(format!("genus-persist-test-{}", std::process::id()));
        let disk = DiskCache::open(&dir).expect("open");
        let (prog, code) = compiled(SRC);
        assert!(disk.load(SRC, false, 2).is_none(), "cold dir misses");
        assert!(disk.store(SRC, false, 2, &prog, &code));
        let (rprog, rcode) = disk.load(SRC, false, 2).expect("warm dir hits");
        let mut vm = genus_vm::Vm::with_code(&rprog, std::sync::Arc::new(rcode));
        assert_eq!(vm.run_main().map(|v| vm.render(&v)).unwrap(), "36");
        // A poisoned file is a miss, not a panic.
        std::fs::write(disk.path_for(SRC, false, 2), b"garbage").unwrap();
        assert!(disk.load(SRC, false, 2).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
