//! The execution service: request scheduling over the worker pool and the
//! program cache, plus the JSON-lines session loops (stdin/stdout and TCP).
//!
//! Guarantees:
//!
//! - **One compile per distinct program** — all compilation goes through
//!   the shared [`ProgramCache`].
//! - **Deterministic, non-interleaved output** — each run captures its
//!   program's prints privately (engines never write to process stdout),
//!   and a session emits exactly one response line per request, *in
//!   request order*, even though execution is pipelined across workers.
//! - **Resource governance** — fuel and memory budgets ride into the
//!   engines' meters; wall-clock deadlines are enforced by the scheduler:
//!   time spent queued counts against the deadline, and a request whose
//!   deadline expired before a worker picked it up is rejected with the
//!   same `R0009` trap it would have earned by running.
//! - **Graceful shutdown** — a session ends at EOF; [`Server::shutdown`]
//!   drains queued jobs and joins every worker. (`SIGINT` falls back to
//!   the OS default of terminating the process: the runtime has no
//!   signal-handling dependency, and serve holds no on-disk state that
//!   could be corrupted mid-request.)

use crate::cache::{CachedProgram, ProgramCache, ProgramCacheStats, DEFAULT_CAPACITY};
use crate::metrics::ServerMetrics;
use crate::persist::DiskCache;
use crate::pool::WorkerPool;
use crate::proto::{Action, EngineKind, Outcome, Request, Response};
use crate::session::SessionRegistry;
use genus_interp::{Interp, Limits, ResourceStats, RuntimeError};
use genus_vm::Vm;
use std::io::{BufRead, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

/// Default per-request fuel budget applied by the `genus serve` / `genus
/// batch` CLI when the caller does not set one: generous enough for every
/// shipped sample by orders of magnitude, small enough to stop an
/// infinite loop promptly.
pub const DEFAULT_FUEL: u64 = 50_000_000;

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Budgets applied to requests that do not carry their own.
    pub default_limits: Limits,
    /// `engine: "auto"` promotion: run on the bytecode VM once a cache
    /// entry's invocation count **exceeds** this (below it, the AST
    /// interpreter runs and the entry never pays for a bytecode
    /// compile).
    pub vm_threshold: u64,
    /// `engine: "auto"` promotion: run on the closure-compiled Tier 2
    /// once the invocation count exceeds this (`--tier-threshold=<n>`
    /// on the CLI).
    pub tier_threshold: u64,
    /// Artifact directory for persistent bytecode (`--cache-dir=<path>`
    /// on the CLI). `None` keeps the cache purely in-memory.
    pub cache_dir: Option<PathBuf>,
    /// Bound on resident program-cache entries (`--cache-cap=<n>`).
    pub cache_capacity: usize,
    /// Compile (or disk-load) a canonical stdlib program in the
    /// background at boot, warming the process-global parse/intern
    /// caches before the first real request arrives.
    pub prewarm_stdlib: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            default_limits: Limits::default(),
            vm_threshold: 2,
            tier_threshold: 8,
            cache_dir: None,
            cache_capacity: DEFAULT_CAPACITY,
            prewarm_stdlib: false,
        }
    }
}

/// The multi-threaded execution service. See the module docs for the
/// scheduling and isolation guarantees.
pub struct Server {
    cache: Arc<ProgramCache>,
    pool: WorkerPool,
    sessions: SessionRegistry,
    metrics: Arc<ServerMetrics>,
    config: ServeConfig,
}

/// The canonical prewarm program: compiling it forces the stdlib through
/// the whole pipeline, so its parses and interned symbols are hot (and,
/// with a cache dir, its artifact is on disk) before real traffic lands.
const PREWARM_SOURCE: &str = "int main() { return 0; }";

impl Server {
    /// Builds a server with its worker pool running. A configured
    /// `cache_dir` that cannot be created is ignored (the server still
    /// works, purely in-memory); `prewarm_stdlib` schedules its warming
    /// compile on the pool without blocking construction.
    pub fn new(config: ServeConfig) -> Server {
        let disk = config
            .cache_dir
            .as_ref()
            .and_then(|dir| DiskCache::open(dir).ok());
        let server = Server {
            cache: Arc::new(ProgramCache::with_config(config.cache_capacity, disk)),
            pool: WorkerPool::new(config.workers),
            sessions: SessionRegistry::new(),
            metrics: Arc::new(ServerMetrics::new()),
            config,
        };
        if server.config.prewarm_stdlib {
            let cache = Arc::clone(&server.cache);
            server.pool.submit(move || {
                let _ = cache.get_or_compile(PREWARM_SOURCE, true, 2);
            });
        }
        server
    }

    /// The incremental compile-session registry backing sessionful
    /// requests (`{"session": ..., "action": ...}`).
    pub fn sessions(&self) -> &SessionRegistry {
        &self.sessions
    }

    /// The shared program cache (counters back the `cache: hit|miss`
    /// response field and the tests' exactly-one-compile assertions).
    pub fn cache(&self) -> &Arc<ProgramCache> {
        &self.cache
    }

    /// The configured per-request default budgets.
    pub fn default_limits(&self) -> Limits {
        self.config.default_limits
    }

    /// Program-cache counter snapshot.
    pub fn cache_stats(&self) -> ProgramCacheStats {
        self.cache.stats()
    }

    /// The request counters and latency histogram.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// One metrics snapshot as a JSON line — the payload of a
    /// `{"action":"metrics"}` response and of `--metrics-on-start`.
    pub fn metrics_json(&self) -> String {
        self.metrics.to_json(
            &self.cache.stats(),
            self.cache.len(),
            self.pool.worker_count(),
            self.pool.steals(),
        )
    }

    /// Submits one request for asynchronous execution. The returned
    /// channel yields exactly one [`Response`].
    ///
    /// Sessionful requests are handled synchronously on the calling
    /// thread (the channel is already resolved when this returns): a
    /// session's actions must observe each other in submission order,
    /// which the worker pool does not guarantee, and the point of a
    /// session is that its re-checks are cheap.
    pub fn submit(&self, request: Request) -> mpsc::Receiver<Response> {
        let (tx, rx) = mpsc::channel();
        // Metrics requests are answered by the scheduler itself —
        // synchronously, never queued behind execution work, so the
        // surface stays responsive when the pool is saturated. The
        // snapshot rides in the response's `value` field as a JSON
        // string.
        if request.action == Action::Metrics {
            let _ = tx.send(Response {
                id: request.id,
                outcome: Outcome::Ok(self.metrics_json()),
                engine: request.engine,
                ..Response::error("", "")
            });
            return rx;
        }
        if request.session.is_some() {
            let submitted = Instant::now();
            let response = self.sessions.handle(request, submitted);
            self.metrics.record(&response, us_since(submitted));
            let _ = tx.send(response);
            return rx;
        }
        let cache = Arc::clone(&self.cache);
        let metrics = Arc::clone(&self.metrics);
        let config = self.config.clone();
        let submitted = Instant::now();
        self.pool.submit(move || {
            let response = handle_request(&cache, &config, request, submitted);
            metrics.record(&response, us_since(submitted));
            // The session may have hung up (e.g. a dropped TCP client);
            // losing the response then is correct.
            let _ = tx.send(response);
        });
        rx
    }

    /// Runs a whole batch, returning responses **in request order**
    /// (execution itself is pipelined across the pool).
    pub fn run_batch(&self, requests: Vec<Request>) -> Vec<Response> {
        let receivers: Vec<(String, mpsc::Receiver<Response>)> = requests
            .into_iter()
            .map(|r| (r.id.clone(), self.submit(r)))
            .collect();
        receivers
            .into_iter()
            .map(|(id, rx)| {
                rx.recv()
                    .unwrap_or_else(|_| Response::error(id, "worker dropped the request"))
            })
            .collect()
    }

    /// Drives one JSON-lines session: reads request lines from `reader`
    /// until EOF, writes exactly one response line per request to
    /// `writer` in request order, and returns the number of requests
    /// handled. Execution is pipelined — later requests run while
    /// earlier ones are still in flight — but emission is strictly
    /// ordered, so output is deterministic and never interleaved.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `reader`/`writer`.
    pub fn run_session<R: BufRead, W: Write>(
        &self,
        reader: R,
        writer: &mut W,
    ) -> std::io::Result<usize> {
        let mut pending: std::collections::VecDeque<(String, mpsc::Receiver<Response>)> =
            std::collections::VecDeque::new();
        let mut handled = 0usize;
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let (id, rx) = match Request::parse(&line, &self.config.default_limits) {
                Ok(req) => (req.id.clone(), self.submit(req)),
                Err(msg) => {
                    // Malformed lines still produce exactly one in-order
                    // response, carrying whatever id we could salvage.
                    let id = salvage_id(&line);
                    let (tx, rx) = mpsc::channel();
                    let _ = tx.send(Response::error(id.clone(), format!("bad request: {msg}")));
                    (id, rx)
                }
            };
            pending.push_back((id, rx));
            handled += 1;
            // Emit every response that is already complete at the head of
            // the queue, keeping latency low without breaking order.
            while let Some((_, front)) = pending.front() {
                match front.try_recv() {
                    Ok(resp) => {
                        writeln!(writer, "{}", resp.to_json_line())?;
                        pending.pop_front();
                    }
                    Err(_) => break,
                }
            }
        }
        // EOF: drain the rest in order. A dropped worker still answers
        // under the request's own id, so the client can correlate it.
        for (id, rx) in pending {
            let resp = rx
                .recv()
                .unwrap_or_else(|_| Response::error(id, "worker dropped the request"));
            writeln!(writer, "{}", resp.to_json_line())?;
        }
        writer.flush()?;
        Ok(handled)
    }

    /// Accepts TCP connections forever, driving an independent
    /// JSON-lines session per connection (concurrently — a slow client
    /// does not stall the others). Returns only on accept errors.
    ///
    /// # Errors
    ///
    /// Propagates `accept` failures.
    pub fn serve_tcp(&self, listener: &TcpListener) -> std::io::Result<()> {
        std::thread::scope(|scope| {
            for conn in listener.incoming() {
                let stream = conn?;
                scope.spawn(move || {
                    let reader = std::io::BufReader::new(&stream);
                    let mut writer = &stream;
                    // A dropped client is that session's problem only.
                    let _ = self.run_session(reader, &mut writer);
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                });
            }
            Ok(())
        })
    }

    /// Graceful shutdown: queued requests finish, workers join.
    pub fn shutdown(self) {
        self.pool.shutdown();
    }
}

/// Best-effort id extraction from an unparseable request line, so the
/// error response still correlates.
fn salvage_id(line: &str) -> String {
    genus_common::json::parse(line)
        .ok()
        .and_then(|v| v.get("id").and_then(|id| id.as_str().map(String::from)))
        .unwrap_or_default()
}

/// Worker-side request lifecycle: compile (through the cache), resolve
/// `engine: "auto"` against the entry's hotness, enforce the scheduler
/// deadline, run, and shape the response.
fn handle_request(
    cache: &ProgramCache,
    config: &ServeConfig,
    req: Request,
    submitted: Instant,
) -> Response {
    let (compiled, cache_hit) = cache.get_or_compile(&req.source, req.stdlib, req.opt_level);
    let cached = match compiled {
        Ok(c) => c,
        Err(message) => {
            return Response {
                ms: ms_since(submitted),
                cache_hit,
                engine: req.engine,
                ..Response::error(req.id, message)
            };
        }
    };
    // Hotness promotion. Every run counts toward the entry's hotness;
    // `auto` requests read the count to climb AST → VM → Tier 2. The
    // tier compiles lazily in `execute` (behind the entry's `OnceLock`),
    // so a program that never gets hot never pays for it.
    let invocations = cached.bump_invocations();
    let engine = match req.engine {
        EngineKind::Auto => {
            if invocations > config.tier_threshold {
                EngineKind::Jit
            } else if invocations > config.vm_threshold || cached.is_disk_loaded() {
                // A disk-loaded entry already has its bytecode in hand
                // but no HIR bodies; starting it on the AST rung would
                // force the full compile persistence exists to skip.
                EngineKind::Vm
            } else {
                EngineKind::Ast
            }
        }
        explicit => explicit,
    };
    // Scheduler-enforced deadline: queue time counts. A request that
    // missed its deadline while waiting is rejected with the same trap
    // it would have earned by running past it.
    let mut limits = req.limits;
    if let Some(deadline) = limits.deadline_ms {
        let waited = ms_since(submitted);
        if waited >= deadline {
            return Response {
                id: req.id,
                outcome: Outcome::Trap {
                    code: "R0009".to_string(),
                    message: "wall-clock deadline exceeded".to_string(),
                },
                output: String::new(),
                fuel_used: 0,
                mem_used: 0,
                live_bytes: 0,
                peak_bytes: 0,
                collections: 0,
                cache_hit,
                ms: waited,
                engine,
                reuse: None,
            };
        }
        limits.deadline_ms = Some(deadline - waited);
    }
    let run = match execute(&cached, engine, limits) {
        Ok(run) => run,
        // Only the AST engine's lazy full compile of a disk-loaded
        // entry can fail here.
        Err(message) => {
            return Response {
                ms: ms_since(submitted),
                cache_hit,
                engine,
                ..Response::error(req.id, message)
            };
        }
    };
    Response {
        id: req.id,
        outcome: match run.outcome {
            Ok(value) => Outcome::Ok(value),
            Err(e) => Outcome::Trap {
                code: e.code().to_string(),
                message: e.to_string(),
            },
        },
        output: run.output,
        fuel_used: run.stats.fuel_used,
        mem_used: run.stats.mem_used,
        live_bytes: run.stats.live_bytes,
        peak_bytes: run.stats.peak_bytes,
        collections: run.stats.collections,
        cache_hit,
        ms: ms_since(submitted),
        engine,
        reuse: None,
    }
}

struct RunOutcome {
    outcome: Result<String, RuntimeError>,
    output: String,
    stats: ResourceStats,
}

/// Runs `main()` on the selected engine against the shared program. The
/// worker's big stack hosts the AST interpreter directly; the VM shares
/// the entry's compiled bytecode. Each run gets a **fresh heap** that
/// dies with the engine, so serve's resident memory stays flat across
/// requests regardless of how much a program allocates.
///
/// # Errors
///
/// The AST engine walks HIR bodies, which disk-loaded entries do not
/// carry — [`CachedProgram::ast_prog`] full-compiles lazily, and its
/// (cached) failure surfaces here as rendered diagnostics.
fn execute(
    cached: &CachedProgram,
    engine: EngineKind,
    limits: Limits,
) -> Result<RunOutcome, String> {
    Ok(match engine {
        EngineKind::Ast => {
            let mut interp = Interp::new(cached.ast_prog()?);
            interp.set_limits(limits);
            let outcome = interp.run_main().map(|v| interp.render(&v));
            RunOutcome {
                outcome,
                stats: interp.resource_stats(),
                output: interp.take_output(),
            }
        }
        EngineKind::Vm => {
            let mut vm = Vm::with_code(&cached.prog, cached.vm_code());
            vm.set_limits(limits);
            let outcome = vm.run_main().map(|v| vm.render(&v));
            RunOutcome {
                outcome,
                stats: vm.resource_stats(),
                output: vm.take_output(),
            }
        }
        EngineKind::Jit => {
            // `tier_code()` blocks racing requests on the entry's
            // `OnceLock` so exactly one thread tier-compiles.
            let tier = cached.tier_code();
            let mut vm = Vm::with_code(&cached.prog, Arc::clone(tier.code()));
            vm.set_limits(limits);
            let outcome = vm.run_main_tier(&tier).map(|v| vm.render(&v));
            RunOutcome {
                outcome,
                stats: vm.resource_stats(),
                output: vm.take_output(),
            }
        }
        // `Auto` is resolved in `handle_request` before execution; run
        // it like the default engine if a caller bypasses that path.
        EngineKind::Auto => execute(cached, EngineKind::Vm, limits)?,
    })
}

#[allow(clippy::cast_possible_truncation)]
fn ms_since(start: Instant) -> u64 {
    start.elapsed().as_millis() as u64
}

#[allow(clippy::cast_possible_truncation)]
fn us_since(start: Instant) -> u64 {
    start.elapsed().as_micros() as u64
}
