//! The content-hash-keyed shared program cache: sharded, LRU-bounded,
//! optionally backed by on-disk bytecode.
//!
//! Each distinct `(source, stdlib, opt_level)` triple is compiled **once**
//! per server while it stays resident, no matter how many requests race
//! on it: the map slot is an `Arc<OnceLock<…>>`, so the first thread to
//! claim a fresh slot runs the compiler while every other thread blocks
//! on `get_or_init` and then shares the same `Arc`'d program. The checked
//! AST is `Sync` (the type query caches are lock-based), and the VM
//! bytecode holds only `Send + Sync` data, so one cached entry serves any
//! number of workers concurrently — the paper's per-instantiation model
//! resolution keeps a checked program self-contained, which is what makes
//! this sound.
//!
//! Three scaling properties on top of the original single-mutex design:
//!
//! - **Sharded locking.** The map is split across [`SHARDS`] independent
//!   mutexes selected by key hash, so concurrent workers resolving
//!   different programs do not serialize on one lock. Keys are FNV-1a
//!   content hashes with a collision chain that compares the full source,
//!   so hash collisions cost a probe, never a wrong program.
//! - **Bounded memory.** Each shard holds at most `capacity / SHARDS`
//!   entries; inserting beyond that evicts the shard's least-recently
//!   touched entry (a counted eviction). Eviction only removes the map's
//!   *reference* — requests already running the program hold their own
//!   `Arc` and finish safely; a later request for an evicted key simply
//!   recompiles (or reloads from disk).
//! - **Persistent bytecode.** With a [`DiskCache`] attached, a cache miss
//!   first tries the artifact directory — a verified load skips the type
//!   check entirely (the dominant compile cost) — and a fresh compile is
//!   written back, so a restarted server answers its first request for a
//!   known program from disk. Disk-loaded entries carry a bodies-blanked
//!   AST sufficient for the VM and Tier 2 engines; an AST-engine request
//!   against one triggers a lazy full compile (see
//!   [`CachedProgram::ast_prog`]).

use crate::persist::DiskCache;
use genus_check::CheckedProgram;
use genus_common::{FastMap, FnvHasher};
use genus_vm::{compile_optimized, compile_tier, TierProgram, VmProgram};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of independent lock shards (power of two; key hash selects).
pub const SHARDS: usize = 8;

/// Default entry bound: generous for a server's working set, small enough
/// that a hostile stream of distinct programs cannot grow memory without
/// bound.
pub const DEFAULT_CAPACITY: usize = 1024;

/// A compiled-and-checked program shared by every request with the same
/// source. The bytecode is compiled lazily on the first VM-engine request
/// (AST-only traffic never pays for it), and the closure-compiled Tier 2
/// form lazily on the first jit-engine request or hotness promotion —
/// each behind its own `OnceLock`, so racing requests agree on exactly
/// one compile per tier. Disk-loaded entries arrive with the bytecode
/// pre-set and a bodies-blanked AST; [`CachedProgram::ast_prog`] supplies
/// the full AST on demand.
pub struct CachedProgram {
    /// The checked AST (also carries the type tables and query caches).
    /// For disk-loaded entries the declaration table is complete but the
    /// method bodies are blank — everything the VM and Tier 2 engines
    /// consult, nothing the AST interpreter needs. Engines that walk
    /// bodies must go through [`CachedProgram::ast_prog`].
    pub prog: CheckedProgram,
    /// The entry's optimization level (fixed per cache key).
    pub opt_level: u8,
    /// The key's source text (kept for the disk tier and the lazy full
    /// compile of disk-loaded entries).
    source: String,
    /// Whether the stdlib is compiled in.
    stdlib: bool,
    /// Whether this entry was restored from the artifact directory
    /// (bodies blanked) rather than compiled in-process.
    from_disk: bool,
    /// Runs of this entry so far — the hotness signal driving
    /// `engine: "auto"` tier promotion.
    invocations: AtomicU64,
    vm_code: OnceLock<Arc<VmProgram>>,
    tier_code: OnceLock<Arc<TierProgram>>,
    /// Lazy full compile backing [`CachedProgram::ast_prog`] on
    /// disk-loaded entries (never touched otherwise).
    full: OnceLock<Result<CheckedProgram, String>>,
}

impl std::fmt::Debug for CachedProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedProgram")
            .field("opt_level", &self.opt_level)
            .field("from_disk", &self.from_disk)
            .field("invocations", &self.invocations())
            .field("vm_compiled", &self.vm_code.get().is_some())
            .field("tier_compiled", &self.tier_code.get().is_some())
            .finish_non_exhaustive()
    }
}

impl CachedProgram {
    /// The shared bytecode, compiling it on first use.
    pub fn vm_code(&self) -> Arc<VmProgram> {
        Arc::clone(
            self.vm_code
                .get_or_init(|| Arc::new(compile_optimized(&self.prog, self.opt_level))),
        )
    }

    /// The shared Tier 2 closure program, compiling it (and the bytecode
    /// underneath, if this entry never ran on the VM) on first use. Under
    /// racing submissions exactly one thread tier-compiles; the rest
    /// block on the `OnceLock` and share the result.
    pub fn tier_code(&self) -> Arc<TierProgram> {
        Arc::clone(
            self.tier_code
                .get_or_init(|| Arc::new(compile_tier(&self.vm_code()))),
        )
    }

    /// Whether the Tier 2 form has been compiled (without triggering it).
    pub fn tier_compiled(&self) -> bool {
        self.tier_code.get().is_some()
    }

    /// Whether this entry came from the artifact directory. Such entries
    /// have blank HIR bodies, so the `auto` ladder starts them at the VM
    /// rung instead of the AST interpreter.
    pub fn is_disk_loaded(&self) -> bool {
        self.from_disk
    }

    /// The full checked AST, for engines that walk HIR bodies. In-process
    /// entries return their own program; disk-loaded entries run one lazy
    /// full compile (exactly once, shared by racing requests) — the price
    /// of an explicit `engine: "ast"` request against a persisted
    /// program.
    ///
    /// # Errors
    ///
    /// Rendered diagnostics if the lazy compile fails (possible only if
    /// the artifact's source no longer checks, e.g. across a language
    /// change that did not bump the artifact format).
    pub fn ast_prog(&self) -> Result<&CheckedProgram, String> {
        if !self.from_disk {
            return Ok(&self.prog);
        }
        self.full
            .get_or_init(|| compile(&self.source, self.stdlib))
            .as_ref()
            .map_err(Clone::clone)
    }

    /// Counts one run of this entry and returns the new total.
    pub fn bump_invocations(&self) -> u64 {
        self.invocations.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Runs of this entry so far.
    pub fn invocations(&self) -> u64 {
        self.invocations.load(Ordering::Relaxed)
    }
}

/// Full cache key. The source text is kept so hash collisions are
/// resolved by comparison, never by trust.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    source: String,
    stdlib: bool,
    opt_level: u8,
}

fn content_hash(key: &Key) -> u64 {
    let mut h = FnvHasher::default();
    key.hash(&mut h);
    h.finish()
}

type Slot = Arc<OnceLock<Result<Arc<CachedProgram>, String>>>;

/// One resident cache entry: the key (for collision probing), the compile
/// slot, and a last-touch stamp for LRU eviction.
struct Entry {
    key: Key,
    slot: Slot,
    last_touch: u64,
}

/// One lock shard's map: hash → collision chain of entries.
#[derive(Default)]
struct Shard {
    chains: FastMap<u64, Vec<Entry>>,
    len: usize,
}

impl Shard {
    /// Evicts the least-recently touched entry (there is always at least
    /// one: this runs right after an insert pushed the shard over cap).
    fn evict_lru(&mut self) {
        let victim = self
            .chains
            .iter()
            .flat_map(|(h, chain)| chain.iter().map(move |e| (*h, e.key.clone(), e.last_touch)))
            .min_by_key(|(_, _, touch)| *touch);
        if let Some((hash, key, _)) = victim {
            let chain = self.chains.get_mut(&hash).expect("victim chain exists");
            chain.retain(|e| e.key != key);
            if chain.is_empty() {
                self.chains.remove(&hash);
            }
            self.len -= 1;
        }
    }
}

/// Counter snapshot for the program cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgramCacheStats {
    /// Requests that found their slot already in the map.
    pub hits: u64,
    /// Requests that inserted a fresh slot (exactly one per distinct
    /// *resident* key, no matter how many submissions race; an evicted
    /// key misses again).
    pub misses: u64,
    /// Compilations actually executed in-process.
    pub compiles: u64,
    /// Entries whose Tier 2 closure form has been compiled — at most one
    /// tier compile per entry, no matter how many submissions race.
    pub tier_compiles: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Misses answered by a verified on-disk artifact (no type check, no
    /// bytecode compile).
    pub disk_hits: u64,
    /// Fresh compiles persisted to the artifact directory.
    pub disk_writes: u64,
}

/// The shared program cache. Cheap to clone the `Arc` around; all methods
/// take `&self`.
pub struct ProgramCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard entry bound (total capacity split across shards).
    per_shard_cap: usize,
    disk: Option<DiskCache>,
    /// Global LRU clock: bumped on every touch, stamped into entries.
    touch: AtomicU64,
    /// Resident entries across all shards (O(1) `len`).
    entries: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    compiles: AtomicU64,
    evictions: AtomicU64,
    disk_hits: AtomicU64,
    disk_writes: AtomicU64,
}

impl Default for ProgramCache {
    fn default() -> Self {
        ProgramCache::with_config(DEFAULT_CAPACITY, None)
    }
}

impl ProgramCache {
    /// An empty cache with the default capacity and no disk tier.
    pub fn new() -> ProgramCache {
        ProgramCache::default()
    }

    /// An empty cache bounded to roughly `capacity` entries (split across
    /// [`SHARDS`] shards, at least one per shard), optionally backed by
    /// an artifact directory.
    pub fn with_config(capacity: usize, disk: Option<DiskCache>) -> ProgramCache {
        ProgramCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_cap: capacity.div_ceil(SHARDS).max(1),
            disk,
            touch: AtomicU64::new(0),
            entries: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            disk_writes: AtomicU64::new(0),
        }
    }

    /// The artifact directory backing this cache, if one is attached.
    pub fn disk(&self) -> Option<&DiskCache> {
        self.disk.as_ref()
    }

    /// Returns the compiled program for `(source, stdlib, opt_level)`,
    /// compiling it if the key is not resident, and whether the slot was
    /// already present (`true` = cache hit). When several threads race on
    /// a fresh key, exactly one compiles (or disk-loads); the rest block
    /// until the result is ready and then share it.
    ///
    /// # Errors
    ///
    /// The inner `Result` carries rendered compile diagnostics (shared
    /// verbatim by every request for the failing source).
    pub fn get_or_compile(
        &self,
        source: &str,
        stdlib: bool,
        opt_level: u8,
    ) -> (Result<Arc<CachedProgram>, String>, bool) {
        let key = Key {
            source: source.to_string(),
            stdlib,
            opt_level,
        };
        let hash = content_hash(&key);
        let stamp = self.touch.fetch_add(1, Ordering::Relaxed);
        let (slot, hit) = {
            let mut shard = self.shards[hash as usize & (SHARDS - 1)].lock().unwrap();
            let existing = shard
                .chains
                .get_mut(&hash)
                .and_then(|chain| chain.iter_mut().find(|e| e.key == key));
            match existing {
                Some(entry) => {
                    entry.last_touch = stamp;
                    (Arc::clone(&entry.slot), true)
                }
                None => {
                    let slot: Slot = Arc::new(OnceLock::new());
                    shard.chains.entry(hash).or_default().push(Entry {
                        key,
                        slot: Arc::clone(&slot),
                        last_touch: stamp,
                    });
                    shard.len += 1;
                    self.entries.fetch_add(1, Ordering::Relaxed);
                    if shard.len > self.per_shard_cap {
                        // The newest entry carries the freshest stamp, so
                        // the LRU scan never evicts what was just
                        // inserted. In-flight requests for the victim
                        // hold their own Arc and finish safely.
                        shard.evict_lru();
                        self.entries.fetch_sub(1, Ordering::Relaxed);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    (slot, false)
                }
            }
        };
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let result = slot
            .get_or_init(|| self.populate(source, stdlib, opt_level))
            .clone();
        (result, hit)
    }

    /// Fills a fresh slot: disk first (verified artifact → no type
    /// check), else a full compile, written back to disk so the next
    /// process boots warm.
    fn populate(
        &self,
        source: &str,
        stdlib: bool,
        opt_level: u8,
    ) -> Result<Arc<CachedProgram>, String> {
        if let Some(disk) = &self.disk {
            if let Some((prog, code)) = disk.load(source, stdlib, opt_level) {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                let vm_code = OnceLock::new();
                let _ = vm_code.set(Arc::new(code));
                return Ok(Arc::new(CachedProgram {
                    prog,
                    opt_level,
                    source: source.to_string(),
                    stdlib,
                    from_disk: true,
                    invocations: AtomicU64::new(0),
                    vm_code,
                    tier_code: OnceLock::new(),
                    full: OnceLock::new(),
                }));
            }
        }
        self.compiles.fetch_add(1, Ordering::Relaxed);
        let cached = compile(source, stdlib).map(|prog| {
            Arc::new(CachedProgram {
                prog,
                opt_level,
                source: source.to_string(),
                stdlib,
                from_disk: false,
                invocations: AtomicU64::new(0),
                vm_code: OnceLock::new(),
                tier_code: OnceLock::new(),
                full: OnceLock::new(),
            })
        })?;
        if let Some(disk) = &self.disk {
            // Persisting costs one eager bytecode compile (cheap next to
            // the type check we are saving the next process).
            let code = cached.vm_code();
            if disk.store(source, stdlib, opt_level, &cached.prog, &code) {
                self.disk_writes.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(cached)
    }

    /// Counter snapshot. `tier_compiles` is derived by inspecting the
    /// entries (the `OnceLock` *is* the count — there is no separate
    /// counter to drift from it).
    pub fn stats(&self) -> ProgramCacheStats {
        let tier_compiles = self
            .shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap()
                    .chains
                    .values()
                    .flatten()
                    .filter_map(|e| e.slot.get())
                    .filter_map(|r| r.as_ref().ok())
                    .filter(|cached| cached.tier_compiled())
                    .count() as u64
            })
            .sum();
        ProgramCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            tier_compiles,
            evictions: self.evictions.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_writes: self.disk_writes.load(Ordering::Relaxed),
        }
    }

    /// Number of resident cached programs — O(1), a counter maintained
    /// under the shard locks, not a walk.
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed)
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One checked compile, mirroring the facade's pipeline (prelude +
/// optional stdlib + the request source) so serve results match
/// `genus run` byte for byte.
fn compile(source: &str, stdlib: bool) -> Result<CheckedProgram, String> {
    let mut pairs: Vec<(&str, &str)> = Vec::new();
    if stdlib {
        for (name, src) in genus_stdlib::sources() {
            pairs.push((name, src));
        }
    }
    pairs.push(("request.genus", source));
    let mut report = genus_check::check_sources_report(&pairs);
    if report.has_errors() {
        return Err(report.render_errors_short());
    }
    Ok(report.program.take().expect("no errors implies a program"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_get_distinct_entries() {
        let cache = ProgramCache::new();
        let src = "int main() { return 1; }";
        let (a, hit_a) = cache.get_or_compile(src, false, 2);
        assert!(a.is_ok() && !hit_a);
        let (_, hit_b) = cache.get_or_compile(src, false, 2);
        assert!(hit_b);
        // A different opt level is a different entry.
        let (_, hit_c) = cache.get_or_compile(src, false, 0);
        assert!(!hit_c);
        assert_eq!(cache.len(), 2);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.compiles), (1, 2, 2));
    }

    #[test]
    fn compile_errors_are_cached_too() {
        let cache = ProgramCache::new();
        let (r1, _) = cache.get_or_compile("int main() { return nope; }", false, 2);
        let e1 = r1.unwrap_err();
        let (r2, hit) = cache.get_or_compile("int main() { return nope; }", false, 2);
        assert!(hit, "failing sources hit their cached diagnostics");
        assert_eq!(e1, r2.unwrap_err());
        assert_eq!(cache.stats().compiles, 1);
    }

    #[test]
    fn vm_code_is_compiled_once_and_shared() {
        let cache = ProgramCache::new();
        let (r, _) = cache.get_or_compile("int main() { return 2; }", false, 2);
        let cached = r.unwrap();
        let a = cached.vm_code();
        let b = cached.vm_code();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn tier_code_is_compiled_once_and_counted() {
        let cache = ProgramCache::new();
        let (r, _) = cache.get_or_compile("int main() { return 3; }", false, 2);
        let cached = r.unwrap();
        assert_eq!(cache.stats().tier_compiles, 0);
        let a = cached.tier_code();
        let b = cached.tier_code();
        assert!(Arc::ptr_eq(&a, &b), "tier program is shared");
        assert!(
            Arc::ptr_eq(a.code(), &cached.vm_code()),
            "tier is built over the entry's own bytecode"
        );
        assert_eq!(cache.stats().tier_compiles, 1);
    }

    fn run_vm(cached: &CachedProgram) -> String {
        let mut vm = genus_vm::Vm::with_code(&cached.prog, cached.vm_code());
        let v = vm.run_main().expect("runs");
        vm.render(&v)
    }

    #[test]
    fn lru_eviction_is_bounded_counted_and_safe() {
        // Capacity 8 over 8 shards: one entry per shard.
        let cache = ProgramCache::with_config(8, None);
        let first_src = "int main() { return 1000; }".to_string();
        let (first, _) = cache.get_or_compile(&first_src, false, 0);
        let first = first.unwrap();
        for i in 0..32 {
            let src = format!("int main() {{ return {i}; }}");
            let (r, _) = cache.get_or_compile(&src, false, 0);
            assert_eq!(run_vm(&r.unwrap()), i.to_string());
        }
        assert!(cache.len() <= SHARDS, "bounded: {} entries", cache.len());
        let s = cache.stats();
        assert!(s.evictions > 0, "churn past the cap must evict");
        assert_eq!(s.evictions, s.misses - cache.len() as u64);
        // The evicted-but-held entry still runs: eviction drops the map
        // reference, never the program.
        assert_eq!(run_vm(&first), "1000");
        // Re-requesting it is a fresh miss that recompiles correctly.
        let (again, hit) = cache.get_or_compile(&first_src, false, 0);
        assert!(!hit, "evicted keys miss again");
        assert_eq!(run_vm(&again.unwrap()), "1000");
    }

    #[test]
    fn racing_requests_share_exactly_one_compile() {
        let cache = Arc::new(ProgramCache::new());
        let src = "int main() { return 7 * 6; }";
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || cache.get_or_compile(src, false, 2).0.unwrap())
            })
            .collect();
        let progs: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for p in &progs[1..] {
            assert!(Arc::ptr_eq(&progs[0], p), "all racers share one entry");
        }
        assert_eq!(cache.stats().compiles, 1);
    }

    #[test]
    fn racing_evictions_never_return_the_wrong_program() {
        // A keyspace much larger than a tiny cache, hammered from several
        // threads: every result must match its own source, even as
        // entries are evicted and recompiled underneath the racers.
        let cache = Arc::new(ProgramCache::with_config(4, None));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..40 {
                        let want = (t * 31 + i) % 12;
                        let src = format!("int main() {{ return {want}; }}");
                        let (r, _) = cache.get_or_compile(&src, false, 0);
                        assert_eq!(run_vm(&r.unwrap()), want.to_string());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = cache.stats();
        assert!(s.evictions > 0);
        assert!(cache.len() <= SHARDS);
        assert_eq!(s.hits + s.misses, 160);
    }

    #[test]
    fn disk_tier_survives_a_new_cache_instance() {
        let dir = std::env::temp_dir().join(format!("genus-cache-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let src = "int main() { return 5 * 5; }";
        {
            let cache =
                ProgramCache::with_config(64, Some(DiskCache::open(&dir).expect("open disk")));
            let (r, _) = cache.get_or_compile(src, false, 2);
            assert_eq!(run_vm(&r.unwrap()), "25");
            let s = cache.stats();
            assert_eq!((s.compiles, s.disk_hits, s.disk_writes), (1, 0, 1));
        }
        // A fresh cache over the same directory: no compile at all.
        let cache = ProgramCache::with_config(64, Some(DiskCache::open(&dir).expect("open disk")));
        let (r, hit) = cache.get_or_compile(src, false, 2);
        let cached = r.unwrap();
        assert!(!hit, "fresh process: the in-memory map misses");
        assert!(cached.is_disk_loaded());
        assert_eq!(run_vm(&cached), "25");
        let s = cache.stats();
        assert_eq!((s.compiles, s.disk_hits), (0, 1));
        // The AST fallback full-compiles lazily and agrees.
        let full = cached.ast_prog().expect("lazy full compile");
        let mut interp = genus_interp::Interp::new(full);
        let v = interp.run_main().expect("runs");
        assert_eq!(interp.render(&v), "25");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
