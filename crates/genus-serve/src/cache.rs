//! The content-hash-keyed shared program cache.
//!
//! Each distinct `(source, stdlib, opt_level)` triple is compiled **once**
//! per server, no matter how many requests race on it: the map slot is an
//! `Arc<OnceLock<…>>`, so the first thread to claim a fresh slot runs the
//! compiler while every other thread blocks on `get_or_init` and then
//! shares the same `Arc`'d program. The checked AST is `Sync` (the type
//! query caches are lock-based), and the VM bytecode holds only
//! `Send + Sync` data, so one cached entry serves any number of workers
//! concurrently — the paper's per-instantiation model resolution keeps a
//! checked program self-contained, which is what makes this sound.
//!
//! Keys are FNV-1a content hashes with a collision chain that compares
//! the full source, so hash collisions cost a probe, never a wrong
//! program.

use genus_check::CheckedProgram;
use genus_common::{FastMap, FnvHasher};
use genus_vm::{compile_optimized, VmProgram};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A compiled-and-checked program shared by every request with the same
/// source. The bytecode is compiled lazily on the first VM-engine request
/// (AST-only traffic never pays for it).
pub struct CachedProgram {
    /// The checked AST (also carries the type tables and query caches).
    pub prog: CheckedProgram,
    /// The entry's optimization level (fixed per cache key).
    pub opt_level: u8,
    vm_code: OnceLock<Arc<VmProgram>>,
}

impl std::fmt::Debug for CachedProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedProgram")
            .field("opt_level", &self.opt_level)
            .field("vm_compiled", &self.vm_code.get().is_some())
            .finish_non_exhaustive()
    }
}

impl CachedProgram {
    /// The shared bytecode, compiling it on first use.
    pub fn vm_code(&self) -> Arc<VmProgram> {
        Arc::clone(
            self.vm_code
                .get_or_init(|| Arc::new(compile_optimized(&self.prog, self.opt_level))),
        )
    }
}

/// Full cache key. The source text is kept so hash collisions are
/// resolved by comparison, never by trust.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    source: String,
    stdlib: bool,
    opt_level: u8,
}

fn content_hash(key: &Key) -> u64 {
    let mut h = FnvHasher::default();
    key.hash(&mut h);
    h.finish()
}

type Slot = Arc<OnceLock<Result<Arc<CachedProgram>, String>>>;

/// Counter snapshot for the program cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgramCacheStats {
    /// Requests that found their slot already in the map.
    pub hits: u64,
    /// Requests that inserted a fresh slot (exactly one per distinct key,
    /// no matter how many submissions race).
    pub misses: u64,
    /// Compilations actually executed (== `misses` unless a compile
    /// panicked).
    pub compiles: u64,
}

/// The shared program cache. Cheap to clone the `Arc` around; all methods
/// take `&self`.
#[derive(Default)]
pub struct ProgramCache {
    /// Hash → collision chain of `(key, slot)` pairs.
    map: Mutex<FastMap<u64, Vec<(Key, Slot)>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    compiles: AtomicU64,
}

impl ProgramCache {
    /// Creates an empty cache.
    pub fn new() -> ProgramCache {
        ProgramCache::default()
    }

    /// Returns the compiled program for `(source, stdlib, opt_level)`,
    /// compiling it if this is the first request for that key, and
    /// whether the slot was already present (`true` = cache hit). When
    /// several threads race on a fresh key, exactly one compiles; the
    /// rest block until the result is ready and then share it.
    ///
    /// # Errors
    ///
    /// The inner `Result` carries rendered compile diagnostics (shared
    /// verbatim by every request for the failing source).
    pub fn get_or_compile(
        &self,
        source: &str,
        stdlib: bool,
        opt_level: u8,
    ) -> (Result<Arc<CachedProgram>, String>, bool) {
        let key = Key {
            source: source.to_string(),
            stdlib,
            opt_level,
        };
        let hash = content_hash(&key);
        let (slot, hit) = {
            let mut map = self.map.lock().unwrap();
            let chain = map.entry(hash).or_default();
            match chain.iter().find(|(k, _)| *k == key) {
                Some((_, slot)) => (Arc::clone(slot), true),
                None => {
                    let slot: Slot = Arc::new(OnceLock::new());
                    chain.push((key, Arc::clone(&slot)));
                    (slot, false)
                }
            }
        };
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let result = slot
            .get_or_init(|| {
                self.compiles.fetch_add(1, Ordering::Relaxed);
                compile(source, stdlib).map(|prog| {
                    Arc::new(CachedProgram {
                        prog,
                        opt_level,
                        vm_code: OnceLock::new(),
                    })
                })
            })
            .clone();
        (result, hit)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ProgramCacheStats {
        ProgramCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct cached programs.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().values().map(Vec::len).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One checked compile, mirroring the facade's pipeline (prelude +
/// optional stdlib + the request source) so serve results match
/// `genus run` byte for byte.
fn compile(source: &str, stdlib: bool) -> Result<CheckedProgram, String> {
    let mut pairs: Vec<(&str, &str)> = Vec::new();
    if stdlib {
        for (name, src) in genus_stdlib::sources() {
            pairs.push((name, src));
        }
    }
    pairs.push(("request.genus", source));
    let mut report = genus_check::check_sources_report(&pairs);
    if report.has_errors() {
        return Err(report.render_errors_short());
    }
    Ok(report.program.take().expect("no errors implies a program"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_get_distinct_entries() {
        let cache = ProgramCache::new();
        let src = "int main() { return 1; }";
        let (a, hit_a) = cache.get_or_compile(src, false, 2);
        assert!(a.is_ok() && !hit_a);
        let (_, hit_b) = cache.get_or_compile(src, false, 2);
        assert!(hit_b);
        // A different opt level is a different entry.
        let (_, hit_c) = cache.get_or_compile(src, false, 0);
        assert!(!hit_c);
        assert_eq!(cache.len(), 2);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.compiles), (1, 2, 2));
    }

    #[test]
    fn compile_errors_are_cached_too() {
        let cache = ProgramCache::new();
        let (r1, _) = cache.get_or_compile("int main() { return nope; }", false, 2);
        let e1 = r1.unwrap_err();
        let (r2, hit) = cache.get_or_compile("int main() { return nope; }", false, 2);
        assert!(hit, "failing sources hit their cached diagnostics");
        assert_eq!(e1, r2.unwrap_err());
        assert_eq!(cache.stats().compiles, 1);
    }

    #[test]
    fn vm_code_is_compiled_once_and_shared() {
        let cache = ProgramCache::new();
        let (r, _) = cache.get_or_compile("int main() { return 2; }", false, 2);
        let cached = r.unwrap();
        let a = cached.vm_code();
        let b = cached.vm_code();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
