//! The content-hash-keyed shared program cache.
//!
//! Each distinct `(source, stdlib, opt_level)` triple is compiled **once**
//! per server, no matter how many requests race on it: the map slot is an
//! `Arc<OnceLock<…>>`, so the first thread to claim a fresh slot runs the
//! compiler while every other thread blocks on `get_or_init` and then
//! shares the same `Arc`'d program. The checked AST is `Sync` (the type
//! query caches are lock-based), and the VM bytecode holds only
//! `Send + Sync` data, so one cached entry serves any number of workers
//! concurrently — the paper's per-instantiation model resolution keeps a
//! checked program self-contained, which is what makes this sound.
//!
//! Keys are FNV-1a content hashes with a collision chain that compares
//! the full source, so hash collisions cost a probe, never a wrong
//! program.

use genus_check::CheckedProgram;
use genus_common::{FastMap, FnvHasher};
use genus_vm::{compile_optimized, compile_tier, TierProgram, VmProgram};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A compiled-and-checked program shared by every request with the same
/// source. The bytecode is compiled lazily on the first VM-engine request
/// (AST-only traffic never pays for it), and the closure-compiled Tier 2
/// form lazily on the first jit-engine request or hotness promotion —
/// each behind its own `OnceLock`, so racing requests agree on exactly
/// one compile per tier.
pub struct CachedProgram {
    /// The checked AST (also carries the type tables and query caches).
    pub prog: CheckedProgram,
    /// The entry's optimization level (fixed per cache key).
    pub opt_level: u8,
    /// Runs of this entry so far — the hotness signal driving
    /// `engine: "auto"` tier promotion.
    invocations: AtomicU64,
    vm_code: OnceLock<Arc<VmProgram>>,
    tier_code: OnceLock<Arc<TierProgram>>,
}

impl std::fmt::Debug for CachedProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedProgram")
            .field("opt_level", &self.opt_level)
            .field("invocations", &self.invocations())
            .field("vm_compiled", &self.vm_code.get().is_some())
            .field("tier_compiled", &self.tier_code.get().is_some())
            .finish_non_exhaustive()
    }
}

impl CachedProgram {
    /// The shared bytecode, compiling it on first use.
    pub fn vm_code(&self) -> Arc<VmProgram> {
        Arc::clone(
            self.vm_code
                .get_or_init(|| Arc::new(compile_optimized(&self.prog, self.opt_level))),
        )
    }

    /// The shared Tier 2 closure program, compiling it (and the bytecode
    /// underneath, if this entry never ran on the VM) on first use. Under
    /// racing submissions exactly one thread tier-compiles; the rest
    /// block on the `OnceLock` and share the result.
    pub fn tier_code(&self) -> Arc<TierProgram> {
        Arc::clone(
            self.tier_code
                .get_or_init(|| Arc::new(compile_tier(&self.vm_code()))),
        )
    }

    /// Whether the Tier 2 form has been compiled (without triggering it).
    pub fn tier_compiled(&self) -> bool {
        self.tier_code.get().is_some()
    }

    /// Counts one run of this entry and returns the new total.
    pub fn bump_invocations(&self) -> u64 {
        self.invocations.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Runs of this entry so far.
    pub fn invocations(&self) -> u64 {
        self.invocations.load(Ordering::Relaxed)
    }
}

/// Full cache key. The source text is kept so hash collisions are
/// resolved by comparison, never by trust.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    source: String,
    stdlib: bool,
    opt_level: u8,
}

fn content_hash(key: &Key) -> u64 {
    let mut h = FnvHasher::default();
    key.hash(&mut h);
    h.finish()
}

type Slot = Arc<OnceLock<Result<Arc<CachedProgram>, String>>>;

/// Counter snapshot for the program cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgramCacheStats {
    /// Requests that found their slot already in the map.
    pub hits: u64,
    /// Requests that inserted a fresh slot (exactly one per distinct key,
    /// no matter how many submissions race).
    pub misses: u64,
    /// Compilations actually executed (== `misses` unless a compile
    /// panicked).
    pub compiles: u64,
    /// Entries whose Tier 2 closure form has been compiled — at most one
    /// tier compile per entry, no matter how many submissions race.
    pub tier_compiles: u64,
}

/// The shared program cache. Cheap to clone the `Arc` around; all methods
/// take `&self`.
#[derive(Default)]
pub struct ProgramCache {
    /// Hash → collision chain of `(key, slot)` pairs.
    map: Mutex<FastMap<u64, Vec<(Key, Slot)>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    compiles: AtomicU64,
}

impl ProgramCache {
    /// Creates an empty cache.
    pub fn new() -> ProgramCache {
        ProgramCache::default()
    }

    /// Returns the compiled program for `(source, stdlib, opt_level)`,
    /// compiling it if this is the first request for that key, and
    /// whether the slot was already present (`true` = cache hit). When
    /// several threads race on a fresh key, exactly one compiles; the
    /// rest block until the result is ready and then share it.
    ///
    /// # Errors
    ///
    /// The inner `Result` carries rendered compile diagnostics (shared
    /// verbatim by every request for the failing source).
    pub fn get_or_compile(
        &self,
        source: &str,
        stdlib: bool,
        opt_level: u8,
    ) -> (Result<Arc<CachedProgram>, String>, bool) {
        let key = Key {
            source: source.to_string(),
            stdlib,
            opt_level,
        };
        let hash = content_hash(&key);
        let (slot, hit) = {
            let mut map = self.map.lock().unwrap();
            let chain = map.entry(hash).or_default();
            match chain.iter().find(|(k, _)| *k == key) {
                Some((_, slot)) => (Arc::clone(slot), true),
                None => {
                    let slot: Slot = Arc::new(OnceLock::new());
                    chain.push((key, Arc::clone(&slot)));
                    (slot, false)
                }
            }
        };
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let result = slot
            .get_or_init(|| {
                self.compiles.fetch_add(1, Ordering::Relaxed);
                compile(source, stdlib).map(|prog| {
                    Arc::new(CachedProgram {
                        prog,
                        opt_level,
                        invocations: AtomicU64::new(0),
                        vm_code: OnceLock::new(),
                        tier_code: OnceLock::new(),
                    })
                })
            })
            .clone();
        (result, hit)
    }

    /// Counter snapshot. `tier_compiles` is derived by inspecting the
    /// entries (the `OnceLock` *is* the count — there is no separate
    /// counter to drift from it).
    pub fn stats(&self) -> ProgramCacheStats {
        let tier_compiles = self
            .map
            .lock()
            .unwrap()
            .values()
            .flatten()
            .filter_map(|(_, slot)| slot.get())
            .filter_map(|r| r.as_ref().ok())
            .filter(|cached| cached.tier_compiled())
            .count() as u64;
        ProgramCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            tier_compiles,
        }
    }

    /// Number of distinct cached programs.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().values().map(Vec::len).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One checked compile, mirroring the facade's pipeline (prelude +
/// optional stdlib + the request source) so serve results match
/// `genus run` byte for byte.
fn compile(source: &str, stdlib: bool) -> Result<CheckedProgram, String> {
    let mut pairs: Vec<(&str, &str)> = Vec::new();
    if stdlib {
        for (name, src) in genus_stdlib::sources() {
            pairs.push((name, src));
        }
    }
    pairs.push(("request.genus", source));
    let mut report = genus_check::check_sources_report(&pairs);
    if report.has_errors() {
        return Err(report.render_errors_short());
    }
    Ok(report.program.take().expect("no errors implies a program"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_get_distinct_entries() {
        let cache = ProgramCache::new();
        let src = "int main() { return 1; }";
        let (a, hit_a) = cache.get_or_compile(src, false, 2);
        assert!(a.is_ok() && !hit_a);
        let (_, hit_b) = cache.get_or_compile(src, false, 2);
        assert!(hit_b);
        // A different opt level is a different entry.
        let (_, hit_c) = cache.get_or_compile(src, false, 0);
        assert!(!hit_c);
        assert_eq!(cache.len(), 2);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.compiles), (1, 2, 2));
    }

    #[test]
    fn compile_errors_are_cached_too() {
        let cache = ProgramCache::new();
        let (r1, _) = cache.get_or_compile("int main() { return nope; }", false, 2);
        let e1 = r1.unwrap_err();
        let (r2, hit) = cache.get_or_compile("int main() { return nope; }", false, 2);
        assert!(hit, "failing sources hit their cached diagnostics");
        assert_eq!(e1, r2.unwrap_err());
        assert_eq!(cache.stats().compiles, 1);
    }

    #[test]
    fn vm_code_is_compiled_once_and_shared() {
        let cache = ProgramCache::new();
        let (r, _) = cache.get_or_compile("int main() { return 2; }", false, 2);
        let cached = r.unwrap();
        let a = cached.vm_code();
        let b = cached.vm_code();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn tier_code_is_compiled_once_and_counted() {
        let cache = ProgramCache::new();
        let (r, _) = cache.get_or_compile("int main() { return 3; }", false, 2);
        let cached = r.unwrap();
        assert_eq!(cache.stats().tier_compiles, 0);
        let a = cached.tier_code();
        let b = cached.tier_code();
        assert!(Arc::ptr_eq(&a, &b), "tier program is shared");
        assert!(
            Arc::ptr_eq(a.code(), &cached.vm_code()),
            "tier is built over the entry's own bytecode"
        );
        assert_eq!(cache.stats().tier_compiles, 1);
    }
}
