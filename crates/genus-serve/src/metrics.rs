//! The server's observability surface: lock-free counters and a latency
//! histogram, exported as one JSON object.
//!
//! Every request that passes through the scheduler is recorded — outcome,
//! resolved engine, fuel and heap totals, and wall-clock latency in a
//! fixed-bucket [`Histogram`] (the same type the bench's load generator
//! uses, so server-side and client-side p99 are computed by identical
//! code). The snapshot is reachable two ways: a `{"action":"metrics"}`
//! request on any connection, and `genus serve --metrics-on-start`, which
//! prints one snapshot line at boot (all zeroes except cache counters
//! warmed from disk) so operators can verify the export schema without
//! traffic.
//!
//! Schema (fixed key order, one line):
//!
//! ```json
//! {"requests":0,"ok":0,"trap":0,"error":0,
//!  "engines":{"ast":0,"vm":0,"jit":0},
//!  "fuel_total":0,"mem_total":0,
//!  "cache":{"entries":0,"hits":0,"misses":0,"compiles":0,
//!           "tier_compiles":0,"evictions":0,"disk_hits":0,"disk_writes":0},
//!  "pool":{"workers":0,"steals":0},
//!  "latency":{"count":0,"mean_us":0,"p50_us":0,"p90_us":0,"p99_us":0,"max_us":0}}
//! ```

use crate::cache::ProgramCacheStats;
use crate::proto::{EngineKind, Outcome, Response};
use genus_common::histogram::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};

/// Aggregated request counters plus the latency histogram. All recording
/// is atomic increments — nothing on the hot path takes a lock.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    requests: AtomicU64,
    ok: AtomicU64,
    traps: AtomicU64,
    errors: AtomicU64,
    fuel_total: AtomicU64,
    mem_total: AtomicU64,
    engine_ast: AtomicU64,
    engine_vm: AtomicU64,
    engine_jit: AtomicU64,
    latency: Histogram,
}

impl ServerMetrics {
    /// All-zero metrics.
    #[must_use]
    pub fn new() -> ServerMetrics {
        ServerMetrics::default()
    }

    /// Records one finished request: its outcome, resource totals, the
    /// engine that ran it (counted only when something actually ran —
    /// compile errors and scheduler rejections have no engine), and its
    /// service latency.
    pub fn record(&self, resp: &Response, latency_us: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match &resp.outcome {
            Outcome::Ok(_) => self.ok.fetch_add(1, Ordering::Relaxed),
            Outcome::Trap { .. } => self.traps.fetch_add(1, Ordering::Relaxed),
            Outcome::Error(_) => self.errors.fetch_add(1, Ordering::Relaxed),
        };
        self.fuel_total.fetch_add(resp.fuel_used, Ordering::Relaxed);
        self.mem_total.fetch_add(resp.mem_used, Ordering::Relaxed);
        if !matches!(resp.outcome, Outcome::Error(_)) {
            match resp.engine {
                EngineKind::Ast => self.engine_ast.fetch_add(1, Ordering::Relaxed),
                EngineKind::Vm | EngineKind::Auto => self.engine_vm.fetch_add(1, Ordering::Relaxed),
                EngineKind::Jit => self.engine_jit.fetch_add(1, Ordering::Relaxed),
            };
        }
        self.latency.record_us(latency_us);
    }

    /// Total requests recorded.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Renders the full metrics object as one JSON line (fixed key
    /// order — see the module docs for the schema). Cache and pool
    /// figures are passed in by the server, which owns them.
    #[must_use]
    pub fn to_json(
        &self,
        cache: &ProgramCacheStats,
        cache_entries: usize,
        workers: usize,
        steals: u64,
    ) -> String {
        format!(
            "{{\"requests\":{},\"ok\":{},\"trap\":{},\"error\":{},\
             \"engines\":{{\"ast\":{},\"vm\":{},\"jit\":{}}},\
             \"fuel_total\":{},\"mem_total\":{},\
             \"cache\":{{\"entries\":{},\"hits\":{},\"misses\":{},\"compiles\":{},\
             \"tier_compiles\":{},\"evictions\":{},\"disk_hits\":{},\"disk_writes\":{}}},\
             \"pool\":{{\"workers\":{},\"steals\":{}}},\
             \"latency\":{}}}",
            self.requests.load(Ordering::Relaxed),
            self.ok.load(Ordering::Relaxed),
            self.traps.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.engine_ast.load(Ordering::Relaxed),
            self.engine_vm.load(Ordering::Relaxed),
            self.engine_jit.load(Ordering::Relaxed),
            self.fuel_total.load(Ordering::Relaxed),
            self.mem_total.load(Ordering::Relaxed),
            cache_entries,
            cache.hits,
            cache.misses,
            cache.compiles,
            cache.tier_compiles,
            cache.evictions,
            cache.disk_hits,
            cache.disk_writes,
            workers,
            steals,
            self.latency.snapshot().to_json(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genus_common::json;

    fn ok_response(engine: EngineKind) -> Response {
        Response {
            engine,
            outcome: Outcome::Ok("1".to_string()),
            fuel_used: 10,
            mem_used: 100,
            ..Response::error("x", "unused")
        }
    }

    #[test]
    fn records_by_outcome_and_engine() {
        let m = ServerMetrics::new();
        m.record(&ok_response(EngineKind::Ast), 50);
        m.record(&ok_response(EngineKind::Vm), 70);
        m.record(&ok_response(EngineKind::Jit), 90);
        m.record(&Response::error("e", "boom"), 10);
        let j = m.to_json(&ProgramCacheStats::default(), 0, 4, 0);
        let v = json::parse(&j).expect("metrics JSON parses");
        let num = |path: &[&str]| {
            let mut cur = &v;
            for p in path {
                cur = cur.get(p).unwrap();
            }
            cur.as_num().unwrap() as u64
        };
        assert_eq!(num(&["requests"]), 4);
        assert_eq!(num(&["ok"]), 3);
        assert_eq!(num(&["error"]), 1);
        assert_eq!(num(&["engines", "ast"]), 1);
        assert_eq!(num(&["engines", "vm"]), 1);
        assert_eq!(num(&["engines", "jit"]), 1);
        assert_eq!(num(&["fuel_total"]), 30, "errors add no fuel");
        assert_eq!(num(&["mem_total"]), 300);
        assert_eq!(num(&["latency", "count"]), 4);
        assert_eq!(num(&["pool", "workers"]), 4);
    }

    #[test]
    fn json_is_deterministic() {
        let m = ServerMetrics::new();
        m.record(&ok_response(EngineKind::Vm), 5);
        let s = ProgramCacheStats::default();
        assert_eq!(m.to_json(&s, 1, 2, 3), m.to_json(&s, 1, 2, 3));
    }
}
