//! Server-side incremental compile sessions.
//!
//! A sessionful request (`{"session": "dev", "action": "update" | "check"
//! | "run", ...}`) routes through this registry instead of the stateless
//! program cache. Each named session owns a long-lived
//! [`genus_check::Session`] — the content-hash-keyed query pipeline —
//! plus compiled bytecode keyed by the session's generation counter, so a
//! sequence of `update`/`check`/`run` requests re-derives only what the
//! edits could have changed: untouched units keep their parse trees and
//! check verdicts, and an unchanged program keeps its bytecode.
//!
//! Sessionful requests are handled **inline on the submitting thread**
//! (not on the worker pool): a session's actions are ordered by
//! definition — an `update` must be visible to the `check` that follows
//! it on the same connection — and pipelining them across workers would
//! trade that guarantee for nothing (the whole point of a session is
//! that re-checks are cheap). Distinct sessions on distinct connections
//! still run concurrently; each entry is independently locked.

use crate::proto::{Action, EngineKind, Outcome, Request, Response, SessionReuse};
use genus_check::Session;
use genus_common::{Severity, SourceMap};
use genus_interp::{Interp, ResourceStats, RuntimeError};
use genus_syntax::memo::{parse_unit, ParsedUnit};
use genus_vm::{compile_optimized, compile_tier, TierProgram, Vm, VmProgram};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// The stdlib's parse trees, memoized once per process. Parsed against a
/// scratch source map mirroring the layout of every stdlib-seeded session
/// (prelude at file 0, stdlib at 1..=N), so the memoized spans are valid
/// in every session the registry creates.
fn stdlib_parses() -> &'static [(&'static str, Arc<ParsedUnit>)] {
    static PARSES: OnceLock<Vec<(&'static str, Arc<ParsedUnit>)>> = OnceLock::new();
    PARSES.get_or_init(|| {
        let mut sm = SourceMap::new();
        sm.add_file(
            genus_check::prelude::PRELUDE_NAME,
            genus_check::prelude::PRELUDE,
        );
        genus_stdlib::sources()
            .iter()
            .map(|(name, src)| {
                let file = sm.add_file(*name, *src);
                (*name, Arc::new(parse_unit(&sm, file, name)))
            })
            .collect()
    })
}

/// One named session: the incremental checker plus per-generation
/// compiled-code slots.
struct SessionEntry {
    inner: Session,
    /// Bytecode for the current program, keyed by `(generation, opt)`.
    vm_code: Option<(u64, u8, Arc<VmProgram>)>,
    /// Tier-2 closures over that bytecode, keyed the same way.
    tier_code: Option<(u64, u8, Arc<TierProgram>)>,
}

impl SessionEntry {
    fn new(stdlib: bool) -> SessionEntry {
        let mut inner = Session::new();
        if stdlib {
            for (name, src) in genus_stdlib::sources() {
                inner.add_unit(name, src, &[], true);
            }
            for (name, parsed) in stdlib_parses() {
                inner.seed_parse(name, parsed.clone());
            }
        }
        SessionEntry {
            inner,
            vm_code: None,
            tier_code: None,
        }
    }

    fn handle(&mut self, req: Request, submitted: Instant) -> Response {
        match req.action {
            Action::Update => {
                self.inner.update_source(&req.file, &req.source);
                Response {
                    id: req.id,
                    outcome: Outcome::Ok("updated".to_string()),
                    ms: ms_since(submitted),
                    engine: req.engine,
                    ..Response::error("", "")
                }
            }
            Action::Check | Action::Run => {
                // A check/run carrying text is an implicit update first.
                if !req.source.is_empty() {
                    self.inner.update_source(&req.file, &req.source);
                }
                let before = self.inner.stats();
                let report = self.inner.check();
                let after = self.inner.stats();
                let reuse = SessionReuse {
                    reused: after.units_not_rechecked() - before.units_not_rechecked(),
                    rechecked: after.units_rechecked - before.units_rechecked,
                };
                if report.has_errors() {
                    let sm = self.inner.sm();
                    let message = self
                        .inner
                        .last_diags()
                        .iter()
                        .filter(|d| d.severity == Severity::Error)
                        .map(|d| d.render(sm))
                        .collect::<Vec<_>>()
                        .join("\n");
                    return Response {
                        reuse: Some(reuse),
                        ms: ms_since(submitted),
                        engine: req.engine,
                        ..Response::error(req.id, message)
                    };
                }
                if req.action == Action::Check {
                    return Response {
                        id: req.id,
                        outcome: Outcome::Ok("checked".to_string()),
                        reuse: Some(reuse),
                        ms: ms_since(submitted),
                        engine: req.engine,
                        ..Response::error("", "")
                    };
                }
                self.run(req, submitted, reuse)
            }
            // The scheduler answers metrics requests before session
            // routing; this arm only fires on direct registry use.
            Action::Metrics => Response::error(req.id, "`metrics` does not apply to a session"),
        }
    }

    /// Executes `main()` against the session's checked program, reusing
    /// compiled bytecode when the generation (and opt level) still match.
    fn run(&mut self, req: Request, submitted: Instant, reuse: SessionReuse) -> Response {
        let generation = self.inner.generation();
        let opt = req.opt_level;
        // `auto` has no hotness signal here; a session's program is warm
        // by definition, so it runs on the VM.
        let engine = match req.engine {
            EngineKind::Auto => EngineKind::Vm,
            explicit => explicit,
        };
        let prog = self
            .inner
            .program()
            .expect("no errors implies a checked program");
        let mut cache_hit = false;
        let run = match engine {
            EngineKind::Ast => {
                // The submitting thread is not a pool worker, so give the
                // recursive interpreter its big stack explicitly.
                std::thread::scope(|scope| {
                    std::thread::Builder::new()
                        .name("genus-session-interp".to_string())
                        .stack_size(crate::pool::WORKER_STACK_SIZE)
                        .spawn_scoped(scope, || {
                            let mut interp = Interp::new(prog);
                            interp.set_limits(req.limits);
                            let outcome = interp.run_main().map(|v| interp.render(&v));
                            RunOutcome {
                                outcome,
                                stats: interp.resource_stats(),
                                output: interp.take_output(),
                            }
                        })
                        .expect("spawn session interpreter thread")
                        .join()
                        .expect("session interpreter thread panicked")
                })
            }
            EngineKind::Vm | EngineKind::Auto => {
                let code = match &self.vm_code {
                    Some((g, o, code)) if *g == generation && *o == opt => {
                        cache_hit = true;
                        code.clone()
                    }
                    _ => {
                        let code = Arc::new(compile_optimized(prog, opt));
                        self.vm_code = Some((generation, opt, code.clone()));
                        self.tier_code = None;
                        code
                    }
                };
                let mut vm = Vm::with_code(prog, code);
                vm.set_limits(req.limits);
                let outcome = vm.run_main().map(|v| vm.render(&v));
                RunOutcome {
                    outcome,
                    stats: vm.resource_stats(),
                    output: vm.take_output(),
                }
            }
            EngineKind::Jit => {
                let code = match &self.vm_code {
                    Some((g, o, code)) if *g == generation && *o == opt => code.clone(),
                    _ => {
                        let code = Arc::new(compile_optimized(prog, opt));
                        self.vm_code = Some((generation, opt, code.clone()));
                        self.tier_code = None;
                        code
                    }
                };
                let tier = match &self.tier_code {
                    Some((g, o, tier)) if *g == generation && *o == opt => {
                        cache_hit = true;
                        tier.clone()
                    }
                    _ => {
                        let tier = Arc::new(compile_tier(&code));
                        self.tier_code = Some((generation, opt, tier.clone()));
                        tier
                    }
                };
                let mut vm = Vm::with_code(prog, Arc::clone(tier.code()));
                vm.set_limits(req.limits);
                let outcome = vm.run_main_tier(&tier).map(|v| vm.render(&v));
                RunOutcome {
                    outcome,
                    stats: vm.resource_stats(),
                    output: vm.take_output(),
                }
            }
        };
        Response {
            id: req.id,
            outcome: match run.outcome {
                Ok(value) => Outcome::Ok(value),
                Err(e) => Outcome::Trap {
                    code: e.code().to_string(),
                    message: e.to_string(),
                },
            },
            output: run.output,
            fuel_used: run.stats.fuel_used,
            mem_used: run.stats.mem_used,
            live_bytes: run.stats.live_bytes,
            peak_bytes: run.stats.peak_bytes,
            collections: run.stats.collections,
            cache_hit,
            ms: ms_since(submitted),
            engine,
            reuse: Some(reuse),
        }
    }
}

struct RunOutcome {
    outcome: Result<String, RuntimeError>,
    output: String,
    stats: ResourceStats,
}

/// The server's named-session table. Sessions are created on first use
/// (with the stdlib iff the creating request asked for it) and live for
/// the server's lifetime; each is independently locked, so concurrent
/// connections using different sessions never contend.
#[derive(Default)]
pub struct SessionRegistry {
    map: Mutex<HashMap<String, Arc<Mutex<SessionEntry>>>>,
}

impl SessionRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> SessionRegistry {
        SessionRegistry::default()
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.map.lock().expect("session registry poisoned").len()
    }

    /// Whether no session has been created yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Handles one sessionful request synchronously, creating the session
    /// on first use.
    pub fn handle(&self, req: Request, submitted: Instant) -> Response {
        let name = req.session.clone().expect("sessionful request");
        let entry = {
            let mut map = self.map.lock().expect("session registry poisoned");
            Arc::clone(
                map.entry(name)
                    .or_insert_with(|| Arc::new(Mutex::new(SessionEntry::new(req.stdlib)))),
            )
        };
        let mut entry = entry.lock().expect("session entry poisoned");
        entry.handle(req, submitted)
    }
}

#[allow(clippy::cast_possible_truncation)]
fn ms_since(start: Instant) -> u64 {
    start.elapsed().as_millis() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use genus_common::json::{self, Json};
    use genus_interp::Limits;

    fn req(line: &str) -> Request {
        Request::parse(line, &Limits::default()).unwrap()
    }

    #[test]
    fn update_check_run_pipeline_reuses_verdicts() {
        let reg = SessionRegistry::new();
        let t = Instant::now();
        let r = reg.handle(
            req(r#"{"id":"u1","session":"s","action":"update","source":"int main() { return 40 + 2; }"}"#),
            t,
        );
        assert_eq!(r.outcome, Outcome::Ok("updated".to_string()));
        assert!(r.reuse.is_none(), "updates do not check");
        let r = reg.handle(req(r#"{"id":"c1","session":"s","action":"check"}"#), t);
        assert_eq!(r.outcome, Outcome::Ok("checked".to_string()));
        let r = reg.handle(
            req(r#"{"id":"r1","session":"s","action":"run","engine":"vm"}"#),
            t,
        );
        assert_eq!(r.outcome, Outcome::Ok("42".to_string()));
        let reuse = r.reuse.expect("sessionful run carries counters");
        // Nothing changed between the check and the run: every unit's
        // verdict (prelude + stdlib + main) was reused.
        assert!(reuse.reused > 0, "{reuse:?}");
        assert_eq!(reuse.rechecked, 0, "{reuse:?}");
        // And an identical re-run also reuses the compiled bytecode.
        let r = reg.handle(
            req(r#"{"id":"r2","session":"s","action":"run","engine":"vm"}"#),
            t,
        );
        assert!(r.cache_hit, "unchanged program must reuse bytecode");
    }

    #[test]
    fn edit_invalidates_bytecode_but_not_sibling_verdicts() {
        let reg = SessionRegistry::new();
        let t = Instant::now();
        reg.handle(
            req(r#"{"id":"u1","session":"s","action":"update","file":"util.genus","source":"class Box { int v; Box(int v) { this.v = v; } int get() { return v; } }"}"#),
            t,
        );
        let r = reg.handle(
            req(r#"{"id":"r1","session":"s","action":"run","engine":"vm","source":"int main() { return new Box(6).get(); }"}"#),
            t,
        );
        assert_eq!(r.outcome, Outcome::Ok("6".to_string()));
        assert!(!r.cache_hit);
        // Body-only edit to main: util's verdict is reused, bytecode is
        // recompiled.
        let r = reg.handle(
            req(r#"{"id":"r2","session":"s","action":"run","engine":"vm","source":"int main() { return new Box(7).get(); }"}"#),
            t,
        );
        assert_eq!(r.outcome, Outcome::Ok("7".to_string()));
        assert!(!r.cache_hit, "edited program must recompile");
        let reuse = r.reuse.unwrap();
        assert!(reuse.reused >= 2, "prelude + util reused: {reuse:?}");
        assert_eq!(reuse.rechecked, 1, "only main re-checked: {reuse:?}");
    }

    #[test]
    fn check_errors_render_with_stable_codes() {
        let reg = SessionRegistry::new();
        let t = Instant::now();
        let r = reg.handle(
            req(r#"{"id":"c1","session":"s","action":"check","source":"int main() { return nope; }"}"#),
            t,
        );
        let Outcome::Error(msg) = &r.outcome else {
            panic!("expected a compile error, got {:?}", r.outcome);
        };
        assert!(msg.contains("unknown variable"), "{msg}");
        assert!(r.reuse.is_some(), "failed checks still report reuse");
        // The error round-trips through the JSON line renderer.
        let v = json::parse(&r.to_json_line()).unwrap();
        assert_eq!(v.get("outcome").and_then(Json::as_str), Some("error"));
    }

    #[test]
    fn sessions_are_isolated_and_engines_agree() {
        let reg = SessionRegistry::new();
        let t = Instant::now();
        for (name, engine) in [("a", "ast"), ("b", "vm"), ("c", "jit")] {
            let r = reg.handle(
                req(&format!(
                    r#"{{"id":"r","session":"{name}","action":"run","engine":"{engine}","source":"int main() {{ println(\"hi\"); return 9; }}"}}"#
                )),
                t,
            );
            assert_eq!(r.outcome, Outcome::Ok("9".to_string()), "{engine}");
            assert_eq!(r.output, "hi\n", "{engine}");
            assert_eq!(r.engine.name(), engine);
        }
        assert_eq!(reg.len(), 3);
    }
}
