//! The JSON-lines wire protocol: one request object per input line, one
//! response object per output line, in request order.
//!
//! Requests (`genus_common::json` is both parser and escaper — no
//! third-party serialization):
//!
//! ```json
//! {"id": "r1", "source": "int main() { return 42; }",
//!  "engine": "vm", "opt": 2, "stdlib": false,
//!  "fuel": 1000000, "memory": 65536, "deadline_ms": 2000}
//! ```
//!
//! Only `id` and `source` are required. `engine` defaults to `"vm"`
//! (also accepted: `"ast"`, `"jit"` for the closure-compiled Tier 2,
//! and `"auto"` for server-side hotness promotion across all three),
//! `opt` to 2, `stdlib` to `true` (the same default as `genus run`;
//! pass `false` for prelude-only compiles); the resource fields default
//! to the server's per-request budgets.
//!
//! Responses:
//!
//! ```json
//! {"id": "r1", "outcome": "ok", "value": "42", "output": "",
//!  "fuel_used": 3, "mem_used": 0, "live_bytes": 0, "peak_bytes": 0,
//!  "collections": 0, "cache": "hit", "ms": 0, "engine": "vm"}
//! ```
//!
//! `outcome` is `"ok"` (with `value`), `"trap"` (with the stable `code`,
//! e.g. `R0009` for fuel exhaustion, and `message`), or `"error"` for
//! compile failures (with `message`). Fields are emitted in a fixed
//! order, so response lines are byte-deterministic for a given outcome.
//!
//! **Sessionful requests** carry a `session` name and an `action`:
//!
//! ```json
//! {"id": "u1", "session": "dev", "action": "update",
//!  "file": "main.genus", "source": "int main() { return 1; }"}
//! {"id": "c1", "session": "dev", "action": "check"}
//! {"id": "r1", "session": "dev", "action": "run", "engine": "vm"}
//! ```
//!
//! A session is a long-lived incremental compile pipeline on the server:
//! `update` replaces one named unit's text, `check` re-derives
//! diagnostics reusing everything content hashes allow, and `run`
//! re-checks then executes `main()` (reusing compiled bytecode when
//! nothing changed). Sessionful `check`/`run` responses append two
//! counters, `"reused"` and `"rechecked"` — the per-request incremental
//! reuse evidence. Stateless response lines are unchanged, byte for byte.

use genus_common::json::{self, Json};
use genus_interp::Limits;

/// Which engine executes a request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum EngineKind {
    /// The AST tree-walking interpreter (needs a big-stack worker).
    Ast,
    /// The bytecode register VM (the default: its compiled program is
    /// shared across workers through the cache).
    #[default]
    Vm,
    /// Tier 2: the closure-compiled engine over the optimized bytecode.
    /// Like the VM's, its compiled form is shared through the cache.
    Jit,
    /// Tiered execution with hotness promotion: the server picks the
    /// engine from the cache entry's invocation count — cold programs
    /// run on the AST interpreter (no bytecode compile), warm ones on
    /// the VM, hot ones on Tier 2. The response's `engine` field reports
    /// the engine that actually ran.
    Auto,
}

impl EngineKind {
    /// Parses an engine name (same names as `genus run --engine=`, plus
    /// `auto` for server-side tier promotion).
    #[must_use]
    pub fn from_name(name: &str) -> Option<EngineKind> {
        match name {
            "ast" | "interp" => Some(EngineKind::Ast),
            "vm" | "bytecode" => Some(EngineKind::Vm),
            "jit" | "tier" => Some(EngineKind::Jit),
            "auto" => Some(EngineKind::Auto),
            _ => None,
        }
    }

    /// The canonical wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Ast => "ast",
            EngineKind::Vm => "vm",
            EngineKind::Jit => "jit",
            EngineKind::Auto => "auto",
        }
    }
}

/// What a sessionful request asks its compile session to do.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Action {
    /// Replace the named unit's source text without checking.
    Update,
    /// Incrementally re-check the session's current sources.
    Check,
    /// Re-check, then execute `main()` on the requested engine.
    #[default]
    Run,
    /// Report the server's metrics snapshot (counters, cache, pool,
    /// latency histogram). Needs neither a `session` nor a `source`;
    /// answered synchronously by the scheduler, never queued behind
    /// execution work.
    Metrics,
}

impl Action {
    /// Parses a wire action name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Action> {
        match name {
            "update" => Some(Action::Update),
            "check" => Some(Action::Check),
            "run" => Some(Action::Run),
            "metrics" => Some(Action::Metrics),
            _ => None,
        }
    }

    /// The canonical wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Action::Update => "update",
            Action::Check => "check",
            Action::Run => "run",
            Action::Metrics => "metrics",
        }
    }
}

/// One execution request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Caller-chosen correlation id, echoed in the response.
    pub id: String,
    /// The Genus program (compiled once per distinct source — see the
    /// program cache). On sessionful `check`/`run` requests the source
    /// is optional: when present it first replaces the [`file`] unit,
    /// when absent the session's current sources are used as-is.
    ///
    /// [`file`]: Request::file
    pub source: String,
    /// Engine selection.
    pub engine: EngineKind,
    /// VM optimization level (0–2).
    pub opt_level: u8,
    /// Whether the standard library is compiled in.
    pub stdlib: bool,
    /// Per-request resource budgets (fuel / memory / deadline).
    pub limits: Limits,
    /// Names a long-lived incremental compile session. `None` is the
    /// classic stateless protocol; `Some` routes the request through the
    /// server's session registry, where parse trees, check verdicts, and
    /// compiled bytecode persist across requests keyed by content hashes.
    pub session: Option<String>,
    /// What to do with the session. Ignored without [`session`].
    ///
    /// [`session`]: Request::session
    pub action: Action,
    /// The unit (module file name) the request's `source` belongs to on
    /// sessionful requests. Defaults to `main.genus`.
    pub file: String,
}

impl Request {
    /// A request with the given id and source and all-default knobs.
    pub fn new(id: impl Into<String>, source: impl Into<String>) -> Request {
        Request {
            id: id.into(),
            source: source.into(),
            engine: EngineKind::default(),
            opt_level: 2,
            stdlib: true,
            limits: Limits::default(),
            session: None,
            action: Action::default(),
            file: "main.genus".to_string(),
        }
    }

    /// Parses one request line. Fields absent from the line fall back to
    /// `defaults` (resource budgets) or the protocol defaults (engine,
    /// opt level, stdlib).
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON, a missing/empty `id` or
    /// `source`, or an unknown `engine` name.
    pub fn parse(line: &str, defaults: &Limits) -> Result<Request, String> {
        let v = json::parse(line)?;
        let Json::Obj(_) = &v else {
            return Err("request must be a JSON object".to_string());
        };
        let id = match v.get("id") {
            Some(Json::Str(s)) => s.clone(),
            Some(Json::Num(n)) => format_num(*n),
            Some(_) => return Err("`id` must be a string or number".to_string()),
            None => return Err("missing `id`".to_string()),
        };
        let session = match v.get("session") {
            Some(Json::Str(s)) if !s.is_empty() => Some(s.clone()),
            Some(_) => return Err("`session` must be a non-empty string".to_string()),
            None => None,
        };
        let action = match v.get("action") {
            Some(j) => {
                let name = j
                    .as_str()
                    .ok_or_else(|| "`action` must be a string".to_string())?;
                Action::from_name(name).ok_or_else(|| format!("unknown action `{name}`"))?
            }
            None => Action::default(),
        };
        if !matches!(action, Action::Run | Action::Metrics) && session.is_none() {
            return Err(format!(
                "`action`: \"{}\" requires a `session`",
                action.name()
            ));
        }
        let file = match v.get("file") {
            Some(j) => {
                let name = j
                    .as_str()
                    .ok_or_else(|| "`file` must be a string".to_string())?;
                if name.is_empty() {
                    return Err("`file` must not be empty".to_string());
                }
                name.to_string()
            }
            None => "main.genus".to_string(),
        };
        let source = match v.get("source").and_then(Json::as_str) {
            Some(s) => s.to_string(),
            // Metrics requests carry no program at all; sessionful
            // check/run requests may re-use the session's current
            // sources without carrying any text of their own.
            None if action == Action::Metrics => String::new(),
            None if session.is_some() && action != Action::Update => String::new(),
            None => return Err("missing `source` string".to_string()),
        };
        let engine = match v.get("engine") {
            Some(j) => {
                let name = j
                    .as_str()
                    .ok_or_else(|| "`engine` must be a string".to_string())?;
                EngineKind::from_name(name).ok_or_else(|| format!("unknown engine `{name}`"))?
            }
            None => EngineKind::default(),
        };
        let opt_level = match v.get("opt") {
            Some(j) => num_field(j, "opt")?.min(2.0) as u8,
            None => 2,
        };
        let stdlib = match v.get("stdlib") {
            Some(Json::Bool(b)) => *b,
            Some(_) => return Err("`stdlib` must be a boolean".to_string()),
            None => true,
        };
        let mut limits = *defaults;
        if let Some(j) = v.get("fuel") {
            limits.fuel = Some(num_field(j, "fuel")? as u64);
        }
        if let Some(j) = v.get("memory") {
            limits.memory = Some(num_field(j, "memory")? as u64);
        }
        if let Some(j) = v.get("deadline_ms") {
            limits.deadline_ms = Some(num_field(j, "deadline_ms")? as u64);
        }
        Ok(Request {
            id,
            source,
            engine,
            opt_level,
            stdlib,
            limits,
            session,
            action,
            file,
        })
    }
}

fn num_field(j: &Json, name: &str) -> Result<f64, String> {
    match j.as_num() {
        Some(n) if n >= 0.0 => Ok(n),
        _ => Err(format!("`{name}` must be a non-negative number")),
    }
}

/// Renders an id that arrived as a JSON number.
fn format_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 9e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// How a request ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// `main()` returned; the payload is its rendered value.
    Ok(String),
    /// A runtime trap: the stable `R0xxx` code and the message.
    Trap {
        /// Stable diagnostic code (`R0009` for fuel, `R0010` for memory, …).
        code: String,
        /// Human-readable message.
        message: String,
    },
    /// The source failed to compile; the payload is the rendered
    /// diagnostics (short format).
    Error(String),
}

/// Per-request incremental-session counters: how many unit verdicts the
/// request's check reused versus re-derived. Carried only by sessionful
/// responses, so stateless response lines keep their historical bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionReuse {
    /// Unit verdicts reused (live or restored from the LRU) by this check.
    pub reused: u64,
    /// Units fully re-checked by this check.
    pub rechecked: u64,
}

/// One execution response, serialized as a single JSON line.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's correlation id.
    pub id: String,
    /// How the run ended.
    pub outcome: Outcome,
    /// Everything the program printed (isolated per request — worker
    /// stdout is never shared).
    pub output: String,
    /// Fuel steps consumed.
    pub fuel_used: u64,
    /// Exact heap bytes allocated, cumulatively (GC never decrements
    /// this — it is the R0010 accounting number, identical across
    /// engines for a given program).
    pub mem_used: u64,
    /// Bytes still live on the run's heap at completion.
    pub live_bytes: u64,
    /// High-water mark of live heap bytes over the run.
    pub peak_bytes: u64,
    /// Stop-the-world collections performed during the run.
    pub collections: u64,
    /// Whether the compiled program came from the cache.
    pub cache_hit: bool,
    /// Wall-clock service time in milliseconds (queue + compile + run).
    pub ms: u64,
    /// The engine that ran (or would have run) the request. For
    /// `engine: "auto"` requests this is the **resolved** engine the
    /// promotion policy picked, so callers can watch a program climb
    /// the tiers.
    pub engine: EngineKind,
    /// Incremental reuse counters of the check this request triggered.
    /// `Some` only on sessionful `check`/`run` responses.
    pub reuse: Option<SessionReuse>,
}

impl Response {
    /// An `outcome: "error"` response (compile failures, malformed
    /// requests, scheduler rejections carry their message here).
    pub fn error(id: impl Into<String>, message: impl Into<String>) -> Response {
        Response {
            id: id.into(),
            outcome: Outcome::Error(message.into()),
            output: String::new(),
            fuel_used: 0,
            mem_used: 0,
            live_bytes: 0,
            peak_bytes: 0,
            collections: 0,
            cache_hit: false,
            ms: 0,
            engine: EngineKind::default(),
            reuse: None,
        }
    }

    /// Serializes the response as one JSON line (no trailing newline).
    /// Key order is fixed — `id, outcome, [value | code, message |
    /// message], output, fuel_used, mem_used, live_bytes, peak_bytes,
    /// collections, cache, ms, engine[, reused, rechecked]` — so a given
    /// response always renders to the same bytes. The trailing reuse
    /// counters appear only on sessionful responses.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str("{\"id\":");
        json::write_escaped(&mut s, &self.id);
        match &self.outcome {
            Outcome::Ok(value) => {
                s.push_str(",\"outcome\":\"ok\",\"value\":");
                json::write_escaped(&mut s, value);
            }
            Outcome::Trap { code, message } => {
                s.push_str(",\"outcome\":\"trap\",\"code\":");
                json::write_escaped(&mut s, code);
                s.push_str(",\"message\":");
                json::write_escaped(&mut s, message);
            }
            Outcome::Error(message) => {
                s.push_str(",\"outcome\":\"error\",\"message\":");
                json::write_escaped(&mut s, message);
            }
        }
        s.push_str(",\"output\":");
        json::write_escaped(&mut s, &self.output);
        s.push_str(&format!(
            ",\"fuel_used\":{},\"mem_used\":{},\"live_bytes\":{},\"peak_bytes\":{},\"collections\":{},\"cache\":\"{}\",\"ms\":{},\"engine\":\"{}\"",
            self.fuel_used,
            self.mem_used,
            self.live_bytes,
            self.peak_bytes,
            self.collections,
            if self.cache_hit { "hit" } else { "miss" },
            self.ms,
            self.engine.name()
        ));
        if let Some(r) = &self.reuse {
            s.push_str(&format!(
                ",\"reused\":{},\"rechecked\":{}",
                r.reused, r.rechecked
            ));
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal_request() {
        let r = Request::parse(
            r#"{"id": "a", "source": "int main() { return 1; }"}"#,
            &Limits::default(),
        )
        .unwrap();
        assert_eq!(r.id, "a");
        assert_eq!(r.engine, EngineKind::Vm);
        assert_eq!(r.opt_level, 2);
        assert!(r.stdlib, "stdlib is on by default, like `genus run`");
        assert_eq!(r.limits, Limits::default());
    }

    #[test]
    fn parse_full_request_overrides_defaults() {
        let defaults = Limits {
            fuel: Some(10),
            memory: Some(20),
            deadline_ms: Some(30),
        };
        let r = Request::parse(
            r#"{"id": 7, "source": "x", "engine": "ast", "opt": 1,
               "stdlib": false, "fuel": 99, "deadline_ms": 500}"#,
            &defaults,
        )
        .unwrap();
        assert_eq!(r.id, "7");
        assert_eq!(r.engine, EngineKind::Ast);
        assert_eq!(r.opt_level, 1);
        assert!(!r.stdlib, "explicit `stdlib: false` overrides the default");
        assert_eq!(r.limits.fuel, Some(99));
        assert_eq!(r.limits.memory, Some(20), "untouched fields keep defaults");
        assert_eq!(r.limits.deadline_ms, Some(500));
    }

    #[test]
    fn parse_rejects_malformed_requests() {
        let d = Limits::default();
        assert!(Request::parse("not json", &d).is_err());
        assert!(Request::parse(r#"{"source": "x"}"#, &d).is_err());
        assert!(Request::parse(r#"{"id": "a"}"#, &d).is_err());
        assert!(Request::parse(r#"{"id": "a", "source": "x", "engine": "llvm"}"#, &d).is_err());
        assert!(Request::parse(r#"{"id": "a", "source": "x", "fuel": -1}"#, &d).is_err());
    }

    #[test]
    fn parse_sessionful_requests() {
        let d = Limits::default();
        let r = Request::parse(
            r#"{"id": "u1", "session": "dev", "action": "update",
               "file": "util.genus", "source": "class U { U() { } }"}"#,
            &d,
        )
        .unwrap();
        assert_eq!(r.session.as_deref(), Some("dev"));
        assert_eq!(r.action, Action::Update);
        assert_eq!(r.file, "util.genus");
        // check/run may omit the source entirely.
        let r = Request::parse(r#"{"id": "c1", "session": "dev", "action": "check"}"#, &d).unwrap();
        assert_eq!(r.action, Action::Check);
        assert_eq!(r.source, "");
        assert_eq!(r.file, "main.genus", "default unit name");
        // ... but stateless requests still require it.
        assert!(Request::parse(r#"{"id": "x", "action": "run"}"#, &d).is_err());
        // An action other than run without a session is malformed.
        assert!(Request::parse(r#"{"id": "x", "source": "s", "action": "check"}"#, &d).is_err());
        // Updates must carry text.
        assert!(
            Request::parse(r#"{"id": "x", "session": "dev", "action": "update"}"#, &d).is_err()
        );
        assert!(Request::parse(r#"{"id": "x", "session": "", "action": "check"}"#, &d).is_err());
        assert!(
            Request::parse(r#"{"id": "x", "session": "dev", "action": "compile"}"#, &d).is_err()
        );
    }

    #[test]
    fn parse_metrics_request() {
        let d = Limits::default();
        // Neither session nor source required.
        let r = Request::parse(r#"{"id": "m1", "action": "metrics"}"#, &d).unwrap();
        assert_eq!(r.action, Action::Metrics);
        assert_eq!(r.source, "");
        assert!(r.session.is_none());
        assert_eq!(Action::from_name("metrics"), Some(Action::Metrics));
        assert_eq!(Action::Metrics.name(), "metrics");
    }

    #[test]
    fn session_responses_append_reuse_counters() {
        let mut r = Response::error("e1", "boom");
        assert!(!r.to_json_line().contains("reused"));
        r.reuse = Some(SessionReuse {
            reused: 5,
            rechecked: 1,
        });
        let line = r.to_json_line();
        assert!(line.ends_with(",\"reused\":5,\"rechecked\":1}"), "{line}");
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("reused").and_then(Json::as_num), Some(5.0));
        assert_eq!(v.get("rechecked").and_then(Json::as_num), Some(1.0));
    }

    #[test]
    fn response_lines_are_deterministic_and_parse_back() {
        let r = Response {
            id: "r1".to_string(),
            outcome: Outcome::Trap {
                code: "R0009".to_string(),
                message: "fuel budget of 10 steps exhausted".to_string(),
            },
            output: "line\n".to_string(),
            fuel_used: 11,
            mem_used: 0,
            live_bytes: 0,
            peak_bytes: 0,
            collections: 0,
            cache_hit: true,
            ms: 3,
            engine: EngineKind::Vm,
            reuse: None,
        };
        let line = r.to_json_line();
        assert_eq!(line, r.to_json_line(), "serialization is deterministic");
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_str), Some("r1"));
        assert_eq!(v.get("outcome").and_then(Json::as_str), Some("trap"));
        assert_eq!(v.get("code").and_then(Json::as_str), Some("R0009"));
        assert_eq!(v.get("cache").and_then(Json::as_str), Some("hit"));
        assert_eq!(v.get("fuel_used").and_then(Json::as_num), Some(11.0));
        assert_eq!(v.get("output").and_then(Json::as_str), Some("line\n"));
    }
}
