//! A fixed worker pool with graceful shutdown.
//!
//! Workers are plain OS threads over a `Mutex<VecDeque>` + `Condvar`
//! queue. Each worker gets a big stack (the AST interpreter recurses on
//! the host stack, so serve workers need the same headroom the facade's
//! dedicated interpreter thread provides). Shutdown is cooperative:
//! [`WorkerPool::shutdown`] lets queued jobs drain, then joins every
//! worker.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A queued unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutting_down: AtomicBool,
}

/// Fixed-size worker pool. Dropping the pool without calling
/// [`WorkerPool::shutdown`] also shuts it down (draining the queue
/// first), so tests cannot leak workers.
pub struct WorkerPool {
    state: Arc<PoolState>,
    workers: Vec<JoinHandle<()>>,
}

/// Native stack per worker: the AST engine runs Genus frames on the host
/// stack, and its `max_depth` recursion guard is calibrated against a
/// 256 MiB stack (same size the `genus` facade uses for its dedicated
/// interpreter thread).
pub const WORKER_STACK_SIZE: usize = 256 << 20;

impl WorkerPool {
    /// Spawns `workers` threads (at least one).
    pub fn new(workers: usize) -> WorkerPool {
        let state = Arc::new(PoolState {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutting_down: AtomicBool::new(false),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("genus-serve-worker-{i}"))
                    .stack_size(WORKER_STACK_SIZE)
                    .spawn(move || worker_loop(&state))
                    .expect("spawn serve worker")
            })
            .collect();
        WorkerPool { state, workers }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job. Jobs submitted after shutdown began are dropped
    /// (the queue is already draining).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        if self.state.shutting_down.load(Ordering::Acquire) {
            return;
        }
        self.state.queue.lock().unwrap().push_back(Box::new(job));
        self.state.available.notify_one();
    }

    /// Graceful shutdown: stops accepting work, lets the queue drain,
    /// and joins every worker.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    fn begin_shutdown(&self) {
        self.state.shutting_down.store(true, Ordering::Release);
        self.state.available.notify_all();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.begin_shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(state: &PoolState) {
    loop {
        let job = {
            let mut queue = state.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if state.shutting_down.load(Ordering::Acquire) {
                    break None;
                }
                queue = state.available.wait(queue).unwrap();
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::mpsc;

    #[test]
    fn all_jobs_run_across_workers() {
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let pool = WorkerPool::new(1);
        let (tx, rx) = mpsc::channel();
        for i in 0..10 {
            let tx = tx.clone();
            pool.submit(move || tx.send(i).unwrap());
        }
        pool.shutdown();
        let got: Vec<i32> = rx.try_iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>(), "single worker: FIFO");
    }

    #[test]
    fn workers_have_big_stacks() {
        // A deep host-stack recursion that would overflow a default
        // 2 MiB thread must be fine on a pool worker.
        let pool = WorkerPool::new(1);
        let (tx, rx) = mpsc::channel();
        pool.submit(move || {
            fn grow(n: usize) -> usize {
                let pad = [0u8; 4096];
                if n == 0 {
                    pad[0] as usize
                } else {
                    grow(n - 1) + pad.len().min(1)
                }
            }
            tx.send(grow(10_000)).unwrap();
        });
        assert_eq!(rx.recv().unwrap(), 10_000);
        pool.shutdown();
    }
}
